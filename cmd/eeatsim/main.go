// Command eeatsim runs one workload under one TLB configuration and
// prints the performance counters and the dynamic-energy breakdown.
//
// Usage:
//
//	eeatsim [-workload mcf] [-config RMM_Lite] [-instrs 20000000]
//	        [-seed 42] [-scale 1.0] [-interval 0] [-list]
//	eeatsim -audit -audit-sample 1          # cross-check every access
//	eeatsim -audit -inject flip-pfn@1000    # prove the fault is caught
//	eeatsim -trace-out run.trace            # Chrome-loadable event trace
//	eeatsim -status-addr localhost:9090     # live /metrics + /status
//	eeatsim -cpuprofile cpu.out -memprofile mem.out
//	eeatsim -remote http://localhost:8080   # offload to an eeatd daemon
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"xlate"
	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/exper"
	"xlate/internal/obsflags"
	"xlate/internal/service"
	"xlate/internal/service/client"
	"xlate/internal/tracec"
)

// errUsage marks errors caused by bad invocation rather than a failed
// run; main maps it to exit code 2.
var errUsage = errors.New("invalid usage")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Stdout)
	stop()
	code := 0
	if err != nil {
		fmt.Fprintln(os.Stderr, "eeatsim:", err)
		code = 1
		if errors.Is(err, errUsage) {
			code = 2
		}
	}
	os.Exit(code)
}

func run(ctx context.Context, out *os.File) error {
	var (
		workload = flag.String("workload", "mcf", "workload model name (see -list)")
		config   = flag.String("config", "RMM_Lite", "configuration: 4KB, THP, TLB_Lite, RMM, TLB_PP, RMM_Lite")
		instrs   = flag.Uint64("instrs", 20_000_000, "instruction budget")
		seed     = flag.Int64("seed", 42, "random seed")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale")
		interval = flag.Uint64("interval", 0, "collect an L1-MPKI series with this interval (instructions); 0 disables")
		list     = flag.Bool("list", false, "list workloads and configurations, then exit")
		record   = flag.String("record", "", "record the workload's reference trace to this file and exit")
		replay   = flag.String("replay", "", "replay a recorded trace file instead of the workload generator")
		nrecord  = flag.Int("record-refs", 1_000_000, "references to record with -record")
		remote   = flag.String("remote", "", "offload the simulation to an eeatd daemon at this base URL (e.g. http://localhost:8080)")

		compileTraces = flag.Bool("compile-traces", false, "compile the workload into a replayable trace segment (cached in -trace-store) and replay it instead of live synthesis")
		traceStore    = flag.String("trace-store", "", "segment store directory for -compile-traces")

		auditOn     = flag.Bool("audit", false, "attach the runtime integrity layer; a violation fails the run")
		auditSample = flag.Uint64("audit-sample", audit.DefaultSampleEvery, "oracle sampling cadence: cross-check every Nth access (1 = every access)")
		injectSpec  = flag.String("inject", "", `fault to inject: "kind" or "kind@refs" (flip-pfn, drop-inval, stale-range, skew-charge)`)
	)
	obs := obsflags.Register()
	flag.Parse()

	fault, err := inject.Parse(*injectSpec)
	if err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}

	if *list {
		fmt.Fprintln(out, "Configurations:")
		for _, k := range xlate.AllConfigs() {
			fmt.Fprintf(out, "  %s\n", k)
		}
		fmt.Fprintln(out, "Workloads:")
		for _, w := range xlate.AllWorkloads() {
			tag := ""
			if w.TLBIntensive {
				tag = "  (TLB intensive)"
			}
			fmt.Fprintf(out, "  %-14s %-10s %5d MB%s\n", w.Name, w.Suite, w.FootprintBytes()>>20, tag)
		}
		return nil
	}

	var kind xlate.Config
	found := false
	for _, k := range xlate.AllConfigs() {
		if strings.EqualFold(k.String(), *config) {
			kind, found = k, true
		}
	}
	if !found {
		return fmt.Errorf("unknown config %q: %w", *config, errUsage)
	}
	w, err := xlate.WorkloadByName(*workload)
	if err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}

	// -remote offloads the cell to an eeatd daemon: same workload,
	// config, and options resolve to the same canonical cell key
	// server-side, so repeated invocations hit the daemon's
	// content-addressed cache instead of re-simulating.
	if *remote != "" {
		if *record != "" || *replay != "" || *auditOn || *injectSpec != "" {
			return fmt.Errorf("-remote cannot be combined with -record/-replay/-audit/-inject: %w", errUsage)
		}
		c := client.New(*remote)
		cr, _, err := c.RunCell(ctx, service.SubmitRequest{
			Workload: w.Name,
			Config:   kind.String(),
			Interval: *interval,
			Instrs:   *instrs,
			Scale:    *scale,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		source := fmt.Sprintf("%s via %s (cell %.12s…)", w.Name, *remote, cr.Key)
		printResult(out, cr.Result, source, false)
		return nil
	}

	if *record != "" {
		refs, err := xlate.RecordTrace(w, kind, *nrecord, xlate.RunOptions{Seed: *seed, Scale: *scale})
		if err != nil {
			return err
		}
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		if err := xlate.WriteTrace(f, refs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d references of %s to %s\n", len(refs), w.Name, *record)
		return nil
	}

	sess, err := obs.Start(nil, func(f string, args ...any) {
		fmt.Fprintf(os.Stderr, "eeatsim: "+f+"\n", args...)
	})
	if err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "eeatsim:", cerr)
		}
	}()

	p := xlate.DefaultParams(kind)
	p.SeriesIntervalInstrs = *interval
	p.Audit = audit.Config{Enabled: *auditOn, SampleEvery: *auditSample}
	p.Fault = fault
	p.Metrics = core.NewMetrics(sess.Registry)
	p.Trace = sess.Tracer
	var res xlate.Result
	if *compileTraces {
		if *replay != "" {
			return fmt.Errorf("-compile-traces cannot be combined with -replay: %w", errUsage)
		}
		if *traceStore == "" {
			return fmt.Errorf("-compile-traces needs -trace-store: %w", errUsage)
		}
		store, err := tracec.OpenStore(*traceStore, 0, 0)
		if err != nil {
			return err
		}
		ex := tracec.Executor{Store: store, CompileModels: true,
			Logf: func(f string, args ...any) { fmt.Fprintf(os.Stderr, "eeatsim: "+f+"\n", args...) }}
		res, err = ex.ExecuteJob(ctx, exper.Job{
			Spec: w, Params: p, Policy: core.PolicyFor(kind, 0.5),
			Instrs: *instrs, Scale: *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
	} else if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		refs, err := xlate.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		res, err = xlate.ReplayTrace(refs, p, *instrs, xlate.RunOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "replayed %d-reference trace (%d demand faults)\n", len(refs), res.PageFaults)
	} else {
		res, err = xlate.RunParamsContext(ctx, w, p, *instrs, xlate.RunOptions{Seed: *seed, Scale: *scale})
		if err != nil {
			return err
		}
	}

	source := fmt.Sprintf("%s (%d MB footprint)", w.Name, w.FootprintBytes()>>20)
	if *replay != "" {
		source = "trace " + *replay
	}
	printResult(out, res, source, *auditOn)
	return nil
}

// printResult renders the counter and energy report for one simulation
// result, local or fetched from a daemon.
func printResult(out *os.File, res xlate.Result, source string, auditOn bool) {
	fmt.Fprintf(out, "%s on %s, %d instructions\n", res.Config, source, res.Instructions)
	fmt.Fprintf(out, "  memory references    %12d\n", res.MemRefs)
	fmt.Fprintf(out, "  L1 TLB misses        %12d  (%.3f MPKI)\n", res.L1Misses, res.L1MPKI())
	fmt.Fprintf(out, "  L2 TLB misses        %12d  (%.3f MPKI)\n", res.L2Misses, res.L2MPKI())
	fmt.Fprintf(out, "  page-walk mem refs   %12d\n", res.WalkRefs)
	fmt.Fprintf(out, "  TLB-miss cycles      %12d  (%.2f%% of total)\n",
		res.CyclesTLBMiss, 100*res.MissCycleFraction())
	fmt.Fprintf(out, "  L1 hit attribution   4KB %.1f%%  2MB %.1f%%  range %.1f%%\n",
		100*float64(res.Hits4K)/float64(res.L1Hits()),
		100*float64(res.Hits2M)/float64(res.L1Hits()),
		100*float64(res.HitsRange)/float64(res.L1Hits()))
	fmt.Fprintf(out, "  dynamic energy       %12.1f µJ  (%.3f pJ/ref)\n",
		res.EnergyPJ()/1e6, res.EnergyPerRefPJ())
	fmt.Fprintln(out, "  breakdown:")
	for a := energy.Account(0); a < energy.NumAccounts; a++ {
		pj := res.Energy.Get(a)
		if pj == 0 {
			continue
		}
		fmt.Fprintf(out, "    %-18s %10.1f µJ  (%5.1f%%)\n", a, pj/1e6, 100*pj/res.EnergyPJ())
	}
	if res.LiteLookupShare != nil {
		fmt.Fprintln(out, "  Lite lookup shares (per monitored TLB, 1/2/4 ways):")
		for i, sh := range res.LiteLookupShare {
			fmt.Fprintf(out, "    TLB %d: 1w %.1f%%  2w %.1f%%  4w %.1f%%   (%d resizes, %d reactivations)\n",
				i, 100*sh[0], 100*sh[1], 100*sh[2], res.LiteResizes, res.LiteReactivations)
		}
	}
	if res.IntervalL1MPKI.Len() > 0 {
		fmt.Fprintf(out, "  L1 MPKI timeline:      %s\n", res.IntervalL1MPKI.Sparkline(60))
		fmt.Fprintf(out, "  energy/access timeline:%s\n", res.IntervalEnergyPerRefPJ.Sparkline(60))
		fmt.Fprintf(out, "  active-ways timeline:  %s\n", res.IntervalLiteWays.Sparkline(60))
	}
	if auditOn {
		fmt.Fprintf(out, "  audit: %d sampled accesses, %d structural audits, %d violations\n",
			res.Audit.Sampled, res.Audit.StructuralAudits, res.Audit.Violations)
	}
}
