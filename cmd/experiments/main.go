// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig10                # one artifact, full scale
//	experiments -exp all -instrs 20000000 # everything (takes minutes)
//	experiments -exp fig2 -format csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xlate"
)

func main() {
	var (
		exp    = flag.String("exp", "all", `experiment id (see -list) or "all"`)
		instrs = flag.Uint64("instrs", 20_000_000, "instruction budget per simulation")
		scale  = flag.Float64("scale", 1.0, "workload footprint scale")
		seed   = flag.Int64("seed", 42, "random seed")
		format = flag.String("format", "markdown", "output format: markdown or csv")
		list   = flag.Bool("list", false, "list experiments, then exit")
	)
	flag.Parse()

	if *list {
		for _, e := range xlate.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *format != "markdown" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}

	opt := xlate.ExperimentOptions{Instrs: *instrs, Scale: *scale, Seed: *seed}
	var ids []string
	if *exp == "all" {
		for _, e := range xlate.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := xlate.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("## %s  (%.1fs)\n\n", id, time.Since(start).Seconds())
		for _, t := range tables {
			if *format == "csv" {
				if t.Title != "" {
					fmt.Printf("# %s\n", t.Title)
				}
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Markdown())
			}
		}
	}
}
