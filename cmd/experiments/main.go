// Command experiments regenerates the paper's tables and figures.
//
// Experiments decompose into simulation cells (workload × configuration
// × parameters) that run on a worker pool; identical cells shared by
// several experiments are simulated once, completed cells are journaled
// to a checkpoint, and output is byte-identical to a sequential run
// regardless of -parallel. Ctrl-C cancels in-flight cells after
// flushing the journal; rerunning with -resume continues where the
// interrupted run stopped. A cell that panics or times out fails only
// the experiments that need it — the rest of the suite still renders.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig10                # one artifact, full scale
//	experiments -exp all -instrs 20000000 # everything (takes minutes)
//	experiments -exp fig2 -format csv
//	experiments -parallel 8 -timeout 10m  # 8 workers, 10 min per cell
//	experiments -resume                   # continue an interrupted run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"

	"xlate"
	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/obsflags"
	"xlate/internal/tracec"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp     = flag.String("exp", "all", `experiment id (see -list) or "all"`)
		instrs  = flag.Uint64("instrs", 20_000_000, "instruction budget per simulation")
		scale   = flag.Float64("scale", 1.0, "workload footprint scale")
		seed    = flag.Int64("seed", 42, "random seed")
		format  = flag.String("format", "markdown", "output format: markdown or csv")
		list    = flag.Bool("list", false, "list experiments, then exit")
		workers = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for simulation cells")
		timeout = flag.Duration("timeout", 0, "per-cell deadline, e.g. 10m (0 = none)")
		retries = flag.Int("retries", 0, "retries per failed cell, each with a derived seed")
		ckpt    = flag.String("checkpoint", "experiments.ckpt", "cell journal path (empty disables checkpointing)")
		resume  = flag.Bool("resume", false, "load completed cells from -checkpoint before running")
		verbose = flag.Bool("v", false, "log harness progress to stderr")

		auditOn     = flag.Bool("audit", false, "attach the runtime integrity layer to every cell; violations fail the cell")
		auditSample = flag.Uint64("audit-sample", audit.DefaultSampleEvery, "oracle sampling cadence: cross-check every Nth access (1 = every access)")
		injectSpec  = flag.String("inject", "", `fault to inject into every cell: "kind" or "kind@refs" (flip-pfn, drop-inval, stale-range, skew-charge)`)

		progress = flag.Duration("progress", 0, "emit a progress line (cells done, ETA, aggregate MPKI) to stderr at this period, e.g. 10s (0 = off)")

		compileTraces = flag.Bool("compile-traces", false, "compile each workload into a replayable trace segment once and replay it for every cell that shares it (requires -trace-store)")
		traceStore    = flag.String("trace-store", "", "segment store directory for -compile-traces")
	)
	obs := obsflags.Register()
	flag.Parse()

	fault, err := inject.Parse(*injectSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}

	if *list {
		for _, e := range xlate.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *format != "markdown" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		return 2
	}

	var exps []exper.Experiment
	if *exp == "all" {
		exps = exper.All()
	} else {
		e, ok := exper.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (known: %v)\n", *exp, exper.IDs())
			return 2
		}
		exps = []exper.Experiment{e}
	}

	// Ctrl-C / SIGTERM cancels in-flight cells; completed cells are
	// already journaled, so a -resume run picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(string, ...any) {}
	if *verbose || *progress > 0 {
		logf = func(f string, args ...any) { fmt.Fprintf(os.Stderr, "experiments: "+f+"\n", args...) }
	}

	// The status endpoint needs the suite before the suite exists (the
	// suite needs the session's registry), so the closure resolves the
	// suite through an atomic pointer set just below.
	var suiteRef atomic.Pointer[harness.Suite]
	status := func() any {
		if s := suiteRef.Load(); s != nil {
			return s.Status()
		}
		return nil
	}
	sess, err := obs.Start(status, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	var traces *tracec.Executor
	if *compileTraces || *traceStore != "" {
		if *traceStore == "" {
			fmt.Fprintln(os.Stderr, "experiments: -compile-traces needs -trace-store")
			return 2
		}
		store, err := tracec.OpenStore(*traceStore, 0, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		traces = &tracec.Executor{Store: store, CompileModels: *compileTraces, Logf: logf}
	}

	s := harness.New(harness.Config{
		Workers:     *workers,
		CellTimeout: *timeout,
		Retries:     *retries,
		Checkpoint:  *ckpt,
		Resume:      *resume,
		Options: exper.Options{
			Instrs: *instrs, Scale: *scale, Seed: *seed,
			Audit:   audit.Config{Enabled: *auditOn, SampleEvery: *auditSample},
			Inject:  fault,
			Metrics: core.NewMetrics(sess.Registry),
			Trace:   sess.Tracer,
		},
		Traces:        traces,
		Logf:          logf,
		Registry:      sess.Registry,
		ProgressEvery: *progress,
	})
	suiteRef.Store(s)

	results, err := s.Run(ctx, exps)
	failures := 0
	for _, r := range results {
		if r.Err != nil && ctx.Err() != nil {
			break // interrupted: unrendered experiments aren't failures
		}
		fmt.Printf("## %s  (%.1fs)\n\n", r.ID, r.Elapsed.Seconds())
		if r.Err != nil {
			failures++
			fmt.Printf("_not reproduced: %s_\n\n", firstLine(r.Err.Error()))
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, r.Err)
			continue
		}
		for _, t := range r.Tables {
			if *format == "csv" {
				if t.Title != "" {
					fmt.Printf("# %s\n", t.Title)
				}
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Markdown())
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		if ctx.Err() != nil && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "experiments: completed cells saved; rerun with -resume to continue\n")
		}
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", failures)
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
