package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: xlate
cpu: Test CPU
BenchmarkFig2Characterization-8   	       2	 512345678 ns/op	  102400 B/op	    2048 allocs/op
BenchmarkSimulate4KB-8            	       5	 230000000 ns/op	  200000 refs/op	  123456 B/op	     789 allocs/op
PASS
ok  	xlate	12.345s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	// Sorted by name: Fig2Characterization before Simulate4KB.
	fig2, sim := benches[0], benches[1]
	if fig2.Name != "Fig2Characterization" || fig2.NsPerOp != 512345678 || fig2.Iterations != 2 {
		t.Errorf("fig2 entry = %+v", fig2)
	}
	if fig2.RefsPerOp != 0 || fig2.AccessesPerSec != 0 {
		t.Errorf("fig2 should have no throughput metrics: %+v", fig2)
	}
	if sim.Name != "Simulate4KB" || sim.RefsPerOp != 200000 {
		t.Errorf("simulate entry = %+v", sim)
	}
	wantNsPerAccess := 230000000.0 / 200000.0
	if sim.NsPerAccess != wantNsPerAccess {
		t.Errorf("ns_per_access = %v, want %v", sim.NsPerAccess, wantNsPerAccess)
	}
	wantAPS := 200000.0 / 230000000.0 * 1e9
	if sim.AccessesPerSec != wantAPS {
		t.Errorf("accesses_per_sec = %v, want %v", sim.AccessesPerSec, wantAPS)
	}
}

func TestParseBenchRejectsMalformedResultLine(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkBad-8  five  123 ns/op\n"))
	if err == nil {
		t.Fatal("a malformed iteration count must be an error, not a skip")
	}
}

func TestRunEndToEndAndValidate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_2026-08-07.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-date", "2026-08-07", "-out", out},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Date != "2026-08-07" || len(rep.Benchmarks) != 2 {
		t.Fatalf("report = %+v", rep)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-validate", out}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("validate exited %d: %s", code, stderr.String())
	}
}

func TestValidateRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not-json.json":      "{",
		"no-date.json":       `{"benchmarks":[{"name":"X","ns_per_op":1,"accesses_per_sec":2}]}`,
		"no-benchmarks.json": `{"date":"2026-08-07","benchmarks":[]}`,
		"no-throughput.json": `{"date":"2026-08-07","benchmarks":[{"name":"X","ns_per_op":1}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-validate", path}, nil, &stdout, &stderr); code == 0 {
			t.Errorf("%s: validate accepted a bad baseline", name)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-validate", filepath.Join(dir, "missing.json")}, nil, &stdout, &stderr); code == 0 {
		t.Error("validate accepted a missing file")
	}
}

func TestRunRequiresDate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sampleBench), &stdout, &stderr); code == 0 {
		t.Fatal("run without -date must fail")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-date", "2026-08-07"}, strings.NewReader("PASS\n"), &stdout, &stderr); code == 0 {
		t.Fatal("run with no benchmark lines must fail")
	}
}
