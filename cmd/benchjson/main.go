// Command benchjson turns `go test -bench` text output into the
// committed perf-trajectory artifact: a BENCH_<date>.json recording
// ns/op per benchmark and — for the simulator-throughput benches that
// report refs/op — the derived ns/access and accesses/sec, the numbers
// the paper's energy-per-access claims are calibrated against.
//
// Usage:
//
//	go test -bench=. -run='^$' | benchjson -date 2026-08-07 -out BENCH_2026-08-07.json
//	benchjson -validate BENCH_2026-08-07.json   # CI: well-formed and non-trivial
//
// The parser is deliberately tolerant of everything that is not a
// benchmark result line (PASS/ok trailers, goos/goarch headers, log
// noise) and deliberately strict about the lines it does claim: a
// malformed ns/op field is an error, not a skip — a half-parsed
// baseline is worse than none.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's base name with the Benchmark prefix and
	// the -GOMAXPROCS suffix stripped: "Simulate4KB", "Fig10Main".
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`

	// The throughput benches report how many simulated memory
	// references one op covered; from that the per-access figures
	// derive. Zero when the bench reported no refs/op metric.
	RefsPerOp      float64 `json:"refs_per_op,omitempty"`
	NsPerAccess    float64 `json:"ns_per_access,omitempty"`
	AccessesPerSec float64 `json:"accesses_per_sec,omitempty"`
}

// Report is the committed artifact.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	date := fs.String("date", "", "date stamp recorded in the report (required unless -validate)")
	in := fs.String("in", "", "read `go test -bench` output from this file (default stdin)")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	validate := fs.String("validate", "", "validate an existing report file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchjson: %s is a valid benchmark baseline\n", *validate)
		return 0
	}

	if *date == "" {
		fmt.Fprintln(stderr, "benchjson: -date is required (e.g. -date 2026-08-07)")
		return 2
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	benches, err := parseBench(src)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines in input")
		return 1
	}
	rep := Report{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	b = append(b, '\n')
	if *out == "" {
		stdout.Write(b) //nolint:errcheck // stdout
		return 0
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parseBench reads `go test -bench` output: every line whose first
// field starts with "Benchmark" and has an ns/op column is a result;
// everything else passes through silently.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		b, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func parseLine(fields []string) (Benchmark, error) {
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// -8 style GOMAXPROCS suffix; benchmark names here never
		// contain a dash of their own.
		name = name[:i]
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count %q: %w", fields[1], err)
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in value-unit pairs: "123.4 ns/op",
	// "200000 refs/op", "456 B/op", "7 allocs/op".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "refs/op":
			b.RefsPerOp = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, fmt.Errorf("no ns/op metric")
	}
	if b.RefsPerOp > 0 {
		b.NsPerAccess = b.NsPerOp / b.RefsPerOp
		b.AccessesPerSec = b.RefsPerOp / b.NsPerOp * 1e9
	}
	return b, nil
}

// validateReport is the CI gate on the committed baseline: the file
// must parse, carry a date, contain benchmarks, and include at least
// one simulator-throughput entry with a positive accesses/sec — the
// number the perf trajectory tracks.
func validateReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Date == "" {
		return fmt.Errorf("%s: missing date", path)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", path)
	}
	throughput := 0
	for _, b := range rep.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: malformed benchmark entry %+v", path, b)
		}
		if b.AccessesPerSec > 0 {
			throughput++
		}
	}
	if throughput == 0 {
		return fmt.Errorf("%s: no benchmark reports accesses/sec — the throughput benches are missing", path)
	}
	return nil
}
