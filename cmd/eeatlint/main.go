// Command eeatlint runs the domain static-analysis suite (DESIGN.md
// §9 and §14) over the whole module: determinism, hot-path allocation
// freedom, energy-accounting discipline, the API error boundary, audit
// coverage of mutable structures, and the interprocedural concurrency
// pack — cancellation flow, goroutine shutdown paths, lock discipline,
// and wire/cell-key parity.
//
// Usage:
//
//	eeatlint [-dir .] [-checks determinism,hotpath,...] [-json] [-list] [-time]
//
// The module root is found by walking up from -dir to the nearest
// go.mod. -time prints per-analyzer wall-clock cost to stderr — the
// interprocedural engine is shared across analyzers, so the first
// analyzer that asks for the call graph pays its construction; the
// timing output is how `make lint` keeps the suite inside its budget.
// Exit status is 1 when any finding survives pragma suppression, 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xlate/internal/lint"
	"xlate/internal/lint/analyzers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eeatlint:", err)
		os.Exit(2)
	}
}

func run() error {
	dir := flag.String("dir", ".", "directory inside the module to lint")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the available checks and exit")
	timing := flag.Bool("time", false, "print per-analyzer wall-clock cost to stderr")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown check %q (try -list)", name)
			}
			selected = append(selected, a)
		}
		suite = selected
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		return err
	}
	pkgs, fset, err := lint.LoadModule(root)
	if err != nil {
		return err
	}
	diags, timings := lint.RunAnalyzersTimed(pkgs, fset, suite)
	if *timing {
		var total time.Duration
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "%-16s %8.3fs\n", t.Analyzer, t.Elapsed.Seconds())
			total += t.Elapsed
		}
		fmt.Fprintf(os.Stderr, "%-16s %8.3fs\n", "total", total.Seconds())
	}

	// Render paths relative to the module root for stable output.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			return err
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		return err
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "eeatlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}
