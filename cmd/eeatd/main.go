// Command eeatd is the long-running simulation service: an HTTP/JSON
// daemon that accepts simulation jobs (one cell, or a whole paper
// artifact), runs them on a bounded worker pool, and answers repeated
// queries from a content-addressed result cache keyed by the canonical
// harness cell key — a cache hit is byte-identical to a fresh run.
//
// Usage:
//
//	eeatd                                  # serve on localhost:8080
//	eeatd -addr :9000 -workers 4 -queue 128
//	eeatd -cache-entries 512 -cache-ttl 2h -max-instrs 100000000
//	eeatd -spool /var/lib/eeatd            # drained jobs resume from here
//
// Submit and fetch:
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"mcf","config":"RMM_Lite","instrs":2000000}'
//	curl -s 'localhost:8080/v1/jobs?wait=60s' -d '{"experiment":"fig2","instrs":2000000}'
//	curl -s localhost:8080/v1/results/<key>
//	curl -s localhost:8080/metrics | grep xlate_service
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), in-flight
// jobs finish within -drain-timeout, and past it they are cancelled
// with their experiment checkpoints preserved in the spool. A second
// signal forces immediate shutdown.
//
// Cluster mode (DESIGN.md §11) shards experiment cells across worker
// daemons by the canonical harness cell key:
//
//	eeatd -cluster 3 -exp fig2 -instrs 400000 -scale 0.1 -seed 7
//	                                       # loopback dev cluster, report on stdout
//	eeatd -cluster 3 -exp fig2 -chaos kill:1@10
//	                                       # same, killing worker 1 mid-run
//	eeatd -coordinator -addr :7000 -exp fig2 -min-workers 2
//	eeatd -addr :9001 -worker http://coord:7000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"xlate/internal/obsflags"
	"xlate/internal/service"
	"xlate/internal/service/cluster"
	"xlate/internal/tracec"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address for the job API (and /metrics, /status)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
		cellWk  = flag.Int("cell-workers", 1, "harness workers per experiment job")
		queue   = flag.Int("queue", 64, "max jobs queued ahead of the workers; beyond it submissions get 429")
		maxIn   = flag.Uint64("max-instrs", 0, "reject jobs with a larger instruction budget (0 = no cap)")
		entries = flag.Int("cache-entries", 256, "result-cache entry bound (LRU beyond it)")
		cacheMB = flag.Int64("cache-mb", 0, "result-cache payload bound in MiB (0 = unlimited)")
		ttl     = flag.Duration("cache-ttl", 0, "result-cache entry lifetime, e.g. 2h (0 = no expiry)")
		spool   = flag.String("spool", "eeatd-spool", "directory for experiment-job checkpoints (empty disables resume)")
		drainT  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling them")

		// Cluster modes (DESIGN.md §11). Exactly one of -cluster,
		// -coordinator, -worker may be used.
		clusterN  = flag.Int("cluster", 0, "dev mode: run N in-process workers on loopback and execute -exp")
		coordMode = flag.Bool("coordinator", false, "serve the cluster control plane on -addr and run -exp across joined workers")
		workerURL = flag.String("worker", "", "coordinator URL to join as a worker (e.g. http://coord:7000)")
		workerID  = flag.String("worker-id", "", "worker id announced to the coordinator (default: the listen address)")
		advertise = flag.String("advertise", "", "URL the coordinator reaches this worker at (default http://<addr>)")
		minWk     = flag.Int("min-workers", 1, "coordinator: workers required before the suite starts")
		exp       = flag.String("exp", "fig2", `cluster/coordinator: experiment ids, comma-separated, or "all" ("" = serve only)`)
		instrs    = flag.Uint64("instrs", 20_000_000, "cluster/coordinator: instruction budget per cell")
		scale     = flag.Float64("scale", 1.0, "cluster/coordinator: workload footprint scale")
		seed      = flag.Int64("seed", 42, "cluster/coordinator: base random seed")
		chaos     = flag.String("chaos", "", `cluster dev mode: deterministic fault plan, e.g. "kill:1@10,drop:0@2,delay:2@1:50ms"`)
		metricOut = flag.String("metrics-out", "", "cluster/coordinator: dump /metrics to this file after the run")
		hbTimeout = flag.Duration("hb-timeout", 5*time.Second, "declare a worker dead after this long without a heartbeat")
		hbEvery   = flag.Duration("hb-every", 0, "worker heartbeat period (default hb-timeout/4)")
		clusterCk = flag.String("cluster-checkpoint", "", "coordinator-side harness checkpoint journal")
		resume    = flag.Bool("resume", false, "resume the coordinator checkpoint journal")
		journal   = flag.String("journal", "", "cluster/coordinator: crash journal; a restarted coordinator replays it and resumes automatically (DESIGN.md §12)")
		soakN     = flag.Int("soak", 0, "cluster dev mode: run N concurrent identical suites through one coordinator (chaos soak)")
		golden    = flag.String("golden", "", "soak: report file every suite must match byte-for-byte (default: suites compared to each other)")
		loadOut   = flag.String("load-out", "", "cluster dev mode: write the measured load report (throughput, p50/p95/p99 latency) as JSON to this file")

		traceDir  = flag.String("trace-store", "", "segment store directory: enables POST /v1/traces ingestion and trace:<key> workloads (DESIGN.md §15)")
		traceUp   = flag.String("trace-upstream", "", "fetch missing trace segments from this base URL (default: the -worker coordinator)")
		compileTr = flag.Bool("compile-traces", false, "compile model cells into trace segments once and replay them (requires -trace-store)")
		ingest    = flag.String("ingest", "", "cluster dev mode: ingest this trace file over HTTP into the coordinator and run it as an experiment")
	)
	obs := obsflags.Register()
	flag.Parse()

	logf := func(f string, args ...any) { fmt.Fprintf(os.Stderr, "eeatd: "+f+"\n", args...) }

	if (*clusterN > 0 && *coordMode) || (*clusterN > 0 && *workerURL != "") || (*coordMode && *workerURL != "") {
		logf("-cluster, -coordinator, and -worker are mutually exclusive")
		return 2
	}
	if *clusterN > 0 || *coordMode {
		// The coordinator's dispatch fan-out: -cell-workers when the
		// operator raised it, otherwise wide enough to keep every
		// worker's executors busy.
		width := *clusterN
		if *coordMode && *minWk > width {
			width = *minWk
		}
		fanout := *cellWk
		if fanout <= 1 {
			fanout = 2*width + 2
		}
		o := clusterOpts{
			n: *clusterN, addr: *addr, exp: *exp,
			instrs: *instrs, scale: *scale, seed: *seed,
			chaos: *chaos, metricsOut: *metricOut, loadOut: *loadOut,
			hbTimeout: *hbTimeout, hbEvery: *hbEvery,
			checkpoint: *clusterCk, resume: *resume,
			journal: *journal, soak: *soakN, golden: *golden,
			fanout: fanout, minWorkers: *minWk, logf: logf,
			traceDir: *traceDir, ingest: *ingest,
			obs: obs,
		}
		if *clusterN > 0 {
			return runDevCluster(o)
		}
		return runCoordinator(o)
	}

	// The daemon serves /metrics and /status from its own mux — when
	// -status-addr is also given, fold it in rather than opening a
	// second listener for the same registry.
	if obs.StatusAddr != "" {
		logf("-status-addr %s ignored: /metrics and /status are served on %s (one listener, drained together)",
			obs.StatusAddr, *addr)
		obs.StatusAddr = ""
	}

	var svc *service.Server
	sess, err := obs.Start(func() any {
		if svc != nil {
			return svc.Status()
		}
		return nil
	}, logf)
	if err != nil {
		logf("%v", err)
		return 2
	}

	scfg := service.Config{
		Workers:      *workers,
		CellWorkers:  *cellWk,
		MaxQueue:     *queue,
		MaxInstrs:    *maxIn,
		CacheEntries: *entries,
		CacheBytes:   *cacheMB << 20,
		CacheTTL:     *ttl,
		SpoolDir:     *spool,
		Registry:     sess.Registry,
		Logf:         logf,
	}
	if *traceDir != "" {
		store, terr := tracec.OpenStore(*traceDir, 0, 0)
		if terr != nil {
			logf("%v", terr)
			sess.Close() //nolint:errcheck // exiting on the earlier error
			return 2
		}
		scfg.TraceStore = store
		scfg.CompileTraces = *compileTr
		// A worker daemon fetches dispatched trace-backed cells' segments
		// from its coordinator unless told otherwise.
		scfg.TraceUpstream = *traceUp
		if scfg.TraceUpstream == "" && *workerURL != "" {
			scfg.TraceUpstream = strings.TrimRight(*workerURL, "/")
		}
	} else if *compileTr {
		logf("-compile-traces needs -trace-store")
		sess.Close() //nolint:errcheck // exiting on the earlier error
		return 2
	}
	svc, err = service.New(scfg)
	if err != nil {
		logf("%v", err)
		sess.Close() //nolint:errcheck // exiting on the earlier error
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		svc.Close()
		sess.Close() //nolint:errcheck // exiting on the earlier error
		return 2
	}
	// No WriteTimeout on purpose: /v1/jobs/{id}/log streams for the life
	// of a job, and long-poll waits legitimately hold a response open.
	// Slow readers are bounded instead by IdleTimeout between requests,
	// ReadHeaderTimeout on arrival, and the 1 MiB MaxBytesReader the
	// handler applies to every POST body.
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logf("serving on http://%s (POST /v1/jobs; /metrics, /status, /healthz)", ln.Addr())

	// Worker mode: the daemon additionally joins a coordinator and
	// heartbeats until shutdown. On SIGTERM the leave is synchronous —
	// the coordinator requeues this worker's cells before the drain
	// starts, instead of discovering the departure at the heartbeat
	// timeout.
	hbCancel := context.CancelCauseFunc(func(error) {})
	leave := func() {}
	if *workerURL != "" {
		wid := *workerID
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		if wid == "" {
			wid = ln.Addr().String()
		}
		coordBase := strings.TrimRight(*workerURL, "/")
		var hbCtx context.Context
		hbCtx, hbCancel = context.WithCancelCause(context.Background())
		hb := &cluster.HeartbeatSender{Coord: coordBase, ID: wid, Addr: adv, Every: *hbEvery, Logf: logf}
		if hb.Every <= 0 {
			hb.Every = *hbTimeout / 4
		}
		go hb.Run(hbCtx)
		leave = func() {
			lctx, lcancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer lcancel()
			if err := cluster.Leave(lctx, coordBase, wid); err != nil {
				logf("%v", err)
			}
		}
		logf("worker %s joined coordinator %s (advertising %s)", wid, *workerURL, adv)
	}
	defer hbCancel(nil)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	code := 0
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		code = 1
	case s := <-sig:
		// Graceful cluster exit: stop heartbeating (silently — the
		// synchronous leave below is the goodbye), deregister, and only
		// then drain, so the coordinator requeues this worker's keyspace
		// while the in-flight cells finish into the local cache.
		hbCancel(cluster.ErrCrashed)
		leave()
		logf("%v: draining (timeout %s; signal again to force)", s, *drainT)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
		go func() {
			<-sig
			logf("second signal: forcing shutdown")
			cancel()
		}()
		if err := svc.Drain(drainCtx); err != nil {
			logf("drain cut short: in-flight jobs cancelled, checkpoints kept in %s", *spool)
		} else {
			logf("drain complete: all jobs finished")
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logf("http shutdown: %v", err)
			code = 1
		}
		cancel2()
		cancel()
	}
	if err := sess.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("%v", err)
		code = 1
	}
	return code
}
