// Command eeatd is the long-running simulation service: an HTTP/JSON
// daemon that accepts simulation jobs (one cell, or a whole paper
// artifact), runs them on a bounded worker pool, and answers repeated
// queries from a content-addressed result cache keyed by the canonical
// harness cell key — a cache hit is byte-identical to a fresh run.
//
// Usage:
//
//	eeatd                                  # serve on localhost:8080
//	eeatd -addr :9000 -workers 4 -queue 128
//	eeatd -cache-entries 512 -cache-ttl 2h -max-instrs 100000000
//	eeatd -spool /var/lib/eeatd            # drained jobs resume from here
//
// Submit and fetch:
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"mcf","config":"RMM_Lite","instrs":2000000}'
//	curl -s 'localhost:8080/v1/jobs?wait=60s' -d '{"experiment":"fig2","instrs":2000000}'
//	curl -s localhost:8080/v1/results/<key>
//	curl -s localhost:8080/metrics | grep xlate_service
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), in-flight
// jobs finish within -drain-timeout, and past it they are cancelled
// with their experiment checkpoints preserved in the spool. A second
// signal forces immediate shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"xlate/internal/obsflags"
	"xlate/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address for the job API (and /metrics, /status)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
		cellWk  = flag.Int("cell-workers", 1, "harness workers per experiment job")
		queue   = flag.Int("queue", 64, "max jobs queued ahead of the workers; beyond it submissions get 429")
		maxIn   = flag.Uint64("max-instrs", 0, "reject jobs with a larger instruction budget (0 = no cap)")
		entries = flag.Int("cache-entries", 256, "result-cache entry bound (LRU beyond it)")
		cacheMB = flag.Int64("cache-mb", 0, "result-cache payload bound in MiB (0 = unlimited)")
		ttl     = flag.Duration("cache-ttl", 0, "result-cache entry lifetime, e.g. 2h (0 = no expiry)")
		spool   = flag.String("spool", "eeatd-spool", "directory for experiment-job checkpoints (empty disables resume)")
		drainT  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling them")
	)
	obs := obsflags.Register()
	flag.Parse()

	logf := func(f string, args ...any) { fmt.Fprintf(os.Stderr, "eeatd: "+f+"\n", args...) }

	// The daemon serves /metrics and /status from its own mux — when
	// -status-addr is also given, fold it in rather than opening a
	// second listener for the same registry.
	if obs.StatusAddr != "" {
		logf("-status-addr %s ignored: /metrics and /status are served on %s (one listener, drained together)",
			obs.StatusAddr, *addr)
		obs.StatusAddr = ""
	}

	var svc *service.Server
	sess, err := obs.Start(func() any {
		if svc != nil {
			return svc.Status()
		}
		return nil
	}, logf)
	if err != nil {
		logf("%v", err)
		return 2
	}

	svc, err = service.New(service.Config{
		Workers:      *workers,
		CellWorkers:  *cellWk,
		MaxQueue:     *queue,
		MaxInstrs:    *maxIn,
		CacheEntries: *entries,
		CacheBytes:   *cacheMB << 20,
		CacheTTL:     *ttl,
		SpoolDir:     *spool,
		Registry:     sess.Registry,
		Logf:         logf,
	})
	if err != nil {
		logf("%v", err)
		sess.Close() //nolint:errcheck // exiting on the earlier error
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		svc.Close()
		sess.Close() //nolint:errcheck // exiting on the earlier error
		return 2
	}
	httpSrv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logf("serving on http://%s (POST /v1/jobs; /metrics, /status, /healthz)", ln.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	code := 0
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		code = 1
	case s := <-sig:
		logf("%v: draining (timeout %s; signal again to force)", s, *drainT)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
		go func() {
			<-sig
			logf("second signal: forcing shutdown")
			cancel()
		}()
		if err := svc.Drain(drainCtx); err != nil {
			logf("drain cut short: in-flight jobs cancelled, checkpoints kept in %s", *spool)
		} else {
			logf("drain complete: all jobs finished")
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logf("http shutdown: %v", err)
			code = 1
		}
		cancel2()
		cancel()
	}
	if err := sess.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("%v", err)
		code = 1
	}
	return code
}
