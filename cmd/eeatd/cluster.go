package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xlate/internal/exper"
	"xlate/internal/obsflags"
	"xlate/internal/service/client"
	"xlate/internal/service/cluster"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// clusterOpts collects the flags shared by the -cluster, -coordinator,
// and -worker modes.
type clusterOpts struct {
	n          int // -cluster worker count
	addr       string
	exp        string
	instrs     uint64
	scale      float64
	seed       int64
	chaos      string
	metricsOut string
	loadOut    string
	hbTimeout  time.Duration
	hbEvery    time.Duration
	checkpoint string
	resume     bool
	journal    string
	soak       int
	golden     string
	fanout     int
	minWorkers int
	traceDir   string // -trace-store: enables the trace subsystem
	ingest     string // dev mode: trace file to ingest and run
	logf       func(string, ...any)
	obs        *obsflags.Flags
}

// startObs opens the observability session for a cluster mode: the
// session's registry receives the cluster metrics, its tracer (if
// -trace-out was given) records the distributed cell trace, and
// -pprof-addr/-cpuprofile/-memprofile profile the whole process — in
// dev mode that one process IS the cluster, so a single pprof endpoint
// covers the coordinator and every worker. status feeds the optional
// -status-addr server's /status.
func (o clusterOpts) startObs(status func() any) (*obsflags.Session, error) {
	if o.obs == nil {
		o.obs = &obsflags.Flags{}
	}
	return o.obs.Start(status, o.logf)
}

func selectExperiments(spec string) ([]exper.Experiment, error) {
	if spec == "all" {
		return exper.All(), nil
	}
	var exps []exper.Experiment
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, ok := exper.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %v)", id, exper.IDs())
		}
		exps = append(exps, e)
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return exps, nil
}

// runDevCluster is `eeatd -cluster N`: a loopback cluster of N
// in-process workers runs the selected experiments, the merged report
// goes to stdout, and the optional chaos plan injects deterministic
// network faults — the single-binary harness the cluster smoke builds
// on.
func runDevCluster(o clusterOpts) int {
	dirs, err := cluster.ParseChaos(o.chaos)
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	var exps []exper.Experiment
	if o.exp != "" {
		exps, err = selectExperiments(o.exp)
		if err != nil {
			o.logf("%v", err)
			return 2
		}
	}
	if o.ingest != "" && o.traceDir == "" {
		o.logf("-ingest needs -trace-store")
		return 2
	}
	if o.exp == "" && o.ingest == "" {
		o.logf("nothing to run: give -exp, -ingest, or both")
		return 2
	}
	if o.soak > 0 {
		return runSoak(o, dirs, exps)
	}
	var dev *cluster.DevCluster
	sess, err := o.startObs(func() any {
		if dev != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return dev.Coordinator().Status(sctx)
		}
		return nil
	})
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	defer sess.Close() //nolint:errcheck // exit path; close errors already logged
	// The signal context is the cluster's root: Ctrl-C must reach the
	// worker heartbeat loops and coordinator generations, not just the
	// suite — so it exists before StartDev, not after.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dev, err = cluster.StartDev(ctx, cluster.DevConfig{
		Workers:          o.n,
		CellWorkers:      o.fanout,
		HeartbeatTimeout: o.hbTimeout,
		HeartbeatEvery:   o.hbEvery,
		Retry:            client.Backoff{Seed: o.seed},
		Options:          exper.Options{Instrs: o.instrs, Scale: o.scale, Seed: o.seed},
		Checkpoint:       o.checkpoint,
		Resume:           o.resume,
		Journal:          o.journal,
		Chaos:            dirs,
		TraceDir:         o.traceDir,
		Registry:         sess.Registry,
		Tracer:           sess.Tracer,
		Logf:             o.logf,
	})
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	defer dev.Close()

	if o.ingest != "" {
		// The external-trace smoke path end to end: the stream enters the
		// coordinator over the same HTTP endpoint any client would use,
		// becomes a first-class workload, and its cells dispatch across
		// the ring like any model cell (workers pull the segment by
		// content hash).
		info, err := ingestTrace(ctx, dev.CoordinatorBase(), o.ingest, o.logf)
		if err != nil {
			o.logf("%v", err)
			return 2
		}
		exps = append(exps, exper.TraceExperiment(info.Key))
	}

	suiteStart := time.Now()
	results, runErr := dev.Run(ctx, exps)
	suiteWall := time.Since(suiteStart)
	failures := cluster.WriteReport(os.Stdout, results)
	writeMetrics(o.metricsOut, sess.Registry, o.logf)
	writeLoadReport(o.loadOut, cluster.MeasureLoad(sess.Registry, suiteWall), o.logf)
	if runErr != nil {
		o.logf("cluster run: %v", runErr)
		return 1
	}
	if failures > 0 {
		o.logf("cluster run: %d experiments not reproduced", failures)
		return 1
	}
	if o.journal != "" {
		if err := dev.Coordinator().RemoveJournal(); err != nil {
			o.logf("%v", err)
		}
	}
	return 0
}

// runSoak is `eeatd -cluster N -soak S`: S concurrent identical suites
// through one coordinator under the chaos plan (which may kill the
// coordinator itself — killcoord:N needs -journal). Suite 0's report
// goes to stdout; the exit code reflects the soak invariants: every
// suite byte-identical to the golden, every cell executed exactly once.
func runSoak(o clusterOpts, dirs []cluster.Directive, exps []exper.Experiment) int {
	var golden []byte
	if o.golden != "" {
		b, err := os.ReadFile(o.golden)
		if err != nil {
			o.logf("golden: %v", err)
			return 2
		}
		golden = b
	}
	sess, err := o.startObs(nil)
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	defer sess.Close() //nolint:errcheck // exit path; close errors already logged
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := cluster.RunSoak(ctx, cluster.SoakConfig{
		Workers:          o.n,
		Suites:           o.soak,
		CellWorkers:      o.fanout,
		Experiments:      exps,
		Options:          exper.Options{Instrs: o.instrs, Scale: o.scale, Seed: o.seed},
		Chaos:            dirs,
		Golden:           golden,
		Journal:          o.journal,
		HeartbeatTimeout: o.hbTimeout,
		HeartbeatEvery:   o.hbEvery,
		Retry:            client.Backoff{Seed: o.seed},
		Registry:         sess.Registry,
		Tracer:           sess.Tracer,
		Logf:             o.logf,
	})
	os.Stdout.WriteString(res.Report) //nolint:errcheck // best-effort report
	writeMetrics(o.metricsOut, sess.Registry, o.logf)
	writeLoadReport(o.loadOut, res.Load, o.logf)
	o.logf("soak: %d suites, %d mismatches, %d coordinator restarts, %d cells executed (%d unique, %d federated, %d requeues)",
		res.Suites, res.Mismatches, res.Restarts, res.CellsExecuted, res.UniqueCells, res.CellsFederated, res.Requeues)
	o.logf("load: %.2f cells/sec over %.1fs; cell latency p50 %.3fs p95 %.3fs p99 %.3fs",
		res.Load.CellsPerSec, res.Load.WallSeconds,
		res.Load.CellLatency.P50, res.Load.CellLatency.P95, res.Load.CellLatency.P99)
	if err != nil {
		o.logf("soak: %v", err)
		return 1
	}
	return 0
}

// runCoordinator is `eeatd -coordinator`: serve the cluster control
// plane on -addr, wait for -min-workers workers to join, run the
// selected experiments across them, and print the merged report. With
// -exp "" it serves the control plane until a signal instead.
func runCoordinator(o clusterOpts) int {
	var coord *cluster.Coordinator
	sess, err := o.startObs(func() any {
		if coord != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return coord.Status(sctx)
		}
		return nil
	})
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	defer sess.Close() //nolint:errcheck // exit path; close errors already logged
	var traces *tracec.Executor
	if o.traceDir != "" {
		store, terr := tracec.OpenStore(o.traceDir, 0, 0)
		if terr != nil {
			o.logf("%v", terr)
			return 2
		}
		traces = &tracec.Executor{Store: store, Logf: o.logf}
	}
	coord, err = cluster.NewCoordinator(cluster.Config{
		CellWorkers:      o.fanout,
		HeartbeatTimeout: o.hbTimeout,
		Retry:            client.Backoff{Seed: o.seed},
		Options:          exper.Options{Instrs: o.instrs, Scale: o.scale, Seed: o.seed},
		Checkpoint:       o.checkpoint,
		Resume:           o.resume,
		Journal:          o.journal,
		Traces:           traces,
		Registry:         sess.Registry,
		Tracer:           sess.Tracer,
		Logf:             o.logf,
	})
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	defer coord.End()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	srv := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	defer srv.Close()
	o.logf("coordinator on http://%s (POST /v1/cluster/join; /status, /metrics, /v1/cluster/metrics)", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.exp == "" {
		<-ctx.Done()
		o.logf("signal: coordinator stopping")
		return 0
	}
	exps, err := selectExperiments(o.exp)
	if err != nil {
		o.logf("%v", err)
		return 2
	}
	o.logf("waiting for %d workers", o.minWorkers)
	for coord.LiveWorkers() < o.minWorkers {
		select {
		case <-ctx.Done():
			o.logf("signal while waiting for workers")
			return 1
		case <-time.After(200 * time.Millisecond):
		}
	}
	suiteStart := time.Now()
	results, runErr := coord.RunSuite(ctx, exps)
	suiteWall := time.Since(suiteStart)
	failures := cluster.WriteReport(os.Stdout, results)
	writeMetrics(o.metricsOut, sess.Registry, o.logf)
	writeLoadReport(o.loadOut, cluster.MeasureLoad(sess.Registry, suiteWall), o.logf)
	if runErr != nil {
		o.logf("cluster run: %v", runErr)
		return 1
	}
	if failures > 0 {
		o.logf("cluster run: %d experiments not reproduced", failures)
		return 1
	}
	// A fully successful run retires its crash journal, mirroring the
	// harness checkpoint's clean-run cleanup; any failure above keeps it
	// so the next start resumes.
	if err := coord.RemoveJournal(); err != nil {
		o.logf("%v", err)
	}
	return 0
}

// ingestTrace POSTs a recorded trace file (XLTRACE1 records or an
// already-compiled XLSEGv1 segment) to the coordinator's ingestion
// endpoint — gzip-compressed in transit, the way an external client
// would ship one — and returns the registered segment's identity.
func ingestTrace(ctx context.Context, coordBase, path string, logf func(string, ...any)) (tracec.TraceInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return tracec.TraceInfo{}, err
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(raw); err != nil {
		return tracec.TraceInfo{}, fmt.Errorf("compressing %s: %w", path, err)
	}
	if err := gz.Close(); err != nil {
		return tracec.TraceInfo{}, fmt.Errorf("compressing %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordBase+"/v1/traces", &buf)
	if err != nil {
		return tracec.TraceInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return tracec.TraceInfo{}, fmt.Errorf("ingesting %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return tracec.TraceInfo{}, fmt.Errorf("ingesting %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusCreated {
		return tracec.TraceInfo{}, fmt.Errorf("ingesting %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	var info tracec.TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return tracec.TraceInfo{}, fmt.Errorf("ingesting %s: decoding response: %w", path, err)
	}
	logf("ingested %s → workload %s (%d refs, %d instrs, %d bytes)",
		path, info.Workload, info.Refs, info.Instrs, info.Bytes)
	return info, nil
}

// writeLoadReport renders the measured load report as JSON ("" skips).
func writeLoadReport(path string, load cluster.LoadReport, logf func(string, ...any)) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(load, "", "  ")
	if err != nil {
		logf("load-out: %v", err)
		return
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		logf("load-out: %v", err)
		return
	}
	logf("load report written to %s", path)
}

func writeMetrics(path string, reg *telemetry.Registry, logf func(string, ...any)) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		logf("metrics-out: %v", err)
		return
	}
	defer f.Close()
	if err := reg.WritePrometheus(f); err != nil {
		logf("metrics-out: %v", err)
	}
}
