// Package xlate is a library for studying energy-efficient address
// translation. It reproduces the system of Karakostas et al.,
// "Energy-Efficient Address Translation" (HPCA 2016): a per-core MMU
// simulator with multi-level page and range TLBs, the Lite way-disabling
// mechanism, the Redundant Memory Mappings substrate (range
// translations, range table, eager paging), an x86-64 page table and
// paging-structure caches, Cacti-calibrated dynamic-energy accounting,
// and a harness that regenerates every table and figure of the paper's
// evaluation on calibrated synthetic workload models.
//
// Quick start:
//
//	w, _ := xlate.WorkloadByName("mcf")
//	res, err := xlate.Run(w, xlate.CfgRMMLite, 20_000_000)
//	fmt.Println(res.EnergyPerRefPJ(), res.L1MPKI())
//
// The six simulated configurations are those of the paper's §5:
// Cfg4KB, CfgTHP, CfgTLBLite, CfgRMM, CfgTLBPP and CfgRMMLite.
package xlate

import (
	"context"
	"fmt"
	"io"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/stats"
	"xlate/internal/trace"
	"xlate/internal/vm"
	"xlate/internal/workloads"
)

// Validation errors at the API boundary. Malformed user input —
// parameters or workload models — surfaces as an error wrapping one of
// these sentinels, classifiable with errors.Is; panics are reserved for
// internal invariant violations.
var (
	// ErrInvalidParams is wrapped by every Params validation failure
	// (bad TLB geometry, range-TLB capacities, latencies, thresholds).
	ErrInvalidParams = core.ErrInvalidParams
	// ErrInvalidWorkload is wrapped by every workload-model validation
	// failure (empty regions, bad Zipf exponents, zero strides).
	ErrInvalidWorkload = workloads.ErrInvalidSpec
)

// Config selects one of the paper's simulated TLB organizations.
type Config = core.ConfigKind

// The simulated configurations (paper §5).
const (
	Cfg4KB     = core.Cfg4KB     // 4 KB pages only
	CfgTHP     = core.CfgTHP     // transparent huge pages
	CfgTLBLite = core.CfgTLBLite // THP + the Lite way-disabling mechanism
	CfgRMM     = core.CfgRMM     // THP + L2-range TLB + eager paging
	CfgTLBPP   = core.CfgTLBPP   // perfect TLB_Pred upper bound
	CfgRMMLite = core.CfgRMMLite // RMM + L1-range TLB + Lite
)

// Extension configurations beyond the paper's evaluation (DESIGN.md):
// a realizable TLB_Pred with a fallible page-size predictor, and the
// combined design the paper suggests in §6.1 (range TLBs + prediction-
// based mixed page TLB + Lite).
const (
	CfgTLBPred  = core.CfgTLBPred
	CfgCombined = core.CfgCombined
)

// AllConfigs lists the configurations in the paper's presentation order.
func AllConfigs() []Config { return core.AllConfigs() }

// ExtendedConfigs lists the extension configurations.
func ExtendedConfigs() []Config { return core.ExtendedConfigs() }

// Params fully parameterizes a simulation; DefaultParams fills in the
// paper's values (Sandy Bridge geometry, Table 2 energies, the §5 Lite
// thresholds).
type Params = core.Params

// DefaultParams returns the paper's parameters for a configuration.
func DefaultParams(cfg Config) Params { return core.DefaultParams(cfg) }

// Result is the outcome of a simulation: performance counters, derived
// MPKI metrics, the dynamic-energy breakdown, Lite occupancy shares and
// optional interval series.
type Result = core.Result

// Workload is a calibrated synthetic model of one of the paper's
// benchmarks (see internal/workloads for the modeling methodology).
// Custom workloads can be composed from regions, phases and access
// patterns; see examples/adaptive.
type Workload = workloads.Spec

// WorkloadRegion is one data structure of a workload model.
type WorkloadRegion = workloads.RegionSpec

// WorkloadPhase is one execution phase of a workload model.
type WorkloadPhase = workloads.PhaseSpec

// WorkloadAccess is one weighted access stream into a region.
type WorkloadAccess = workloads.AccessSpec

// Access patterns for custom workload models.
const (
	PatternSeq     = workloads.Seq // sequential sweep (requires Stride)
	PatternUniform = workloads.Uni // uniform random
	PatternZipf    = workloads.Zpf // Zipf-skewed reuse (requires ZipfS > 1)
	PatternChase   = workloads.Chs // pointer chase (full-cycle permutation)
)

// Workloads returns the paper's eight TLB-intensive workload models
// (Table 4).
func Workloads() []Workload { return workloads.TLBIntensive() }

// AllWorkloads returns every workload model, including the Figure 12
// non-intensive Spec2006/Parsec sets.
func AllWorkloads() []Workload { return workloads.All() }

// WorkloadByName finds a workload model by benchmark name (e.g. "mcf").
func WorkloadByName(name string) (Workload, error) {
	s, ok := workloads.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("xlate: %w: unknown workload %q", ErrInvalidWorkload, name)
	}
	return s, nil
}

// RunOptions tunes a Run beyond the architectural parameters.
type RunOptions struct {
	// Seed drives all randomness deterministically (default 42).
	Seed int64
	// Scale multiplies workload footprints (default 1.0).
	Scale float64
}

// Run simulates a workload under a configuration with the paper's
// default parameters for the given instruction budget.
func Run(w Workload, cfg Config, instrs uint64) (Result, error) {
	return RunParams(w, DefaultParams(cfg), instrs, RunOptions{})
}

// RunParams simulates a workload with explicit parameters.
func RunParams(w Workload, p Params, instrs uint64, opt RunOptions) (Result, error) {
	return RunParamsContext(context.Background(), w, p, instrs, opt)
}

// RunParamsContext is RunParams with cooperative cancellation: the
// simulator polls ctx between strides of references and returns
// ctx.Err() with the partial result discarded.
func RunParamsContext(ctx context.Context, w Workload, p Params, instrs uint64, opt RunOptions) (Result, error) {
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	as, gen, err := w.Build(workloads.BuildOptions{
		Policy: core.PolicyFor(p.Kind, 0.5),
		Seed:   opt.Seed,
		Scale:  opt.Scale,
	})
	if err != nil {
		return Result{}, err
	}
	sim, err := core.NewSimulator(p, as)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.RunContext(ctx, gen, instrs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunMulticore simulates a multi-threaded process: one address space,
// one private TLB hierarchy per core, one reference thread per core
// (decorrelated seeds). It returns the per-core results and their
// aggregate. Deterministic regardless of goroutine scheduling.
func RunMulticore(w Workload, cfg Config, cores int, instrsPerCore uint64, opt RunOptions) ([]Result, Result, error) {
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	p := DefaultParams(cfg)
	as, gens, err := w.BuildThreads(workloads.BuildOptions{
		Policy: core.PolicyFor(cfg, 0.5),
		Seed:   opt.Seed,
		Scale:  opt.Scale,
	}, cores)
	if err != nil {
		return nil, Result{}, err
	}
	m, err := core.NewMulticore(p, as, cores)
	if err != nil {
		return nil, Result{}, err
	}
	srcs := make([]trace.RefSource, len(gens))
	for i, g := range gens {
		srcs[i] = g
	}
	return m.Run(srcs, instrsPerCore)
}

// Experiment is one reproducible paper artifact (a table or figure).
type Experiment = exper.Experiment

// ExperimentOptions parameterizes the experiment harness.
type ExperimentOptions = exper.Options

// Table is a rendered result table (markdown or CSV).
type Table = stats.Table

// Experiments lists every paper artifact the harness can regenerate, in
// paper order.
func Experiments() []Experiment { return exper.All() }

// RunExperiment regenerates one artifact by id (e.g. "fig10"); see
// Experiments for the catalogue.
func RunExperiment(id string, opt ExperimentOptions) ([]*Table, error) {
	e, ok := exper.ByID(id)
	if !ok {
		return nil, fmt.Errorf("xlate: %w: unknown experiment %q (known: %v)", ErrInvalidParams, id, exper.IDs())
	}
	return e.Run(opt)
}

// Ref is one memory reference of a trace: a virtual address and the
// instructions executed since the previous reference.
type Ref = trace.Ref

// WriteTrace encodes references in the binary trace format (see
// internal/trace: delta-varint records behind an "XLTRACE1" header).
func WriteTrace(w io.Writer, refs []Ref) error { return trace.WriteAll(w, refs) }

// ReadTrace decodes a complete binary trace.
func ReadTrace(r io.Reader) ([]Ref, error) { return trace.ReadAll(r) }

// RecordTrace runs a workload's generator for n references and returns
// them, e.g. to serialize with WriteTrace for later replay.
func RecordTrace(w Workload, cfg Config, n int, opt RunOptions) ([]Ref, error) {
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	_, gen, err := w.Build(workloads.BuildOptions{
		Policy: core.PolicyFor(cfg, 0.5), Seed: opt.Seed, Scale: opt.Scale})
	if err != nil {
		return nil, err
	}
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = gen.Next()
	}
	return refs, nil
}

// ReplayTrace drives a configuration with recorded references (looping
// the trace as needed to fill the instruction budget). The address
// space is demand-paged under the configuration's OS policy, so traces
// recorded anywhere — including from real programs — can be replayed.
func ReplayTrace(refs []Ref, p Params, instrs uint64, opt RunOptions) (Result, error) {
	if len(refs) == 0 {
		return Result{}, fmt.Errorf("xlate: %w: empty trace", ErrInvalidParams)
	}
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	p.DemandPaging = true
	as := vm.New(vm.Config{Policy: core.PolicyFor(p.Kind, 0.5), Seed: opt.Seed, PhysBytes: 64 << 30})
	sim, err := core.NewSimulator(p, as)
	if err != nil {
		return Result{}, err
	}
	return sim.Run(trace.NewReplay(refs), instrs), nil
}
