# Tier-1 verification. `make check` is the gate for every change; the
# race run is part of tier-1 because the experiment harness
# (internal/harness) is concurrent — its tests drive a 4-worker pool
# through cancellation, panic-recovery, and resume paths. The lint run
# is the domain analyzer suite (cmd/eeatlint, DESIGN.md §9 and §14):
# vet plus nine project-specific checks (determinism, hotpath,
# chargesite, boundaryerrors, invariants, ctxflow, goroleak, locksafe,
# wireparity) that must exit clean.

GO ?= go

# Reduced-scale suite settings for the integrity run (`make audit`).
AUDIT_FLAGS = -exp all -instrs 2000000 -scale 0.25 -checkpoint ""

# Reduced-scale settings for the telemetry and profiling runs. fig4
# exercises the Lite controller, so the scrape sees resize metrics.
TELEMETRY_FLAGS = -exp fig4 -instrs 2000000 -scale 0.25 -checkpoint ""
TELEMETRY_PORT = 19309

# Reduced-scale settings for the service smoke (`make service`): a
# fig2-class experiment job small enough to finish in seconds.
SERVICE_PORT = 19311
SERVICE_JOB = {"experiment":"fig2","instrs":400000,"scale":0.1,"seed":7}

# Cluster smoke settings (`make cluster`): the same reduced fig2 cells,
# sharded across 3 loopback workers with the chaos injector killing
# worker 0 on its 10th RPC (it owns 16 of the 24 cells at this scale,
# so the kill lands mid-experiment). The merged report must match the
# committed single-process golden byte for byte.
CLUSTER_FLAGS = -exp fig2 -instrs 400000 -scale 0.1 -seed 7
CLUSTER_GOLDEN = testdata/cluster/fig2.golden

.PHONY: check build vet lint test race bench bench-json loadtest audit fuzz telemetry profile serve service cluster soak trace-smoke

check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The analyzer suite carries an interprocedural engine (DESIGN.md §14)
# whose cost must stay amortizable on every change: the run prints
# per-analyzer timing and fails if the whole suite (including go run
# compilation) blows a 60-second wall budget.
LINT_BUDGET_SECONDS = 60
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/eeatlint -dir . -time; status=$$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "lint: $${elapsed}s wall (budget $(LINT_BUDGET_SECONDS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECONDS) ]; then \
		echo "lint: suite exceeded the $(LINT_BUDGET_SECONDS)s budget" >&2; exit 1; \
	fi; \
	exit $$status

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Perf trajectory (DESIGN.md §13): run the root benchmark suite once
# and commit the machine-readable baseline. BENCH_<date>.json records
# ns/op per artifact bench and ns/access + accesses/sec for the
# simulator-throughput benches; CI validates the committed file on
# every push, so the repo always carries a parseable perf baseline.
BENCH_DATE = $(shell date +%F)
bench-json:
	$(GO) test -bench=. -benchtime=1x -run=^$$ . > bench-raw.txt
	$(GO) run ./cmd/benchjson -date $(BENCH_DATE) -in bench-raw.txt -out BENCH_$(BENCH_DATE).json
	$(GO) run ./cmd/benchjson -validate BENCH_$(BENCH_DATE).json
	rm -f bench-raw.txt
	@echo "bench-json: baseline written to BENCH_$(BENCH_DATE).json"

# Measured load run (DESIGN.md §13): the reduced fig2 suite across 3
# loopback workers with the load report enabled. The report must agree
# with the cluster smoke's ground truth — 24 cells led to completion,
# positive throughput, and populated latency quantiles read back from
# the same histograms /metrics exports — while the merged report stays
# byte-identical to the committed golden (measurement is observational).
loadtest:
	$(GO) build -o eeatd-bin ./cmd/eeatd
	./eeatd-bin -cluster 3 $(CLUSTER_FLAGS) -load-out loadtest.json > loadtest-report.out
	diff $(CLUSTER_GOLDEN) loadtest-report.out \
		|| { echo "loadtest: measured run diverged from the golden" >&2; exit 1; }
	grep -q '"cells": 24' loadtest.json \
		|| { echo "loadtest: report does not show 24 completed cells:" >&2; cat loadtest.json >&2; exit 1; }
	grep -q '"cells_per_sec"' loadtest.json && grep -q '"p95_seconds"' loadtest.json \
		|| { echo "loadtest: report is missing throughput/quantile fields" >&2; exit 1; }
	@grep -o '"cells_per_sec": [0-9.]*' loadtest.json | head -1
	rm -f eeatd-bin loadtest-report.out loadtest.json
	@echo "loadtest: throughput and latency quantiles measured; report byte-identical"

# Integrity run (DESIGN.md §7): the suite at reduced scale with the
# differential oracle checking every access must finish with zero
# violations AND render byte-identical tables to an unaudited run —
# the audit layer is observational by contract. Per-artifact timings
# are stripped before the diff; intermediates are kept on failure for
# inspection.
audit:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > audit-plain.out
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -audit -audit-sample 1 \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > audit-checked.out
	diff audit-plain.out audit-checked.out
	rm -f audit-plain.out audit-checked.out
	@echo "audit: zero violations; audited tables byte-identical"

# Short fuzz smoke over every fuzz target (CI runs this per push).
fuzz:
	$(GO) test -fuzz=FuzzSetAssoc -fuzztime=10s ./internal/tlb
	$(GO) test -fuzz=FuzzRangeTable -fuzztime=10s ./internal/rmm
	$(GO) test -fuzz=FuzzAllocator -fuzztime=10s ./internal/physmem
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/service/cluster
	$(GO) test -fuzz=FuzzSegmentDecode -fuzztime=10s ./internal/tracec

# Observability run (DESIGN.md §8): a reduced-scale experiment with
# tracing, progress, and the status endpoint enabled must render
# byte-identical tables to a bare run — telemetry is observational by
# contract — while /metrics and /status answer mid-run and the trace
# file is a valid Chrome trace_event document. Per-artifact timings
# are stripped before the diff; intermediates are kept on failure.
telemetry:
	$(GO) build -o telemetry-bin ./cmd/experiments
	./telemetry-bin $(TELEMETRY_FLAGS) \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > telemetry-plain.out
	./telemetry-bin $(TELEMETRY_FLAGS) -progress 5s \
		-status-addr 127.0.0.1:$(TELEMETRY_PORT) -trace-out telemetry.trace \
		> telemetry-instr.raw & pid=$$!; \
	ok=0; for i in $$(seq 1 300); do \
		if curl -fsS http://127.0.0.1:$(TELEMETRY_PORT)/metrics -o telemetry-metrics.prom 2>/dev/null; then \
			curl -fsS http://127.0.0.1:$(TELEMETRY_PORT)/status -o telemetry-status.json; ok=1; break; \
		fi; sleep 0.2; \
	done; \
	test $$ok -eq 1 || { echo "telemetry: status endpoint never answered" >&2; kill $$pid; exit 1; }; \
	wait $$pid
	sed 's/^\(## .*\)  (.*s)$$/\1/' telemetry-instr.raw > telemetry-instr.out
	diff telemetry-plain.out telemetry-instr.out
	grep -q 'xlate_tlb_l1_misses_total' telemetry-metrics.prom
	grep -q 'xlate_energy_picojoules_total' telemetry-metrics.prom
	grep -q 'xlate_lite_resizes_total' telemetry-metrics.prom
	grep -q 'xlate_harness_cell_seconds' telemetry-metrics.prom
	grep -q '"planned"' telemetry-status.json
	grep -q 'traceEvents' telemetry.trace
	rm -f telemetry-bin telemetry-plain.out telemetry-instr.raw telemetry-instr.out \
		telemetry-metrics.prom telemetry-status.json telemetry.trace
	@echo "telemetry: live scrape OK; instrumented tables byte-identical"

# Run the simulation daemon locally (DESIGN.md §10).
serve:
	$(GO) run ./cmd/eeatd

# Service smoke (DESIGN.md §10): boot eeatd, submit the same reduced
# fig2 job twice, and require the second submission to be answered from
# the content-addressed cache (checked both in the response body and in
# the daemon's own metrics), then drain cleanly on SIGTERM. This is the
# end-to-end proof that submit → execute → cache → dedup → drain works
# against a real listener, not just httptest.
service:
	$(GO) build -o eeatd-bin ./cmd/eeatd
	rm -rf eeatd-smoke-spool
	./eeatd-bin -addr 127.0.0.1:$(SERVICE_PORT) -workers 2 -spool eeatd-smoke-spool & pid=$$!; \
	ok=0; for i in $$(seq 1 300); do \
		if curl -fsS http://127.0.0.1:$(SERVICE_PORT)/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.2; \
	done; \
	test $$ok -eq 1 || { echo "service: daemon never answered" >&2; kill $$pid; exit 1; }; \
	curl -fsS 'http://127.0.0.1:$(SERVICE_PORT)/v1/jobs?wait=300s' -d '$(SERVICE_JOB)' -o service-first.json || { kill $$pid; exit 1; }; \
	grep -q '"state": "done"' service-first.json || { echo "service: first job did not complete:"; cat service-first.json; kill $$pid; exit 1; }; \
	curl -fsS http://127.0.0.1:$(SERVICE_PORT)/v1/jobs -d '$(SERVICE_JOB)' -o service-second.json || { kill $$pid; exit 1; }; \
	grep -q '"cached": true' service-second.json || { echo "service: resubmission missed the cache:"; cat service-second.json; kill $$pid; exit 1; }; \
	curl -fsS http://127.0.0.1:$(SERVICE_PORT)/metrics -o service-metrics.prom || { kill $$pid; exit 1; }; \
	grep -q 'xlate_service_jobs_admitted_total 1' service-metrics.prom || { echo "service: expected exactly one admitted job" >&2; kill $$pid; exit 1; }; \
	grep -Eq 'xlate_service_cache_hits_total [1-9]' service-metrics.prom || { echo "service: no cache hit recorded" >&2; kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid
	rm -rf eeatd-bin eeatd-smoke-spool service-first.json service-second.json service-metrics.prom
	@echo "service: one run, cached resubmission, clean SIGTERM drain"

# Cluster smoke (DESIGN.md §11): three proofs from one committed
# golden. (1) The golden is current: a single-process run renders it.
# (2) A 3-worker cluster run with a worker killed mid-experiment merges
# the same bytes. (3) The death was real and handled: metrics show one
# dead worker, requeued cells, and exactly 24 executed cells — the
# no-double-execution witness.
cluster:
	$(GO) run ./cmd/experiments $(CLUSTER_FLAGS) -parallel 4 -checkpoint "" \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > cluster-single.out
	diff $(CLUSTER_GOLDEN) cluster-single.out \
		|| { echo "cluster: committed golden is stale; regenerate it" >&2; exit 1; }
	$(GO) build -o eeatd-bin ./cmd/eeatd
	./eeatd-bin -cluster 3 $(CLUSTER_FLAGS) -chaos kill:0@10 \
		-metrics-out cluster-metrics.prom > cluster-merged.out
	diff $(CLUSTER_GOLDEN) cluster-merged.out \
		|| { echo "cluster: merged report diverged from the single-process golden" >&2; exit 1; }
	grep -q 'xlate_cluster_workers_dead_total 1' cluster-metrics.prom \
		|| { echo "cluster: the chaos kill never registered" >&2; exit 1; }
	grep -Eq 'xlate_cluster_requeues_total [1-9]' cluster-metrics.prom \
		|| { echo "cluster: no cells were requeued after the kill" >&2; exit 1; }
	grep -q 'xlate_cluster_cells_executed_total 24' cluster-metrics.prom \
		|| { echo "cluster: cell execution count wrong (double execution or loss)" >&2; exit 1; }
	rm -f eeatd-bin cluster-single.out cluster-merged.out cluster-metrics.prom
	@echo "cluster: worker killed mid-run; merged report byte-identical, no cell executed twice"

# Chaos soak (DESIGN.md §12): two concurrent fig2 suites through one
# coordinator while the chaos plan kills worker 0 on its 10th RPC and
# the coordinator itself once its journal holds 12 of the 24 cells.
# The supervisor restarts the coordinator, which replays the journal
# and resumes. Proofs: suite-0's report (stdout) matches the committed
# golden byte for byte, RunSoak's internal invariants held (exit 0 —
# every suite golden-identical, cells-executed == distinct cells), and
# metrics show the takeover, the dead worker, and >= 1 federated cache
# hit serving an interrupted cell without re-simulation.
soak:
	$(GO) build -o eeatd-bin ./cmd/eeatd
	rm -f soak.journal
	./eeatd-bin -cluster 3 -soak 2 $(CLUSTER_FLAGS) \
		-chaos kill:0@10,killcoord:12 -journal soak.journal \
		-golden $(CLUSTER_GOLDEN) -metrics-out soak-metrics.prom > soak-report.out
	diff $(CLUSTER_GOLDEN) soak-report.out \
		|| { echo "soak: survivor report diverged from the golden" >&2; exit 1; }
	grep -q 'xlate_cluster_takeovers_total 1' soak-metrics.prom \
		|| { echo "soak: the coordinator kill/takeover never happened" >&2; exit 1; }
	grep -q 'xlate_cluster_workers_dead_total 1' soak-metrics.prom \
		|| { echo "soak: the chaos worker kill never registered" >&2; exit 1; }
	grep -q 'xlate_cluster_cells_executed_total 24' soak-metrics.prom \
		|| { echo "soak: cell execution count wrong (double execution or loss)" >&2; exit 1; }
	grep -Eq 'xlate_cluster_cells_federated_total [1-9]' soak-metrics.prom \
		|| { echo "soak: no interrupted cell was served from a federated cache" >&2; exit 1; }
	rm -f eeatd-bin soak.journal soak-report.out soak-metrics.prom
	@echo "soak: coordinator killed and resumed; reports byte-identical, no cell executed twice"

# Trace smoke (DESIGN.md §15): two proofs for the workload compiler.
# (1) Compile-once-replay-many is invisible: the reduced fig2 suite run
# entirely from compiled segments renders the committed cluster golden
# byte for byte. (2) External ingestion is first-class: record an mcf
# reference trace, ship it gzip-compressed into a 2-worker dev
# cluster's POST /v1/traces endpoint, and run the registered
# trace:<key> workload through cluster dispatch — workers pull the
# segment from the coordinator by content hash — with the report
# diffed against its committed golden.
TRACE_GOLDEN = testdata/tracec/ingest.golden
trace-smoke:
	rm -rf trace-smoke-store trace-smoke-dev
	$(GO) run ./cmd/experiments $(CLUSTER_FLAGS) -parallel 4 -checkpoint "" \
		-compile-traces -trace-store trace-smoke-store \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > trace-replay.out
	diff $(CLUSTER_GOLDEN) trace-replay.out \
		|| { echo "trace-smoke: compiled replay diverged from live synthesis" >&2; exit 1; }
	$(GO) build -o eeatsim-bin ./cmd/eeatsim
	$(GO) build -o eeatd-bin ./cmd/eeatd
	./eeatsim-bin -workload mcf -scale 0.1 -seed 7 \
		-record trace-smoke.xltrace -record-refs 200000
	./eeatd-bin -cluster 2 -exp "" -instrs 400000 -scale 0.1 -seed 7 \
		-trace-store trace-smoke-dev -ingest trace-smoke.xltrace > trace-ingest.out
	diff $(TRACE_GOLDEN) trace-ingest.out \
		|| { echo "trace-smoke: ingested-trace report diverged from its golden" >&2; exit 1; }
	rm -rf eeatsim-bin eeatd-bin trace-smoke-store trace-smoke-dev \
		trace-smoke.xltrace trace-replay.out trace-ingest.out
	@echo "trace-smoke: compiled replay byte-identical; ingested trace ran end to end through the cluster"

# Profile a reduced-scale run and print the hottest ten functions.
# cpu.prof is left behind for `go tool pprof -http` exploration.
profile:
	$(GO) run ./cmd/experiments $(TELEMETRY_FLAGS) -cpuprofile cpu.prof > /dev/null
	$(GO) tool pprof -top -nodecount=10 cpu.prof
