# Tier-1 verification. `make check` is the gate for every change; the
# race run is part of tier-1 because the experiment harness
# (internal/harness) is concurrent — its tests drive a 4-worker pool
# through cancellation, panic-recovery, and resume paths.

GO ?= go

.PHONY: check build vet test race bench

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$
