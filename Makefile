# Tier-1 verification. `make check` is the gate for every change; the
# race run is part of tier-1 because the experiment harness
# (internal/harness) is concurrent — its tests drive a 4-worker pool
# through cancellation, panic-recovery, and resume paths.

GO ?= go

# Reduced-scale suite settings for the integrity run (`make audit`).
AUDIT_FLAGS = -exp all -instrs 2000000 -scale 0.25 -checkpoint ""

.PHONY: check build vet test race bench audit fuzz

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Integrity run (DESIGN.md §7): the suite at reduced scale with the
# differential oracle checking every access must finish with zero
# violations AND render byte-identical tables to an unaudited run —
# the audit layer is observational by contract. Per-artifact timings
# are stripped before the diff; intermediates are kept on failure for
# inspection.
audit:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > audit-plain.out
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -audit -audit-sample 1 \
		| sed 's/^\(## .*\)  (.*s)$$/\1/' > audit-checked.out
	diff audit-plain.out audit-checked.out
	rm -f audit-plain.out audit-checked.out
	@echo "audit: zero violations; audited tables byte-identical"

# Short fuzz smoke over every fuzz target (CI runs this per push).
fuzz:
	$(GO) test -fuzz=FuzzSetAssoc -fuzztime=10s ./internal/tlb
	$(GO) test -fuzz=FuzzRangeTable -fuzztime=10s ./internal/rmm
	$(GO) test -fuzz=FuzzAllocator -fuzztime=10s ./internal/physmem
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=10s ./internal/trace
