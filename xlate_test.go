package xlate_test

import (
	"bytes"
	"testing"

	"xlate"
)

func TestFacadeRun(t *testing.T) {
	w, err := xlate.WorkloadByName("omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := xlate.Run(w, xlate.CfgTHP, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 200_000 || res.MemRefs == 0 || res.EnergyPJ() == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Config != "THP" {
		t.Fatalf("config label = %q", res.Config)
	}
}

func TestFacadeUnknownWorkload(t *testing.T) {
	if _, err := xlate.WorkloadByName("doom"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestFacadeCatalogues(t *testing.T) {
	if len(xlate.Workloads()) != 8 {
		t.Fatalf("intensive set = %d", len(xlate.Workloads()))
	}
	if len(xlate.AllWorkloads()) != 33 {
		t.Fatalf("catalog = %d", len(xlate.AllWorkloads()))
	}
	if len(xlate.AllConfigs()) != 6 {
		t.Fatalf("configs = %d", len(xlate.AllConfigs()))
	}
	if len(xlate.Experiments()) != 18 {
		t.Fatalf("experiments = %d", len(xlate.Experiments()))
	}
}

func TestFacadeRunParams(t *testing.T) {
	w, _ := xlate.WorkloadByName("astar")
	p := xlate.DefaultParams(xlate.CfgTLBLite)
	p.Lite.IntervalInstrs = 100_000
	res, err := xlate.RunParams(w, p, 300_000, xlate.RunOptions{Scale: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiteLookupShare == nil {
		t.Fatal("Lite configuration should report lookup shares")
	}
}

func TestFacadeExperiment(t *testing.T) {
	tables, err := xlate.RunExperiment("table2", xlate.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if _, err := xlate.RunExperiment("bogus", xlate.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunDeterminism(t *testing.T) {
	w, _ := xlate.WorkloadByName("canneal")
	a, err := xlate.Run(w, xlate.CfgRMMLite, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := xlate.Run(w, xlate.CfgRMMLite, 150_000)
	if a.EnergyPJ() != b.EnergyPJ() || a.L1Misses != b.L1Misses {
		t.Fatal("identical runs diverged")
	}
}

func TestFacadeMulticore(t *testing.T) {
	w, _ := xlate.WorkloadByName("canneal")
	per, agg, err := xlate.RunMulticore(w, xlate.CfgTHP, 3, 100_000, xlate.RunOptions{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("per-core results = %d", len(per))
	}
	var sum uint64
	for _, r := range per {
		sum += r.MemRefs
	}
	if agg.MemRefs != sum || agg.MemRefs == 0 {
		t.Fatalf("aggregate refs %d vs sum %d", agg.MemRefs, sum)
	}
	if _, _, err := xlate.RunMulticore(w, xlate.CfgTHP, 0, 1000, xlate.RunOptions{}); err == nil {
		t.Fatal("zero cores should error")
	}
}

func TestFacadeExtendedConfigs(t *testing.T) {
	ext := xlate.ExtendedConfigs()
	if len(ext) != 2 {
		t.Fatalf("extended configs = %d", len(ext))
	}
	w, _ := xlate.WorkloadByName("astar")
	res, err := xlate.Run(w, xlate.CfgTLBPred, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "TLB_Pred" {
		t.Fatalf("config = %q", res.Config)
	}
	comb, err := xlate.Run(w, xlate.CfgCombined, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if comb.HitsRange == 0 {
		t.Fatal("combined config should use ranges")
	}
}

func TestRecordAndReplayTrace(t *testing.T) {
	w, _ := xlate.WorkloadByName("omnetpp")
	refs, err := xlate.RecordTrace(w, xlate.CfgTHP, 50_000, xlate.RunOptions{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 50_000 {
		t.Fatalf("recorded %d refs", len(refs))
	}

	// Serialize and decode.
	var buf bytes.Buffer
	if err := xlate.WriteTrace(&buf, refs); err != nil {
		t.Fatal(err)
	}
	decoded, err := xlate.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(refs) || decoded[123] != refs[123] {
		t.Fatal("trace round trip broken")
	}

	// Replay through a demand-paged address space.
	res, err := xlate.ReplayTrace(decoded, xlate.DefaultParams(xlate.CfgTHP), 300_000, xlate.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PageFaults == 0 {
		t.Fatal("replay must demand-fault its memory in")
	}
	if res.MemRefs == 0 || res.EnergyPJ() == 0 {
		t.Fatalf("degenerate replay: %+v", res)
	}
	// Replays are deterministic too.
	res2, _ := xlate.ReplayTrace(decoded, xlate.DefaultParams(xlate.CfgTHP), 300_000, xlate.RunOptions{})
	if res2.EnergyPJ() != res.EnergyPJ() {
		t.Fatal("replay diverged")
	}

	if _, err := xlate.ReplayTrace(nil, xlate.DefaultParams(xlate.Cfg4KB), 1000, xlate.RunOptions{}); err == nil {
		t.Fatal("empty trace should error")
	}
}
