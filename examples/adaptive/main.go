// Adaptive: watch the Lite mechanism react to phase changes. This
// example builds a *custom* two-phase workload with the public workload
// model API — a quiet phase whose hot set needs one TLB way, then a
// demanding phase that needs them all — and shows Lite downsizing,
// detecting the degradation, and re-enabling ways (the Figure 4 / §4.2.2
// scenario).
package main

import (
	"fmt"
	"log"

	"xlate"
)

func main() {
	const mb = 1 << 20
	w := xlate.Workload{
		Name: "phased-demo", Suite: "custom", InstrPerRef: 3,
		Regions: []xlate.WorkloadRegion{
			{Name: "tiny", Bytes: 64 << 10, THPCoverage: 0}, // 16 pages: one per L1 set
			{Name: "hot", Bytes: 8 * mb, THPCoverage: 0.5},
			{Name: "spread", Bytes: 64 * mb, THPCoverage: 0.5},
		},
		Phases: []xlate.WorkloadPhase{
			{Refs: 700_000, Access: []xlate.WorkloadAccess{
				// Quiet: a 16-page loop — every hit lands at the MRU
				// position of its set, so one way suffices.
				{Region: 0, Weight: 1, Pattern: xlate.PatternSeq, Stride: 512},
			}},
			{Refs: 700_000, Access: []xlate.WorkloadAccess{
				// Demanding: hits spread across the whole LRU stack.
				{Region: 1, Weight: 0.5, Pattern: xlate.PatternZipf, ZipfS: 1.4},
				{Region: 2, Weight: 0.5, Pattern: xlate.PatternUniform},
			}},
		},
	}

	p := xlate.DefaultParams(xlate.CfgTLBLite)
	p.Lite.IntervalInstrs = 250_000 // short intervals so the timeline is visible
	p.SeriesIntervalInstrs = 250_000

	res, err := xlate.RunParams(w, p, 12_000_000, xlate.RunOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Two-phase workload under TLB_Lite:")
	fmt.Printf("  L1 MPKI per interval: %s\n", res.IntervalL1MPKI.Sparkline(48))
	fmt.Printf("  mean L1 MPKI %.2f, %d Lite resizes, %d full reactivations\n",
		res.L1MPKI(), res.LiteResizes, res.LiteReactivations)
	sh := res.LiteLookupShare[0]
	fmt.Printf("  L1-4KB TLB lookup shares: 4 ways %.0f%%, 2 ways %.0f%%, 1 way %.0f%%\n",
		100*sh[2], 100*sh[1], 100*sh[0])
	fmt.Println()
	fmt.Println("The quiet phase lets Lite run with one active way; each switch to")
	fmt.Println("the demanding phase degrades MPKI past ε, so Lite re-enables all")
	fmt.Println("ways within one interval (§4.2.2's degradation response), and the")
	fmt.Println("random reactivation probe keeps it from getting stuck in between.")
}
