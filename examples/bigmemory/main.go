// Bigmemory: the paper's motivating scenario — a big-memory,
// pointer-chasing workload (mcf, 1.7 GB) whose page walks defeat every
// TLB level with 4 KB pages. This example runs all six configurations of
// §5 and prints the Figure 10 row for mcf: dynamic energy and TLB-miss
// cycles, normalized to 4 KB pages.
package main

import (
	"fmt"
	"log"

	"xlate"
	"xlate/internal/energy"
)

func main() {
	w, err := xlate.WorkloadByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	const instrs = 10_000_000

	fmt.Printf("%s: %d MB footprint, %d regions\n\n", w.Name, w.FootprintBytes()>>20, len(w.Regions))
	fmt.Printf("%-9s %11s %12s %10s %10s %14s\n",
		"config", "energy/ref", "energy(norm)", "L2 MPKI", "cyc(norm)", "walk energy %")

	var base xlate.Result
	for _, cfg := range xlate.AllConfigs() {
		res, err := xlate.Run(w, cfg, instrs)
		if err != nil {
			log.Fatal(err)
		}
		if cfg == xlate.Cfg4KB {
			base = res
		}
		walkShare := res.Energy.Get(energy.AccPageWalk) / res.EnergyPJ()
		fmt.Printf("%-9s %8.2f pJ %12.3f %10.3f %10.3f %13.1f%%\n",
			cfg,
			res.EnergyPerRefPJ(),
			res.EnergyPJ()/base.EnergyPJ(),
			res.L2MPKI(),
			float64(res.CyclesTLBMiss)/float64(base.CyclesTLBMiss),
			100*walkShare)
	}

	fmt.Println("\nReading the rows (paper §6.1):")
	fmt.Println("  - 4KB is dominated by page-walk energy and cycles;")
	fmt.Println("  - THP trades walk energy for an extra L1 probe on every access;")
	fmt.Println("  - RMM's L2-range TLB eliminates the remaining walks;")
	fmt.Println("  - RMM_Lite adds the L1-range TLB and lets Lite shrink the L1-4KB")
	fmt.Println("    TLB to one way, cutting dynamic energy by >80% for mcf.")
}
