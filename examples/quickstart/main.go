// Quickstart: simulate one TLB-intensive workload under the baseline
// huge-page configuration (THP) and under TLB_Lite, and show what the
// Lite way-disabling mechanism saves — the paper's core comparison in
// three calls to the public API.
package main

import (
	"fmt"
	"log"

	"xlate"
)

func main() {
	w, err := xlate.WorkloadByName("GemsFDTD")
	if err != nil {
		log.Fatal(err)
	}
	const instrs = 10_000_000

	thp, err := xlate.Run(w, xlate.CfgTHP, instrs)
	if err != nil {
		log.Fatal(err)
	}
	lite, err := xlate.Run(w, xlate.CfgTLBLite, instrs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d MB)\n\n", w.Name, w.FootprintBytes()>>20)
	row := func(name string, r xlate.Result) {
		fmt.Printf("%-9s %8.3f pJ/ref   L1 %6.2f MPKI   L2 %6.3f MPKI   miss cycles %5.2f%%\n",
			name, r.EnergyPerRefPJ(), r.L1MPKI(), r.L2MPKI(), 100*r.MissCycleFraction())
	}
	row("THP", thp)
	row("TLB_Lite", lite)

	saved := 1 - lite.EnergyPerRefPJ()/thp.EnergyPerRefPJ()
	fmt.Printf("\nLite saves %.1f%% of address-translation dynamic energy", 100*saved)
	fmt.Printf(" at %+0.2f MPKI (paper: ~23%% on average for ~4%% more L1 misses).\n",
		lite.L1MPKI()-thp.L1MPKI())

	sh := lite.LiteLookupShare[0]
	fmt.Printf("L1-4KB TLB ran with 4/2/1 active ways for %.0f%%/%.0f%%/%.0f%% of lookups.\n",
		100*sh[2], 100*sh[1], 100*sh[0])
}
