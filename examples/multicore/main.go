// Multicore: canneal is a multi-threaded PARSEC workload (Table 4).
// This example runs it as four threads over one shared address space,
// each core with its own private TLB hierarchy and Lite controller —
// the paper's per-core organization — and compares the aggregate across
// configurations.
package main

import (
	"fmt"
	"log"

	"xlate"
)

func main() {
	w, err := xlate.WorkloadByName("canneal")
	if err != nil {
		log.Fatal(err)
	}
	const cores = 4
	const instrsPerCore = 5_000_000

	fmt.Printf("%s on %d cores (%d MB shared address space)\n\n",
		w.Name, cores, w.FootprintBytes()>>20)

	for _, cfg := range []xlate.Config{xlate.CfgTHP, xlate.CfgTLBLite, xlate.CfgRMMLite} {
		per, agg, err := xlate.RunMulticore(w, cfg, cores, instrsPerCore, xlate.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s aggregate: %7.3f pJ/ref, %6.2f L1 MPKI, %d TLB-miss cycles\n",
			cfg, agg.EnergyPerRefPJ(), agg.L1MPKI(), agg.CyclesTLBMiss)
		for i, r := range per {
			fmt.Printf("   core %d: %7.3f pJ/ref, %6.2f L1 MPKI\n",
				i, r.EnergyPerRefPJ(), r.L1MPKI())
		}
		fmt.Println()
	}

	fmt.Println("Each core resizes its own L1 TLBs independently: Lite is a")
	fmt.Println("per-core mechanism, so per-core MPKI differences (different")
	fmt.Println("thread-local access streams) produce different way schedules.")
}
