// Ranges: a walkthrough of the Redundant Memory Mappings substrate —
// eager paging, range translations, the software range table, and the
// L1/L2-range TLBs — comparing RMM against RMM_Lite on a streaming
// genomics workload (mummer) where huge pages barely materialize but
// ranges cover everything.
package main

import (
	"fmt"
	"log"

	"xlate"
	"xlate/internal/energy"
)

func main() {
	w, err := xlate.WorkloadByName("mummer")
	if err != nil {
		log.Fatal(err)
	}
	const instrs = 10_000_000

	fmt.Printf("%s: %d MB in %d regions — eager paging makes each region one\n",
		w.Name, w.FootprintBytes()>>20, len(w.Regions))
	fmt.Println("physically contiguous range translation in the range table.")
	fmt.Println()

	thp, err := xlate.Run(w, xlate.CfgTHP, instrs)
	if err != nil {
		log.Fatal(err)
	}
	rmm, err := xlate.Run(w, xlate.CfgRMM, instrs)
	if err != nil {
		log.Fatal(err)
	}
	rl, err := xlate.Run(w, xlate.CfgRMMLite, instrs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %10s %10s %12s %16s\n", "config", "L2 MPKI", "walks(pJ)", "range hits", "energy vs THP")
	for _, r := range []xlate.Result{thp, rmm, rl} {
		rangeShare := 0.0
		if h := r.L1Hits(); h > 0 {
			rangeShare = float64(r.HitsRange) / float64(h)
		}
		fmt.Printf("%-9s %10.3f %10.0f %11.1f%% %15.3f\n",
			r.Config, r.L2MPKI(),
			r.Energy.Get(energy.AccPageWalk),
			100*rangeShare,
			r.EnergyPJ()/thp.EnergyPJ())
	}

	fmt.Println()
	fmt.Println("What happened (paper §4.3):")
	fmt.Println("  - THP cannot help mummer: its allocations defeat huge pages")
	fmt.Println("    (Table 5 measures only 4.3% of hits from 2 MB entries);")
	fmt.Println("  - RMM's 32-entry L2-range TLB still eliminates the page walks,")
	fmt.Println("    because a range translation has no size limit — but every L1")
	fmt.Println("    miss still pays the 7-cycle L2 lookup;")
	fmt.Printf("  - RMM_Lite's 4-entry L1-range TLB serves %.0f%% of L1 hits, so Lite\n",
		100*float64(rl.HitsRange)/float64(rl.L1Hits()))
	fmt.Println("    shrinks the L1-4KB TLB to one way and the background range-table")
	fmt.Printf("    walker (%0.0f pJ total) replaces the page-walk energy entirely.\n",
		rl.Energy.Get(energy.AccRangeWalk))
}
