// Benchmarks: one testing.B target per paper table and figure, each
// regenerating the corresponding artifact through the experiment harness
// (scaled down so `go test -bench=.` completes in minutes; run
// cmd/experiments for the full-scale numbers recorded in
// EXPERIMENTS.md), plus micro-benchmarks of the hot simulator paths.
package xlate_test

import (
	"testing"

	"xlate"
)

// benchOpt scales the artifact benches: one fifth of the footprints and
// a 1 M-instruction budget exercise every code path of each experiment.
var benchOpt = xlate.ExperimentOptions{Instrs: 1_000_000, Scale: 0.2, Seed: 42}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := xlate.RunExperiment(id, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// --- Paper artifacts (see DESIGN.md §3 for the experiment index) ---

func BenchmarkTable1Config(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2Energies(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Model(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4Workloads(b *testing.B) { benchExperiment(b, "table4") }

func BenchmarkFig2Characterization(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3WalkLocality(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4Downsizing(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig10Main(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11MPKI(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12OtherWorkloads(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable5ActiveWays(b *testing.B)     { benchExperiment(b, "table5") }

func BenchmarkSensitivityIntervalProb(b *testing.B) { benchExperiment(b, "sens-interval") }
func BenchmarkSensitivityThreshold(b *testing.B)    { benchExperiment(b, "sens-threshold") }
func BenchmarkSensitivityL1RangeSize(b *testing.B)  { benchExperiment(b, "sens-l1range") }
func BenchmarkAblationLite(b *testing.B)            { benchExperiment(b, "abl-lite") }
func BenchmarkStaticEnergy(b *testing.B)            { benchExperiment(b, "static") }
func BenchmarkExtensionPredictor(b *testing.B)      { benchExperiment(b, "ext-predictor") }

// --- Simulator throughput (references simulated per second) ---

func benchSimulate(b *testing.B, name string, cfg xlate.Config) {
	b.Helper()
	w, err := xlate.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := xlate.RunParams(w, xlate.DefaultParams(cfg), 1_000_000,
			xlate.RunOptions{Scale: 0.2, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MemRefs), "refs/op")
	}
}

func BenchmarkSimulate4KB(b *testing.B)     { benchSimulate(b, "omnetpp", xlate.Cfg4KB) }
func BenchmarkSimulateTHP(b *testing.B)     { benchSimulate(b, "omnetpp", xlate.CfgTHP) }
func BenchmarkSimulateTLBLite(b *testing.B) { benchSimulate(b, "omnetpp", xlate.CfgTLBLite) }
func BenchmarkSimulateRMMLite(b *testing.B) { benchSimulate(b, "omnetpp", xlate.CfgRMMLite) }
