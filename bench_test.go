// Benchmarks: one testing.B target per paper table and figure, each
// regenerating the corresponding artifact through the experiment harness
// (scaled down so `go test -bench=.` completes in minutes; run
// cmd/experiments for the full-scale numbers recorded in
// EXPERIMENTS.md), plus micro-benchmarks of the hot simulator paths.
package xlate_test

import (
	"testing"

	"xlate"
	"xlate/internal/core"
	"xlate/internal/tracec"
	"xlate/internal/workloads"
)

// benchOpt scales the artifact benches: one fifth of the footprints and
// a 1 M-instruction budget exercise every code path of each experiment.
var benchOpt = xlate.ExperimentOptions{Instrs: 1_000_000, Scale: 0.2, Seed: 42}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := xlate.RunExperiment(id, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// --- Paper artifacts (see DESIGN.md §3 for the experiment index) ---

func BenchmarkTable1Config(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2Energies(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Model(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4Workloads(b *testing.B) { benchExperiment(b, "table4") }

func BenchmarkFig2Characterization(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3WalkLocality(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4Downsizing(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig10Main(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11MPKI(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12OtherWorkloads(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable5ActiveWays(b *testing.B)     { benchExperiment(b, "table5") }

func BenchmarkSensitivityIntervalProb(b *testing.B) { benchExperiment(b, "sens-interval") }
func BenchmarkSensitivityThreshold(b *testing.B)    { benchExperiment(b, "sens-threshold") }
func BenchmarkSensitivityL1RangeSize(b *testing.B)  { benchExperiment(b, "sens-l1range") }
func BenchmarkAblationLite(b *testing.B)            { benchExperiment(b, "abl-lite") }
func BenchmarkStaticEnergy(b *testing.B)            { benchExperiment(b, "static") }
func BenchmarkExtensionPredictor(b *testing.B)      { benchExperiment(b, "ext-predictor") }

// --- Simulator throughput (references simulated per second) ---

func benchSimulate(b *testing.B, name string, cfg xlate.Config) {
	b.Helper()
	w, err := xlate.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := xlate.RunParams(w, xlate.DefaultParams(cfg), 1_000_000,
			xlate.RunOptions{Scale: 0.2, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MemRefs), "refs/op")
	}
}

func BenchmarkSimulate4KB(b *testing.B)     { benchSimulate(b, "omnetpp", xlate.Cfg4KB) }
func BenchmarkSimulateTHP(b *testing.B)     { benchSimulate(b, "omnetpp", xlate.CfgTHP) }
func BenchmarkSimulateTLBLite(b *testing.B) { benchSimulate(b, "omnetpp", xlate.CfgTLBLite) }
func BenchmarkSimulateRMMLite(b *testing.B) { benchSimulate(b, "omnetpp", xlate.CfgRMMLite) }

// --- Workload compiler (internal/tracec): live synthesis vs replay ---

// The replay-vs-live pair measures producing the identical reference
// stream both ways: live synthesis pays the address-space build plus
// the generator's per-reference RNG/permutation work; replay pays the
// segment's full validation gate (Stat) plus block-at-a-time varint
// decode. The committed BENCH_<date>.json carries both, so the compile-
// once-replay-many speedup is pinned in the perf baseline (DESIGN.md
// §15 records the required ≥5× ratio).

// traceBenchOptions is the shared stream configuration for the pair.
func traceBenchOptions(b *testing.B) (workloads.Spec, workloads.BuildOptions, uint64) {
	b.Helper()
	spec, ok := workloads.ByName("omnetpp")
	if !ok {
		b.Fatal("no omnetpp workload")
	}
	bopt := workloads.BuildOptions{Policy: core.PolicyFor(core.CfgRMMLite, 0.5), Seed: 42, Scale: 0.2}
	return spec, bopt, 1_000_000
}

func BenchmarkTraceLiveSynthesis(b *testing.B) {
	spec, bopt, budget := traceBenchOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, gen, err := spec.Build(bopt)
		if err != nil {
			b.Fatal(err)
		}
		refs := uint64(0)
		for total := uint64(0); total < budget; {
			total += gen.Next().Instrs
			refs++
		}
		b.ReportMetric(float64(refs), "refs/op")
	}
}

func BenchmarkTraceReplaySegment(b *testing.B) {
	spec, bopt, budget := traceBenchOptions(b)
	data, _, err := tracec.CompileSpec(spec, bopt, budget)
	if err != nil {
		b.Fatal(err)
	}
	// Validated once, replayed many — the executor memoizes exactly
	// this, so per-cell cost in the harness is Segment.Replay plus the
	// stream decode.
	seg, err := tracec.Validate(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp := seg.Replay()
		refs := uint64(0)
		for total := uint64(0); total < budget; {
			total += rp.Next().Instrs
			refs++
		}
		b.ReportMetric(float64(refs), "refs/op")
	}
}
