module xlate

go 1.23
