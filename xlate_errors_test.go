package xlate_test

import (
	"context"
	"errors"
	"testing"

	"xlate"
)

// validWorkload is a minimal well-formed custom workload the invalid
// cases below mutate one field at a time.
func validWorkload() xlate.Workload {
	return xlate.Workload{
		Name: "custom", Suite: "test", InstrPerRef: 4,
		Regions: []xlate.WorkloadRegion{{Name: "heap", Bytes: 4 << 20}},
		Phases: []xlate.WorkloadPhase{{Refs: 1 << 14, Access: []xlate.WorkloadAccess{
			{Region: 0, Weight: 1, Pattern: xlate.PatternUniform},
		}}},
	}
}

// TestInvalidParamsRejected asserts that malformed parameters surface
// as typed errors at the API boundary — never as panics.
func TestInvalidParamsRejected(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*xlate.Params)
	}{
		{"L1-4KB entries not divisible by ways", func(p *xlate.Params) { p.L14KEntries = 63 }},
		{"zero L1-4KB ways", func(p *xlate.Params) { p.L14KWays = 0 }},
		{"negative L2 entries", func(p *xlate.Params) { p.L2Entries = -4 }},
		{"zero L2-range capacity under RMM_Lite", func(p *xlate.Params) { p.L2RangeEntries = 0 }},
		{"zero L1-range capacity under RMM_Lite", func(p *xlate.Params) { p.L1RangeEntries = 0 }},
		{"walk L1 hit ratio above 1", func(p *xlate.Params) { p.WalkL1HitRatio = 1.5 }},
		{"negative walk latency", func(p *xlate.Params) { p.WalkLatencyCycles = -1 }},
		{"nil energy database", func(p *xlate.Params) { p.EnergyDB = nil }},
		{"zero Lite interval", func(p *xlate.Params) { p.Lite.IntervalInstrs = 0 }},
		{"Lite reactivation probability above 1", func(p *xlate.Params) { p.Lite.ReactivateProb = 2 }},
		{"non-power-of-two ways under Lite", func(p *xlate.Params) { p.L14KEntries, p.L14KWays = 60, 3 }},
		{"zero MMU PDE entries", func(p *xlate.Params) { p.MMU.PDEEntries = 0 }},
	}
	w := validWorkload()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := xlate.DefaultParams(xlate.CfgRMMLite)
			tc.mod(&p)
			_, err := xlate.RunParams(w, p, 1000, xlate.RunOptions{})
			if !errors.Is(err, xlate.ErrInvalidParams) {
				t.Fatalf("RunParams = %v, want ErrInvalidParams", err)
			}
		})
	}
}

// TestInvalidWorkloadRejected asserts that malformed workload models
// surface as typed errors at the API boundary.
func TestInvalidWorkloadRejected(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*xlate.Workload)
	}{
		{"no regions", func(w *xlate.Workload) { w.Regions = nil }},
		{"no phases", func(w *xlate.Workload) { w.Phases = nil }},
		{"empty region", func(w *xlate.Workload) { w.Regions[0].Bytes = 0 }},
		{"THP coverage above 1", func(w *xlate.Workload) { w.Regions[0].THPCoverage = 1.5 }},
		{"instructions per reference below 1", func(w *xlate.Workload) { w.InstrPerRef = 0.5 }},
		{"phase with zero references", func(w *xlate.Workload) { w.Phases[0].Refs = 0 }},
		{"access to missing region", func(w *xlate.Workload) { w.Phases[0].Access[0].Region = 3 }},
		{"non-positive weight", func(w *xlate.Workload) { w.Phases[0].Access[0].Weight = 0 }},
		{"sequential with zero stride", func(w *xlate.Workload) {
			w.Phases[0].Access[0].Pattern = xlate.PatternSeq
			w.Phases[0].Access[0].Stride = 0
		}},
		{"Zipf exponent not above 1", func(w *xlate.Workload) {
			w.Phases[0].Access[0].Pattern = xlate.PatternZipf
			w.Phases[0].Access[0].ZipfS = 1.0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := validWorkload()
			tc.mod(&w)
			_, err := xlate.Run(w, xlate.CfgTHP, 1000)
			if !errors.Is(err, xlate.ErrInvalidWorkload) {
				t.Fatalf("Run = %v, want ErrInvalidWorkload", err)
			}
		})
	}
}

// TestLookupErrorsWrapSentinels asserts that the name-based lookup
// entry points wrap the typed sentinels with %w, so callers can route
// on errors.Is instead of string matching.
func TestLookupErrorsWrapSentinels(t *testing.T) {
	if _, err := xlate.WorkloadByName("no-such-benchmark"); !errors.Is(err, xlate.ErrInvalidWorkload) {
		t.Errorf("WorkloadByName = %v, want ErrInvalidWorkload", err)
	}
	if _, err := xlate.RunExperiment("no-such-figure", xlate.ExperimentOptions{}); !errors.Is(err, xlate.ErrInvalidParams) {
		t.Errorf("RunExperiment = %v, want ErrInvalidParams", err)
	}
	p := xlate.DefaultParams(xlate.CfgTHP)
	if _, err := xlate.ReplayTrace(nil, p, 1000, xlate.RunOptions{}); !errors.Is(err, xlate.ErrInvalidParams) {
		t.Errorf("ReplayTrace(empty) = %v, want ErrInvalidParams", err)
	}
}

// TestValidCustomWorkloadStillRuns guards against over-strict
// validation: the valid base workload must simulate cleanly.
func TestValidCustomWorkloadStillRuns(t *testing.T) {
	res, err := xlate.Run(validWorkload(), xlate.CfgTHP, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemRefs == 0 {
		t.Fatal("degenerate result")
	}
}

// TestRunParamsContextCancel asserts cooperative cancellation: a
// cancelled context stops the simulation with ctx.Err().
func TestRunParamsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := validWorkload()
	_, err := xlate.RunParamsContext(ctx, w, xlate.DefaultParams(xlate.CfgTHP), 1<<40, xlate.RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParamsContext = %v, want context.Canceled", err)
	}
}
