// Package addr provides virtual/physical address arithmetic for the
// x86-64 4-level paging layout used throughout the simulator.
//
// The x86-64 architecture translates 48-bit canonical virtual addresses
// through a four-level radix tree (PML4 → PDPT → PD → PT). Translation
// can terminate early at the PDPT level (1 GB pages) or the PD level
// (2 MB pages); otherwise it terminates at the PT level (4 KB pages).
// This package defines the page sizes, the per-level index extraction,
// and the virtual-page-number (VPN) helpers the TLB structures index by.
package addr

import "fmt"

// VA is a virtual address. Only the low 48 bits are meaningful; the
// simulator does not model canonical sign extension because no structure
// in the translation path observes bits above 47.
type VA uint64

// PA is a physical address.
type PA uint64

// PageSize enumerates the three x86-64 translation granularities.
type PageSize int

// The supported page sizes, ordered from smallest to largest.
const (
	Page4K PageSize = iota
	Page2M
	Page1G
	numPageSizes
)

// NumPageSizes is the number of distinct page sizes the architecture
// supports. Useful for sizing per-page-size arrays.
const NumPageSizes = int(numPageSizes)

// Shift amounts and byte sizes for each page size.
const (
	Shift4K = 12
	Shift2M = 21
	Shift1G = 30

	Bytes4K = 1 << Shift4K
	Bytes2M = 1 << Shift2M
	Bytes1G = 1 << Shift1G
)

// Shift returns the log2 of the page size in bytes.
func (s PageSize) Shift() uint {
	switch s {
	case Page4K:
		return Shift4K
	case Page2M:
		return Shift2M
	case Page1G:
		return Shift1G
	}
	panic(fmt.Sprintf("addr: invalid page size %d", int(s)))
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// String returns the conventional name of the page size.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", int(s)) //eeatlint:allow hotpath fallback renders only corrupt sizes while formatting a diagnostic
}

// WalkRefs returns the number of memory references a full page walk
// needs to translate a page of this size when every paging-structure
// cache misses: 4 for 4 KB pages, 3 for 2 MB pages, and 2 for 1 GB pages
// (paper §3.2).
func (s PageSize) WalkRefs() int {
	switch s {
	case Page4K:
		return 4
	case Page2M:
		return 3
	case Page1G:
		return 2
	}
	panic(fmt.Sprintf("addr: invalid page size %d", int(s)))
}

// Level identifies a level of the page-table radix tree, from the root
// (PML4) down to the leaf page-table level (PT).
type Level int

// Radix-tree levels, root first.
const (
	LvlPML4 Level = iota
	LvlPDPT
	LvlPD
	LvlPT
	NumLevels int = 4
)

// String returns the architectural name of the level.
func (l Level) String() string {
	switch l {
	case LvlPML4:
		return "PML4"
	case LvlPDPT:
		return "PDPT"
	case LvlPD:
		return "PD"
	case LvlPT:
		return "PT"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// indexShift returns the bit position of the 9-bit index for the level.
func (l Level) indexShift() uint {
	switch l {
	case LvlPML4:
		return 39
	case LvlPDPT:
		return 30
	case LvlPD:
		return 21
	case LvlPT:
		return 12
	}
	panic(fmt.Sprintf("addr: invalid level %d", int(l)))
}

// Index extracts the 9-bit radix-tree index for the level from va.
func (l Level) Index(va VA) int {
	return int((uint64(va) >> l.indexShift()) & 0x1ff)
}

// Prefix returns the virtual-address bits above the level's index,
// i.e. the tag that identifies the page-table node the level's entry
// lives in. Two addresses with equal Prefix at level l read the same
// entry at level l. This is what the MMU paging-structure caches tag by.
func (l Level) Prefix(va VA) uint64 {
	return uint64(va) >> l.indexShift()
}

// VPN returns the virtual page number of va at page size s.
func VPN(va VA, s PageSize) uint64 { return uint64(va) >> s.Shift() }

// PageBase returns the first address of the page of size s containing va.
func PageBase(va VA, s PageSize) VA {
	return VA(uint64(va) &^ (s.Bytes() - 1))
}

// PageOffset returns the offset of va within its page of size s.
func PageOffset(va VA, s PageSize) uint64 {
	return uint64(va) & (s.Bytes() - 1)
}

// Translate combines a physical frame base with the page offset of va.
func Translate(frame PA, va VA, s PageSize) PA {
	return PA(uint64(frame)&^(s.Bytes()-1) | PageOffset(va, s))
}

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v uint64, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// AlignDown rounds v down to a multiple of align (a power of two).
func AlignDown(v uint64, align uint64) uint64 { return v &^ (align - 1) }

// IsAligned reports whether v is a multiple of align (a power of two).
func IsAligned(v uint64, align uint64) bool { return v&(align-1) == 0 }
