package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeProperties(t *testing.T) {
	cases := []struct {
		s        PageSize
		shift    uint
		bytes    uint64
		walkRefs int
		name     string
	}{
		{Page4K, 12, 4096, 4, "4KB"},
		{Page2M, 21, 2 << 20, 3, "2MB"},
		{Page1G, 30, 1 << 30, 2, "1GB"},
	}
	for _, c := range cases {
		if got := c.s.Shift(); got != c.shift {
			t.Errorf("%v.Shift() = %d, want %d", c.s, got, c.shift)
		}
		if got := c.s.Bytes(); got != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.bytes)
		}
		if got := c.s.WalkRefs(); got != c.walkRefs {
			t.Errorf("%v.WalkRefs() = %d, want %d", c.s, got, c.walkRefs)
		}
		if got := c.s.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
	}
}

func TestInvalidPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid page size")
		}
	}()
	_ = PageSize(99).Shift()
}

func TestLevelIndices(t *testing.T) {
	// Construct an address with a distinct index at each level:
	// PML4=1, PDPT=2, PD=3, PT=4.
	va := VA(1<<39 | 2<<30 | 3<<21 | 4<<12 | 0x123)
	if got := LvlPML4.Index(va); got != 1 {
		t.Errorf("PML4 index = %d, want 1", got)
	}
	if got := LvlPDPT.Index(va); got != 2 {
		t.Errorf("PDPT index = %d, want 2", got)
	}
	if got := LvlPD.Index(va); got != 3 {
		t.Errorf("PD index = %d, want 3", got)
	}
	if got := LvlPT.Index(va); got != 4 {
		t.Errorf("PT index = %d, want 4", got)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{LvlPML4: "PML4", LvlPDPT: "PDPT", LvlPD: "PD", LvlPT: "PT"}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, s)
		}
	}
}

func TestPrefixIdentifiesNode(t *testing.T) {
	// Two addresses in the same 2MB region share PD-level prefix.
	a := VA(0x7f0000200000)
	b := a + Bytes2M - 1
	if LvlPD.Prefix(a) != LvlPD.Prefix(b) {
		t.Error("addresses in same 2MB page should share PD prefix")
	}
	c := a + Bytes2M
	if LvlPD.Prefix(a) == LvlPD.Prefix(c) {
		t.Error("addresses in different 2MB pages should differ in PD prefix")
	}
}

func TestVPNAndPageBase(t *testing.T) {
	va := VA(0x12345678)
	if got := VPN(va, Page4K); got != 0x12345 {
		t.Errorf("VPN 4K = %#x, want 0x12345", got)
	}
	if got := PageBase(va, Page4K); got != 0x12345000 {
		t.Errorf("PageBase 4K = %#x", got)
	}
	if got := PageOffset(va, Page4K); got != 0x678 {
		t.Errorf("PageOffset 4K = %#x", got)
	}
}

func TestTranslate(t *testing.T) {
	frame := PA(0xabc000)
	va := VA(0x1234)
	if got := Translate(frame, va, Page4K); got != PA(0xabc234) {
		t.Errorf("Translate = %#x, want 0xabc234", got)
	}
	// Frame with garbage offset bits is masked.
	if got := Translate(PA(0xabcfff), va, Page4K); got != PA(0xabc234) {
		t.Errorf("Translate with dirty frame = %#x, want 0xabc234", got)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignUp(5, 4) != 8 || AlignUp(8, 4) != 8 || AlignUp(0, 4) != 0 {
		t.Error("AlignUp wrong")
	}
	if AlignDown(5, 4) != 4 || AlignDown(8, 4) != 8 {
		t.Error("AlignDown wrong")
	}
	if !IsAligned(8, 4) || IsAligned(6, 4) {
		t.Error("IsAligned wrong")
	}
}

// Property: reconstructing an address from its page base and offset is
// the identity, for every page size.
func TestQuickBaseOffsetRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		va := VA(raw & ((1 << 48) - 1))
		for _, s := range []PageSize{Page4K, Page2M, Page1G} {
			if VA(uint64(PageBase(va, s))+PageOffset(va, s)) != va {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the per-level indices reassemble into the 4KB VPN.
func TestQuickLevelIndicesComposeVPN(t *testing.T) {
	f := func(raw uint64) bool {
		va := VA(raw & ((1 << 48) - 1))
		vpn := uint64(LvlPML4.Index(va))<<27 |
			uint64(LvlPDPT.Index(va))<<18 |
			uint64(LvlPD.Index(va))<<9 |
			uint64(LvlPT.Index(va))
		return vpn == VPN(va, Page4K)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Translate preserves the page offset and takes the frame's
// page bits.
func TestQuickTranslate(t *testing.T) {
	f := func(fr, v uint64) bool {
		frame := PA(fr & ((1 << 48) - 1))
		va := VA(v & ((1 << 48) - 1))
		for _, s := range []PageSize{Page4K, Page2M, Page1G} {
			pa := Translate(frame, va, s)
			if PageOffset(VA(pa), s) != PageOffset(va, s) {
				return false
			}
			if uint64(pa)>>s.Shift() != uint64(frame)>>s.Shift() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
