// Package harness is the resilient execution substrate for the
// experiment suite. It decomposes each experiment into its simulation
// cells (exper.Job values) and executes the deduplicated cell set on a
// worker pool with context cancellation, per-cell deadlines, panic
// recovery, bounded retries, and a JSONL checkpoint journal, then
// re-renders every experiment serially from the memoized results so the
// output is byte-identical to a sequential run regardless of
// parallelism.
//
// The three passes:
//
//  1. Plan: each experiment runs against a recording Runner that logs
//     every requested cell and answers with a fixed stub result. This
//     discovers the cell set without simulating anything.
//  2. Execute: the deduplicated cells (minus any satisfied by a resumed
//     checkpoint) run on the worker pool. A panicking cell is recovered
//     into a structured RunError carrying the cell identity, seed,
//     recovered value, and stack; it fails that cell, never the suite.
//  3. Render: each experiment re-runs serially against a serving Runner
//     that answers from the memoized results. A cell the plan missed
//     (an experiment whose requests depend on simulated values) is
//     executed inline — correctness never depends on the plan being
//     complete, only speed does.
//
// Retried cells use seeds derived deterministically from the cell key
// and attempt number, so results do not depend on scheduling.
package harness

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/stats"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// Config parameterizes a Suite.
type Config struct {
	// Workers is the number of parallel cell executors (default
	// GOMAXPROCS).
	Workers int
	// CellTimeout bounds each cell attempt (0 = no deadline).
	CellTimeout time.Duration
	// Retries is how many times a failed cell is re-attempted with
	// deterministically derived seeds before it is reported as a gap.
	Retries int
	// Checkpoint is the journal path ("" disables checkpointing).
	// Completed cells are appended as they finish; the file is removed
	// after a fully successful run.
	Checkpoint string
	// Resume loads completed cells from Checkpoint before executing, so
	// an interrupted run continues where it stopped. A missing file is
	// not an error; a file written under different Options is.
	Resume bool
	// Options is the base experiment configuration. Its Runner field is
	// owned by the harness and overwritten.
	Options exper.Options
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives the harness's own metrics —
	// per-cell wall-clock and queue-wait histograms, retry/failure
	// counters, in-flight gauge. Pass the same registry the simulator
	// metrics (Options.Metrics) live in for a single run-wide scrape.
	Registry *telemetry.Registry
	// ProgressEvery, when positive, emits a periodic progress line via
	// Logf during the execute pass: cells done/planned, failures, ETA,
	// and the aggregate L1 MPKI of completed cells.
	ProgressEvery time.Duration
	// Execute, when non-nil, replaces exper.ExecuteJobContext as the
	// per-cell executor. The cluster coordinator plugs in here to
	// dispatch cells to remote workers while keeping the harness's
	// plan/memo/checkpoint/render pipeline — and therefore its
	// byte-identical output guarantee — untouched. The function must be
	// safe for concurrent calls and must honor ctx.
	Execute func(ctx context.Context, j exper.Job) (core.Result, error)
	// Traces, when non-nil (and Execute is nil), runs cells through the
	// workload compiler: the first cell for a spec compiles its trace
	// segment into the executor's content-addressed store, and every
	// later cell for the same spec — Params sweeps included — replays
	// it at memcpy speed, byte-identical to live synthesis. Trace-backed
	// specs (workloads.Spec.TraceRef) require it.
	Traces *tracec.Executor
	// Preload seeds the memo with already-completed cells (canonical
	// cell key → result) before planning, exactly as a resumed
	// checkpoint would. The cluster coordinator plugs its journal
	// replay in here so a takeover-resume re-executes nothing the
	// previous coordinator recorded. Keys must have been computed under
	// the same Options; the caller owns that binding (the cluster
	// journal header enforces it).
	Preload map[string]core.Result
}

// ExperimentResult is one experiment's outcome: its rendered tables, or
// the error that annotates the gap it left in the suite.
type ExperimentResult struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Err     error
	Elapsed time.Duration
}

// Suite executes experiments through the plan/execute/render pipeline.
type Suite struct {
	cfg Config
	hm  *harnessMetrics // nil unless cfg.Registry was set

	mu       sync.Mutex
	memo     map[string]core.Result
	failed   map[string]*RunError
	jrnl     *journal
	planned  int
	inflight map[string]inflightCell

	// onCellDone, when set, is called after every executed cell has been
	// recorded (test hook for cancellation at a known point).
	onCellDone func(key string)
}

// New constructs a Suite. The zero Config runs cells on GOMAXPROCS
// workers with no timeout, no retries, and no checkpoint.
func New(cfg Config) *Suite {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Suite{
		cfg:      cfg,
		memo:     make(map[string]core.Result),
		failed:   make(map[string]*RunError),
		inflight: make(map[string]inflightCell),
	}
	if cfg.Registry != nil {
		s.hm = newHarnessMetrics(cfg.Registry)
	}
	return s
}

// Run executes the experiments and returns one result per experiment,
// in input order. Per-cell and per-experiment failures are reported in
// the results, not as the suite error; the returned error is reserved
// for suite-level conditions — cancellation and checkpoint I/O.
func (s *Suite) Run(ctx context.Context, exps []exper.Experiment) ([]ExperimentResult, error) {
	opt := s.cfg.Options
	opt.Runner = nil
	opt = opt.WithDefaults()

	if len(s.cfg.Preload) > 0 {
		s.mu.Lock()
		for k, v := range s.cfg.Preload {
			s.memo[k] = v
		}
		s.mu.Unlock()
		s.cfg.Logf("preloaded %d completed cells", len(s.cfg.Preload))
	}
	if s.cfg.Resume && s.cfg.Checkpoint != "" {
		n, err := s.loadCheckpoint(opt)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			s.cfg.Logf("resumed %d completed cells from %s", n, s.cfg.Checkpoint)
		}
	}
	if s.cfg.Checkpoint != "" {
		j, err := openJournal(s.cfg.Checkpoint, s.cfg.Resume, opt)
		if err != nil {
			return nil, err
		}
		s.jrnl = j
		defer s.jrnl.close()
	}

	jobs := s.plan(exps, opt)
	pending := 0
	s.mu.Lock()
	s.planned = len(jobs)
	for _, pj := range jobs {
		if _, ok := s.memo[pj.key]; !ok {
			pending++
		}
	}
	s.mu.Unlock()
	s.cfg.Logf("planned %d cells (%d to execute) across %d experiments, %d workers",
		len(jobs), pending, len(exps), s.cfg.Workers)

	if err := s.execute(ctx, jobs); err != nil {
		return nil, err
	}

	results := s.render(ctx, exps, opt)
	if ctx.Err() != nil {
		return results, ctx.Err()
	}

	clean := len(s.failed) == 0
	for _, r := range results {
		if r.Err != nil {
			clean = false
		}
	}
	if clean && s.jrnl != nil {
		s.jrnl.close()
		s.jrnl = nil
		if err := os.Remove(s.cfg.Checkpoint); err != nil && !os.IsNotExist(err) {
			s.cfg.Logf("leaving checkpoint %s: %v", s.cfg.Checkpoint, err)
		}
	}
	return results, nil
}

// plannedJob couples a cell with its content-addressed key. enqueued is
// stamped by the execute feed loop so workers can report queue wait.
type plannedJob struct {
	key      string
	job      exper.Job
	enqueued time.Time
}

// plan discovers the deduplicated cell set by running every experiment
// against a recording runner. A plan failure (an experiment that
// panics or errors when fed stub results) only costs parallelism: the
// render pass executes whatever the plan missed inline.
func (s *Suite) plan(exps []exper.Experiment, opt exper.Options) []plannedJob {
	rec := &planRecorder{seen: make(map[string]bool)}
	opt.Runner = rec
	for _, e := range exps {
		if err := planOne(e, opt); err != nil {
			s.cfg.Logf("plan %s: %v (its cells will run serially)", e.ID, err)
		}
	}
	return rec.jobs
}

func planOne(e exper.Experiment, opt exper.Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("planning panicked: %v", r)
		}
	}()
	_, err = e.Run(opt)
	return err
}

// execute runs every not-yet-memoized cell on the worker pool. It
// returns an error only when ctx was cancelled before all cells
// completed; cell failures are recorded per key.
func (s *Suite) execute(ctx context.Context, jobs []plannedJob) error {
	todo := make([]plannedJob, 0, len(jobs))
	s.mu.Lock()
	resumed := len(s.memo)
	for _, pj := range jobs {
		if _, ok := s.memo[pj.key]; !ok {
			todo = append(todo, pj)
		}
	}
	s.mu.Unlock()
	if len(todo) == 0 {
		return ctx.Err()
	}

	if s.cfg.ProgressEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go s.progressLoop(time.Now(), resumed, stop)
	}

	ch := make(chan plannedJob)
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pj := range ch {
				if s.hm != nil {
					s.hm.queueSeconds.Observe(time.Since(pj.enqueued).Seconds())
				}
				s.runAndRecord(ctx, pj)
			}
		}()
	}
feed:
	for i := range todo {
		todo[i].enqueued = time.Now()
		select {
		case <-ctx.Done():
			break feed
		case ch <- todo[i]:
		}
	}
	close(ch)
	wg.Wait()
	return ctx.Err()
}

// runAndRecord executes one cell (with retries) and records the outcome
// under the suite lock. Cancelled attempts are recorded nowhere so a
// resumed run retries them.
func (s *Suite) runAndRecord(ctx context.Context, pj plannedJob) {
	start := time.Now()
	s.mu.Lock()
	s.inflight[pj.key] = inflightCell{
		workload: pj.job.Spec.Name,
		config:   pj.job.Params.Kind.String(),
		at:       start,
	}
	s.mu.Unlock()
	if s.hm != nil {
		s.hm.inFlight.Add(1)
	}
	res, rerr := s.runCell(ctx, pj)
	if s.hm != nil {
		s.hm.inFlight.Add(-1)
		s.hm.cellSeconds.Observe(time.Since(start).Seconds())
	}
	if rerr != nil && ctx.Err() != nil {
		s.mu.Lock()
		delete(s.inflight, pj.key)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	delete(s.inflight, pj.key)
	recorded := false
	if rerr != nil {
		if s.hm != nil {
			s.hm.cellsFailed.Inc()
		}
		s.failed[pj.key] = rerr
		s.cfg.Logf("cell %s/%s failed: %v", rerr.Workload, rerr.Config, rerr.Cause)
	} else {
		if s.hm != nil {
			s.hm.cellsDone.Inc()
		}
		s.memo[pj.key] = res
		recorded = true
	}
	hook := s.onCellDone
	s.mu.Unlock()
	// The checkpoint append fsyncs; it must not happen under the suite
	// lock, or one slow disk barrier stalls every worker's result
	// recording. The journal serializes itself, and a crash between the
	// memo update and the append costs at most a retried cell on resume —
	// the same window the old order had between append and unlock.
	if recorded && s.jrnl != nil {
		if err := s.jrnl.append(pj.key, res); err != nil {
			s.cfg.Logf("checkpoint append: %v", err)
		}
	}
	if hook != nil {
		hook(pj.key)
	}
}

// runCell executes one cell with panic recovery, the per-cell deadline,
// and bounded retries. Attempt 0 uses the job's own seed — so a clean
// first attempt reproduces exactly what a sequential run computes —
// and each retry derives a fresh seed from the cell key and attempt
// number, independent of goroutine scheduling.
func (s *Suite) runCell(ctx context.Context, pj plannedJob) (core.Result, *RunError) {
	attempts := s.cfg.Retries + 1
	var lastErr error
	var lastSeed int64
	for a := 0; a < attempts; a++ {
		j := pj.job
		if a > 0 {
			j.Seed = retrySeed(pj.key, a)
			if s.hm != nil {
				s.hm.retries.Inc()
			}
		}
		lastSeed = j.Seed
		res, err := s.attemptCell(ctx, j)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return core.Result{}, &RunError{
		Workload: pj.job.Spec.Name,
		Config:   pj.job.Params.Kind.String(),
		Key:      pj.key,
		Seed:     lastSeed,
		Attempts: attempts,
		Cause:    lastErr,
	}
}

// attemptCell is one attempt: deadline applied, panics recovered.
func (s *Suite) attemptCell(ctx context.Context, j exper.Job) (res core.Result, err error) {
	if s.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.CellTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if s.cfg.Execute != nil {
		return s.cfg.Execute(ctx, j)
	}
	if s.cfg.Traces != nil {
		return s.cfg.Traces.ExecuteJob(ctx, j)
	}
	return exper.ExecuteJobContext(ctx, j)
}

// render re-runs every experiment serially against the memoized
// results, producing output identical to a sequential run. Experiments
// stop rendering once ctx is cancelled.
func (s *Suite) render(ctx context.Context, exps []exper.Experiment, opt exper.Options) []ExperimentResult {
	out := make([]ExperimentResult, 0, len(exps))
	opt.Runner = &servingRunner{ctx: ctx, s: s}
	for _, e := range exps {
		if ctx.Err() != nil {
			out = append(out, ExperimentResult{ID: e.ID, Title: e.Title, Err: ctx.Err()})
			continue
		}
		start := time.Now()
		tables, err := renderOne(e, opt)
		out = append(out, ExperimentResult{
			ID: e.ID, Title: e.Title,
			Tables: tables, Err: err,
			Elapsed: time.Since(start),
		})
	}
	return out
}

func renderOne(e exper.Experiment, opt exper.Options) (tables []*stats.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment %s panicked outside a cell: %v\n%s", e.ID, r, debug.Stack())
		}
	}()
	return e.Run(opt)
}
