package harness

import (
	"context"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/stats"
)

// planRecorder is the Runner of the plan pass: it records each distinct
// cell in first-request order and answers with a stub result. The plan
// pass is serial, so no locking.
type planRecorder struct {
	seen map[string]bool
	jobs []plannedJob
}

func (r *planRecorder) RunCell(j exper.Job) (core.Result, error) {
	k := jobKey(j)
	if !r.seen[k] {
		r.seen[k] = true
		r.jobs = append(r.jobs, plannedJob{key: k, job: j})
	}
	return stubResult(j), nil
}

// stubResult is what experiments see while being planned. The values
// are never rendered; they only have to survive the arithmetic between
// an experiment's cell requests. Every counter is nonzero (ratios stay
// finite), and the Lite lookup-share slices are populated for three
// TLBs × three way-counts, covering every static index in the
// experiment code.
func stubResult(j exper.Job) core.Result {
	share := func() []float64 { return []float64{0.25, 0.25, 0.5} }
	res := core.Result{
		Config:        j.Params.Kind.String(),
		Instructions:  1000,
		MemRefs:       500,
		L1Misses:      100,
		L2Misses:      10,
		WalkRefs:      40,
		CyclesTLBMiss: 1200,
		Hits4K:        100, Hits2M: 100, Hits1G: 100, HitsRange: 100,
		LiteLookupShare:        [][]float64{share(), share(), share()},
		IntervalL1MPKI:         stats.Series{Name: "plan", Points: []float64{1, 1}},
		IntervalEnergyPerRefPJ: stats.Series{Name: "plan", Points: []float64{1, 1}},
		IntervalLiteWays:       stats.Series{Name: "plan", Points: []float64{1, 1}},
		LiteResizes:            1,
		LiteReactivations:      1,
		MispredictRate:         0.01,
	}
	res.Energy[0] = 1 //eeatlint:allow chargesite synthetic placeholder for the plan pass; no real energy is modeled
	return res
}

// servingRunner is the Runner of the render pass: it answers cells from
// the memoized results. A cell the plan never saw — an experiment whose
// requests depend on simulated values — is executed inline with the
// same recovery and retry policy, so an incomplete plan degrades to
// serial execution, never to wrong output. The render pass is serial;
// the suite lock still guards the maps because the test hook may
// observe them.
type servingRunner struct {
	ctx context.Context
	s   *Suite
}

func (r *servingRunner) RunCell(j exper.Job) (core.Result, error) {
	k := jobKey(j)
	r.s.mu.Lock()
	res, ok := r.s.memo[k]
	ferr, failed := r.s.failed[k]
	r.s.mu.Unlock()
	if ok {
		return res, nil
	}
	if failed {
		return core.Result{}, ferr
	}
	if err := r.ctx.Err(); err != nil {
		return core.Result{}, err
	}
	r.s.cfg.Logf("cell missed by plan, running inline: %s/%s", j.Spec.Name, j.Params.Kind)
	res, rerr := r.s.runCell(r.ctx, plannedJob{key: k, job: j})
	r.s.mu.Lock()
	if rerr != nil {
		r.s.failed[k] = rerr
		r.s.mu.Unlock()
		return core.Result{}, rerr
	}
	r.s.memo[k] = res
	r.s.mu.Unlock()
	// Like runAndRecord: the journal fsyncs and serializes itself, so
	// the append stays outside the suite lock.
	if r.s.jrnl != nil {
		if err := r.s.jrnl.append(k, res); err != nil {
			r.s.cfg.Logf("checkpoint append: %v", err)
		}
	}
	return res, nil
}
