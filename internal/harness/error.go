package harness

import "fmt"

// RunError is the structured failure of one simulation cell: which
// cell, under what seed, after how many attempts, and why. The suite
// keeps running when a cell fails; the experiments that needed the
// cell report the RunError as their gap annotation.
type RunError struct {
	Workload string // workload spec name
	Config   string // configuration name (core.ConfigKind)
	Key      string // content-addressed cell key
	Seed     int64  // seed of the last attempt
	Attempts int    // attempts made (1 + retries)
	Cause    error  // last failure: *PanicError, ctx error, or build error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("cell %s/%s (seed %d, %d attempt(s)): %v",
		e.Workload, e.Config, e.Seed, e.Attempts, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Cause }

// PanicError is a panic recovered from simulator internals, preserved
// with its stack so a failed cell is diagnosable from the suite output.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}
