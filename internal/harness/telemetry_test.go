package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/telemetry"
)

// TestSuiteTelemetryByteIdentity pins the acceptance criterion at the
// harness level: a suite run with the registry, simulator metrics,
// tracing, and the progress loop all enabled renders tables
// byte-identical to a bare run.
func TestSuiteTelemetryByteIdentity(t *testing.T) {
	jobs := func(withMetrics *core.Metrics, tr *telemetry.Tracer) []exper.Job {
		out := []exper.Job{
			tinyJob("alpha", core.CfgTHP, 7),
			tinyJob("beta", core.CfgRMMLite, 7),
		}
		for i := range out {
			out[i].Params.Metrics = withMetrics
			out[i].Params.Trace = tr
		}
		return out
	}

	plain := New(Config{Workers: 2})
	plainOut, err := plain.Run(context.Background(),
		[]exper.Experiment{cellExp("cells", jobs(nil, nil))})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	m := core.NewMetrics(reg)
	var traceBuf strings.Builder
	tr := telemetry.NewTracer(&traceBuf, telemetry.TraceJSONL, 256)
	inst := New(Config{
		Workers:       2,
		Registry:      reg,
		ProgressEvery: time.Millisecond,
		Logf:          t.Logf,
	})
	instOut, err := inst.Run(context.Background(),
		[]exper.Experiment{cellExp("cells", jobs(m, tr))})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if a, b := renderAll(t, plainOut), renderAll(t, instOut); a != b {
		t.Errorf("telemetry changed rendered tables:\nplain:\n%s\ninstrumented:\n%s", a, b)
	}
	if tr.Events() == 0 {
		t.Error("tracer saw no events from suite cells")
	}

	// The registry must hold both layers: harness cell latency and
	// simulator counters, with counts matching the executed cell set.
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"xlate_harness_cell_seconds_count 2",
		"xlate_harness_cells_completed_total 2",
		"xlate_harness_cells_in_flight 0",
		"xlate_tlb_l1_misses_total",
		"xlate_energy_picojoules_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}

	snap := inst.Status()
	if snap.Planned != 2 || snap.Done != 2 || snap.Failed != 0 || len(snap.InFlight) != 0 {
		t.Errorf("final status = %+v", snap)
	}
	if snap.AggregateL1MPKI <= 0 {
		t.Errorf("aggregate MPKI = %v, want > 0", snap.AggregateL1MPKI)
	}
}

// TestStatusInflightSnapshot exercises the in-flight view of the
// status snapshot deterministically: with a cell registered as running,
// the snapshot must carry its identity and a sane elapsed time, sorted
// by key.
func TestStatusInflightSnapshot(t *testing.T) {
	s := New(Config{Workers: 1})
	s.mu.Lock()
	s.planned = 3
	s.inflight["bbb"] = inflightCell{workload: "gamma", config: "THP", at: time.Now().Add(-2 * time.Second)}
	s.inflight["aaa"] = inflightCell{workload: "delta", config: "RMM", at: time.Now()}
	s.mu.Unlock()

	snap := s.Status()
	if snap.Planned != 3 || len(snap.InFlight) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.InFlight[0].Key != "aaa" || snap.InFlight[1].Key != "bbb" {
		t.Errorf("in-flight not sorted by key: %+v", snap.InFlight)
	}
	if got := snap.InFlight[1]; got.Workload != "gamma" || got.Config != "THP" || got.Seconds < 1.5 {
		t.Errorf("in-flight cell = %+v", got)
	}
}
