package harness

import (
	"context"
	"errors"
	"testing"

	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/core"
	"xlate/internal/exper"
)

// TestAuditViolationBecomesRunError pins the API boundary: an integrity
// violation inside a worker-pool cell surfaces as a *RunError whose
// cause chain exposes the typed *audit.ViolationError, while healthy
// experiments in the same suite still render.
func TestAuditViolationBecomesRunError(t *testing.T) {
	bad := tinyJob("corrupt", core.Cfg4KB, 7)
	bad.Params.Audit = audit.Config{Enabled: true, SampleEvery: 1}
	bad.Params.Fault = inject.Fault{Kind: inject.SkewCharge, Factor: 1.5}
	exps := []exper.Experiment{
		cellExp("good", []exper.Job{tinyJob("alpha", core.Cfg4KB, 7)}),
		cellExp("bad", []exper.Job{bad}),
	}

	s := New(Config{Workers: 2})
	results, err := s.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || len(results[0].Tables) == 0 {
		t.Fatalf("healthy experiment should render: err=%v", results[0].Err)
	}
	var re *RunError
	if !errors.As(results[1].Err, &re) {
		t.Fatalf("violating experiment error = %v, want *RunError", results[1].Err)
	}
	var ve *audit.ViolationError
	if !errors.As(re.Cause, &ve) {
		t.Fatalf("RunError cause = %T (%v), want *audit.ViolationError", re.Cause, re.Cause)
	}
	if ve.Check != audit.CheckEnergy {
		t.Errorf("violation check = %q, want %q", ve.Check, audit.CheckEnergy)
	}
}
