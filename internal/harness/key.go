package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"xlate/internal/exper"
)

// jobKey returns the content-addressed identity of a cell: a hash of a
// canonical encoding of everything that determines its result. Two
// jobs with equal keys compute equal results, so the key serves both
// as the dedup identity across experiments (fig10/fig11/table5 share
// baseline cells) and as the resume identity across process restarts.
//
// The encoding prints every Params scalar via %+v (struct field order
// is fixed at compile time; no maps are involved) and replaces the
// *energy.DB pointer with the database's canonical fingerprint, so the
// key depends on what the database says, not where it lives. The
// telemetry attachments (Metrics, Trace) are observation-only — they
// never change what a cell computes — so they are stripped too, keeping
// instrumented and uninstrumented runs resume-compatible.
// JobKey exposes the canonical cell key to other layers. The service
// daemon (internal/service) addresses its result cache with it, so a
// daemon cache hit is exact by construction: equal keys mean equal
// results, byte for byte.
func JobKey(j exper.Job) string { return jobKey(j) }

// jobKey is the //eeat:cellkey root: wireparity proves no key-excluded
// observability field is ever read from here down — writes (the nil-out
// idiom below) are the sanctioned shape.
//
//eeat:cellkey
func jobKey(j exper.Job) string {
	p := j.Params
	fp := p.EnergyDB.Fingerprint()
	p.EnergyDB = nil
	p.Metrics = nil
	p.Trace = nil
	var b strings.Builder
	fmt.Fprintf(&b, "spec=%+v|", j.Spec)
	fmt.Fprintf(&b, "params=%+v|edb=%s|", p, fp)
	fmt.Fprintf(&b, "policy=%+v|", j.Policy)
	fmt.Fprintf(&b, "instrs=%d|scale=%g|seed=%d", j.Instrs, j.Scale, j.Seed)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// retrySeed derives the seed for attempt > 0 of a cell from the cell
// key and the attempt number — deterministic no matter which worker
// picks the retry up or when. Attempt 0 always uses the job's own seed.
func retrySeed(key string, attempt int) int64 {
	h := sha256.New()
	h.Write([]byte(key))
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], uint64(attempt))
	h.Write(a[:])
	sum := h.Sum(nil)
	s := int64(binary.LittleEndian.Uint64(sum[:8]))
	if s == 0 {
		s = int64(attempt) + 1
	}
	return s
}
