package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"xlate/internal/core"
	"xlate/internal/exper"
)

// The checkpoint is JSONL: a header line binding the journal to the
// run options, then one line per completed cell. Appending a line per
// cell (synced) makes the journal valid after a SIGINT or crash at any
// point; a torn trailing line is tolerated on load. Failed cells are
// never journaled, so a resumed run retries them. Go's encoding/json
// emits the shortest float64 representation, which round-trips
// exactly — resumed results render byte-identical tables.

const checkpointVersion = 1

type checkpointHeader struct {
	Version int     `json:"version"`
	Instrs  uint64  `json:"instrs"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
}

type checkpointCell struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// journal appends completed cells to the checkpoint file. Callers
// serialize access (the suite lock).
type journal struct {
	f *os.File
}

// openJournal opens the checkpoint for appending. Without resume the
// file is truncated; with resume, appends continue an existing journal
// (loadCheckpoint has already validated its header) or start a new one.
func openJournal(path string, resume bool, opt exper.Options) (*journal, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	j := &journal{f: f}
	if st.Size() == 0 {
		hdr := checkpointHeader{Version: checkpointVersion, Instrs: opt.Instrs, Scale: opt.Scale, Seed: opt.Seed}
		if err := j.writeLine(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

func (j *journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: checkpoint encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	return j.f.Sync()
}

func (j *journal) append(key string, res core.Result) error {
	return j.writeLine(checkpointCell{Key: key, Result: res})
}

func (j *journal) close() {
	if j != nil && j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// loadCheckpoint reads completed cells into the memo map, returning
// how many were loaded. A missing file resumes nothing; a header
// written under different options is an error — its results would be
// silently wrong for this run.
func (s *Suite) loadCheckpoint(opt exper.Options) (int, error) {
	f, err := os.Open(s.cfg.Checkpoint)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("harness: opening checkpoint: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<20)
	hdrLine, err := r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF {
			return 0, nil // empty or torn header: nothing to resume
		}
		return 0, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return 0, fmt.Errorf("harness: checkpoint %s: bad header: %w", s.cfg.Checkpoint, err)
	}
	if hdr.Version != checkpointVersion {
		return 0, fmt.Errorf("harness: checkpoint %s: version %d, want %d", s.cfg.Checkpoint, hdr.Version, checkpointVersion)
	}
	if hdr.Instrs != opt.Instrs || hdr.Scale != opt.Scale || hdr.Seed != opt.Seed {
		return 0, fmt.Errorf("harness: checkpoint %s was written with -instrs %d -scale %g -seed %d; rerun with those options or delete it",
			s.cfg.Checkpoint, hdr.Instrs, hdr.Scale, hdr.Seed)
	}
	n := 0
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF, possibly with a torn final line from an interrupted
			// append: the completed prefix is still valid.
			break
		}
		var cell checkpointCell
		if err := json.Unmarshal(line, &cell); err != nil {
			break
		}
		s.memo[cell.Key] = cell.Result
		n++
	}
	return n, nil
}
