package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"xlate/internal/core"
	"xlate/internal/exper"
)

// The checkpoint is JSONL: a header line binding the journal to the
// run options, then one line per completed cell. Failed cells are
// never journaled, so a resumed run retries them. Go's encoding/json
// emits the shortest float64 representation, which round-trips
// exactly — resumed results render byte-identical tables.
//
// Every append publishes the whole journal via temp-file, fsync, and
// atomic rename, so the file on disk is always a complete, valid JSONL
// document: a crash at any instant leaves either the previous journal
// or the new one, never a torn line. Without that, a truncated trailing
// line from a crash mid-write would poison -resume — the next run's
// appends would glue a fresh line onto the partial one, corrupting it
// and silently dropping every cell journaled after it. A torn tail from
// a pre-hardening journal (or a filesystem that reordered writes) is
// healed on open: the valid prefix is kept, the partial line dropped.

const checkpointVersion = 1

type checkpointHeader struct {
	Version int     `json:"version"`
	Instrs  uint64  `json:"instrs"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
}

type checkpointCell struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// journal holds the checkpoint's current valid contents in memory and
// republishes the whole file atomically on every append. It serializes
// itself: append is safe to call concurrently, and crucially without
// the suite lock — publishing fsyncs, and a disk barrier under the
// lock that gates every worker's result recording would stall the
// whole pool on one slow device.
type journal struct {
	path string
	mu   sync.Mutex
	buf  []byte // complete journal contents, every line terminated
}

// openJournal prepares the checkpoint at path. Without resume the
// journal starts fresh; with resume it continues an existing journal
// (loadCheckpoint has already validated its header), keeping only its
// complete lines so a torn tail cannot corrupt later appends.
func openJournal(path string, resume bool, opt exper.Options) (*journal, error) {
	j := &journal{path: path}
	if resume {
		prev, err := os.ReadFile(path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("harness: opening checkpoint: %w", err)
		}
		j.buf = ValidLines(prev)
	}
	if len(j.buf) == 0 {
		hdr := checkpointHeader{Version: checkpointVersion, Instrs: opt.Instrs, Scale: opt.Scale, Seed: opt.Seed}
		b, err := json.Marshal(hdr)
		if err != nil {
			return nil, fmt.Errorf("harness: checkpoint encode: %w", err)
		}
		j.buf = append(b, '\n')
	}
	if err := j.publish(); err != nil {
		return nil, err
	}
	return j, nil
}

// ValidLines returns the prefix of b holding complete, well-formed
// JSON lines — the longest prefix loadCheckpoint would accept. A torn
// tail (no newline) or a corrupt line ends the prefix; everything
// after it is dropped, matching what the loader resumes. Exported for
// the cluster journal, which validates record shape on top of this
// syntactic prefix before deciding to heal or refuse.
func ValidLines(b []byte) []byte {
	end := 0
	for off := 0; off < len(b); {
		i := bytes.IndexByte(b[off:], '\n')
		if i < 0 {
			break // torn tail
		}
		line := b[off : off+i]
		if !json.Valid(line) {
			break
		}
		off += i + 1
		end = off
	}
	return b[:end]
}

// publish writes the buffered journal to a temp file in the same
// directory, fsyncs it, and renames it over the checkpoint path. The
// rename is atomic on POSIX filesystems; the directory is synced too so
// the new name survives a crash right after the rename.
func (j *journal) publish() error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	if _, err := tmp.Write(j.buf); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Errors
// are ignored: some filesystems reject directory fsync, and the rename
// itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort durability of the rename
	d.Close()
}

func (j *journal) append(key string, res core.Result) error {
	b, err := json.Marshal(checkpointCell{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("harness: checkpoint encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf, b...)
	j.buf = append(j.buf, '\n')
	//eeatlint:allow locksafe the journal mutex exists to serialize the file write; the fsync is the critical section
	return j.publish()
}

func (j *journal) close() {
	// Nothing is held open between appends; the journal on disk is
	// already complete and durable.
}

// StreamJournal is the streaming sibling of the suite checkpoint: an
// append-only JSONL file where every record is durable the moment
// Append returns (single write, then fsync). The suite checkpoint
// republishes its whole file per append because it is small and
// rewritten rarely; a journal that records every cluster event for the
// life of a campaign needs O(1) appends instead. The torn-tail
// discipline is shared: the caller validates the existing contents
// (ValidLines plus its own record checks) and passes the byte length
// of the prefix to keep — OpenStream truncates everything after it, so
// a later append can never glue onto a partial line.
type StreamJournal struct {
	path string
	f    *os.File
}

// OpenStream opens (creating if needed) the journal at path for
// durable appends, first truncating it to keep bytes — the caller's
// validated prefix. The truncation itself is fsynced before the first
// append so a heal survives a crash too.
func OpenStream(path string, keep int64) (*StreamJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	if keep < 0 {
		keep = 0
	}
	if st.Size() > keep {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: healing journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: healing journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	syncDir(filepath.Dir(path))
	return &StreamJournal{path: path, f: f}, nil
}

// Append writes one record line (the terminating newline is added) and
// fsyncs it. When Append returns nil the record is on disk; a crash at
// any instant leaves at worst one torn final line, which the next
// open's validated-prefix truncation heals.
func (s *StreamJournal) Append(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("harness: journal append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("harness: journal append: %w", err)
	}
	return nil
}

// Close releases the journal's file handle. The contents are already
// durable; Close exists so a restarted process can reopen the path.
func (s *StreamJournal) Close() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("harness: closing journal: %w", err)
	}
	return nil
}

// loadCheckpoint reads completed cells into the memo map, returning
// how many were loaded. A missing file resumes nothing; a header
// written under different options is an error — its results would be
// silently wrong for this run.
func (s *Suite) loadCheckpoint(opt exper.Options) (int, error) {
	f, err := os.Open(s.cfg.Checkpoint)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("harness: opening checkpoint: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<20)
	hdrLine, err := r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF {
			return 0, nil // empty or torn header: nothing to resume
		}
		return 0, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return 0, fmt.Errorf("harness: checkpoint %s: bad header: %w", s.cfg.Checkpoint, err)
	}
	if hdr.Version != checkpointVersion {
		return 0, fmt.Errorf("harness: checkpoint %s: version %d, want %d", s.cfg.Checkpoint, hdr.Version, checkpointVersion)
	}
	if hdr.Instrs != opt.Instrs || hdr.Scale != opt.Scale || hdr.Seed != opt.Seed {
		return 0, fmt.Errorf("harness: checkpoint %s was written with -instrs %d -scale %g -seed %d; rerun with those options or delete it",
			s.cfg.Checkpoint, hdr.Instrs, hdr.Scale, hdr.Seed)
	}
	n := 0
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF, possibly with a torn final line from an interrupted
			// append: the completed prefix is still valid.
			break
		}
		var cell checkpointCell
		if err := json.Unmarshal(line, &cell); err != nil {
			break
		}
		s.memo[cell.Key] = cell.Result
		n++
	}
	return n, nil
}
