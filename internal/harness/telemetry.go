package harness

import (
	"sort"
	"time"

	"xlate/internal/telemetry"
)

// harnessMetrics is the suite's own instrumentation: where simulator
// metrics say what the cells computed, these say what the harness spent
// getting them — wall-clock per cell, queue wait, retries, failures.
// They register into the same run-wide registry as the simulator
// metrics, so one /metrics scrape covers both layers.
type harnessMetrics struct {
	cellSeconds  *telemetry.Histogram
	queueSeconds *telemetry.Histogram
	retries      *telemetry.Counter
	cellsDone    *telemetry.Counter
	cellsFailed  *telemetry.Counter
	inFlight     *telemetry.Gauge
}

func newHarnessMetrics(reg *telemetry.Registry) *harnessMetrics {
	return &harnessMetrics{
		cellSeconds: reg.Histogram("xlate_harness_cell_seconds",
			"wall-clock per executed cell (all attempts)", telemetry.DurationBuckets()),
		queueSeconds: reg.Histogram("xlate_harness_queue_wait_seconds",
			"time a planned cell waited for a free worker", telemetry.DurationBuckets()),
		retries: reg.Counter("xlate_harness_cell_retries_total",
			"cell attempts beyond the first"),
		cellsDone: reg.Counter("xlate_harness_cells_completed_total",
			"cells that produced a result"),
		cellsFailed: reg.Counter("xlate_harness_cells_failed_total",
			"cells that exhausted their attempts"),
		inFlight: reg.Gauge("xlate_harness_cells_in_flight",
			"cells currently executing on workers"),
	}
}

// CellStatus describes one in-flight cell for the status endpoint.
type CellStatus struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"`
	Key      string  `json:"key"`
	Seconds  float64 `json:"seconds"`
}

// StatusSnapshot is the suite's live state, served as JSON by the
// status endpoint and usable directly by tests.
type StatusSnapshot struct {
	Planned  int          `json:"planned"`
	Done     int          `json:"done"`
	Failed   int          `json:"failed"`
	InFlight []CellStatus `json:"in_flight"`
	// AggregateL1MPKI is misses-per-kilo-instruction summed over every
	// completed cell so far — a single convergence number for a running
	// suite.
	AggregateL1MPKI float64 `json:"aggregate_l1_mpki"`
}

// Status returns a snapshot of the suite's progress. Safe to call from
// any goroutine at any time, including while Run executes cells.
func (s *Suite) Status() StatusSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Suite) statusLocked() StatusSnapshot {
	snap := StatusSnapshot{
		Planned: s.planned,
		Done:    len(s.memo),
		Failed:  len(s.failed),
	}
	var instrs, misses uint64
	for _, r := range s.memo {
		instrs += r.Instructions
		misses += r.L1Misses
	}
	if instrs > 0 {
		snap.AggregateL1MPKI = float64(misses) * 1000 / float64(instrs)
	}
	now := time.Now()
	for key, started := range s.inflight {
		cs := CellStatus{Key: key, Seconds: now.Sub(started.at).Seconds()}
		cs.Workload, cs.Config = started.workload, started.config
		snap.InFlight = append(snap.InFlight, cs)
	}
	sort.Slice(snap.InFlight, func(i, j int) bool { return snap.InFlight[i].Key < snap.InFlight[j].Key })
	return snap
}

// inflightCell is the identity and start time of a cell on a worker.
type inflightCell struct {
	workload, config string
	at               time.Time
}

// progressLoop emits a progress line every cfg.ProgressEvery until stop
// is closed: cells done/planned, failures, ETA extrapolated from the
// completed-cell rate, and the aggregate L1 MPKI so far.
func (s *Suite) progressLoop(start time.Time, resumed int, stop <-chan struct{}) {
	tick := time.NewTicker(s.cfg.ProgressEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		snap := s.Status()
		finished := snap.Done + snap.Failed - resumed
		eta := "?"
		if finished > 0 {
			remaining := snap.Planned - snap.Done - snap.Failed
			if remaining < 0 {
				remaining = 0
			}
			per := time.Since(start) / time.Duration(finished)
			eta = (time.Duration(remaining) * per).Round(time.Second).String()
		}
		s.cfg.Logf("progress: %d/%d cells (%d failed, %d running), eta %s, aggregate L1 MPKI %.2f",
			snap.Done, snap.Planned, snap.Failed, len(snap.InFlight), eta, snap.AggregateL1MPKI)
	}
}
