package harness

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/exper"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// tinySpec is a small, fast workload for harness-level tests.
func tinySpec(name string) workloads.Spec {
	return workloads.Spec{
		Name: name, Suite: "test", InstrPerRef: 4,
		Regions: []workloads.RegionSpec{{Name: "heap", Bytes: 8 << 20}},
		Phases: []workloads.PhaseSpec{{Refs: 1 << 16, Access: []workloads.AccessSpec{
			{Region: 0, Weight: 1, Pattern: workloads.Uni},
		}}},
	}
}

func tinyJob(name string, kind core.ConfigKind, seed int64) exper.Job {
	return exper.Job{
		Spec:   tinySpec(name),
		Params: core.DefaultParams(kind),
		Policy: core.PolicyFor(kind, 0.5),
		Instrs: 100_000,
		Scale:  1,
		Seed:   seed,
	}
}

// runVia routes a job the way experiments do: through the Options
// runner when one is installed, else inline.
func runVia(opt exper.Options, j exper.Job) (core.Result, error) {
	if opt.Runner != nil {
		return opt.Runner.RunCell(j)
	}
	return exper.ExecuteJob(j)
}

// cellExp is a test experiment rendering one row per job.
func cellExp(id string, jobs []exper.Job) exper.Experiment {
	return exper.Experiment{ID: id, Title: "test experiment " + id,
		Run: func(opt exper.Options) ([]*stats.Table, error) {
			t := stats.NewTable(id, "Cell", "L1 MPKI", "Energy (pJ)")
			for i, j := range jobs {
				res, err := runVia(opt, j)
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%d:%s", i, j.Spec.Name),
					fmt.Sprintf("%.4f", res.L1MPKI()),
					fmt.Sprintf("%.2f", res.EnergyPJ()))
			}
			return []*stats.Table{t}, nil
		}}
}

// renderAll formats experiment results the way cmd/experiments does,
// minus timings, for byte comparison.
func renderAll(t *testing.T, results []ExperimentResult) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "## %s\n", r.Title)
		if r.Err != nil {
			fmt.Fprintf(&b, "FAILED: %v\n", r.Err)
			continue
		}
		for _, tb := range r.Tables {
			b.WriteString(tb.Markdown())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// testExperiments returns two experiments sharing two cells, so the
// suite exercises cross-experiment dedup.
func testExperiments() []exper.Experiment {
	shared := []exper.Job{
		tinyJob("alpha", core.CfgTHP, 7),
		tinyJob("beta", core.Cfg4KB, 7),
	}
	a := append([]exper.Job{}, shared...)
	a = append(a, tinyJob("alpha", core.CfgRMMLite, 7))
	b := append([]exper.Job{}, shared...)
	b = append(b, tinyJob("beta", core.CfgTLBLite, 9), tinyJob("gamma", core.CfgRMM, 11))
	return []exper.Experiment{cellExp("exp-a", a), cellExp("exp-b", b)}
}

func sequentialRender(t *testing.T, exps []exper.Experiment) string {
	t.Helper()
	var results []ExperimentResult
	for _, e := range exps {
		tables, err := e.Run(exper.Options{Instrs: 1, Scale: 1, Seed: 1})
		// Options are ignored by cellExp jobs (fully specified), but a
		// real error would invalidate the baseline.
		if err != nil {
			t.Fatalf("sequential %s: %v", e.ID, err)
		}
		results = append(results, ExperimentResult{ID: e.ID, Title: e.Title, Tables: tables})
	}
	return renderAll(t, results)
}

func TestParallelMatchesSequential(t *testing.T) {
	exps := testExperiments()
	want := sequentialRender(t, exps)

	s := New(Config{Workers: 4, Options: exper.Options{Instrs: 1, Scale: 1, Seed: 1}})
	results, err := s.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, results); got != want {
		t.Errorf("parallel output differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
	// The two shared cells must have been simulated once each: 5
	// distinct cells across 7 requests.
	if len(s.memo) != 5 {
		t.Errorf("memo has %d cells, want 5 (dedup across experiments)", len(s.memo))
	}
}

func TestPanickingCellBecomesRunError(t *testing.T) {
	// new(energy.DB) passes the nil check in Params.Validate but has no
	// registered costs, so the simulator panics the first time it
	// charges energy — a stand-in for any internal invariant violation.
	boomJob := tinyJob("boom", core.CfgTHP, 7)
	boomJob.Params.EnergyDB = new(energy.DB)
	exps := []exper.Experiment{
		cellExp("good", []exper.Job{tinyJob("alpha", core.CfgTHP, 7)}),
		cellExp("boom", []exper.Job{boomJob}),
	}

	s := New(Config{Workers: 4, Retries: 2})
	results, err := s.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || len(results[0].Tables) == 0 {
		t.Fatalf("healthy experiment should render: err=%v", results[0].Err)
	}
	var re *RunError
	if !errors.As(results[1].Err, &re) {
		t.Fatalf("panicking experiment error = %v, want *RunError", results[1].Err)
	}
	if re.Workload != "boom" || re.Config != "THP" {
		t.Errorf("RunError cell identity = %s/%s", re.Workload, re.Config)
	}
	if re.Attempts != 3 {
		t.Errorf("RunError attempts = %d, want 3 (1 + 2 retries)", re.Attempts)
	}
	var pe *PanicError
	if !errors.As(re.Cause, &pe) {
		t.Fatalf("RunError cause = %T, want *PanicError", re.Cause)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "no cost registered") {
		t.Errorf("PanicError should carry the panic value and stack: %v", pe.Value)
	}
}

func TestCellTimeout(t *testing.T) {
	slow := tinyJob("slow", core.CfgTHP, 7)
	slow.Instrs = 50_000_000_000
	exps := []exper.Experiment{cellExp("slow", []exper.Job{slow})}

	s := New(Config{Workers: 2, CellTimeout: 30 * time.Millisecond})
	results, err := s.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded in chain", results[0].Err)
	}
	var re *RunError
	if !errors.As(results[0].Err, &re) {
		t.Fatalf("error = %v, want *RunError", results[0].Err)
	}
}

func TestCancelCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "suite.ckpt")
	exps := testExperiments()
	want := sequentialRender(t, exps)
	opts := exper.Options{Instrs: 1, Scale: 1, Seed: 1}

	// First run: cancel after two cells have been journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1 := New(Config{Workers: 2, Checkpoint: ckpt, Options: opts})
	var once sync.Once
	done := 0
	s1.onCellDone = func(string) {
		done++
		if done >= 2 {
			once.Do(cancel)
		}
	}
	if _, err := s1.Run(ctx, exps); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}

	// Second run resumes from the journal and must complete with output
	// byte-identical to an uninterrupted sequential run.
	s2 := New(Config{Workers: 2, Checkpoint: ckpt, Resume: true, Options: opts})
	executed := 0
	s2.onCellDone = func(string) { executed++ }
	results, err := s2.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, results); got != want {
		t.Errorf("resumed output differs from sequential:\n--- resumed ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if executed >= 5 {
		t.Errorf("resume executed %d cells, want fewer than the full 5", executed)
	}
}

func TestResumeRejectsMismatchedOptions(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "suite.ckpt")
	exps := []exper.Experiment{cellExp("one", []exper.Job{tinyJob("alpha", core.CfgTHP, 7)})}

	s1 := New(Config{Checkpoint: ckpt, Options: exper.Options{Instrs: 1, Scale: 1, Seed: 1}})
	// Make the run fail so the checkpoint survives: cancel immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s1.Run(ctx, exps); err == nil {
		t.Fatal("cancelled run should report an error")
	}

	s2 := New(Config{Checkpoint: ckpt, Resume: true, Options: exper.Options{Instrs: 1, Scale: 1, Seed: 99}})
	if _, err := s2.Run(context.Background(), exps); err == nil || !strings.Contains(err.Error(), "written with") {
		t.Fatalf("mismatched resume error = %v, want options mismatch", err)
	}
}

func TestCheckpointRemovedOnSuccess(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "suite.ckpt")
	exps := []exper.Experiment{cellExp("one", []exper.Job{tinyJob("alpha", core.CfgTHP, 7)})}
	s := New(Config{Checkpoint: ckpt, Options: exper.Options{Instrs: 1, Scale: 1, Seed: 1}})
	if _, err := s.Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(ckpt); err != nil {
		t.Fatal(err)
	}
	if fileExists(t, ckpt) {
		t.Error("checkpoint should be removed after a fully successful run")
	}
}

func fileExists(t *testing.T, path string) bool {
	t.Helper()
	_, err := filepath.Glob(path)
	if err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(path)
	return len(matches) > 0
}

func TestJobKeyStability(t *testing.T) {
	a := tinyJob("alpha", core.CfgTHP, 7)
	b := tinyJob("alpha", core.CfgTHP, 7)
	// Separately constructed energy databases with equal contents must
	// key identically: the key is content-addressed, not pointer-based.
	a.Params.EnergyDB = energy.Table2()
	b.Params.EnergyDB = energy.Table2()
	if jobKey(a) != jobKey(b) {
		t.Error("identical jobs with distinct *DB pointers should share a key")
	}
	c := b
	c.Seed = 8
	if jobKey(b) == jobKey(c) {
		t.Error("seed must be part of the cell key")
	}
	d := b
	d.Params.EnergyDB = energy.Table2()
	d.Params.EnergyDB.Register(energy.L14KB, 4, energy.Cost{ReadPJ: 1})
	if jobKey(b) == jobKey(d) {
		t.Error("energy database contents must be part of the cell key")
	}
}

func TestRetrySeedDeterministic(t *testing.T) {
	if retrySeed("k", 1) != retrySeed("k", 1) {
		t.Error("retrySeed must be deterministic")
	}
	if retrySeed("k", 1) == retrySeed("k", 2) {
		t.Error("different attempts should draw different seeds")
	}
	if retrySeed("k", 1) == retrySeed("j", 1) {
		t.Error("different cells should draw different seeds")
	}
}
