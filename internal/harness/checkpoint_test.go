package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xlate/internal/core"
	"xlate/internal/exper"
)

func TestValidLines(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", ""},
		{"one line", "{\"a\":1}\n", "{\"a\":1}\n"},
		{"torn tail dropped", "{\"a\":1}\n{\"b\":", "{\"a\":1}\n"},
		{"unterminated final line dropped", "{\"a\":1}\n{\"b\":2}", "{\"a\":1}\n"},
		{"corrupt line ends the prefix", "{\"a\":1}\nnot json\n{\"c\":3}\n", "{\"a\":1}\n"},
		{"all torn", "{\"a\"", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ValidLines([]byte(c.in)); string(got) != c.want {
				t.Errorf("ValidLines(%q) = %q, want %q", c.in, got, c.want)
			}
		})
	}
}

// journalLines parses the on-disk checkpoint and fails on any malformed
// line — the invariant the atomic-publish scheme maintains.
func journalLines(t *testing.T, path string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("journal does not end with a newline: %q", data)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	for i, l := range lines {
		if !json.Valid(l) {
			t.Fatalf("journal line %d is not valid JSON: %q", i, l)
		}
	}
	return lines
}

func TestJournalAppendPublishesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.ckpt")
	opt := exper.Options{Instrs: 1, Scale: 1, Seed: 1}

	j, err := openJournal(path, false, opt)
	if err != nil {
		t.Fatal(err)
	}
	// After open, the file already holds the header.
	if lines := journalLines(t, path); len(lines) != 1 {
		t.Fatalf("fresh journal has %d lines, want the header only", len(lines))
	}
	if err := j.append("cell-a", core.Result{Instructions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.append("cell-b", core.Result{Instructions: 2}); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, path); len(lines) != 3 {
		t.Fatalf("journal has %d lines, want header + 2 cells", len(lines))
	}
	// No temp files left behind by the rename dance.
	leftover, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Errorf("publish left temp files behind: %v", leftover)
	}
}

// TestJournalHealsTornTailOnResume is the failure the hardening exists
// for: a crash mid-write leaves a torn trailing line; resuming must keep
// the valid prefix and never glue new appends onto the partial line.
func TestJournalHealsTornTailOnResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.ckpt")
	opt := exper.Options{Instrs: 1, Scale: 1, Seed: 1}

	j, err := openJournal(path, false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append("cell-a", core.Result{Instructions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.append("cell-b", core.Result{Instructions: 2}); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn write a crash can leave (pre-hardening journals,
	// or reordered writes below the rename): chop the tail mid-line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := openJournal(path, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The torn cell-b line is dropped; header and cell-a survive, and
	// the healed journal is republished complete.
	lines := journalLines(t, path)
	if len(lines) != 2 || !bytes.Contains(lines[1], []byte("cell-a")) {
		t.Fatalf("healed journal = %d lines %q, want header + cell-a", len(lines), lines)
	}
	if err := j2.append("cell-c", core.Result{Instructions: 3}); err != nil {
		t.Fatal(err)
	}
	lines = journalLines(t, path)
	if len(lines) != 3 || !bytes.Contains(lines[2], []byte("cell-c")) {
		t.Fatalf("append after heal = %q, want cell-c as a clean third line", lines)
	}
}

// TestResumeSurvivesTornCheckpointTail runs the heal end-to-end through
// the suite: cancel a checkpointed run, tear the journal's tail, and
// resume — the run completes with output byte-identical to an
// uninterrupted one.
func TestResumeSurvivesTornCheckpointTail(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "suite.ckpt")
	exps := testExperiments()
	want := sequentialRender(t, exps)
	opts := exper.Options{Instrs: 1, Scale: 1, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1 := New(Config{Workers: 2, Checkpoint: ckpt, Options: opts})
	var once sync.Once
	done := 0
	s1.onCellDone = func(string) {
		done++
		if done >= 2 {
			once.Do(cancel)
		}
	}
	if _, err := s1.Run(ctx, exps); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 2, Checkpoint: ckpt, Resume: true, Options: opts})
	results, err := s2.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, results); got != want {
		t.Errorf("resume after torn tail differs from sequential:\n--- resumed ---\n%s\n--- sequential ---\n%s", got, want)
	}
}

// TestStreamJournalAppendAndHeal covers the streaming journal the
// cluster coordinator builds on: appends land as complete lines, a torn
// tail is truncated away on reopen, and appends after the heal start on
// a clean line boundary.
func TestStreamJournalAppendAndHeal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")

	s, err := OpenStream(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("stream contents = %q", data)
	}

	// Tear the tail mid-line, reopen keeping only the validated prefix,
	// and append: the torn bytes must be gone, not glued onto.
	torn := append(append([]byte{}, data...), []byte(`{"c":`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	keep := int64(len(ValidLines(torn)))
	s2, err := OpenStream(path, keep)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append([]byte(`{"d":4}`)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"a\":1}\n{\"b\":2}\n{\"d\":4}\n" {
		t.Fatalf("healed stream contents = %q", data)
	}
}

// TestPreloadSkipsExecution pins Config.Preload: preloaded cells never
// reach the executor, and the rendered output is byte-identical to a
// full run — the takeover-resume contract the cluster journal relies on.
func TestPreloadSkipsExecution(t *testing.T) {
	exps := testExperiments()
	want := sequentialRender(t, exps)
	opts := exper.Options{Instrs: 1, Scale: 1, Seed: 1}

	// First run records every cell result.
	s1 := New(Config{Workers: 2, Options: opts})
	if _, err := s1.Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	preload := make(map[string]core.Result, len(s1.memo))
	for k, v := range s1.memo {
		preload[k] = v
	}
	if len(preload) == 0 {
		t.Fatal("first run memoized nothing")
	}

	executed := 0
	s2 := New(Config{
		Workers: 2, Options: opts, Preload: preload,
		Execute: func(ctx context.Context, j exper.Job) (core.Result, error) {
			executed++
			return exper.ExecuteJobContext(ctx, j)
		},
	})
	results, err := s2.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("%d cells executed despite a complete preload", executed)
	}
	if got := renderAll(t, results); got != want {
		t.Errorf("preloaded run differs from sequential:\n--- preloaded ---\n%s\n--- sequential ---\n%s", got, want)
	}
}

// TestCancelledCellCarriesTypedError pins the shape of a cancellation
// surfacing through runCell: a *RunError whose chain reaches
// context.Canceled, with the cell identity attached.
func TestCancelledCellCarriesTypedError(t *testing.T) {
	s := New(Config{Retries: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	j := tinyJob("alpha", core.CfgTHP, 7)
	_, rerr := s.runCell(ctx, plannedJob{key: jobKey(j), job: j})
	if rerr == nil {
		t.Fatal("cancelled cell should fail")
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("RunError chain = %v, want context.Canceled in it", rerr)
	}
	if rerr.Workload != "alpha" || rerr.Config != "THP" {
		t.Errorf("RunError identity = %s/%s", rerr.Workload, rerr.Config)
	}
	// Cancellation must stop the retry loop: the first attempt's seed is
	// the job's own, so a retry would have replaced it.
	if rerr.Seed != j.Seed {
		t.Errorf("cancelled cell retried (seed %d, want the job's %d)", rerr.Seed, j.Seed)
	}
}
