package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 || Min(xs) != 2 || Max(xs) != 6 {
		t.Fatalf("Mean=%v Min=%v Max=%v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-slice aggregates should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
	// Invalid values return NaN per the degenerate-input policy — one
	// bad ratio must not crash a whole suite run.
	if got := GeoMean([]float64{1, 0}); !math.IsNaN(got) {
		t.Fatalf("GeoMean with zero = %v, want NaN", got)
	}
	if got := GeoMean([]float64{2, -1}); !math.IsNaN(got) {
		t.Fatalf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if got := Percentile(xs, 101); !math.IsNaN(got) {
		t.Fatalf("out-of-range percentile = %v, want NaN", got)
	}
	if got := Percentile(xs, -1); !math.IsNaN(got) {
		t.Fatalf("negative percentile = %v, want NaN", got)
	}
	if got := Percentile(xs, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("NaN percentile = %v, want NaN", got)
	}
}

// TestDegeneratePolicyUniform pins the documented policy across every
// aggregation at once: empty input is 0 everywhere.
func TestDegeneratePolicyUniform(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{
		"Mean":    Mean,
		"GeoMean": GeoMean,
		"Min":     Min,
		"Max":     Max,
		"P50":     func(xs []float64) float64 { return Percentile(xs, 50) },
	} {
		if got := f(nil); got != 0 {
			t.Errorf("%s(nil) = %v, want 0", name, got)
		}
		if got := f([]float64{}); got != 0 {
			t.Errorf("%s(empty) = %v, want 0", name, got)
		}
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Append(float64(i))
	}
	ds := s.Downsample(10)
	if ds.Len() != 10 {
		t.Fatalf("downsampled length = %d", ds.Len())
	}
	// Chunk means preserve the overall mean.
	if math.Abs(ds.Mean()-s.Mean()) > 1e-9 {
		t.Fatalf("downsample changed mean: %v vs %v", ds.Mean(), s.Mean())
	}
	// Downsampling to a larger size is the identity (copy).
	same := s.Downsample(1000)
	if same.Len() != 100 {
		t.Fatalf("identity downsample length = %d", same.Len())
	}
	same.Points[0] = 999
	if s.Points[0] == 999 {
		t.Fatal("downsample must copy, not alias")
	}
}

func TestSparkline(t *testing.T) {
	var s Series
	for i := 0; i < 8; i++ {
		s.Append(float64(i))
	}
	sp := s.Sparkline(8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline runes = %d", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline = %q", sp)
	}
	var flat Series
	flat.Append(1)
	flat.Append(1)
	if fs := flat.Sparkline(4); !strings.HasPrefix(fs, "▁") {
		t.Fatalf("flat sparkline = %q", fs)
	}
	var empty Series
	if empty.Sparkline(4) != "" {
		t.Fatal("empty sparkline should be empty string")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Demo", "workload", "energy")
	tbl.AddRowf("mcf", 0.5)
	tbl.AddRowf("astar", 1)
	md := tbl.Markdown()
	for _, want := range []string{"### Demo", "| workload |", "| mcf", "0.500", "| astar"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if !strings.HasPrefix(lines[3], "|--") && !strings.Contains(lines[3], "---") {
		t.Errorf("missing separator row: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", `q"u`)
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tbl := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row should panic")
		}
	}()
	tbl.AddRow("only-one")
}
