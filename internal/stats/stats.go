// Package stats provides the small statistics and reporting utilities
// the experiment harness builds its tables and series from: aggregation
// helpers, interval time series (Figure 4), and table rendering in
// markdown and CSV.
//
// # Degenerate-input policy
//
// All aggregations (Mean, GeoMean, Min, Max, Percentile) share one
// policy:
//
//   - An empty or nil slice returns 0. Harness tables aggregate cells
//     that may legitimately have no samples (a cancelled cell, a
//     zero-length series), and 0 renders cleanly.
//   - Invalid values — a non-positive GeoMean input, a percentile
//     outside [0, 100] — return NaN rather than panicking. A multi-hour
//     suite run must not crash over one bad ratio; NaN propagates into
//     the rendered cell as "NaN", which is loud enough to investigate
//     and harmless enough to keep the rest of the table.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice; NaN
// when any value is non-positive — see the package degenerate-input
// policy). Normalized ratios are conventionally averaged geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-
// rank on a sorted copy (0 for an empty slice; NaN when p is outside
// [0, 100] — see the package degenerate-input policy).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Series is a labeled sequence of samples, e.g. MPKI per interval.
type Series struct {
	Name   string
	Points []float64
}

// Append adds a sample.
//
//eeat:coldpath interval-boundary bookkeeping; one sample per SeriesIntervalInstrs instructions, amortized growth
func (s *Series) Append(v float64) { s.Points = append(s.Points, v) }

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the mean of the samples.
func (s *Series) Mean() float64 { return Mean(s.Points) }

// Downsample reduces the series to at most n points by averaging equal
// chunks, for compact terminal rendering of long interval series.
func (s *Series) Downsample(n int) Series {
	if n <= 0 || len(s.Points) <= n {
		return Series{Name: s.Name, Points: append([]float64(nil), s.Points...)}
	}
	out := Series{Name: s.Name}
	chunk := float64(len(s.Points)) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * chunk)
		hi := int(float64(i+1) * chunk)
		if hi > len(s.Points) {
			hi = len(s.Points)
		}
		if hi <= lo {
			hi = lo + 1
		}
		out.Append(Mean(s.Points[lo:hi]))
	}
	return out
}

// Sparkline renders the series as a unicode sparkline, a cheap stand-in
// for the paper's time-series plots in terminal output.
func (s *Series) Sparkline(width int) string {
	ds := s.Downsample(width)
	if ds.Len() == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := Min(ds.Points), Max(ds.Points)
	var b strings.Builder
	for _, v := range ds.Points {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row width %d != header width %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 renders with %.3f, integers with %d.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case uint64:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
