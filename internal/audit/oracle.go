package audit

import (
	"fmt"
	"math"

	"xlate/internal/addr"
	"xlate/internal/energy"
	"xlate/internal/lite"
	"xlate/internal/pagetable"
	"xlate/internal/rmm"
	"xlate/internal/tlb"
)

// Structures hands the auditor read access to every structure of one
// core's MMU. Nil fields mark structures the configuration omits.
// The auditor only reads through these references (plus the
// allocation-free ForEach iterators), never mutates.
type Structures struct {
	PT *pagetable.Table // authoritative page table (required)
	RT *rmm.RangeTable  // authoritative range table (nil without ranges)

	L14K  *tlb.SetAssoc // L1-4KB TLB, or the mixed L1 when MixedL1
	L12M  *tlb.SetAssoc // nil when absent
	L11G  *tlb.SetAssoc // nil when absent
	L2    *tlb.SetAssoc // unified L2 page TLB (size-qualified keys)
	L1Rng *tlb.RangeTLB // nil when absent
	L2Rng *tlb.RangeTLB // nil when absent

	MMU []*tlb.SetAssoc // paging-structure caches (invariants only)

	Lite *lite.Controller // nil for non-Lite configurations

	// MixedL1 marks configurations whose L1 holds multiple page sizes
	// under size-qualified keys (TLB_PP and the predictor extensions).
	MixedL1 bool

	// DB prices structures for the independent energy re-derivation.
	DB *energy.DB
	// WalkRefPJ is the energy of one page-walk memory reference,
	// re-derived by the caller from the energy database and walk-locality
	// parameter (not taken from the simulator's cached copy).
	WalkRefPJ float64
}

// energyEvent is one observed charge-worthy event of an access: a probe
// or fill of a named structure, or a batch of walk memory references.
type energyEvent struct {
	acc   energy.Account
	name  string // structure name (energy-database key); "" for walk refs
	ways  int    // active ways at event time (0 for fixed structures)
	write bool
	refs  int // >0: walk references, charged at WalkRefPJ each
}

// pageHit is one observed L1/L2 page-TLB hit.
type pageHit struct {
	name string // structure name, for violation reports
	e    tlb.Entry
	sz   addr.PageSize // the fast path's page-size choice
}

// pjTolerance bounds the acceptable float drift between the charged and
// the re-derived energy of one access. Deltas are differences of
// accumulators that can reach 1e10 pJ, so the tolerance must sit above
// accumulated ulp error while staying far below any real mis-charge
// (the cheapest single event is ~0.16 pJ).
const pjTolerance = 1e-3

// Auditor is the runtime integrity checker for one simulator. It is
// not safe for concurrent use; each core owns its own (matching the
// per-core Simulator it watches).
type Auditor struct {
	cfg Config
	st  Structures

	stats Stats
	first *ViolationError

	accesses uint64

	// Per-access oracle state, reset by BeginAccess. The slices are
	// reused buffers so the hot path never allocates.
	sampling  bool
	va        addr.VA
	before    energy.Breakdown
	events    []energyEvent
	pageHits  []pageHit
	rangeHits []rmm.Range
	walked    bool
	walkMap   pagetable.Mapping
}

// New constructs an auditor over the given structures.
func New(cfg Config, st Structures) *Auditor {
	if st.PT == nil {
		panic("audit: nil page table")
	}
	if st.DB == nil {
		panic("audit: nil energy database")
	}
	return &Auditor{
		cfg:       cfg.WithDefaults(),
		st:        st,
		events:    make([]energyEvent, 0, 32),
		pageHits:  make([]pageHit, 0, 4),
		rangeHits: make([]rmm.Range, 0, 4),
	}
}

// SetRangeTable re-points the authoritative range table (the multicore
// wrapper clones the shared table per core after construction).
func (a *Auditor) SetRangeTable(rt *rmm.RangeTable) { a.st.RT = rt }

// Stats returns the activity counters.
func (a *Auditor) Stats() Stats { return a.stats }

// Err returns the first violation observed, or nil while the run is
// clean.
func (a *Auditor) Err() error {
	if a.first == nil {
		return nil
	}
	return a.first
}

//eeat:coldpath violations abort the run; formatting the first one may allocate
func (a *Auditor) violate(check, structure string, va addr.VA, format string, args ...any) {
	a.stats.Violations++
	if a.first == nil {
		a.first = &ViolationError{Check: check, Structure: structure, VA: va,
			Detail: fmt.Sprintf(format, args...)}
	}
}

// BeginAccess opens the observation window for one memory access. The
// breakdown pointer is the live ledger; a snapshot is taken only on
// sampled accesses.
func (a *Auditor) BeginAccess(va addr.VA, b *energy.Breakdown) {
	a.accesses++
	a.sampling = a.accesses%a.cfg.SampleEvery == 0
	if !a.sampling {
		return
	}
	a.va = va
	a.before = *b
	a.events = a.events[:0]
	a.pageHits = a.pageHits[:0]
	a.rangeHits = a.rangeHits[:0]
	a.walked = false
}

// RecordRead notes a probe of a named structure at the given active-way
// count.
func (a *Auditor) RecordRead(acc energy.Account, name string, ways int) {
	if !a.sampling {
		return
	}
	a.events = append(a.events, energyEvent{acc: acc, name: name, ways: ways}) //eeatlint:allow hotpath recycled scratch; the backing array is reused across the [:0] reset in BeginAccess
}

// RecordWrite notes a fill of a named structure at the given active-way
// count.
func (a *Auditor) RecordWrite(acc energy.Account, name string, ways int) {
	if !a.sampling {
		return
	}
	a.events = append(a.events, energyEvent{acc: acc, name: name, ways: ways, write: true}) //eeatlint:allow hotpath recycled scratch; the backing array is reused across the [:0] reset in BeginAccess
}

// RecordWalkRefs notes refs page-walk (or range-walk) memory references.
func (a *Auditor) RecordWalkRefs(acc energy.Account, refs int) {
	if !a.sampling {
		return
	}
	a.events = append(a.events, energyEvent{acc: acc, refs: refs}) //eeatlint:allow hotpath recycled scratch; the backing array is reused across the [:0] reset in BeginAccess
}

// RecordPageHit notes a page-TLB hit: the entry served and the page
// size the fast path attributed to it.
func (a *Auditor) RecordPageHit(name string, e tlb.Entry, sz addr.PageSize) {
	if !a.sampling {
		return
	}
	a.pageHits = append(a.pageHits, pageHit{name: name, e: e, sz: sz}) //eeatlint:allow hotpath recycled scratch; the backing array is reused across the [:0] reset in BeginAccess
}

// RecordRangeHit notes a range-TLB hit.
func (a *Auditor) RecordRangeHit(r rmm.Range) {
	if !a.sampling {
		return
	}
	a.rangeHits = append(a.rangeHits, r) //eeatlint:allow hotpath recycled scratch; the backing array is reused across the [:0] reset in BeginAccess
}

// RecordWalkResult notes the mapping a page walk returned.
func (a *Auditor) RecordWalkResult(m pagetable.Mapping) {
	if !a.sampling {
		return
	}
	a.walked = true
	a.walkMap = m
}

// EndAccess closes the observation window: on sampled accesses the
// oracle cross-checks the translation and the energy charge, and on the
// structural cadence a full audit runs. shadowPJ is the independently
// accumulated total of every charge (the conservation reference).
func (a *Auditor) EndAccess(b *energy.Breakdown, shadowPJ float64) {
	if a.sampling {
		a.stats.Sampled++
		a.checkTranslation()
		a.checkEnergy(b)
		a.sampling = false
	}
	if a.accesses%a.cfg.CheckEveryRefs == 0 {
		a.AuditNow(b, shadowPJ)
	}
}

// checkTranslation re-derives the access's translation from the page
// table and range table and compares it with what the fast path served.
//
//eeat:coldpath sampled oracle cross-check; runs once per SampleEvery accesses
func (a *Auditor) checkTranslation() {
	ref, ok := a.st.PT.Lookup(a.va)
	if !ok {
		a.violate(CheckTranslation, "", a.va, "accessed address has no page-table mapping")
		return
	}
	for _, h := range a.pageHits {
		if h.sz != ref.Size {
			a.violate(CheckPageSize, h.name, a.va,
				"hit served as %v but the page table maps a %v page", h.sz, ref.Size)
			continue
		}
		if h.e.Frame != uint64(ref.Frame) {
			a.violate(CheckTranslation, h.name, a.va,
				"cached frame %#x, page table says %#x", h.e.Frame, uint64(ref.Frame))
		}
	}
	want := addr.Translate(ref.Frame, a.va, ref.Size)
	for _, r := range a.rangeHits {
		if !r.Contains(a.va) {
			a.violate(CheckRangeCoherence, "", a.va,
				"served by range [%#x,%#x) that does not contain the address",
				uint64(r.Start), uint64(r.End))
			continue
		}
		if got := r.Translate(a.va); got != want {
			a.violate(CheckTranslation, "", a.va,
				"range translation %#x, page table says %#x", uint64(got), uint64(want))
			continue
		}
		if a.st.RT != nil {
			tr, ok := a.st.RT.Lookup(a.va)
			if !ok {
				a.violate(CheckRangeCoherence, "", a.va,
					"cached range [%#x,%#x) absent from the range table",
					uint64(r.Start), uint64(r.End))
			} else if tr.Translate(a.va) != r.Translate(a.va) {
				a.violate(CheckRangeCoherence, "", a.va,
					"cached range maps to %#x, range table maps to %#x",
					uint64(r.Translate(a.va)), uint64(tr.Translate(a.va)))
			}
		}
	}
	if a.walked && (a.walkMap.Frame != ref.Frame || a.walkMap.Size != ref.Size) {
		a.violate(CheckTranslation, "", a.va,
			"walk returned frame %#x size %v, direct lookup says frame %#x size %v",
			uint64(a.walkMap.Frame), a.walkMap.Size, uint64(ref.Frame), ref.Size)
	}
}

// checkEnergy re-derives the access's expected charge per account from
// the observed events and the energy database, and compares it with the
// ledger movement. It is the oracle's independent charging path — the
// second opinion the differential check compares the simulator against —
// so it is a charging primitive in its own right.
//
//eeat:chargesite
//eeat:coldpath sampled oracle cross-check; runs once per SampleEvery accesses
func (a *Auditor) checkEnergy(after *energy.Breakdown) {
	var expect energy.Breakdown
	for _, ev := range a.events {
		var pj float64
		if ev.refs > 0 {
			pj = float64(ev.refs) * a.st.WalkRefPJ
		} else {
			c, ok := a.st.DB.Lookup(ev.name, ev.ways)
			if !ok {
				a.violate(CheckEnergy, ev.name, a.va,
					"no cost registered at %d ways", ev.ways)
				return
			}
			if ev.write {
				pj = c.WritePJ
			} else {
				pj = c.ReadPJ
			}
		}
		expect.Add(ev.acc, pj)
	}
	for acc := energy.Account(0); acc < energy.NumAccounts; acc++ {
		delta := after.Get(acc) - a.before.Get(acc)
		want := expect.Get(acc)
		if math.Abs(delta-want) > pjTolerance+1e-9*math.Abs(want) {
			a.violate(CheckEnergy, acc.String(), a.va,
				"charged %.6f pJ, recomputed cost is %.6f pJ", delta, want)
			return
		}
	}
}
