// Package inject defines deterministic fault injection for the audit
// layer's mutation-style self-tests: each fault corrupts one well-defined
// piece of simulator state so tests (and operators running -inject) can
// prove the oracle and auditor in internal/audit actually detect that
// fault class. A fault that goes undetected is a hole in the integrity
// layer, exactly as a surviving mutant is a hole in a test suite.
//
// The package is pure data — the simulator in internal/core interprets
// the fault and performs the corruption at the configured point, so the
// injector adds no dependencies and no cost when unused.
package inject

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None injects nothing (the zero value).
	None Kind = iota
	// FlipPFN flips bits of a cached L1-TLB entry's physical frame:
	// a silent payload corruption the translation oracle must catch.
	FlipPFN
	// DropInvalidation makes the next InvalidateRegion skip one
	// structure, leaving stale translations the coherence audit must
	// catch.
	DropInvalidation
	// StaleRange shifts a cached range translation's physical base,
	// desynchronizing it from the range table.
	StaleRange
	// SkewCharge multiplies every subsequent energy charge by a factor,
	// which the oracle's independent energy re-derivation must catch.
	SkewCharge
)

var kindNames = map[Kind]string{
	None:             "none",
	FlipPFN:          "flip-pfn",
	DropInvalidation: "drop-inval",
	StaleRange:       "stale-range",
	SkewCharge:       "skew-charge",
}

// String returns the fault class's spec name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one deterministic fault: what to corrupt and when. The zero
// value injects nothing.
type Fault struct {
	// Kind selects the fault class.
	Kind Kind
	// AfterRefs arms the fault once the simulator has performed this
	// many memory references (0 = from the first reference), making the
	// injection point deterministic and reproducible.
	AfterRefs uint64
	// Target optionally names the structure to corrupt, for fault
	// classes that support it (DropInvalidation). Empty selects the
	// class's default.
	Target string
	// Factor is SkewCharge's multiplier. 0 selects the default (1.5).
	Factor float64
	// Mask is FlipPFN's XOR mask over the cached frame. 0 selects the
	// default (1: flip the lowest frame bit).
	Mask uint64
}

// Validate checks the fault for consistency.
func (f Fault) Validate() error {
	switch f.Kind {
	case None, FlipPFN, DropInvalidation, StaleRange:
	case SkewCharge:
		if f.Factor == 1 {
			return fmt.Errorf("inject: skew-charge factor 1 is a no-op")
		}
		if f.Factor < 0 {
			return fmt.Errorf("inject: negative skew-charge factor %v", f.Factor)
		}
	default:
		return fmt.Errorf("inject: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// String renders the fault in the spec syntax Parse accepts.
func (f Fault) String() string {
	if f.Kind == None {
		return "none"
	}
	s := f.Kind.String()
	if f.AfterRefs > 0 {
		s += "@" + strconv.FormatUint(f.AfterRefs, 10)
	}
	return s
}

// Parse reads a fault spec of the form "kind" or "kind@refs", where
// kind is one of none, flip-pfn, drop-inval, stale-range, skew-charge,
// and refs is the memory-reference count after which the fault arms.
// An empty spec parses as no fault.
func Parse(spec string) (Fault, error) {
	if spec == "" || spec == "none" {
		return Fault{}, nil
	}
	name, refsStr, hasRefs := strings.Cut(spec, "@")
	var f Fault
	found := false
	for k, n := range kindNames {
		if n == name {
			f.Kind = k
			found = true
			break
		}
	}
	if !found || f.Kind == None && name != "none" {
		return Fault{}, fmt.Errorf("inject: unknown fault %q (want flip-pfn, drop-inval, stale-range, skew-charge, or none)", name)
	}
	if hasRefs {
		refs, err := strconv.ParseUint(refsStr, 10, 64)
		if err != nil {
			return Fault{}, fmt.Errorf("inject: bad arming point in %q: %v", spec, err)
		}
		f.AfterRefs = refs
	}
	return f, nil
}
