// Package audit is the simulator's runtime integrity layer: a
// differential translation oracle and a periodic structural auditor
// that cross-check the fast simulation path against the authoritative
// OS state (the page table and the range table) while a run is in
// flight.
//
// The paper's headline numbers — the Table 7 energy splits, the Lite
// way-disable savings, RMM_Lite's overhead bound — are only as
// trustworthy as the simulator's bookkeeping: a silently stale TLB
// entry or a mis-charged picojoule corrupts every regenerated figure
// with no visible symptom. The audit layer turns such wrong-but-quiet
// states into typed ViolationError values:
//
//   - The oracle samples every Nth memory access (Config.SampleEvery)
//     and re-derives, slowly and obviously correctly, what the access
//     should have produced: the translation (cached PFN vs a direct
//     page-table lookup), the page-size choice (hit structure vs the
//     mapping's real size), the range translation (cached range vs the
//     range table), and the access's dynamic-energy charge (recomputed
//     from the observed probe/fill events against the energy database).
//   - The structural auditor runs on a fixed access cadence
//     (Config.CheckEveryRefs), after every InvalidateRegion, and at run
//     end. It promotes the per-structure CheckInvariants methods into
//     in-run checks and adds the cross-structure ones no single
//     structure can see: TLB/page-table coherence, range-TLB/range-table
//     agreement, Lite way-mask consistency, and energy-ledger
//     conservation.
//
// The fault injector in the inject subpackage deterministically
// corrupts simulator state so tests can prove each fault class is
// detected (a mutation-style self-test of the auditor itself).
//
// The layer is strictly observational: it never mutates simulator
// state, never draws randomness, and never charges energy, so an
// audited run produces byte-identical results to an unaudited one.
package audit

import (
	"fmt"

	"xlate/internal/addr"
)

// Defaults for the zero Config fields.
const (
	// DefaultSampleEvery is the oracle sampling cadence when
	// Config.SampleEvery is zero: one cross-checked access in 64.
	DefaultSampleEvery = 64
	// DefaultCheckEveryRefs is the structural-audit cadence when
	// Config.CheckEveryRefs is zero.
	DefaultCheckEveryRefs = 1 << 14
)

// Config parameterizes the integrity layer. The zero value disables it.
type Config struct {
	// Enabled turns the layer on.
	Enabled bool
	// SampleEvery is the oracle cadence: every Nth access is
	// cross-checked (1 = every access). 0 selects DefaultSampleEvery.
	SampleEvery uint64
	// CheckEveryRefs is the structural-audit cadence in accesses.
	// 0 selects DefaultCheckEveryRefs.
	CheckEveryRefs uint64
}

// WithDefaults fills the zero cadence fields.
func (c Config) WithDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.CheckEveryRefs == 0 {
		c.CheckEveryRefs = DefaultCheckEveryRefs
	}
	return c
}

// Stats summarizes the layer's activity over one run.
type Stats struct {
	// Sampled counts accesses the oracle cross-checked.
	Sampled uint64
	// StructuralAudits counts full structural audits performed.
	StructuralAudits uint64
	// Violations counts every violation observed (the first is kept as
	// the run's error; later ones only increment this counter).
	Violations uint64
}

// Violation check categories, the Check field of ViolationError.
const (
	CheckTranslation    = "translation"         // cached PFN disagrees with the page table
	CheckPageSize       = "page-size"           // hit structure's size class disagrees with the mapping
	CheckEnergy         = "energy"              // an access's charge disagrees with the recomputed cost
	CheckTLBCoherence   = "tlb-coherence"       // a cached page translation is stale vs the page table
	CheckRangeCoherence = "range-coherence"     // a cached range translation is stale vs the range table
	CheckStructure      = "structure"           // a structure's own invariants failed
	CheckLiteWays       = "lite-ways"           // Lite way mask inconsistent with controller state
	CheckConservation   = "energy-conservation" // per-account sums diverge from the total ledger
)

// ViolationError is one detected integrity violation: which check
// failed, in which structure, at which address, and why. It surfaces
// through the experiment harness as the cell's RunError cause, marking
// the dependent artifacts not-reproduced.
type ViolationError struct {
	Check     string  // one of the Check* categories
	Structure string  // structure or account involved ("" when global)
	VA        addr.VA // address involved (0 when not address-specific)
	Detail    string
}

func (e *ViolationError) Error() string {
	msg := "audit: " + e.Check + " violation"
	if e.Structure != "" {
		msg += " in " + e.Structure
	}
	if e.VA != 0 {
		msg += fmt.Sprintf(" at %#x", uint64(e.VA))
	}
	return msg + ": " + e.Detail
}
