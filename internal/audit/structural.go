package audit

import (
	"math"

	"xlate/internal/addr"
	"xlate/internal/energy"
	"xlate/internal/tlb"
)

// conservationRelTol bounds the acceptable relative drift between the
// shadow energy total (a single running sum over every charge) and the
// per-account breakdown's sum. The two accumulate the same charges in
// different orders, so only float reassociation error separates them.
const conservationRelTol = 1e-6

// decodeMixed splits a size-qualified key (mixKey in internal/core: the
// page size in the top bits, the VPN below) back into the page base
// address and size. ok is false when the size bits are not a valid page
// size — itself a corruption signal.
func decodeMixed(key uint64) (va addr.VA, sz addr.PageSize, ok bool) {
	sz = addr.PageSize(key >> 60)
	if sz > addr.Page1G {
		return 0, sz, false
	}
	return addr.VA((key & (1<<60 - 1)) << sz.Shift()), sz, true
}

// AuditNow runs a full structural audit immediately: per-structure
// invariants, cross-structure coherence against the page and range
// tables, Lite way-mask consistency, and energy-ledger conservation.
// The simulator calls it on the configured cadence, after every
// InvalidateRegion, and at run end.
//
//eeat:coldpath full structural audit; runs once per CheckEveryRefs accesses
func (a *Auditor) AuditNow(b *energy.Breakdown, shadowPJ float64) {
	a.stats.StructuralAudits++

	// Per-structure invariants.
	for _, t := range []*tlb.SetAssoc{a.st.L14K, a.st.L12M, a.st.L11G, a.st.L2} {
		if t == nil {
			continue
		}
		if err := t.CheckInvariants(); err != nil {
			a.violate(CheckStructure, t.Name(), 0, "%v", err)
		}
	}
	for _, t := range a.st.MMU {
		if err := t.CheckInvariants(); err != nil {
			a.violate(CheckStructure, t.Name(), 0, "%v", err)
		}
	}
	for _, t := range []*tlb.RangeTLB{a.st.L1Rng, a.st.L2Rng} {
		if t == nil {
			continue
		}
		if err := t.CheckInvariants(); err != nil {
			a.violate(CheckStructure, t.Name(), 0, "%v", err)
		}
	}
	if a.st.RT != nil {
		if err := a.st.RT.CheckInvariants(); err != nil {
			a.violate(CheckStructure, "range-table", 0, "%v", err)
		}
	}

	// Page-TLB / page-table coherence. The MMU paging-structure caches
	// are skipped: they hold interior nodes, not leaf translations.
	if a.st.L14K != nil {
		if a.st.MixedL1 {
			a.checkMixedTLB(a.st.L14K)
		} else {
			a.checkPageTLB(a.st.L14K, addr.Page4K)
		}
	}
	if a.st.L12M != nil {
		a.checkPageTLB(a.st.L12M, addr.Page2M)
	}
	if a.st.L11G != nil {
		a.checkPageTLB(a.st.L11G, addr.Page1G)
	}
	if a.st.L2 != nil {
		a.checkMixedTLB(a.st.L2)
	}

	// Range-TLB / range-table coherence.
	a.checkRangeTLB(a.st.L1Rng)
	a.checkRangeTLB(a.st.L2Rng)

	// Lite way-mask consistency.
	if a.st.Lite != nil {
		if err := a.st.Lite.CheckInvariants(); err != nil {
			a.violate(CheckLiteWays, "lite", 0, "%v", err)
		}
	}

	// Energy-ledger conservation.
	total := b.Total()
	if math.Abs(total-shadowPJ) > conservationRelTol*math.Max(math.Abs(total), math.Abs(shadowPJ))+pjTolerance {
		a.violate(CheckConservation, "", 0,
			"breakdown sums to %.6f pJ, shadow total of all charges is %.6f pJ", total, shadowPJ)
	}
}

// checkPageTLB verifies every entry of a single-size page TLB against
// the page table.
func (a *Auditor) checkPageTLB(t *tlb.SetAssoc, sz addr.PageSize) {
	t.ForEach(func(e tlb.Entry) {
		va := addr.VA(e.Key << sz.Shift())
		a.checkCachedPage(t.Name(), e, va, sz)
	})
}

// checkMixedTLB verifies every entry of a size-qualified TLB (the
// unified L2, or a mixed L1) against the page table.
func (a *Auditor) checkMixedTLB(t *tlb.SetAssoc) {
	t.ForEach(func(e tlb.Entry) {
		va, sz, ok := decodeMixed(e.Key)
		if !ok {
			a.violate(CheckTLBCoherence, t.Name(), 0,
				"entry key %#x encodes invalid page size %d", e.Key, int(sz))
			return
		}
		a.checkCachedPage(t.Name(), e, va, sz)
	})
}

// checkCachedPage verifies one cached page translation: the page table
// must map the same address at the same size to the same frame. This
// relies on the simulator's shootdown discipline — every mapping change
// is paired with an InvalidateRegion — so any disagreement is a stale
// or corrupted entry.
func (a *Auditor) checkCachedPage(name string, e tlb.Entry, va addr.VA, sz addr.PageSize) {
	m, ok := a.st.PT.Lookup(va)
	if !ok {
		a.violate(CheckTLBCoherence, name, va,
			"cached translation for an unmapped %v page", sz)
		return
	}
	if m.Size != sz {
		a.violate(CheckTLBCoherence, name, va,
			"cached as a %v page but the page table maps %v", sz, m.Size)
		return
	}
	if e.Frame != uint64(m.Frame) {
		a.violate(CheckTLBCoherence, name, va,
			"cached frame %#x, page table says %#x", e.Frame, uint64(m.Frame))
	}
}

// checkRangeTLB verifies every cached range translation against the
// range table: the cached range must lie inside a table range (table
// ranges can grow by coalescing, so the cached one may be a strict
// subrange) and must translate identically.
func (a *Auditor) checkRangeTLB(t *tlb.RangeTLB) {
	if t == nil || a.st.RT == nil {
		return
	}
	t.ForEach(func(r tlb.RangeEntry) {
		tr, ok := a.st.RT.Lookup(r.Start)
		if !ok || tr.End < r.End {
			a.violate(CheckRangeCoherence, t.Name(), r.Start,
				"cached range [%#x,%#x) not covered by the range table",
				uint64(r.Start), uint64(r.End))
			return
		}
		if tr.Translate(r.Start) != r.PABase {
			a.violate(CheckRangeCoherence, t.Name(), r.Start,
				"cached range maps start to %#x, range table maps it to %#x",
				uint64(r.PABase), uint64(tr.Translate(r.Start)))
		}
	})
}
