package obsflags

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xlate/internal/telemetry"
)

// TestCloseFlushesTraceFooter pins the teardown ordering of Close: the
// tracer must be closed (writing the Chrome-format footer) before the
// trace file is, so the file on disk is complete JSON.
func TestCloseFlushesTraceFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	f := &Flags{TraceOut: path, TraceSample: 1}
	s, err := f.Start(nil, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if s.Tracer == nil {
		t.Fatal("no tracer opened")
	}
	s.Tracer.Emit(s.Tracer.NextTrack(), 1, "test", "event", telemetry.KV{K: "k", V: uint64(7)})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	assertValidChromeTrace(t, path, 1)
}

// TestStartFailureStillFlushesTrace pins the error path: when a later
// component of Start fails (here the status server, handed an
// unresolvable address), the already-opened trace is closed through the
// same ordered teardown, leaving valid JSON on disk rather than a
// truncated file missing its footer.
func TestStartFailureStillFlushesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	f := &Flags{
		TraceOut:    path,
		TraceSample: 1,
		StatusAddr:  "256.256.256.256:0", // unresolvable: NewServer must fail
	}
	s, err := f.Start(nil, nil)
	if err == nil {
		s.Close()
		t.Fatal("Start succeeded with an unresolvable status address")
	}
	assertValidChromeTrace(t, path, 0)
}

// assertValidChromeTrace parses the trace file as the Chrome
// trace_event envelope and checks the event count.
func assertValidChromeTrace(t *testing.T, path string, minEvents int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var envelope struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("trace on disk is not complete JSON (missing footer?): %v\n%s", err, raw)
	}
	if len(envelope.TraceEvents) < minEvents {
		t.Errorf("trace has %d events, want at least %d", len(envelope.TraceEvents), minEvents)
	}
}

// TestCloseIdempotent pins that a second Close is a no-op rather than a
// double-free of the underlying resources.
func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	f := &Flags{TraceOut: path, TraceSample: 1}
	s, err := f.Start(nil, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !strings.HasSuffix(path, ".json") {
		t.Fatal("fixture must use the Chrome trace format")
	}
}
