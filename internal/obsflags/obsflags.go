// Package obsflags bundles the observability command-line surface
// shared by the eeatsim and experiments binaries: event tracing
// (-trace-out/-trace-sample), the live status endpoint (-status-addr),
// and the profiling hooks (-cpuprofile/-memprofile/-pprof-addr). Both
// binaries register the same flags and drive the same lifecycle, so the
// observability story is identical whichever entry point a run uses.
package obsflags

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"

	"xlate/internal/telemetry"
)

// Flags holds the parsed observability options.
type Flags struct {
	TraceOut    string
	TraceSample uint64
	StatusAddr  string
	PprofAddr   string
	CPUProfile  string
	MemProfile  string
}

// Register declares the shared flags on the default flag set and
// returns the value struct Parse will fill.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TraceOut, "trace-out", "", "write a sampled structured event trace to this file (.json/.trace = Chrome trace_event, else JSONL)")
	flag.Uint64Var(&f.TraceSample, "trace-sample", 64, "trace every Nth hot-path event (misses, walks, range hits); rare events always trace")
	flag.StringVar(&f.StatusAddr, "status-addr", "", "serve /metrics (Prometheus) and /status (JSON) on this address while running, e.g. localhost:9090")
	flag.StringVar(&f.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address while running")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// Session is the running observability state opened from the flags.
// Fields are nil when the corresponding flag was not set.
type Session struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	traceFile *os.File
	server    *telemetry.Server
	pprofSrv  *http.Server
	cpuFile   *os.File
	memPath   string
	logf      func(format string, args ...any)
}

// Start opens everything the flags ask for. status feeds the /status
// endpoint (may be nil); logf receives one line per endpoint started
// (may be nil). Always returns a non-nil Session with a Registry, so
// callers can unconditionally wire metrics; Close releases whatever was
// opened, in reverse order.
func (f *Flags) Start(status func() any, logf func(format string, args ...any)) (*Session, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Session{Registry: telemetry.NewRegistry(), memPath: f.MemProfile, logf: logf}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obsflags: trace output: %w", err)
		}
		sample := f.TraceSample
		if sample == 0 {
			sample = 1
		}
		s.traceFile = file
		s.Tracer = telemetry.NewTracer(file, telemetry.FormatForPath(f.TraceOut), sample)
	}
	if f.StatusAddr != "" {
		srv, err := telemetry.NewServer(f.StatusAddr, s.Registry, status)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.server = srv
		logf("status endpoint on http://%s (/metrics, /status)", srv.Addr())
	}
	if f.PprofAddr != "" {
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obsflags: pprof listen %s: %w", f.PprofAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.pprofSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go s.pprofSrv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
		logf("pprof on http://%s/debug/pprof/", ln.Addr())
	}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obsflags: cpu profile: %w", err)
		}
		if err := rpprof.StartCPUProfile(file); err != nil {
			file.Close()
			s.Close()
			return nil, fmt.Errorf("obsflags: cpu profile: %w", err)
		}
		s.cpuFile = file
	}
	return s, nil
}

// Shutdown is the graceful-drain counterpart of Close: the status and
// pprof listeners stop accepting and wait (bounded by ctx) for
// in-flight requests — a scrape racing a drain completes instead of
// being dropped mid-body — then the rest of the session closes as
// Close does.
func (s *Session) Shutdown(ctx context.Context) error {
	var first error
	if s.server != nil {
		if err := s.server.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		s.server = nil
	}
	if s.pprofSrv != nil {
		if err := s.pprofSrv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		s.pprofSrv = nil
	}
	if err := s.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Close flushes the trace, stops the servers and profiles, and writes
// the heap profile. The first error wins; later cleanups still run.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		rpprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.memPath != "" {
		keep(s.writeHeapProfile())
		s.memPath = ""
	}
	if s.pprofSrv != nil {
		keep(s.pprofSrv.Close())
		s.pprofSrv = nil
	}
	if s.server != nil {
		keep(s.server.Close())
		s.server = nil
	}
	if s.Tracer != nil {
		keep(s.Tracer.Close())
		if s.logf != nil {
			s.logf("trace: %d events written", s.Tracer.Events())
		}
		s.Tracer = nil
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	return first
}

func (s *Session) writeHeapProfile() error {
	file, err := os.Create(s.memPath)
	if err != nil {
		return fmt.Errorf("obsflags: heap profile: %w", err)
	}
	runtime.GC() // materialize up-to-date allocation stats
	if err := rpprof.WriteHeapProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("obsflags: heap profile: %w", err)
	}
	return file.Close()
}
