package trace

import (
	"math"
	"testing"

	"xlate/internal/addr"
)

var testWin = Window{Base: 1 << 40, Size: 4 << 20} // 4 MB, 1024 pages

func inWindow(t *testing.T, s Stream, n int, w Window) []addr.VA {
	t.Helper()
	out := make([]addr.VA, n)
	for i := range out {
		va := s.NextVA()
		if va < w.Base || va >= w.Base+addr.VA(w.Size) {
			t.Fatalf("address %#x escapes window [%#x,%#x)", uint64(va), uint64(w.Base), uint64(w.Base)+w.Size)
		}
		out[i] = va
	}
	return out
}

func TestWindowPages(t *testing.T) {
	if got := testWin.Pages(); got != 1024 {
		t.Fatalf("Pages = %d", got)
	}
	if got := (Window{Size: 4097}).Pages(); got != 2 {
		t.Fatalf("Pages(4097) = %d", got)
	}
}

func TestSequential(t *testing.T) {
	s := Sequential(testWin, addr.Bytes4K)
	vas := inWindow(t, s, 2048, testWin)
	// Strictly advancing by one page, wrapping after 1024.
	for i := 1; i < 1024; i++ {
		if vas[i] != vas[i-1]+addr.VA(addr.Bytes4K) {
			t.Fatalf("not sequential at %d", i)
		}
	}
	if vas[1024] != vas[0] {
		t.Fatal("should wrap to start")
	}
}

func TestUniformCoversWindow(t *testing.T) {
	s := Uniform(testWin, 1)
	vas := inWindow(t, s, 20000, testWin)
	pages := make(map[uint64]bool)
	for _, va := range vas {
		pages[addr.VPN(va, addr.Page4K)] = true
	}
	// 20000 uniform draws over 1024 pages should touch nearly all.
	if len(pages) < 1000 {
		t.Fatalf("uniform touched only %d/1024 pages", len(pages))
	}
}

func TestZipfSkew(t *testing.T) {
	s := Zipf(testWin, 1.5, 2)
	vas := inWindow(t, s, 50000, testWin)
	counts := make(map[uint64]int)
	for _, va := range vas {
		counts[addr.VPN(va, addr.Page4K)]++
	}
	// Skew: the top page should hold a large share; many pages unseen
	// or rare.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/50000 < 0.05 {
		t.Fatalf("zipf top page share %.4f too flat", float64(max)/50000)
	}
	if len(counts) < 10 {
		t.Fatalf("zipf touched only %d pages — too peaked to be a working set", len(counts))
	}
}

func TestZipfExponentValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zipf s<=1 should panic")
		}
	}()
	Zipf(testWin, 1.0, 1)
}

func TestChaseFullCycle(t *testing.T) {
	w := Window{Base: 1 << 40, Size: 64 * addr.Bytes4K}
	s := Chase(w, 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		va := s.NextVA()
		seen[addr.VPN(va, addr.Page4K)] = true
	}
	// A full-cycle permutation touches every page exactly once per lap.
	if len(seen) != 64 {
		t.Fatalf("chase touched %d/64 pages in one lap", len(seen))
	}
}

func TestMixWeights(t *testing.T) {
	wA := Window{Base: 1 << 40, Size: 1 << 20}
	wB := Window{Base: 2 << 40, Size: 1 << 20}
	s := Mix(7,
		Weighted{Sequential(wA, 64), 3},
		Weighted{Sequential(wB, 64), 1},
	)
	nA := 0
	for i := 0; i < 10000; i++ {
		if va := s.NextVA(); va < 2<<40 {
			nA++
		}
	}
	frac := float64(nA) / 10000
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("mix fraction = %.3f, want ~0.75", frac)
	}
}

func TestMixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix should panic")
		}
	}()
	Mix(1)
}

func TestPhasedSwitchesAndLoops(t *testing.T) {
	wA := Window{Base: 1 << 40, Size: 1 << 20}
	wB := Window{Base: 2 << 40, Size: 1 << 20}
	s := Phased(
		Phase{Sequential(wA, 64), 10},
		Phase{Sequential(wB, 64), 5},
	)
	var got []bool // true = phase A
	for i := 0; i < 30; i++ {
		got = append(got, s.NextVA() < 2<<40)
	}
	for i := 0; i < 30; i++ {
		inA := i%15 < 10
		if got[i] != inA {
			t.Fatalf("phase wrong at ref %d", i)
		}
	}
}

func TestGeneratorPacing(t *testing.T) {
	g := NewGenerator(Sequential(testWin, 64), 3.5)
	var instrs uint64
	const n = 10000
	for i := 0; i < n; i++ {
		r := g.Next()
		instrs += r.Instrs
	}
	got := float64(instrs) / n
	if math.Abs(got-3.5) > 0.001 {
		t.Fatalf("instructions per ref = %v, want 3.5", got)
	}
}

func TestGeneratorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("instrPerRef < 1 should panic")
		}
	}()
	NewGenerator(Sequential(testWin, 64), 0.5)
}

func TestDeterminism(t *testing.T) {
	mk := func() []addr.VA {
		s := Mix(11,
			Weighted{Zipf(testWin, 1.4, 5), 2},
			Weighted{Chase(testWin, 6), 1},
		)
		return inWindow(t, s, 1000, testWin)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestOddSizedWindowStaysInBounds(t *testing.T) {
	// A window that is not page-multiple must still stay in bounds for
	// every primitive.
	w := Window{Base: 1 << 40, Size: 10*addr.Bytes4K + 123}
	for name, s := range map[string]Stream{
		"seq":   Sequential(w, 333),
		"uni":   Uniform(w, 1),
		"zipf":  Zipf(w, 1.3, 2),
		"chase": Chase(w, 3),
	} {
		for i := 0; i < 5000; i++ {
			va := s.NextVA()
			if va < w.Base || va >= w.Base+addr.VA(w.Size) {
				t.Fatalf("%s: %#x out of bounds", name, uint64(va))
			}
		}
	}
}

func TestBurstRepeatsPages(t *testing.T) {
	s := Burst(Uniform(testWin, 1), 4, 2)
	var pages []uint64
	for i := 0; i < 400; i++ {
		pages = append(pages, addr.VPN(s.NextVA(), addr.Page4K))
	}
	// Every run of 4 consecutive references stays on one page.
	for i := 0; i < 400; i += 4 {
		for j := 1; j < 4; j++ {
			if pages[i+j] != pages[i] {
				t.Fatalf("burst broken at %d: %v", i+j, pages[i:i+4])
			}
		}
	}
	// Distinct pages across bursts (uniform over 1024 pages).
	distinct := map[uint64]bool{}
	for _, p := range pages {
		distinct[p] = true
	}
	if len(distinct) < 50 {
		t.Fatalf("burst stream touched only %d pages", len(distinct))
	}
}

func TestBurstValidation(t *testing.T) {
	inner := Sequential(testWin, 64)
	if got := Burst(inner, 1, 0); got != inner {
		t.Fatal("burst factor 1 should return the inner stream")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("burst factor 0 should panic")
		}
	}()
	Burst(inner, 0, 0)
}
