package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes to the trace decoder: it must
// return an error or a valid slice, never panic, and valid traces must
// round-trip.
func FuzzReadTrace(f *testing.F) {
	var buf bytes.Buffer
	WriteAll(&buf, []Ref{{VA: 0x1000, Instrs: 3}, {VA: 0x7f0000000000, Instrs: 1}})
	f.Add(buf.Bytes())
	f.Add([]byte("XLTRACE1\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode identically.
		var out bytes.Buffer
		if err := WriteAll(&out, refs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(&out)
		if err != nil || len(again) != len(refs) {
			t.Fatalf("round trip failed: %v", err)
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("ref %d changed", i)
			}
		}
	})
}
