package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"xlate/internal/addr"
)

func TestTraceRoundTrip(t *testing.T) {
	refs := []Ref{
		{VA: 0x1000, Instrs: 3},
		{VA: 0x1008, Instrs: 2},
		{VA: 0x7fffffff0000, Instrs: 4}, // large forward jump
		{VA: 0x1000, Instrs: 1},         // large backward jump
		{VA: 0, Instrs: 0},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	// Page-local references should cost only a few bytes each.
	var refs []Ref
	va := addr.VA(1 << 40)
	for i := 0; i < 1000; i++ {
		va += 64
		refs = append(refs, Ref{VA: va, Instrs: 3})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, refs); err != nil {
		t.Fatal(err)
	}
	if perRef := buf.Len() / len(refs); perRef > 4 {
		t.Fatalf("local trace costs %d bytes/ref", perRef)
	}
}

func TestTraceBadHeader(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestTraceTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Ref{{VA: 0x123456, Instrs: 300}}); err != nil {
		t.Fatal(err)
	}
	// Chop off the final byte: the record's instrs varint is cut.
	b := buf.Bytes()[:buf.Len()-1]
	_, err := ReadAll(bytes.NewReader(b))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated trace should fail hard, got %v", err)
	}
}

func TestReplayLoops(t *testing.T) {
	refs := []Ref{{VA: 1, Instrs: 1}, {VA: 2, Instrs: 1}, {VA: 3, Instrs: 1}}
	rp := NewReplay(refs)
	for lap := 0; lap < 3; lap++ {
		for _, want := range refs {
			if got := rp.Next(); got != want {
				t.Fatalf("lap %d: got %+v want %+v", lap, got, want)
			}
		}
	}
	if rp.Laps != 3 {
		t.Fatalf("Laps = %d", rp.Laps)
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replay should panic")
		}
	}()
	NewReplay(nil)
}

// Property: any reference sequence round-trips exactly.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n)+1)
		for i := range refs {
			refs[i] = Ref{
				VA:     addr.VA(rng.Uint64() & ((1 << 48) - 1)),
				Instrs: uint64(rng.Intn(1000)),
			}
		}
		var buf bytes.Buffer
		if WriteAll(&buf, refs) != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
