// Package trace generates synthetic memory-reference streams.
//
// The paper drives its TLB simulator with Pin-instrumented SPEC2006,
// BioBench and PARSEC binaries. Those binaries (and 50-billion-
// instruction traces of them) are not reproducible here, so this package
// provides the substitution documented in DESIGN.md §1: composable,
// deterministic address-stream primitives from which
// internal/workloads builds a calibrated model of each benchmark's TLB
// behaviour. Only two properties of a reference stream matter to the
// translation path — which pages are touched in what temporal pattern,
// and how many instructions elapse per memory reference — and both are
// first-class here.
package trace

import (
	"fmt"
	"math/rand"

	"xlate/internal/addr"
)

// Ref is one memory reference: the virtual address accessed and the
// number of instructions the program executed to issue it (including
// the reference's own instruction). Instrs converts reference counts to
// the instruction counts that MPKI and Lite's intervals are defined
// over.
type Ref struct {
	VA     addr.VA
	Instrs uint64
}

// Stream produces an infinite sequence of virtual addresses.
type Stream interface {
	NextVA() addr.VA
}

// Window is the address interval [Base, Base+Size) a primitive operates
// on. It deliberately mirrors vm.Region without importing it.
type Window struct {
	Base addr.VA
	Size uint64
}

// Pages returns the number of 4 KB pages the window spans.
func (w Window) Pages() uint64 { return (w.Size + addr.Bytes4K - 1) / addr.Bytes4K }

func (w Window) validate() {
	if w.Size == 0 {
		panic("trace: empty window")
	}
}

// --- Primitives ---

type sequential struct {
	w      Window
	stride uint64
	off    uint64
}

// Sequential returns a stream that scans the window with the given byte
// stride, wrapping at the end — the streaming pattern of array sweeps
// (zeusmp, lbm, streaming phases of mummer).
func Sequential(w Window, stride uint64) Stream {
	w.validate()
	if stride == 0 {
		panic("trace: zero stride")
	}
	return &sequential{w: w, stride: stride}
}

func (s *sequential) NextVA() addr.VA {
	va := s.w.Base + addr.VA(s.off)
	s.off += s.stride
	if s.off >= s.w.Size {
		s.off = 0
	}
	return va
}

type uniform struct {
	w   Window
	rng *rand.Rand
}

// Uniform returns a stream of uniformly random addresses over the
// window — the cache-hostile pattern of canneal's random swaps and
// mcf's pointer-heavy network simplex.
func Uniform(w Window, seed int64) Stream {
	w.validate()
	return &uniform{w: w, rng: rand.New(rand.NewSource(seed))}
}

func (u *uniform) NextVA() addr.VA {
	return u.w.Base + addr.VA(uint64(u.rng.Int63n(int64(u.w.Size))))
}

// chunkPages is the 2 MB huge-page span in 4 KB pages; the Zipf
// rank-to-page mapping preserves locality at this granularity.
const chunkPages = 512

type zipf struct {
	w     Window
	rng   *rand.Rand
	z     *rand.Zipf
	pages uint64
	// Two-level permutation: consecutive ranks stay inside the same
	// 2 MB chunk (inner permutation) and consecutive chunks of ranks
	// are scattered across the window (chunk permutation). Hot pages
	// are therefore scattered at 4 KB granularity for realistic set
	// conflicts, yet still *cluster* at 2 MB granularity — real
	// programs' hot data lives in a few hot huge pages, which is the
	// very locality transparent huge pages exploit. A flat random
	// permutation would make huge-page TLBs useless against any skewed
	// working set, contradicting the measured behaviour THP relies on.
	chunkPerm []uint32
	innerPerm []uint16
}

// Zipf returns a stream whose page popularity follows a Zipf
// distribution with exponent s > 1 over the window's 4 KB pages, with a
// uniformly random offset within the page. This is the workhorse for
// modeling working sets with skewed reuse (astar, omnetpp, xalancbmk).
func Zipf(w Window, s float64, seed int64) Stream {
	w.validate()
	if s <= 1 {
		panic(fmt.Sprintf("trace: zipf exponent %v must be > 1", s))
	}
	rng := rand.New(rand.NewSource(seed))
	pages := w.Pages()
	z := rand.NewZipf(rng, s, 1, pages-1)
	nChunks := (pages + chunkPages - 1) / chunkPages
	// Cap the chunk permutation (1M chunks = 2 TB windows); beyond the
	// cap chunks alias, which only affects cold-tail placement.
	permLen := nChunks
	if permLen > 1<<20 {
		permLen = 1 << 20
	}
	chunkPerm := make([]uint32, permLen)
	for i := range chunkPerm {
		chunkPerm[i] = uint32(i)
	}
	rng.Shuffle(len(chunkPerm), func(i, j int) { chunkPerm[i], chunkPerm[j] = chunkPerm[j], chunkPerm[i] })
	innerPerm := make([]uint16, chunkPages)
	for i := range innerPerm {
		innerPerm[i] = uint16(i)
	}
	rng.Shuffle(len(innerPerm), func(i, j int) { innerPerm[i], innerPerm[j] = innerPerm[j], innerPerm[i] })
	return &zipf{w: w, rng: rng, z: z, pages: pages, chunkPerm: chunkPerm, innerPerm: innerPerm}
}

func (z *zipf) NextVA() addr.VA {
	rank := z.z.Uint64()
	chunk := uint64(z.chunkPerm[(rank/chunkPages)%uint64(len(z.chunkPerm))])
	inner := uint64(z.innerPerm[rank%chunkPages])
	page := (chunk*chunkPages + inner) % z.pages
	off := page<<addr.Shift4K + uint64(z.rng.Int63n(addr.Bytes4K))
	if off >= z.w.Size {
		off %= z.w.Size
	}
	return z.w.Base + addr.VA(off)
}

type chase struct {
	w     Window
	pages uint64
	cur   uint64
	a, c  uint64
	rng   *rand.Rand
}

// Chase returns a pointer-chasing stream: a full-cycle walk over the
// window's pages generated by a linear-congruential permutation, so
// successive references depend on each other and revisit a page only
// after touching every other page — the worst case for TLB reuse (mcf's
// cold traversals, GemsFDTD's large-grid sweeps in scrambled order).
func Chase(w Window, seed int64) Stream {
	w.validate()
	rng := rand.New(rand.NewSource(seed))
	pages := w.Pages()
	// LCG over [0, pages) with full period: a ≡ 1 (mod 4), c odd, modulus
	// a power of two ≥ pages (skip values outside the window).
	mod := uint64(1)
	for mod < pages {
		mod <<= 1
	}
	a := (uint64(rng.Int63())/4)*4 + 1
	c := uint64(rng.Int63()) | 1
	return &chase{w: w, pages: pages, cur: uint64(rng.Int63()) % pages, a: a % mod, c: c % mod, rng: rng}
}

func (ch *chase) NextVA() addr.VA {
	mod := uint64(1)
	for mod < ch.pages {
		mod <<= 1
	}
	for {
		ch.cur = (ch.a*ch.cur + ch.c) & (mod - 1)
		if ch.cur < ch.pages {
			break
		}
	}
	off := ch.cur<<addr.Shift4K + uint64(ch.rng.Int63n(addr.Bytes4K))
	if off >= ch.w.Size {
		off = ch.cur << addr.Shift4K
	}
	return ch.w.Base + addr.VA(off)
}

// --- Combinators ---

type burst struct {
	inner Stream
	k     int
	left  int
	page  addr.VA
	rng   *rand.Rand
}

// Burst wraps a stream with within-page spatial locality: each page the
// inner stream produces is referenced k times (at varying offsets)
// before the next page is drawn. Real programs touch several words of a
// page in short order; this burstiness is what concentrates TLB hits at
// the MRU stack position and lets way-disabling succeed.
func Burst(inner Stream, k int, seed int64) Stream {
	if k < 1 {
		panic(fmt.Sprintf("trace: burst factor %d < 1", k))
	}
	if k == 1 {
		return inner
	}
	return &burst{inner: inner, k: k, rng: rand.New(rand.NewSource(seed))}
}

func (b *burst) NextVA() addr.VA {
	if b.left == 0 {
		b.page = addr.PageBase(b.inner.NextVA(), addr.Page4K)
		b.left = b.k
	}
	b.left--
	return b.page + addr.VA(b.rng.Int63n(addr.Bytes4K))
}

// Weighted pairs a stream with a selection weight.
type Weighted struct {
	Stream Stream
	Weight float64
}

type mix struct {
	rng     *rand.Rand
	streams []Stream
	cum     []float64
}

// Mix returns a stream that, for each reference, picks one of the
// weighted sub-streams at random — modeling a program touching several
// data structures in an interleaved fashion.
func Mix(seed int64, parts ...Weighted) Stream {
	if len(parts) == 0 {
		panic("trace: empty mix")
	}
	m := &mix{rng: rand.New(rand.NewSource(seed))}
	var total float64
	for _, p := range parts {
		if p.Weight <= 0 {
			panic(fmt.Sprintf("trace: non-positive weight %v", p.Weight))
		}
		total += p.Weight
	}
	var acc float64
	for _, p := range parts {
		acc += p.Weight / total
		m.streams = append(m.streams, p.Stream)
		m.cum = append(m.cum, acc)
	}
	return m
}

func (m *mix) NextVA() addr.VA {
	x := m.rng.Float64()
	for i, c := range m.cum {
		if x < c {
			return m.streams[i].NextVA()
		}
	}
	return m.streams[len(m.streams)-1].NextVA()
}

// Phase is one stage of a phased stream.
type Phase struct {
	Stream Stream
	Refs   uint64 // references before advancing to the next phase
}

type phased struct {
	phases []Phase
	idx    int
	left   uint64
}

// Phased returns a stream that cycles through the given phases,
// switching after each phase's reference budget — the phase changes of
// Figure 4 (astar, GemsFDTD, mcf) that force Lite to adapt.
func Phased(phases ...Phase) Stream {
	if len(phases) == 0 {
		panic("trace: no phases")
	}
	for _, p := range phases {
		if p.Refs == 0 {
			panic("trace: zero-length phase")
		}
	}
	return &phased{phases: phases, left: phases[0].Refs}
}

func (p *phased) NextVA() addr.VA {
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Refs
	}
	p.left--
	return p.phases[p.idx].Stream.NextVA()
}

// --- Pacing ---

// Generator converts an address stream into a reference stream by
// attaching instruction counts: on average instrPerRef instructions per
// memory reference (fractional rates are accumulated exactly).
type Generator struct {
	stream Stream
	ipr    float64
	acc    float64
}

// NewGenerator paces the stream at instrPerRef instructions per
// reference (must be ≥ 1; typical x86 code issues a memory operation
// every ~2.5–4 instructions).
func NewGenerator(stream Stream, instrPerRef float64) *Generator {
	if instrPerRef < 1 {
		panic(fmt.Sprintf("trace: instrPerRef %v < 1", instrPerRef))
	}
	return &Generator{stream: stream, ipr: instrPerRef}
}

// Next returns the next reference.
func (g *Generator) Next() Ref {
	g.acc += g.ipr
	n := uint64(g.acc)
	g.acc -= float64(n)
	return Ref{VA: g.stream.NextVA(), Instrs: n}
}
