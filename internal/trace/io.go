package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xlate/internal/addr"
)

// The on-disk trace format replaces the role of Pin traces for users who
// want to drive the simulator with their own memory-reference streams:
//
//	header:  "XLTRACE1\n"
//	records: zigzag-varint(va delta from previous va), uvarint(instrs)
//
// Delta encoding keeps spatially local traces small (a few bytes per
// reference); the format is streaming-friendly in both directions.

var traceMagic = []byte("XLTRACE1\n")

// Writer encodes references to an io.Writer.
type Writer struct {
	w    *bufio.Writer
	prev uint64
	buf  [2 * binary.MaxVarintLen64]byte
}

// NewWriter writes the trace header and returns a Writer. Call Flush
// when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one reference.
func (tw *Writer) Write(r Ref) error {
	delta := int64(uint64(r.VA) - tw.prev) // wrapping delta
	n := binary.PutVarint(tw.buf[:], delta)
	n += binary.PutUvarint(tw.buf[n:], r.Instrs)
	tw.prev = uint64(r.VA)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	return nil
}

// Flush writes any buffered records through to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes references from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	prev uint64
}

// NewReader validates the trace header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != string(traceMagic) {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	return &Reader{r: br}, nil
}

// Next decodes the next reference, returning io.EOF at a clean end of
// trace.
func (tr *Reader) Next() (Ref, error) {
	delta, err := binary.ReadVarint(tr.r)
	if err == io.EOF {
		return Ref{}, io.EOF
	}
	if err != nil {
		return Ref{}, fmt.Errorf("trace: reading va: %w", err)
	}
	instrs, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	tr.prev += uint64(delta)
	return Ref{VA: addr.VA(tr.prev), Instrs: instrs}, nil
}

// ReadAll decodes an entire trace into memory.
func ReadAll(r io.Reader) ([]Ref, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Ref
	for {
		ref, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
	}
}

// WriteAll encodes a complete trace.
func WriteAll(w io.Writer, refs []Ref) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RefSource is anything that yields an infinite reference stream; both
// Generator and Replay implement it, and the simulator consumes it.
type RefSource interface {
	Next() Ref
}

// Replay cycles through a recorded reference slice, satisfying
// RefSource for replayed traces. Looping lets a short recorded trace
// fill any instruction budget, matching how the paper loops simulation
// windows.
type Replay struct {
	refs []Ref
	pos  int
	// Laps counts completed passes over the trace.
	Laps int
}

// NewReplay wraps recorded references. The slice must be non-empty and
// is not copied.
func NewReplay(refs []Ref) *Replay {
	if len(refs) == 0 {
		panic("trace: empty replay")
	}
	return &Replay{refs: refs}
}

// Next returns the next recorded reference, wrapping at the end.
func (rp *Replay) Next() Ref {
	r := rp.refs[rp.pos]
	rp.pos++
	if rp.pos == len(rp.refs) {
		rp.pos = 0
		rp.Laps++
	}
	return r
}
