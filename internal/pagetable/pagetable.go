// Package pagetable implements the x86-64 four-level radix page table.
//
// The table is a real tree, not a flat map: the hardware page walker and
// the MMU paging-structure caches in internal/mmucache derive their
// memory-reference counts from the tree's levels, exactly as the paper's
// energy and performance models require (a full walk costs 4, 3 or 2
// memory references for 4 KB, 2 MB and 1 GB pages; a paging-structure
// cache hit skips the levels above the hit).
package pagetable

import (
	"fmt"

	"xlate/internal/addr"
)

// Mapping is a leaf translation: the physical frame backing a page of
// the given size.
type Mapping struct {
	Frame addr.PA
	Size  addr.PageSize
}

type slot struct {
	child *node   // non-leaf: next level table
	leaf  bool    // terminal mapping at this level
	frame addr.PA // valid when leaf
}

type node struct {
	slots [512]slot
	used  int // occupied slots, for pruning on unmap
}

// Table is one process's page table.
type Table struct {
	root *node
	// count of live leaf mappings per page size, for footprint reporting.
	count [addr.NumPageSizes]uint64
}

// New returns an empty page table.
func New() *Table { return &Table{root: &node{}} }

// leafLevel returns the tree level at which a page of size s terminates.
func leafLevel(s addr.PageSize) addr.Level {
	switch s {
	case addr.Page4K:
		return addr.LvlPT
	case addr.Page2M:
		return addr.LvlPD
	case addr.Page1G:
		return addr.LvlPDPT
	}
	panic(fmt.Sprintf("pagetable: invalid page size %d", int(s)))
}

// Map installs a translation from the page of size s containing va to
// the physical frame. Both va and frame must be aligned to the page
// size. Mapping fails if the address is already covered by any existing
// mapping (of any size) or if a smaller-page subtree already occupies
// the slot a huge page needs.
func (t *Table) Map(va addr.VA, s addr.PageSize, frame addr.PA) error {
	if !addr.IsAligned(uint64(va), s.Bytes()) {
		return fmt.Errorf("pagetable: va %#x not aligned to %v", uint64(va), s)
	}
	if !addr.IsAligned(uint64(frame), s.Bytes()) {
		return fmt.Errorf("pagetable: frame %#x not aligned to %v", uint64(frame), s)
	}
	target := leafLevel(s)
	n := t.root
	for lvl := addr.LvlPML4; ; lvl++ {
		sl := &n.slots[lvl.Index(va)]
		if lvl == target {
			if sl.leaf {
				return fmt.Errorf("pagetable: va %#x already mapped at %v", uint64(va), lvl)
			}
			if sl.child != nil {
				return fmt.Errorf("pagetable: va %#x: %v slot occupied by a smaller-page subtree", uint64(va), lvl)
			}
			sl.leaf = true
			sl.frame = frame
			n.used++
			t.count[s]++
			return nil
		}
		if sl.leaf {
			return fmt.Errorf("pagetable: va %#x already covered by a %v-level huge page", uint64(va), lvl)
		}
		if sl.child == nil {
			sl.child = &node{}
			n.used++
		}
		n = sl.child
	}
}

// Lookup translates va, returning the leaf mapping covering it.
func (t *Table) Lookup(va addr.VA) (Mapping, bool) {
	n := t.root
	for lvl := addr.LvlPML4; lvl <= addr.LvlPT; lvl++ {
		sl := &n.slots[lvl.Index(va)]
		if sl.leaf {
			return Mapping{Frame: sl.frame, Size: sizeAtLevel(lvl)}, true
		}
		if sl.child == nil {
			return Mapping{}, false
		}
		n = sl.child
	}
	return Mapping{}, false
}

func sizeAtLevel(l addr.Level) addr.PageSize {
	switch l {
	case addr.LvlPDPT:
		return addr.Page1G
	case addr.LvlPD:
		return addr.Page2M
	case addr.LvlPT:
		return addr.Page4K
	}
	panic(fmt.Sprintf("pagetable: no page size terminates at %v", l))
}

// Unmap removes the leaf mapping covering va, pruning now-empty interior
// nodes. It returns the removed mapping.
func (t *Table) Unmap(va addr.VA) (Mapping, error) {
	type step struct {
		n  *node
		sl *slot
	}
	var path []step
	n := t.root
	for lvl := addr.LvlPML4; lvl <= addr.LvlPT; lvl++ {
		sl := &n.slots[lvl.Index(va)]
		path = append(path, step{n, sl})
		if sl.leaf {
			m := Mapping{Frame: sl.frame, Size: sizeAtLevel(lvl)}
			*sl = slot{}
			n.used--
			t.count[m.Size]--
			// Prune empty interior nodes bottom-up.
			for i := len(path) - 2; i >= 0; i-- {
				child := path[i+1].n
				if child.used != 0 {
					break
				}
				*path[i].sl = slot{}
				path[i].n.used--
			}
			return m, nil
		}
		if sl.child == nil {
			break
		}
		n = sl.child
	}
	return Mapping{}, fmt.Errorf("pagetable: va %#x not mapped", uint64(va))
}

// Translate performs a full virtual-to-physical translation of va.
func (t *Table) Translate(va addr.VA) (addr.PA, bool) {
	m, ok := t.Lookup(va)
	if !ok {
		return 0, false
	}
	return addr.Translate(m.Frame, va, m.Size), true
}

// Count returns the number of live leaf mappings of the given size.
func (t *Table) Count(s addr.PageSize) uint64 { return t.count[s] }

// MappedBytes returns the total bytes covered by live mappings.
func (t *Table) MappedBytes() uint64 {
	var b uint64
	for s := addr.Page4K; s <= addr.Page1G; s++ {
		b += t.count[s] * s.Bytes()
	}
	return b
}

// Walker models the hardware page-table walker. It is stateless; the
// caller supplies the level the walk can start from (as determined by
// the MMU paging-structure caches) and receives the mapping plus the
// number of page-table memory references the walk performed.
type Walker struct {
	table *Table
}

// NewWalker returns a walker over the given table.
func NewWalker(t *Table) *Walker { return &Walker{table: t} }

// Walk translates va starting from startLevel (LvlPML4 for a full walk;
// deeper levels when a paging-structure cache supplied the intermediate
// entry). It returns the leaf mapping, the number of memory references
// performed (one per level visited, including the leaf), and whether the
// translation exists. A failed walk still counts the references it made
// before faulting.
//
//eeat:hotpath
func (w *Walker) Walk(va addr.VA, startLevel addr.Level) (Mapping, int, bool) {
	// Re-descend from the root without charging the skipped levels:
	// the tree must be traversed structurally, but only levels >=
	// startLevel cost memory references.
	n := w.table.root
	refs := 0
	for lvl := addr.LvlPML4; lvl <= addr.LvlPT; lvl++ {
		if lvl >= startLevel {
			refs++
		}
		sl := &n.slots[lvl.Index(va)]
		if sl.leaf {
			return Mapping{Frame: sl.frame, Size: sizeAtLevel(lvl)}, refs, true
		}
		if sl.child == nil {
			return Mapping{}, refs, false
		}
		n = sl.child
	}
	return Mapping{}, refs, false
}
