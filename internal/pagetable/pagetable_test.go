package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xlate/internal/addr"
)

func TestMapLookup4K(t *testing.T) {
	pt := New()
	va := addr.VA(0x7f0012345000)
	if err := pt.Map(va, addr.Page4K, 0xabc000); err != nil {
		t.Fatal(err)
	}
	m, ok := pt.Lookup(va + 0xfff)
	if !ok || m.Size != addr.Page4K || m.Frame != 0xabc000 {
		t.Fatalf("Lookup = %+v ok=%v", m, ok)
	}
	if _, ok := pt.Lookup(va + 0x1000); ok {
		t.Fatal("next page should not be mapped")
	}
	pa, ok := pt.Translate(va + 0x123)
	if !ok || pa != 0xabc123 {
		t.Fatalf("Translate = %#x ok=%v", uint64(pa), ok)
	}
}

func TestMapHugePages(t *testing.T) {
	pt := New()
	va2m := addr.VA(0x40000000)
	if err := pt.Map(va2m, addr.Page2M, 2<<20); err != nil {
		t.Fatal(err)
	}
	m, ok := pt.Lookup(va2m + (1 << 20))
	if !ok || m.Size != addr.Page2M {
		t.Fatalf("2MB lookup = %+v ok=%v", m, ok)
	}
	va1g := addr.VA(0x80000000)
	if err := pt.Map(va1g, addr.Page1G, 1<<30); err != nil {
		t.Fatal(err)
	}
	m, ok = pt.Lookup(va1g + (512 << 20))
	if !ok || m.Size != addr.Page1G {
		t.Fatalf("1GB lookup = %+v ok=%v", m, ok)
	}
	if pt.Count(addr.Page2M) != 1 || pt.Count(addr.Page1G) != 1 {
		t.Fatal("counts wrong")
	}
	want := uint64(addr.Bytes2M + addr.Bytes1G)
	if pt.MappedBytes() != want {
		t.Fatalf("MappedBytes = %d, want %d", pt.MappedBytes(), want)
	}
}

func TestMapAlignmentErrors(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1234, addr.Page4K, 0); err == nil {
		t.Fatal("misaligned va should fail")
	}
	if err := pt.Map(0x1000, addr.Page4K, 0x123); err == nil {
		t.Fatal("misaligned frame should fail")
	}
	if err := pt.Map(addr.VA(1<<20), addr.Page2M, 0); err == nil {
		t.Fatal("2MB map at 1MB alignment should fail")
	}
}

func TestMapConflicts(t *testing.T) {
	pt := New()
	va := addr.VA(0x40000000) // 1GB aligned
	if err := pt.Map(va, addr.Page4K, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va, addr.Page4K, 0x2000); err == nil {
		t.Fatal("duplicate 4K map should fail")
	}
	// 2MB page over an existing 4K subtree must fail.
	if err := pt.Map(va, addr.Page2M, 0); err == nil {
		t.Fatal("2MB map over 4K subtree should fail")
	}
	// 4K page under an existing huge page must fail.
	va2 := va + addr.VA(addr.Bytes2M)
	if err := pt.Map(va2, addr.Page2M, 2<<20); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va2+0x1000, addr.Page4K, 0x3000); err == nil {
		t.Fatal("4K map under 2MB page should fail")
	}
}

func TestUnmapAndPrune(t *testing.T) {
	pt := New()
	va := addr.VA(0x7f0012345000)
	if err := pt.Map(va, addr.Page4K, 0xabc000); err != nil {
		t.Fatal(err)
	}
	m, err := pt.Unmap(va)
	if err != nil || m.Frame != 0xabc000 || m.Size != addr.Page4K {
		t.Fatalf("Unmap = %+v err=%v", m, err)
	}
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("unmapped va should not resolve")
	}
	if pt.Count(addr.Page4K) != 0 {
		t.Fatal("count not decremented")
	}
	// Pruning: root should be empty again, so a 1GB map in the same
	// region succeeds (no leftover subtree).
	if err := pt.Map(addr.PageBase(va, addr.Page1G), addr.Page1G, 1<<30); err != nil {
		t.Fatalf("map after prune: %v", err)
	}
	if _, err := pt.Unmap(va + 0x100000000); err == nil {
		t.Fatal("unmap of unmapped va should fail")
	}
}

func TestWalkerReferenceCounts(t *testing.T) {
	pt := New()
	w := NewWalker(pt)
	va4k := addr.VA(0x1000)
	pt.Map(va4k, addr.Page4K, 0x1000)
	va2m := addr.VA(0x40000000)
	pt.Map(va2m, addr.Page2M, 2<<20)
	va1g := addr.VA(0x80000000)
	pt.Map(va1g, addr.Page1G, 1<<30)

	cases := []struct {
		va    addr.VA
		start addr.Level
		refs  int
		size  addr.PageSize
	}{
		// Full walks: 4, 3, 2 refs for 4K, 2M, 1G (paper §3.2).
		{va4k, addr.LvlPML4, 4, addr.Page4K},
		{va2m, addr.LvlPML4, 3, addr.Page2M},
		{va1g, addr.LvlPML4, 2, addr.Page1G},
		// MMU-cache-accelerated walks.
		{va4k, addr.LvlPT, 1, addr.Page4K},   // PDE cache hit
		{va4k, addr.LvlPD, 2, addr.Page4K},   // PDPTE cache hit
		{va4k, addr.LvlPDPT, 3, addr.Page4K}, // PML4 cache hit
		{va2m, addr.LvlPD, 1, addr.Page2M},   // PDPTE cache hit
		{va2m, addr.LvlPDPT, 2, addr.Page2M}, // PML4 cache hit
		{va1g, addr.LvlPDPT, 1, addr.Page1G}, // PML4 cache hit
	}
	for _, c := range cases {
		m, refs, ok := w.Walk(c.va, c.start)
		if !ok || refs != c.refs || m.Size != c.size {
			t.Errorf("Walk(%#x, from %v) = size %v refs %d ok %v; want size %v refs %d",
				uint64(c.va), c.start, m.Size, refs, ok, c.size, c.refs)
		}
	}
}

func TestWalkerFault(t *testing.T) {
	pt := New()
	w := NewWalker(pt)
	// Empty table: walk faults after 1 reference (the root PML4E read).
	if _, refs, ok := w.Walk(0x1000, addr.LvlPML4); ok || refs != 1 {
		t.Fatalf("fault walk refs = %d ok = %v; want 1, false", refs, ok)
	}
	// Map a sibling page so interior nodes exist down to the PT; a walk
	// to an unmapped 4K page in the same PT reads all 4 levels.
	pt.Map(0x2000, addr.Page4K, 0x2000)
	if _, refs, ok := w.Walk(0x1000, addr.LvlPML4); ok || refs != 4 {
		t.Fatalf("deep fault walk refs = %d ok = %v; want 4, false", refs, ok)
	}
}

// Property: Map then Translate agrees with addr.Translate for every page
// size, and Unmap restores non-presence.
func TestQuickMapTranslateUnmap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := New()
		sizes := []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G}
		type m struct {
			va addr.VA
			s  addr.PageSize
			fr addr.PA
		}
		var maps []m
		for i := 0; i < 50; i++ {
			s := sizes[rng.Intn(3)]
			// Spread mappings across 1GB-aligned slots to avoid overlap:
			// each iteration uses its own 1GB region.
			region := uint64(i) << addr.Shift1G
			off := addr.AlignDown(uint64(rng.Int63n(1<<addr.Shift1G)), s.Bytes())
			va := addr.VA(region | off)
			fr := addr.PA(addr.AlignDown(uint64(rng.Int63n(1<<40)), s.Bytes()))
			if s == addr.Page1G {
				off = 0
				va = addr.VA(region)
			}
			if err := pt.Map(va, s, fr); err != nil {
				return false
			}
			maps = append(maps, m{va, s, fr})
		}
		for _, mm := range maps {
			probe := mm.va + addr.VA(rng.Int63n(int64(mm.s.Bytes())))
			pa, ok := pt.Translate(probe)
			if !ok || pa != addr.Translate(mm.fr, probe, mm.s) {
				return false
			}
		}
		for _, mm := range maps {
			if _, err := pt.Unmap(mm.va); err != nil {
				return false
			}
			if _, ok := pt.Lookup(mm.va); ok {
				return false
			}
		}
		return pt.MappedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: walker reference counts equal levels visited — full walk of
// a mapped page always costs exactly Size.WalkRefs() references.
func TestQuickWalkRefsMatchPageSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := New()
		w := NewWalker(pt)
		sizes := []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G}
		for i := 0; i < 30; i++ {
			s := sizes[rng.Intn(3)]
			va := addr.VA(uint64(i) << addr.Shift1G)
			if err := pt.Map(va, s, addr.PA(uint64(i)<<addr.Shift1G)); err != nil {
				return false
			}
			_, refs, ok := w.Walk(va, addr.LvlPML4)
			if !ok || refs != s.WalkRefs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
