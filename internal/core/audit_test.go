package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"xlate/internal/addr"
	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/energy"
	"xlate/internal/trace"
	"xlate/internal/vm"
)

// auditedParams returns the kind's defaults with a tight audit
// configuration: every access oracle-checked, structural audits every 64
// accesses.
func auditedParams(kind ConfigKind) Params {
	p := DefaultParams(kind)
	p.Audit = audit.Config{Enabled: true, SampleEvery: 1, CheckEveryRefs: 64}
	return p
}

// TestAuditCleanRun: with the oracle checking every access and frequent
// structural audits, every configuration must complete a mixed-locality
// run with zero violations — the fast path and the slow oracle agree on
// every translation, page-size choice, and energy charge.
func TestAuditCleanRun(t *testing.T) {
	kinds := append(AllConfigs(), ExtendedConfigs()...)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.5), Seed: 11})
			reg, err := as.Mmap(48 << 20)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := NewSimulator(auditedParams(kind), as)
			if err != nil {
				t.Fatal(err)
			}
			stream := trace.Mix(5,
				trace.Weighted{Stream: trace.Zipf(window(reg), 1.6, 6), Weight: 0.8},
				trace.Weighted{Stream: trace.Uniform(window(reg), 7), Weight: 0.2},
			)
			res, err := sim.RunContext(context.Background(), trace.NewGenerator(stream, 3), 300_000)
			if err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if res.Audit.Sampled == 0 {
				t.Error("oracle sampled nothing")
			}
			if res.Audit.StructuralAudits == 0 {
				t.Error("no structural audits ran")
			}
			if res.Audit.Violations != 0 {
				t.Errorf("%d violations on a clean run", res.Audit.Violations)
			}
		})
	}
}

// TestAuditByteIdentical: the audit layer is observational — attaching
// it must not change a single counter, energy account, series point, or
// Lite decision. (Lite draws randomness; an auditor that consumed even
// one extra draw would diverge here.)
func TestAuditByteIdentical(t *testing.T) {
	for _, kind := range []ConfigKind{CfgTLBLite, CfgRMMLite, CfgCombined} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			run := func(audited bool) Result {
				as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.5), Seed: 7})
				reg, err := as.Mmap(32 << 20)
				if err != nil {
					t.Fatal(err)
				}
				p := DefaultParams(kind)
				p.Lite.IntervalInstrs = 100_000
				p.SeriesIntervalInstrs = 50_000
				if audited {
					p.Audit = audit.Config{Enabled: true, SampleEvery: 1, CheckEveryRefs: 64}
				}
				sim, err := NewSimulator(p, as)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.RunContext(context.Background(),
					trace.NewGenerator(trace.Zipf(window(reg), 1.8, 5), 3), 1_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain, audited := run(false), run(true)
			if audited.Audit.Sampled == 0 || audited.Audit.Violations != 0 {
				t.Fatalf("audited run: %+v", audited.Audit)
			}
			audited.Audit = audit.Stats{}
			if !reflect.DeepEqual(plain, audited) {
				t.Errorf("audit changed the result:\nplain:   %+v\naudited: %+v", plain, audited)
			}
		})
	}
}

// TestFaultInjectionMatrix is the mutation-style self-test of the
// integrity layer: every injectable fault class must be detected and
// classified into one of its expected check categories. An undetected
// fault here means real corruption of that shape would silently skew
// the reproduced tables.
func TestFaultInjectionMatrix(t *testing.T) {
	// genericRun drives an audited simulator with the fault installed
	// and returns the run's error.
	genericRun := func(kind ConfigKind, coverage float64, size, instrs uint64) func(*testing.T, inject.Fault) error {
		return func(t *testing.T, f inject.Fault) error {
			t.Helper()
			as := vm.New(vm.Config{Policy: PolicyFor(kind, coverage), Seed: 1})
			reg, err := as.Mmap(size)
			if err != nil {
				t.Fatal(err)
			}
			p := auditedParams(kind)
			p.Fault = f
			sim, err := NewSimulator(p, as)
			if err != nil {
				t.Fatal(err)
			}
			_, err = sim.RunContext(context.Background(),
				trace.NewGenerator(trace.Uniform(window(reg), 3), 3), instrs)
			return err
		}
	}
	// dropRun warms the L1-2MB TLB under THP, breaks the huge pages, and
	// issues the shootdown the fault will sabotage.
	dropRun := func(t *testing.T, f inject.Fault) error {
		t.Helper()
		as := vm.New(vm.Config{Policy: PolicyFor(CfgTHP, 1.0), Seed: 1})
		reg, err := as.Mmap(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		p := auditedParams(CfgTHP)
		p.Fault = f
		sim, err := NewSimulator(p, as)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewGenerator(trace.Uniform(window(reg), 3), 3)
		if _, err := sim.RunContext(context.Background(), gen, 100_000); err != nil {
			t.Fatalf("run before shootdown should be clean: %v", err)
		}
		if n, err := as.BreakHugePages(reg); err != nil || n == 0 {
			t.Fatalf("BreakHugePages: n=%d err=%v", n, err)
		}
		sim.InvalidateRegion(reg.Base, reg.End()) // skips the L1-2MB TLB
		return sim.AuditErr()
	}

	cases := []struct {
		name   string
		fault  inject.Fault
		checks []string // acceptable Check categories
		run    func(*testing.T, inject.Fault) error
	}{
		{
			name:   "flip-pfn",
			fault:  inject.Fault{Kind: inject.FlipPFN, AfterRefs: 1000},
			checks: []string{audit.CheckTranslation, audit.CheckTLBCoherence},
			run:    genericRun(Cfg4KB, 0, 64<<10, 200_000),
		},
		{
			name:   "flip-pfn-high-bit",
			fault:  inject.Fault{Kind: inject.FlipPFN, AfterRefs: 1000, Mask: 1 << 40},
			checks: []string{audit.CheckTranslation, audit.CheckTLBCoherence},
			run:    genericRun(Cfg4KB, 0, 64<<10, 200_000),
		},
		{
			name:   "skew-charge",
			fault:  inject.Fault{Kind: inject.SkewCharge, Factor: 1.5},
			checks: []string{audit.CheckEnergy},
			run:    genericRun(Cfg4KB, 0, 64<<10, 100_000),
		},
		{
			name:   "skew-charge-subtle",
			fault:  inject.Fault{Kind: inject.SkewCharge, AfterRefs: 500, Factor: 1.01},
			checks: []string{audit.CheckEnergy},
			run:    genericRun(CfgTHP, 0.5, 4<<20, 100_000),
		},
		{
			name:   "stale-range",
			fault:  inject.Fault{Kind: inject.StaleRange, AfterRefs: 1000},
			checks: []string{audit.CheckRangeCoherence, audit.CheckTranslation},
			run:    genericRun(CfgRMMLite, 0, 4<<20, 200_000),
		},
		{
			name:   "drop-inval",
			fault:  inject.Fault{Kind: inject.DropInvalidation},
			checks: []string{audit.CheckTLBCoherence},
			run:    dropRun,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t, tc.fault)
			if err == nil {
				t.Fatalf("injected fault %v went undetected", tc.fault)
			}
			var v *audit.ViolationError
			if !errors.As(err, &v) {
				t.Fatalf("error is not a ViolationError: %v", err)
			}
			ok := false
			for _, c := range tc.checks {
				if v.Check == c {
					ok = true
				}
			}
			if !ok {
				t.Errorf("fault %v detected as %q, want one of %v (%v)", tc.fault, v.Check, tc.checks, v)
			}
		})
	}
}

// TestInvalidateRegionBoundaries exercises shootdown edge geometry with
// the oracle checking every access: regions straddling huge pages,
// empty regions, and a region abutting an RMM range end-exactly.
func TestInvalidateRegionBoundaries(t *testing.T) {
	t.Run("straddles-2MB-page", func(t *testing.T) {
		as := vm.New(vm.Config{Policy: PolicyFor(CfgTHP, 1.0), Seed: 1})
		reg, err := as.Mmap(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(auditedParams(CfgTHP), as)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewGenerator(trace.Uniform(window(reg), 3), 3)
		if _, err := sim.RunContext(context.Background(), gen, 100_000); err != nil {
			t.Fatal(err)
		}
		inv0 := sim.StructureStats()[energy.L12MB].Invals
		// [base+1MB, base+3MB) cuts through the middle of 2MB pages 0
		// and 1: both overlap, both must go, and the post-shootdown
		// audit must stay clean.
		sim.InvalidateRegion(reg.Base+addr.VA(1<<20), reg.Base+addr.VA(3<<20))
		if sim.StructureStats()[energy.L12MB].Invals == inv0 {
			t.Error("straddled 2MB translations survived the shootdown")
		}
		if err := sim.AuditErr(); err != nil {
			t.Fatal(err)
		}
		// The mappings themselves are intact: re-touching re-walks.
		if _, err := sim.RunContext(context.Background(), gen, 200_000); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("straddles-1GB-page", func(t *testing.T) {
		as := vm.New(vm.Config{
			Policy:    vm.Policy{THP: true, THPCoverage: 1.0, GBPages: true},
			PhysBytes: 8 << 30, Seed: 1})
		reg, err := as.Mmap(2 << 30)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(auditedParams(CfgTHP), as)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewGenerator(trace.Uniform(window(reg), 3), 3)
		if _, err := sim.RunContext(context.Background(), gen, 100_000); err != nil {
			t.Fatal(err)
		}
		// [base+512MB, base+1.5GB) straddles both 1GB pages — but spans
		// far more than the flush threshold, so this also exercises the
		// full-flush path with 1GB entries resident.
		sim.InvalidateRegion(reg.Base+addr.VA(512<<20), reg.Base+addr.VA(3<<29))
		if err := sim.AuditErr(); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunContext(context.Background(), gen, 200_000); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("empty-region", func(t *testing.T) {
		as := vm.New(vm.Config{Policy: PolicyFor(Cfg4KB, 0), Seed: 1})
		reg, err := as.Mmap(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(auditedParams(Cfg4KB), as)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewGenerator(trace.Uniform(window(reg), 3), 3)
		if _, err := sim.RunContext(context.Background(), gen, 50_000); err != nil {
			t.Fatal(err)
		}
		before := sim.StructureStats()[energy.L14KB].Invals
		sim.InvalidateRegion(reg.Base, reg.Base) // empty: must be a no-op
		if got := sim.StructureStats()[energy.L14KB].Invals; got != before {
			t.Errorf("empty region invalidated %d entries", got-before)
		}
		if err := sim.AuditErr(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("region-at-range-end-exactly", func(t *testing.T) {
		as := vm.New(vm.Config{Policy: PolicyFor(CfgRMMLite, 0), Seed: 1})
		reg, err := as.Mmap(4 << 20)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(auditedParams(CfgRMMLite), as)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewGenerator(trace.Uniform(window(reg), 3), 3)
		if _, err := sim.RunContext(context.Background(), gen, 100_000); err != nil {
			t.Fatal(err)
		}
		st0 := sim.StructureStats()
		if st0[energy.L2Range].Fills == 0 {
			t.Fatal("setup: no range translation cached")
		}
		// A shootdown starting exactly at the region's end must not
		// touch the range translation covering [base, end) — ranges are
		// half-open, so end is outside.
		sim.InvalidateRegion(reg.End(), reg.End()+addr.VA(1<<20))
		st1 := sim.StructureStats()
		if st1[energy.L1Range].Invals != st0[energy.L1Range].Invals ||
			st1[energy.L2Range].Invals != st0[energy.L2Range].Invals {
			t.Error("end-abutting shootdown invalidated a non-overlapping range")
		}
		if err := sim.AuditErr(); err != nil {
			t.Fatal(err)
		}
		// The cached range must still serve hits afterwards.
		if _, err := sim.RunContext(context.Background(), gen, 150_000); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAuditMulticore: each core's auditor must track that core's private
// range-table clone (the multicore wrapper swaps tables after
// construction) — a clean multicore RMM run with per-access sampling
// proves the rebinding happened.
func TestAuditMulticore(t *testing.T) {
	as := vm.New(vm.Config{Policy: PolicyFor(CfgRMMLite, 0), Seed: 5})
	reg, err := as.Mmap(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMulticore(auditedParams(CfgRMMLite), as, 2)
	if err != nil {
		t.Fatal(err)
	}
	gens := []trace.RefSource{
		trace.NewGenerator(trace.Zipf(window(reg), 1.8, 5), 3),
		trace.NewGenerator(trace.Uniform(window(reg), 9), 3),
	}
	_, agg, err := mc.Run(gens, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mc.Cores(); i++ {
		if err := mc.Core(i).AuditErr(); err != nil {
			t.Errorf("core %d: %v", i, err)
		}
	}
	if agg.Audit.Sampled == 0 || agg.Audit.Violations != 0 {
		t.Errorf("aggregate audit stats: %+v", agg.Audit)
	}
}

// TestFaultSpecRoundTrip pins the CLI fault-spec syntax.
func TestFaultSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"flip-pfn", "drop-inval@500", "stale-range", "skew-charge@12345", "none"} {
		f, err := inject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.String(); got != spec && !(spec == "none" && got == "none") {
			t.Errorf("round trip %q → %q", spec, got)
		}
	}
	if _, err := inject.Parse("bogus"); err == nil {
		t.Error("bogus fault spec accepted")
	}
	if _, err := inject.Parse("flip-pfn@x"); err == nil {
		t.Error("bad arming point accepted")
	}
}
