package core

import (
	"context"
	"fmt"

	"xlate/internal/addr"
	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/energy"
	"xlate/internal/lite"
	"xlate/internal/mmucache"
	"xlate/internal/pagetable"
	"xlate/internal/rmm"
	"xlate/internal/stats"
	"xlate/internal/tlb"
	"xlate/internal/trace"
	"xlate/internal/vm"
)

// Simulator is one core's MMU: the TLB hierarchy of the selected
// configuration attached to a process address space. Drive it with
// Access (one memory operation at a time) or Run (a whole trace).
type Simulator struct {
	p  Params
	as *vm.AddressSpace

	l14k  *tlb.SetAssoc // L1-4KB TLB, or the single mixed L1 under TLB_PP
	l12m  *tlb.SetAssoc // L1-2MB TLB (nil when absent)
	l11g  *tlb.SetAssoc // L1-1GB TLB (nil when absent)
	l1rng *tlb.RangeTLB // L1-range TLB (nil when absent)
	l2    *tlb.SetAssoc // unified L2 page TLB
	l2rng *tlb.RangeTLB // L2-range TLB (nil when absent)
	mmu   *mmucache.Cache
	walk  *pagetable.Walker
	rt    *rmm.RangeTable // nil when the config has no range support
	ctl   *lite.Controller
	pred  *sizePredictor // nil unless the config uses a real predictor

	// l12mEnabled and l11gEnabled model the static disable mask of §3.1:
	// a huge-page TLB is probed (and charged) only after a page table
	// entry of its size has been fetched by a page walk.
	l12mEnabled bool
	l11gEnabled bool

	// lite2mIdx / lite1gIdx are the monitored-TLB indices of the huge-
	// page TLBs in the Lite controller (-1 when not monitored).
	lite2mIdx, lite1gIdx int

	walkRefPJ float64 // energy of one page-walk memory reference

	// aud is the runtime integrity layer (nil unless Params.Audit is
	// enabled). It observes probes, fills, hits and charges, and never
	// mutates simulator state, so an audited run is byte-identical to an
	// unaudited one.
	aud *audit.Auditor

	// Fault-injection state (inject package; zero unless Params.Fault is
	// set). chargeSkew multiplies every energy charge (1 = faithful);
	// dropInval names a structure the next InvalidateRegion must skip.
	fault      inject.Fault
	faultArmed bool
	chargeSkew float64
	dropInval  string

	// tele is the telemetry attachment (nil unless Params.Metrics or
	// Params.Trace is set). Like aud, it observes and never mutates
	// simulator state: instrumented runs are byte-identical.
	tele *teleState

	st runStats
}

// runStats is the accumulating state of one run.
type runStats struct {
	instructions uint64
	memRefs      uint64
	l1Misses     uint64
	l2Misses     uint64
	walkRefs     uint64
	cycles       uint64
	pageFaults   uint64
	shootdowns   uint64

	hits4K, hits2M, hits1G, hitsRange uint64 // L1 hit attribution (Table 5 right)

	energy energy.Breakdown
	// shadowPJ is a single running sum over every charge, accumulated
	// separately from the per-account breakdown; the audit layer's
	// conservation check compares the two.
	shadowPJ float64

	// interval series (Figure 4, plus the energy/Lite drill-downs).
	// intRefMark / intPJMark are the memRefs and shadowPJ values at the
	// previous interval boundary, so each point charges only its own
	// interval's references and energy.
	intInstrs    uint64
	intL1Misses  uint64
	intRefMark   uint64
	intPJMark    float64
	series       stats.Series
	seriesEnergy stats.Series
	seriesWays   stats.Series
}

// NewSimulator builds the configured TLB hierarchy over the given
// address space. The address space must have been created with a policy
// compatible with the configuration (see PolicyFor).
func NewSimulator(p Params, as *vm.AddressSpace) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		p:    p,
		as:   as,
		l14k: tlb.NewSetAssoc(energy.L14KB, p.L14KEntries, p.L14KWays),
		l2:   tlb.NewSetAssoc(energy.L2Page, p.L2Entries, p.L2Ways),
		mmu:  mmucache.New(p.MMU),
		walk: pagetable.NewWalker(as.PageTable()),
	}
	if p.hasL12M() {
		s.l12m = tlb.NewSetAssoc(energy.L12MB, p.L12MEntries, p.L12MWays)
	}
	if !p.mixedL1() {
		// Figure 1's hierarchy always includes the small fully
		// associative L1-1GB TLB; the §3.1 mask keeps it disabled (and
		// free) until a 1 GB mapping is actually walked.
		s.l11g = tlb.NewFullyAssoc(energy.L11GB, 4)
	}
	if p.hasL2Range() {
		s.l2rng = tlb.NewRangeTLB(energy.L2Range, p.L2RangeEntries)
		s.rt = as.RangeTable()
	}
	if p.hasL1Range() {
		s.l1rng = tlb.NewRangeTLB(energy.L1Range, p.L1RangeEntries)
	}
	s.lite2mIdx, s.lite1gIdx = -1, -1
	if p.hasLite() {
		monitored := []*tlb.SetAssoc{s.l14k}
		if s.l12m != nil {
			s.lite2mIdx = len(monitored)
			monitored = append(monitored, s.l12m)
		}
		if s.l11g != nil {
			s.lite1gIdx = len(monitored)
			monitored = append(monitored, s.l11g)
		}
		s.ctl = lite.NewController(p.Lite, monitored...)
	}
	if p.hasPredictor() {
		s.pred = newSizePredictor(p.PredictorEntries)
	}
	s.walkRefPJ = p.EnergyDB.WalkRefCost(p.WalkL1HitRatio)
	s.chargeSkew = 1
	if p.Fault.Kind != inject.None {
		s.fault = p.Fault
		s.faultArmed = true
	}
	if p.Audit.Enabled {
		mmu := s.mmu.Structures()
		s.aud = audit.New(p.Audit, audit.Structures{
			PT:      as.PageTable(),
			RT:      s.rt,
			L14K:    s.l14k,
			L12M:    s.l12m,
			L11G:    s.l11g,
			L2:      s.l2,
			L1Rng:   s.l1rng,
			L2Rng:   s.l2rng,
			MMU:     mmu[:],
			Lite:    s.ctl,
			MixedL1: p.mixedL1(),
			DB:      p.EnergyDB,
			// Re-derived from the database rather than copied from
			// s.walkRefPJ, so a corrupted cached value is detectable.
			WalkRefPJ: p.EnergyDB.WalkRefCost(p.WalkL1HitRatio),
		})
	}
	s.st.series.Name = "L1 MPKI per interval"
	s.st.seriesEnergy.Name = "energy/access (pJ) per interval"
	s.st.seriesWays.Name = "L1-4KB active ways per interval"
	if p.Metrics != nil || p.Trace != nil {
		s.attachTelemetry(p.Metrics, p.Trace)
	}
	return s, nil
}

// Lite exposes the Lite controller (nil for non-Lite configurations).
func (s *Simulator) Lite() *lite.Controller { return s.ctl }

// mixKey builds a page-size-qualified tag for structures holding
// multiple page sizes (the unified L2, and TLB_PP's mixed L1). The size
// discriminator lives in the high bits so the VPN's low bits — which
// select the set — keep their natural distribution.
func mixKey(va addr.VA, sz addr.PageSize) uint64 {
	return uint64(sz)<<60 | addr.VPN(va, sz)
}

func leafLevelOf(sz addr.PageSize) addr.Level {
	switch sz {
	case addr.Page4K:
		return addr.LvlPT
	case addr.Page2M:
		return addr.LvlPD
	case addr.Page1G:
		return addr.LvlPDPT
	}
	panic("core: invalid page size")
}

// charge books pj picojoules against acc, both in the per-account
// breakdown and the shadow total the conservation audit compares
// against. It is the simulator's single energy charging primitive;
// the chargesite analyzer rejects Breakdown writes anywhere else.
//
//eeat:chargesite
func (s *Simulator) charge(acc energy.Account, pj float64) {
	pj *= s.chargeSkew
	s.st.energy.Add(acc, pj)
	s.st.shadowPJ += pj
}

// The audit* helpers forward observations to the integrity layer when
// one is attached. They are nil-guarded one-liners so the disabled-audit
// hot path pays a single branch per event.

func (s *Simulator) auditRead(acc energy.Account, name string, ways int) {
	if s.aud != nil {
		s.aud.RecordRead(acc, name, ways)
	}
}

func (s *Simulator) auditWrite(acc energy.Account, name string, ways int) {
	if s.aud != nil {
		s.aud.RecordWrite(acc, name, ways)
	}
}

func (s *Simulator) auditWalkRefs(acc energy.Account, refs int) {
	if s.aud != nil {
		s.aud.RecordWalkRefs(acc, refs)
	}
}

func (s *Simulator) auditPageHit(name string, e tlb.Entry, sz addr.PageSize) {
	if s.aud != nil {
		s.aud.RecordPageHit(name, e, sz)
	}
}

// applyFault performs the armed fault's corruption. Faults that need a
// victim entry stay armed until one is resident.
//
//eeat:coldpath fault injection is a test-only facility, armed at most once per run
func (s *Simulator) applyFault() {
	switch s.fault.Kind {
	case inject.FlipPFN:
		mask := s.fault.Mask
		if mask == 0 {
			mask = 1
		}
		if s.l14k.MutateEntry(func(e *tlb.Entry) bool { e.Frame ^= mask; return true }) {
			s.faultArmed = false
		}
	case inject.StaleRange:
		mut := func(e *tlb.RangeEntry) bool { e.PABase += addr.PA(addr.Bytes4K); return true }
		if s.l2rng != nil && s.l2rng.MutateEntry(mut) {
			s.faultArmed = false
		} else if s.l1rng != nil && s.l1rng.MutateEntry(mut) {
			s.faultArmed = false
		}
	case inject.DropInvalidation:
		s.dropInval = s.fault.Target
		if s.dropInval == "" {
			s.dropInval = energy.L12MB
		}
		s.faultArmed = false
	case inject.SkewCharge:
		s.chargeSkew = s.fault.Factor
		if s.chargeSkew == 0 {
			s.chargeSkew = 1.5
		}
		s.faultArmed = false
	}
}

func (s *Simulator) l14kCost() energy.Cost {
	return s.p.EnergyDB.Cost(energy.L14KB, s.l14k.ActiveWays())
}

func (s *Simulator) l12mCost() energy.Cost {
	return s.p.EnergyDB.Cost(energy.L12MB, s.l12m.ActiveWays())
}

func (s *Simulator) l11gCost() energy.Cost {
	return s.p.EnergyDB.Cost(energy.L11GB, s.l11g.ActiveWays())
}

// Access simulates one memory operation: the virtual address and the
// instructions executed since the previous reference. Every probe, fill
// and walk charges the energy model; the performance model adds 7 cycles
// per L1 miss and 50 per L2 miss (Table 3).
//
// Access is the root of the simulator's hot path: everything it
// reaches must stay allocation-free (the AllocsPerRun pins check this
// dynamically, the hotpath analyzer statically).
//
//eeat:hotpath
func (s *Simulator) Access(va addr.VA, instrs uint64) {
	s.st.instructions += instrs
	s.st.memRefs++

	if s.faultArmed && s.st.memRefs > s.fault.AfterRefs {
		s.applyFault()
	}
	if s.aud != nil {
		s.aud.BeginAccess(va, &s.st.energy)
	}

	m, ok := s.as.PageTable().Lookup(va)
	if !ok {
		if !s.p.DemandPaging {
			panic(fmt.Sprintf("core: access to unmapped address %#x — pre-map memory or enable DemandPaging", uint64(va)))
		}
		if _, err := s.as.EnsureMapped(va); err != nil {
			panic(fmt.Sprintf("core: demand fault failed: %v", err))
		}
		s.st.pageFaults++
		s.tracePageFault(uint64(va))
		// Under eager paging the fault may have merged the new chunk
		// into a neighbouring range, rewriting that range's bounds in
		// the range table. Cached copies of the old, narrower range are
		// now stale mappings and must leave the hardware, exactly like
		// any other OS-changed translation (InvalidateRegion). Absent a
		// merge nothing overlaps a freshly faulted chunk, so this is a
		// no-op on the common path.
		if s.l2rng != nil || s.l1rng != nil {
			if r, ok := s.as.RangeTable().Lookup(va); ok {
				if s.l1rng != nil {
					s.l1rng.InvalidateOverlapping(r.Start, r.End)
				}
				if s.l2rng != nil {
					s.l2rng.InvalidateOverlapping(r.Start, r.End)
				}
			}
		}
		m, ok = s.as.PageTable().Lookup(va)
		if !ok {
			panic(fmt.Sprintf("core: demand mapping did not cover %#x", uint64(va)))
		}
	}

	if s.ctl != nil {
		s.ctl.RecordLookup()
	}

	// --- L1 probes: every enabled L1 structure in parallel ---
	pageHit := false
	var pageHitSize addr.PageSize
	if s.p.mixedL1() {
		if s.pred != nil {
			// TLB_Pred / Combined: a real predictor selects the index
			// bits. A misprediction can never hit (the tag embeds the
			// true size), so it forces a second, re-indexed probe with
			// an extra read and an extra cycle.
			predicted := s.pred.predict(va)
			e, pos, hit := s.l14k.Lookup(mixKey(va, predicted))
			s.charge(energy.AccL1Page4K, s.l14kCost().ReadPJ)
			s.auditRead(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
			if predicted != m.Size {
				s.pred.noteMispredict()
				s.st.cycles += uint64(s.p.MispredictPenaltyCycles)
				e, pos, hit = s.l14k.Lookup(mixKey(va, m.Size))
				s.charge(energy.AccL1Page4K, s.l14kCost().ReadPJ)
				s.auditRead(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
			}
			s.pred.update(va, m.Size)
			if hit {
				pageHit, pageHitSize = true, m.Size
				s.auditPageHit(energy.L14KB, e, m.Size)
				if s.ctl != nil {
					s.ctl.RecordHit(0, pos)
				}
			}
		} else {
			// TLB_PP: the perfect predictor selects the index for the
			// actual page size at no energy cost; one structure is probed.
			e, _, hit := s.l14k.Lookup(mixKey(va, m.Size))
			s.charge(energy.AccL1Page4K, s.l14kCost().ReadPJ)
			s.auditRead(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
			if hit {
				pageHit, pageHitSize = true, m.Size
				s.auditPageHit(energy.L14KB, e, m.Size)
			}
		}
	} else {
		e1, pos, hit := s.l14k.Lookup(addr.VPN(va, addr.Page4K))
		s.charge(energy.AccL1Page4K, s.l14kCost().ReadPJ)
		s.auditRead(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
		if hit {
			pageHit, pageHitSize = true, addr.Page4K
			s.auditPageHit(energy.L14KB, e1, addr.Page4K)
			if s.ctl != nil {
				s.ctl.RecordHit(0, pos)
			}
		}
		if s.l12m != nil && s.l12mEnabled {
			e2, pos2, hit2 := s.l12m.Lookup(addr.VPN(va, addr.Page2M))
			s.charge(energy.AccL1Page2M, s.l12mCost().ReadPJ)
			s.auditRead(energy.AccL1Page2M, energy.L12MB, s.l12m.ActiveWays())
			if hit2 {
				pageHit, pageHitSize = true, addr.Page2M
				s.auditPageHit(energy.L12MB, e2, addr.Page2M)
				if s.ctl != nil {
					s.ctl.RecordHit(s.lite2mIdx, pos2)
				}
			}
		}
		if s.l11g != nil && s.l11gEnabled {
			e3, pos3, hit3 := s.l11g.Lookup(addr.VPN(va, addr.Page1G))
			s.charge(energy.AccL1Page1G, s.l11gCost().ReadPJ)
			s.auditRead(energy.AccL1Page1G, energy.L11GB, s.l11g.ActiveWays())
			if hit3 {
				pageHit, pageHitSize = true, addr.Page1G
				s.auditPageHit(energy.L11GB, e3, addr.Page1G)
				if s.ctl != nil {
					s.ctl.RecordHit(s.lite1gIdx, pos3)
				}
			}
		}
	}
	rangeHit := false
	var hitRange rmm.Range
	if s.l1rng != nil {
		re, rh := s.l1rng.Lookup(va)
		s.charge(energy.AccL1Range, s.p.EnergyDB.Cost(energy.L1Range, 0).ReadPJ)
		s.auditRead(energy.AccL1Range, energy.L1Range, 0)
		rangeHit = rh
		if rh {
			hitRange = re
			if s.aud != nil {
				s.aud.RecordRangeHit(re)
			}
		}
	}

	switch {
	case rangeHit:
		s.st.hitsRange++
		s.traceRangeHit(uint64(hitRange.Start), uint64(hitRange.End))
	case pageHit && pageHitSize == addr.Page1G:
		s.st.hits1G++
	case pageHit && pageHitSize == addr.Page2M:
		s.st.hits2M++
	case pageHit:
		s.st.hits4K++
	default:
		s.missPath(va, m)
	}

	if s.ctl != nil {
		s.ctl.AddInstructions(instrs)
	}
	if s.p.SeriesIntervalInstrs > 0 {
		s.st.intInstrs += instrs
		for s.st.intInstrs >= s.p.SeriesIntervalInstrs {
			s.st.intInstrs -= s.p.SeriesIntervalInstrs
			s.st.series.Append(float64(s.st.intL1Misses) * 1000 / float64(s.p.SeriesIntervalInstrs))
			s.st.intL1Misses = 0
			intRefs := s.st.memRefs - s.st.intRefMark
			perRef := 0.0
			if intRefs > 0 {
				perRef = (s.st.shadowPJ - s.st.intPJMark) / float64(intRefs)
			}
			s.st.seriesEnergy.Append(perRef)
			s.st.seriesWays.Append(float64(s.l14k.ActiveWays()))
			s.st.intRefMark = s.st.memRefs
			s.st.intPJMark = s.st.shadowPJ
		}
	}
	if s.aud != nil {
		s.aud.EndAccess(&s.st.energy, s.st.shadowPJ)
	}
}

// missPath handles an access that missed in all L1 structures.
func (s *Simulator) missPath(va addr.VA, m pagetable.Mapping) {
	s.st.l1Misses++
	s.st.intL1Misses++
	s.traceMiss(uint64(va))
	s.st.cycles += uint64(s.p.L2LatencyCycles)
	if s.ctl != nil {
		s.ctl.RecordMiss()
	}

	// --- L2 probes: page and range TLBs in parallel ---
	l2e, _, l2PageHit := s.l2.Lookup(mixKey(va, m.Size))
	s.charge(energy.AccL2Page, s.p.EnergyDB.Cost(energy.L2Page, 0).ReadPJ)
	s.auditRead(energy.AccL2Page, energy.L2Page, 0)
	if l2PageHit {
		s.auditPageHit(energy.L2Page, l2e, m.Size)
	}
	var l2RangeEnt rmm.Range
	l2RangeHit := false
	if s.l2rng != nil {
		l2RangeEnt, l2RangeHit = s.l2rng.Lookup(va)
		s.charge(energy.AccL2Range, s.p.EnergyDB.Cost(energy.L2Range, 0).ReadPJ)
		s.auditRead(energy.AccL2Range, energy.L2Range, 0)
		if l2RangeHit && s.aud != nil {
			s.aud.RecordRangeHit(l2RangeEnt)
		}
	}

	switch {
	case l2PageHit:
		s.fillL1Page(va, m)
		if l2RangeHit {
			s.fillL1Range(l2RangeEnt)
		}
	case l2RangeHit:
		// The hit range translation is copied to the L1-range TLB, and
		// the corresponding page table entry to the L1-page TLBs as in
		// RMM (§4.3).
		s.fillL1Range(l2RangeEnt)
		s.fillL1Page(va, m)
	default:
		s.walkPath(va, m)
	}
}

// walkPath handles an L2 TLB miss: the hardware page walk, MMU-cache
// interaction, refills, and RMM's background range-table walk.
func (s *Simulator) walkPath(va addr.VA, m pagetable.Mapping) {
	s.st.l2Misses++
	s.st.cycles += uint64(s.p.WalkLatencyCycles)

	// All three paging-structure caches are probed in parallel.
	start := s.mmu.Probe(va)
	for _, st := range s.mmu.Structures() {
		s.charge(energy.AccMMUCache, s.p.EnergyDB.Cost(st.Name(), 0).ReadPJ)
		s.auditRead(energy.AccMMUCache, st.Name(), 0)
	}

	wm, refs, ok := s.walk.Walk(va, start)
	if !ok {
		panic(fmt.Sprintf("core: page walk fault at %#x", uint64(va)))
	}
	s.st.walkRefs += uint64(refs)
	s.traceWalk(uint64(va), refs, wm.Size.String())
	s.charge(energy.AccPageWalk, float64(refs)*s.walkRefPJ)
	s.auditWalkRefs(energy.AccPageWalk, refs)
	if s.aud != nil {
		s.aud.RecordWalkResult(wm)
	}

	// Fill the paging-structure caches with the non-leaf entries the
	// walk read, charging a write per structure actually filled.
	var fillsBefore [3]uint64
	for i, st := range s.mmu.Structures() {
		fillsBefore[i] = st.Stats().Fills
	}
	s.mmu.Fill(va, leafLevelOf(wm.Size))
	for i, st := range s.mmu.Structures() {
		if st.Stats().Fills > fillsBefore[i] {
			s.charge(energy.AccMMUCache, s.p.EnergyDB.Cost(st.Name(), 0).WritePJ)
			s.auditWrite(energy.AccMMUCache, st.Name(), 0)
		}
	}

	// Refill L2 and L1 page TLBs.
	s.l2.Insert(tlb.Entry{Key: mixKey(va, wm.Size), Frame: uint64(wm.Frame)})
	s.charge(energy.AccL2Page, s.p.EnergyDB.Cost(energy.L2Page, 0).WritePJ)
	s.auditWrite(energy.AccL2Page, energy.L2Page, 0)
	s.fillL1Page(va, wm)

	// RMM: background range-table walk — no cycles, only energy (§5).
	if s.rt != nil {
		r, rrefs, found := s.rt.Walk(va)
		s.charge(energy.AccRangeWalk, float64(rrefs)*s.walkRefPJ)
		s.auditWalkRefs(energy.AccRangeWalk, rrefs)
		if found {
			if err := s.l2rng.Insert(r); err != nil {
				panic(fmt.Sprintf("core: range table produced a bad range: %v", err))
			}
			s.charge(energy.AccL2Range, s.p.EnergyDB.Cost(energy.L2Range, 0).WritePJ)
			s.auditWrite(energy.AccL2Range, energy.L2Range, 0)
			s.fillL1Range(r)
		}
	}
}

// fillL1Page inserts the page translation into the L1 page TLB matching
// its size and charges the write.
func (s *Simulator) fillL1Page(va addr.VA, m pagetable.Mapping) {
	if s.p.mixedL1() {
		s.l14k.Insert(tlb.Entry{Key: mixKey(va, m.Size), Frame: uint64(m.Frame)})
		s.charge(energy.AccL1Page4K, s.l14kCost().WritePJ)
		s.auditWrite(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
		return
	}
	switch m.Size {
	case addr.Page4K:
		s.l14k.Insert(tlb.Entry{Key: addr.VPN(va, addr.Page4K), Frame: uint64(m.Frame)})
		s.charge(energy.AccL1Page4K, s.l14kCost().WritePJ)
		s.auditWrite(energy.AccL1Page4K, energy.L14KB, s.l14k.ActiveWays())
	case addr.Page2M:
		if s.l12m == nil {
			panic(fmt.Sprintf("core: 2MB mapping at %#x but configuration %v has no L1-2MB TLB — address-space policy mismatch",
				uint64(va), s.p.Kind))
		}
		s.l12mEnabled = true
		s.l12m.Insert(tlb.Entry{Key: addr.VPN(va, addr.Page2M), Frame: uint64(m.Frame)})
		s.charge(energy.AccL1Page2M, s.l12mCost().WritePJ)
		s.auditWrite(energy.AccL1Page2M, energy.L12MB, s.l12m.ActiveWays())
	case addr.Page1G:
		if s.l11g == nil {
			panic(fmt.Sprintf("core: 1GB mapping at %#x but configuration %v has no L1-1GB TLB — address-space policy mismatch",
				uint64(va), s.p.Kind))
		}
		s.l11gEnabled = true
		s.l11g.Insert(tlb.Entry{Key: addr.VPN(va, addr.Page1G), Frame: uint64(m.Frame)})
		s.charge(energy.AccL1Page1G, s.l11gCost().WritePJ)
		s.auditWrite(energy.AccL1Page1G, energy.L11GB, s.l11g.ActiveWays())
	default:
		panic(fmt.Sprintf("core: unsupported page size %v", m.Size))
	}
}

// fillL1Range inserts a range translation into the L1-range TLB when the
// configuration has one.
func (s *Simulator) fillL1Range(r rmm.Range) {
	if s.l1rng == nil {
		return
	}
	if err := s.l1rng.Insert(r); err != nil {
		panic(fmt.Sprintf("core: range table produced a bad range: %v", err))
	}
	s.charge(energy.AccL1Range, s.p.EnergyDB.Cost(energy.L1Range, 0).WritePJ)
	s.auditWrite(energy.AccL1Range, energy.L1Range, 0)
}

// Run drives the simulator with references from src — a workload
// generator or a recorded-trace replay — until at least instrBudget
// instructions have executed, then returns the results.
func (s *Simulator) Run(src trace.RefSource, instrBudget uint64) Result {
	res, _ := s.RunContext(context.Background(), src, instrBudget)
	return res
}

// cancelCheckRefs is how many references RunContext simulates between
// cancellation checks: frequent enough that a cell responds to a cancel
// or deadline within microseconds, rare enough to stay invisible in the
// hot loop.
const cancelCheckRefs = 1 << 14

// RunContext is Run with cooperative cancellation: every few thousand
// references it polls ctx and, when the context is cancelled or its
// deadline passes, stops and returns the partial Result together with
// the context's error. The experiment harness uses this for per-cell
// deadlines and suite-wide interrupt handling.
//
// When the run is audited (Params.Audit), RunContext polls the auditor
// on the same cadence, runs one final structural audit after the budget
// is reached, and returns the first audit.ViolationError with the
// partial Result — surfacing silent corruption the same way a panic or
// deadline surfaces, as a typed cell error in the harness.
func (s *Simulator) RunContext(ctx context.Context, src trace.RefSource, instrBudget uint64) (Result, error) {
	if t := s.tele; t != nil && t.m != nil {
		t.m.simsActive.Add(1)
		defer t.m.simsActive.Add(-1)
	}
	done := ctx.Done()
	for n := 0; s.st.instructions < instrBudget; n++ {
		if n&(cancelCheckRefs-1) == 0 {
			// Telemetry rides the cancellation cadence: a live /metrics
			// scrape sees counters at most 16 Ki references stale.
			s.flushTelemetry()
			if done != nil {
				select {
				case <-done:
					return s.Result(), ctx.Err()
				default:
				}
			}
			if s.aud != nil {
				if err := s.aud.Err(); err != nil {
					return s.Result(), err
				}
			}
		}
		r := src.Next()
		s.Access(r.VA, r.Instrs)
	}
	if s.aud != nil {
		s.aud.AuditNow(&s.st.energy, s.st.shadowPJ)
		if err := s.aud.Err(); err != nil {
			return s.Result(), err
		}
	}
	return s.Result(), nil
}

// AuditErr runs an immediate structural audit when the integrity layer
// is attached and returns the first violation recorded so far, or nil.
// Tests and callers that drive Access/InvalidateRegion directly use it
// to check integrity without going through RunContext.
func (s *Simulator) AuditErr() error {
	if s.aud == nil {
		return nil
	}
	s.aud.AuditNow(&s.st.energy, s.st.shadowPJ)
	return s.aud.Err()
}

// AuditStats returns the integrity layer's activity counters (zero when
// auditing is disabled).
func (s *Simulator) AuditStats() audit.Stats {
	if s.aud == nil {
		return audit.Stats{}
	}
	return s.aud.Stats()
}

// InvalidateRegion models an OS-initiated TLB shootdown for the virtual
// range [start, end): after the OS changes mappings (munmap, huge-page
// demotion under memory pressure), stale translations must leave the
// hardware. Small ranges are invalidated entry by entry (INVLPG-style);
// ranges wider than shootdownFlushPages pages use a full flush of the
// translation structures, as operating systems do to bound shootdown
// latency. Range TLBs drop overlapping ranges either way, and the
// paging-structure caches are flushed conservatively.
func (s *Simulator) InvalidateRegion(start, end addr.VA) {
	if end <= start {
		return
	}
	s.st.shootdowns++
	// An armed drop-inval fault makes this shootdown skip one structure
	// (identified by its energy-database name), leaving stale entries
	// the coherence audit must then catch.
	drop := s.dropInval
	s.dropInval = ""
	const shootdownFlushPages = 512
	pages := uint64(end-start) >> addr.Shift4K
	s.traceShootdown(uint64(start), uint64(end), pages > shootdownFlushPages)
	if pages > shootdownFlushPages {
		if drop != energy.L14KB {
			s.l14k.Flush()
		}
		if s.l12m != nil && drop != energy.L12MB {
			s.l12m.Flush()
		}
		if s.l11g != nil && drop != energy.L11GB {
			s.l11g.Flush()
		}
		if drop != energy.L2Page {
			s.l2.Flush()
		}
	} else {
		in4K := func(e tlb.Entry) bool {
			va := addr.VA(e.Key << addr.Shift4K)
			return va >= addr.PageBase(start, addr.Page4K) && va < end
		}
		inMixed := func(e tlb.Entry) bool {
			sz := addr.PageSize(e.Key >> 60)
			va := addr.VA((e.Key & (1<<60 - 1)) << sz.Shift())
			return va+addr.VA(sz.Bytes()) > start && va < end
		}
		if s.p.mixedL1() {
			if drop != energy.L14KB {
				s.l14k.InvalidateIf(inMixed)
			}
		} else {
			if drop != energy.L14KB {
				s.l14k.InvalidateIf(in4K)
			}
			if s.l12m != nil && drop != energy.L12MB {
				s.l12m.InvalidateIf(func(e tlb.Entry) bool {
					va := addr.VA(e.Key << addr.Shift2M)
					return va+addr.VA(addr.Bytes2M) > start && va < end
				})
			}
			if s.l11g != nil && drop != energy.L11GB {
				s.l11g.InvalidateIf(func(e tlb.Entry) bool {
					va := addr.VA(e.Key << addr.Shift1G)
					return va+addr.VA(addr.Bytes1G) > start && va < end
				})
			}
		}
		if drop != energy.L2Page {
			s.l2.InvalidateIf(inMixed)
		}
	}
	if s.l1rng != nil && drop != energy.L1Range {
		s.l1rng.InvalidateOverlapping(start, end)
	}
	if s.l2rng != nil && drop != energy.L2Range {
		s.l2rng.InvalidateOverlapping(start, end)
	}
	s.mmu.Flush()
	// A shootdown follows a mapping change — exactly when stale entries
	// would appear — so an attached auditor re-checks coherence now
	// rather than waiting for the periodic cadence.
	if s.aud != nil {
		s.aud.AuditNow(&s.st.energy, s.st.shadowPJ)
	}
}
