package core

import (
	"testing"

	"xlate/internal/trace"
	"xlate/internal/vm"
)

func mkMulticore(t *testing.T, kind ConfigKind, cores int) (*Multicore, []trace.RefSource) {
	t.Helper()
	as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.5), Seed: 1})
	reg, err := as.Mmap(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMulticore(DefaultParams(kind), as, cores)
	if err != nil {
		t.Fatal(err)
	}
	gens := make([]trace.RefSource, cores)
	for i := range gens {
		gens[i] = trace.NewGenerator(trace.Zipf(window(reg), 1.8, int64(100+i)), 3)
	}
	return m, gens
}

func TestMulticoreAggregation(t *testing.T) {
	m, gens := mkMulticore(t, CfgTHP, 4)
	per, agg, err := m.Run(gens, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("got %d per-core results", len(per))
	}
	var instrs, refs, l1 uint64
	for _, r := range per {
		instrs += r.Instructions
		refs += r.MemRefs
		l1 += r.L1Misses
	}
	if agg.Instructions != instrs || agg.MemRefs != refs || agg.L1Misses != l1 {
		t.Fatalf("aggregate mismatch: %+v vs sums", agg)
	}
	var perEnergy float64
	for _, r := range per {
		perEnergy += r.EnergyPJ()
	}
	if diff := agg.EnergyPJ() - perEnergy; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy aggregate off by %v", diff)
	}
}

func TestMulticoreDeterministic(t *testing.T) {
	run := func() Result {
		m, gens := mkMulticore(t, CfgRMMLite, 3)
		_, agg, err := m.Run(gens, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	a, b := run(), run()
	if a.EnergyPJ() != b.EnergyPJ() || a.L1Misses != b.L1Misses || a.CyclesTLBMiss != b.CyclesTLBMiss {
		t.Fatal("concurrent runs must be deterministic")
	}
}

func TestMulticoreRMMLitePrivateRangeTables(t *testing.T) {
	// Each core's background walker must account privately (the shared
	// table would race and double count).
	m, gens := mkMulticore(t, CfgRMMLite, 2)
	per, agg, err := m.Run(gens, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if agg.HitsRange == 0 {
		t.Fatal("range hits expected")
	}
	for i, r := range per {
		if r.HitsRange == 0 {
			t.Fatalf("core %d never hit a range", i)
		}
	}
	// Weighted share aggregation stays a distribution.
	var sum float64
	for _, v := range agg.LiteLookupShare[0] {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("aggregated lookup shares sum to %v", sum)
	}
}

func TestMulticoreValidation(t *testing.T) {
	as := vm.New(vm.Config{})
	if _, err := NewMulticore(DefaultParams(Cfg4KB), as, 0); err == nil {
		t.Fatal("zero cores should fail")
	}
	m, gens := mkMulticore(t, Cfg4KB, 2)
	if _, _, err := m.Run(gens[:1], 1000); err == nil {
		t.Fatal("generator/core count mismatch should fail")
	}
	if m.Cores() != 2 || m.Core(0) == nil {
		t.Fatal("accessors broken")
	}
}

func TestAggregateEmpty(t *testing.T) {
	if agg := Aggregate(nil); agg.MemRefs != 0 {
		t.Fatal("empty aggregate should be zero")
	}
}
