// Package core wires the substrates — TLBs, MMU caches, page tables,
// range tables, the Lite controller, and the energy/performance models —
// into the per-core MMU simulator the paper's evaluation runs on, and
// defines the six simulated configurations of §5:
//
//	4KB      — 4 KB pages only (Figure 1 hierarchy minus huge-page TLBs)
//	THP      — transparent huge pages: parallel L1-4KB and L1-2MB TLBs
//	TLB_Lite — THP plus the Lite way-disabling mechanism
//	RMM      — THP plus a 32-entry L2-range TLB and eager paging
//	TLB_PP   — perfect TLB_Pred: one mixed-page-size TLB per level with a
//	           free, always-correct page-size predictor (upper bound)
//	RMM_Lite — 4 KB pages + range translations at both levels, a 4-entry
//	           L1-range TLB, and Lite on the L1-4KB TLB
package core

import (
	"fmt"

	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/energy"
	"xlate/internal/lite"
	"xlate/internal/mmucache"
	"xlate/internal/telemetry"
	"xlate/internal/vm"
)

// ConfigKind selects one of the paper's simulated configurations.
type ConfigKind int

// The six configurations of §5, in the paper's presentation order.
const (
	Cfg4KB ConfigKind = iota
	CfgTHP
	CfgTLBLite
	CfgRMM
	CfgTLBPP
	CfgRMMLite
	// Extension configurations (not in the paper's evaluation; see
	// DESIGN.md): a realizable TLB_Pred with an actual page-size
	// predictor, and the combined design the paper suggests in §6.1 —
	// range translations + prediction-based mixed page TLBs + Lite.
	CfgTLBPred
	CfgCombined
	NumConfigs
)

// String returns the paper's name for the configuration.
func (k ConfigKind) String() string {
	switch k {
	case Cfg4KB:
		return "4KB"
	case CfgTHP:
		return "THP"
	case CfgTLBLite:
		return "TLB_Lite"
	case CfgRMM:
		return "RMM"
	case CfgTLBPP:
		return "TLB_PP"
	case CfgRMMLite:
		return "RMM_Lite"
	case CfgTLBPred:
		return "TLB_Pred"
	case CfgCombined:
		return "Combined"
	}
	return fmt.Sprintf("ConfigKind(%d)", int(k))
}

// AllConfigs lists the paper's six configurations in presentation order.
func AllConfigs() []ConfigKind {
	return []ConfigKind{Cfg4KB, CfgTHP, CfgTLBLite, CfgRMM, CfgTLBPP, CfgRMMLite}
}

// ExtendedConfigs lists the extension configurations built on top of the
// paper: the realizable TLB_Pred and the §6.1 combined design.
func ExtendedConfigs() []ConfigKind {
	return []ConfigKind{CfgTLBPred, CfgCombined}
}

// Params fully parameterizes a simulation. Zero fields are filled in by
// Defaults; construct with DefaultParams and override what an experiment
// sweeps.
type Params struct {
	Kind ConfigKind

	// L1 page-TLB geometry (Sandy Bridge, Table 1).
	L14KEntries int // 64
	L14KWays    int // 4
	L12MEntries int // 32
	L12MWays    int // 4

	// L2 page-TLB geometry.
	L2Entries int // 512
	L2Ways    int // 4

	// Range-TLB geometry.
	L2RangeEntries int // 32 (RMM, RMM_Lite)
	L1RangeEntries int // 4 (RMM_Lite)

	// Lite controller configuration; used by CfgTLBLite and CfgRMMLite.
	Lite lite.Config

	// MMU paging-structure cache geometry.
	MMU mmucache.Config

	// WalkL1HitRatio is the fraction of page-walk memory references that
	// hit in the L1 data cache (1.0 = the paper's optimistic default;
	// Figure 3 sweeps it down to 0).
	WalkL1HitRatio float64

	// Performance model latencies (Table 3).
	L2LatencyCycles   int // 7
	WalkLatencyCycles int // 50

	// SeriesIntervalInstrs is the sampling interval for the per-interval
	// L1 MPKI series (Figure 4). 0 disables series collection.
	SeriesIntervalInstrs uint64

	// DemandPaging lets the simulator fault unmapped addresses into the
	// address space on first touch instead of panicking — required when
	// replaying externally recorded traces whose layout the OS model
	// never saw. Page-fault handling is an OS event outside the paper's
	// translation energy scope; faults are counted but cost no cycles or
	// energy.
	DemandPaging bool

	// PredictorEntries sizes the page-size predictor of the TLB_Pred and
	// Combined extension configurations (power of two).
	PredictorEntries int
	// MispredictPenaltyCycles is the extra latency of a re-indexed probe
	// after a page-size misprediction.
	MispredictPenaltyCycles int

	// EnergyDB prices the structures. Defaults to energy.Table2().
	EnergyDB *energy.DB

	// Audit configures the runtime integrity layer (internal/audit):
	// a differential translation/energy oracle on sampled accesses plus
	// periodic structural audits. The zero value disables it; an enabled
	// audit changes no simulation outcome, only detects corruption.
	Audit audit.Config

	// Fault is a deterministic fault to inject (internal/audit/inject),
	// used to prove the audit layer detects each corruption class. The
	// zero value injects nothing.
	Fault inject.Fault

	// Metrics, when non-nil, attaches the simulator to a shared
	// telemetry registry (see core.NewMetrics): run statistics are
	// flushed as deltas on the RunContext cancellation-check cadence, so
	// the hot path is untouched and results stay byte-identical.
	// Excluded from harness cell keys — attaching telemetry never
	// changes what a cell computes.
	//eeat:keyexcluded
	Metrics *Metrics
	// Trace, when non-nil, receives sampled structured events (L1
	// misses, page walks, range hits, shootdowns, Lite decisions) with
	// access indices. Excluded from cell keys like Metrics.
	//eeat:keyexcluded
	Trace *telemetry.Tracer
}

// DefaultParams returns the paper's configuration for the given kind:
// Sandy Bridge TLB geometry, Table 2 energies, 1 M-instruction Lite
// intervals, ε = 12.5 % relative for TLB_Lite and 0.1 MPKI absolute for
// RMM_Lite, and the optimistic walk-locality assumption.
func DefaultParams(kind ConfigKind) Params {
	p := Params{
		Kind:              kind,
		L14KEntries:       64,
		L14KWays:          4,
		L12MEntries:       32,
		L12MWays:          4,
		L2Entries:         512,
		L2Ways:            4,
		L2RangeEntries:    32,
		L1RangeEntries:    4,
		MMU:               mmucache.DefaultConfig(),
		WalkL1HitRatio:    1.0,
		L2LatencyCycles:   7,
		WalkLatencyCycles: 50,
		EnergyDB:          energy.Table2(),

		PredictorEntries:        512,
		MispredictPenaltyCycles: 1,
	}
	p.Lite = lite.DefaultConfig()
	if kind == CfgRMMLite || kind == CfgCombined {
		p.Lite.Epsilon = lite.AbsoluteThreshold(0.1)
	}
	return p
}

// hasL12M reports whether the configuration includes a separate L1-2MB
// TLB.
func (p Params) hasL12M() bool {
	switch p.Kind {
	case CfgTHP, CfgTLBLite, CfgRMM:
		return true
	}
	return false
}

// hasLite reports whether the Lite controller is active.
func (p Params) hasLite() bool {
	return p.Kind == CfgTLBLite || p.Kind == CfgRMMLite || p.Kind == CfgCombined
}

// hasL2Range reports whether an L2-range TLB is present.
func (p Params) hasL2Range() bool {
	return p.Kind == CfgRMM || p.Kind == CfgRMMLite || p.Kind == CfgCombined
}

// hasL1Range reports whether an L1-range TLB is present.
func (p Params) hasL1Range() bool { return p.Kind == CfgRMMLite || p.Kind == CfgCombined }

// mixedL1 reports whether the L1 (and L2) page TLBs hold multiple page
// sizes in one structure (TLB_PP and the predictor-based extensions).
func (p Params) mixedL1() bool {
	return p.Kind == CfgTLBPP || p.Kind == CfgTLBPred || p.Kind == CfgCombined
}

// hasPredictor reports whether a real (fallible) page-size predictor
// selects the mixed TLB's index.
func (p Params) hasPredictor() bool { return p.Kind == CfgTLBPred || p.Kind == CfgCombined }

// PolicyFor returns the OS memory policy matching a configuration:
// 4KB runs without huge pages; THP-based configurations use transparent
// huge pages at the workload's achievable coverage; RMM adds eager
// paging; RMM_Lite uses eager paging with plain 4 KB pages (§5 config
// vi: "4 KB pages and range translations in both L1 and L2 TLBs").
func PolicyFor(kind ConfigKind, thpCoverage float64) vm.Policy {
	switch kind {
	case Cfg4KB:
		return vm.Policy{}
	case CfgTHP, CfgTLBLite, CfgTLBPP:
		return vm.Policy{THP: true, THPCoverage: thpCoverage}
	case CfgRMM:
		return vm.Policy{THP: true, THPCoverage: thpCoverage, EagerPaging: true}
	case CfgRMMLite:
		return vm.Policy{EagerPaging: true}
	case CfgTLBPred:
		return vm.Policy{THP: true, THPCoverage: thpCoverage}
	case CfgCombined:
		return vm.Policy{THP: true, THPCoverage: thpCoverage, EagerPaging: true}
	}
	panic(fmt.Sprintf("core: unknown config kind %d", int(kind)))
}

// Validate checks the parameters for consistency. Every failure wraps
// ErrInvalidParams, so API users can classify with errors.Is.
func (p Params) Validate() error {
	if p.Kind < 0 || p.Kind >= NumConfigs {
		return fmt.Errorf("core: %w: invalid config kind %d", ErrInvalidParams, int(p.Kind))
	}
	if p.L14KEntries <= 0 || p.L14KWays <= 0 || p.L14KEntries%p.L14KWays != 0 {
		return fmt.Errorf("core: %w: bad L1-4KB geometry %d/%d", ErrInvalidParams, p.L14KEntries, p.L14KWays)
	}
	if p.hasL12M() && (p.L12MEntries <= 0 || p.L12MWays <= 0 || p.L12MEntries%p.L12MWays != 0) {
		return fmt.Errorf("core: %w: bad L1-2MB geometry %d/%d", ErrInvalidParams, p.L12MEntries, p.L12MWays)
	}
	if p.L2Entries <= 0 || p.L2Ways <= 0 || p.L2Entries%p.L2Ways != 0 {
		return fmt.Errorf("core: %w: bad L2 geometry %d/%d", ErrInvalidParams, p.L2Entries, p.L2Ways)
	}
	if p.hasL2Range() && p.L2RangeEntries <= 0 {
		return fmt.Errorf("core: %w: bad L2-range capacity %d", ErrInvalidParams, p.L2RangeEntries)
	}
	if p.hasL1Range() && p.L1RangeEntries <= 0 {
		return fmt.Errorf("core: %w: bad L1-range capacity %d", ErrInvalidParams, p.L1RangeEntries)
	}
	if p.WalkL1HitRatio < 0 || p.WalkL1HitRatio > 1 {
		return fmt.Errorf("core: %w: walk L1 hit ratio %v outside [0,1]", ErrInvalidParams, p.WalkL1HitRatio)
	}
	if p.L2LatencyCycles < 0 || p.WalkLatencyCycles < 0 {
		return fmt.Errorf("core: %w: negative latency", ErrInvalidParams)
	}
	if p.EnergyDB == nil {
		return fmt.Errorf("core: %w: nil energy database", ErrInvalidParams)
	}
	if err := p.MMU.Validate(); err != nil {
		return fmt.Errorf("core: %w: %v", ErrInvalidParams, err)
	}
	if p.hasLite() {
		if err := p.Lite.Validate(); err != nil {
			return fmt.Errorf("core: %w: %v", ErrInvalidParams, err)
		}
		// Lite's LRU-distance monitors bucket ways in powers of two
		// (Figure 6); non-power-of-two associativity would panic deep in
		// internal/lite at controller construction.
		if p.L14KWays&(p.L14KWays-1) != 0 {
			return fmt.Errorf("core: %w: Lite requires power-of-two L1-4KB associativity, got %d",
				ErrInvalidParams, p.L14KWays)
		}
		if p.hasL12M() && p.L12MWays&(p.L12MWays-1) != 0 {
			return fmt.Errorf("core: %w: Lite requires power-of-two L1-2MB associativity, got %d",
				ErrInvalidParams, p.L12MWays)
		}
	}
	if p.hasPredictor() {
		if p.PredictorEntries <= 0 || p.PredictorEntries&(p.PredictorEntries-1) != 0 {
			return fmt.Errorf("core: %w: predictor entries %d must be a positive power of two", ErrInvalidParams, p.PredictorEntries)
		}
		if p.MispredictPenaltyCycles < 0 {
			return fmt.Errorf("core: %w: negative mispredict penalty", ErrInvalidParams)
		}
	}
	if err := p.Fault.Validate(); err != nil {
		return fmt.Errorf("core: %w: %v", ErrInvalidParams, err)
	}
	return nil
}
