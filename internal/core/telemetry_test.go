package core

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"xlate/internal/telemetry"
	"xlate/internal/trace"
	"xlate/internal/vm"
)

// telemetryRun drives one configuration over a fixed seeded workload,
// optionally attached to a registry/tracer, and returns the Result plus
// the attachments for inspection.
func telemetryRun(t *testing.T, kind ConfigKind, attach bool, w *strings.Builder) (Result, *Metrics) {
	t.Helper()
	as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.5), Seed: 7})
	reg, err := as.Mmap(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(kind)
	p.Lite.IntervalInstrs = 100_000
	p.SeriesIntervalInstrs = 50_000
	var m *Metrics
	var tr *telemetry.Tracer
	if attach {
		m = NewMetrics(telemetry.NewRegistry())
		p.Metrics = m
		tr = telemetry.NewTracer(w, telemetry.TraceChrome, 64)
		p.Trace = tr
	}
	sim, err := NewSimulator(p, as)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(context.Background(),
		trace.NewGenerator(trace.Zipf(window(reg), 1.8, 5), 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return res, m
}

// TestTelemetryByteIdentity pins the acceptance criterion: attaching the
// metrics registry and a sampling tracer must not change a single
// counter, energy account, series point, or Lite decision.
func TestTelemetryByteIdentity(t *testing.T) {
	for _, kind := range []ConfigKind{CfgTLBLite, CfgRMMLite, CfgCombined} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var w strings.Builder
			plain, _ := telemetryRun(t, kind, false, nil)
			instrumented, _ := telemetryRun(t, kind, true, &w)
			if !reflect.DeepEqual(plain, instrumented) {
				t.Errorf("telemetry changed the result:\nplain:        %+v\ninstrumented: %+v",
					plain, instrumented)
			}
		})
	}
}

// TestTelemetryRegistryMatchesResult: after Result(), the flushed
// registry totals must equal the returned counters exactly — the flush
// publishes deltas, so any drift would compound.
func TestTelemetryRegistryMatchesResult(t *testing.T) {
	var w strings.Builder
	res, m := telemetryRun(t, CfgRMMLite, true, &w)

	check := func(name string, got, want uint64) {
		if got != want {
			t.Errorf("%s: registry has %d, Result has %d", name, got, want)
		}
	}
	check("accesses", m.accesses.Load(), res.MemRefs)
	check("instructions", m.instructions.Load(), res.Instructions)
	check("l1 misses", m.l1Misses.Load(), res.L1Misses)
	check("l2 misses", m.l2Misses.Load(), res.L2Misses)
	check("walk refs", m.walkRefs.Load(), res.WalkRefs)
	check("hits 4k", m.hits4K.Load(), res.Hits4K)
	check("hits range", m.hitsRange.Load(), res.HitsRange)
	check("miss cycles", m.missCycles.Load(), res.CyclesTLBMiss)
	check("lite resizes", m.liteResizes.Load(), res.LiteResizes)
	check("lite reactivations", m.liteReacts.Load(), res.LiteReactivations)

	var total float64
	for _, fc := range m.energy {
		total += fc.Load()
	}
	if math.Abs(total-res.EnergyPJ()) > 1e-6*res.EnergyPJ() {
		t.Errorf("energy: registry has %g pJ, Result has %g pJ", total, res.EnergyPJ())
	}
	if m.simsActive.Load() != 0 {
		t.Errorf("simsActive = %d after the run, want 0", m.simsActive.Load())
	}

	// The Prometheus rendering must carry the acceptance-criteria
	// families with non-zero samples.
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"xlate_tlb_l1_hits_total{kind=\"4k\"}",
		"xlate_tlb_l1_misses_total ",
		"xlate_walk_refs_total ",
		"xlate_energy_picojoules_total{account=",
		"xlate_lite_resizes_total ",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

// TestTelemetryTraceEvents: an instrumented run must emit a
// Chrome-loadable trace with the configured event plus sampled hot-path
// events.
func TestTelemetryTraceEvents(t *testing.T) {
	var w strings.Builder
	res, _ := telemetryRun(t, CfgRMMLite, true, &w)
	if res.L1Misses == 0 {
		t.Fatal("workload produced no L1 misses; trace test is vacuous")
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(w.String()), &doc); err != nil {
		t.Fatalf("trace is not Chrome-loadable JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		if ev.Ph != "i" {
			t.Fatalf("event %q has phase %q, want instant", ev.Name, ev.Ph)
		}
	}
	for _, want := range []string{"configured", "l1_miss", "page_walk", "lite_decision"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q events (got %v)", want, names)
		}
	}
}

// TestFlushTelemetryAllocFree pins the flush itself — the only telemetry
// code on the simulation path — at zero allocations.
func TestFlushTelemetryAllocFree(t *testing.T) {
	var w strings.Builder
	as := vm.New(vm.Config{Policy: PolicyFor(CfgRMMLite, 0.5), Seed: 7})
	reg, err := as.Mmap(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(CfgRMMLite)
	p.Metrics = NewMetrics(telemetry.NewRegistry())
	tr := telemetry.NewTracer(&w, telemetry.TraceJSONL, 1<<20)
	p.Trace = tr
	defer tr.Close()
	sim, err := NewSimulator(p, as)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(trace.NewGenerator(trace.Uniform(window(reg), 3), 3), 50_000)
	if n := testing.AllocsPerRun(200, sim.flushTelemetry); n != 0 {
		t.Fatalf("flushTelemetry allocates %v per call, want 0", n)
	}
}

// TestIntervalSeriesAligned: the energy-per-access and active-way series
// sample the same interval boundaries as the MPKI series.
func TestIntervalSeriesAligned(t *testing.T) {
	res, _ := telemetryRun(t, CfgRMMLite, false, nil)
	n := len(res.IntervalL1MPKI.Points)
	if n == 0 {
		t.Fatal("no interval points; SeriesIntervalInstrs not honoured")
	}
	if len(res.IntervalEnergyPerRefPJ.Points) != n || len(res.IntervalLiteWays.Points) != n {
		t.Fatalf("series misaligned: mpki=%d energy=%d ways=%d",
			n, len(res.IntervalEnergyPerRefPJ.Points), len(res.IntervalLiteWays.Points))
	}
	for i, pj := range res.IntervalEnergyPerRefPJ.Points {
		if pj <= 0 {
			t.Fatalf("interval %d energy/access = %g, want > 0", i, pj)
		}
	}
	for i, ways := range res.IntervalLiteWays.Points {
		if ways < 1 || ways > 64 {
			t.Fatalf("interval %d active ways = %g, out of range", i, ways)
		}
	}
}
