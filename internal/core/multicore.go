package core

import (
	"fmt"
	"sync"

	"xlate/internal/trace"
	"xlate/internal/vm"
)

// Multicore runs several per-core MMU simulators over one shared
// address space, modeling a multi-threaded process (the paper's TLB
// hierarchy is private per core; PARSEC's canneal in Table 4 is
// multi-threaded). The page table is shared read-only; each core gets a
// private clone of the range table so background-walk statistics stay
// core-local.
type Multicore struct {
	sims []*Simulator
}

// NewMulticore builds cores simulators with identical parameters over
// the address space. The Lite controller of each core gets a distinct
// seed derived from the configured one, as each hardware instance draws
// its own random reactivations.
func NewMulticore(p Params, as *vm.AddressSpace, cores int) (*Multicore, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("core: need at least one core, got %d", cores)
	}
	m := &Multicore{}
	for i := 0; i < cores; i++ {
		pc := p
		pc.Lite.Seed = p.Lite.Seed + int64(i)*0x9e3779b9
		sim, err := NewSimulator(pc, as)
		if err != nil {
			return nil, err
		}
		if sim.rt != nil {
			sim.rt = as.RangeTable().Clone()
			if sim.aud != nil {
				// The auditor captured the shared table at construction;
				// re-point it at this core's private clone.
				sim.aud.SetRangeTable(sim.rt)
			}
		}
		m.sims = append(m.sims, sim)
	}
	return m, nil
}

// Cores returns the number of simulated cores.
func (m *Multicore) Cores() int { return len(m.sims) }

// Core returns the i-th core's simulator for inspection.
func (m *Multicore) Core(i int) *Simulator { return m.sims[i] }

// Run drives every core concurrently with its own reference generator
// (one per core, typically built with distinct seeds) for the given
// per-core instruction budget, and returns the per-core results plus
// the aggregate. Results are deterministic: each core's simulation is
// sequential and self-contained, so scheduling order cannot affect
// outcomes.
func (m *Multicore) Run(gens []trace.RefSource, instrsPerCore uint64) ([]Result, Result, error) {
	if len(gens) != len(m.sims) {
		return nil, Result{}, fmt.Errorf("core: %d generators for %d cores", len(gens), len(m.sims))
	}
	results := make([]Result, len(m.sims))
	var wg sync.WaitGroup
	for i := range m.sims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = m.sims[i].Run(gens[i], instrsPerCore)
		}(i)
	}
	wg.Wait()
	return results, Aggregate(results), nil
}

// Aggregate sums per-core results into a whole-process view: counters
// and energy add; derived rates follow from the summed counters; the
// Lite shares are averaged weighted by references.
func Aggregate(results []Result) Result {
	var agg Result
	if len(results) == 0 {
		return agg
	}
	agg.Config = results[0].Config
	var totalRefs float64
	for _, r := range results {
		agg.Instructions += r.Instructions
		agg.MemRefs += r.MemRefs
		agg.L1Misses += r.L1Misses
		agg.L2Misses += r.L2Misses
		agg.WalkRefs += r.WalkRefs
		agg.CyclesTLBMiss += r.CyclesTLBMiss
		agg.Hits4K += r.Hits4K
		agg.Hits2M += r.Hits2M
		agg.Hits1G += r.Hits1G
		agg.HitsRange += r.HitsRange
		agg.LiteResizes += r.LiteResizes
		agg.LiteReactivations += r.LiteReactivations
		agg.Audit.Sampled += r.Audit.Sampled
		agg.Audit.StructuralAudits += r.Audit.StructuralAudits
		agg.Audit.Violations += r.Audit.Violations
		agg.Energy.Merge(&r.Energy)
		totalRefs += float64(r.MemRefs)
	}
	// Weighted averages for the share-type metrics.
	for _, r := range results {
		w := float64(r.MemRefs) / totalRefs
		agg.MispredictRate += w * r.MispredictRate
		for ti, shares := range r.LiteLookupShare {
			for len(agg.LiteLookupShare) <= ti {
				agg.LiteLookupShare = append(agg.LiteLookupShare, make([]float64, len(shares)))
			}
			for k, v := range shares {
				agg.LiteLookupShare[ti][k] += w * v
			}
		}
	}
	return agg
}
