package core

import (
	"xlate/internal/energy"
	"xlate/internal/lite"
	"xlate/internal/telemetry"
	"xlate/internal/tlb"
)

// Metrics is the simulator-side view of a shared telemetry registry:
// every handle the hot path needs, resolved once. All simulators of a
// run (worker-pool cells, multicore cores) share one Metrics value, so
// the registry aggregates run-wide totals.
//
// The simulator never touches these atomics per access. It accumulates
// into its private runStats exactly as before and flushes *deltas* on
// the RunContext cancellation-check cadence (every 16 Ki references)
// and at Result(). Instrumented runs therefore compute byte-identical
// results to uninstrumented ones — asserted by TestTelemetryByteIdentity.
type Metrics struct {
	reg *telemetry.Registry

	accesses     *telemetry.Counter
	instructions *telemetry.Counter
	hits4K       *telemetry.Counter
	hits2M       *telemetry.Counter
	hits1G       *telemetry.Counter
	hitsRange    *telemetry.Counter
	l1Misses     *telemetry.Counter
	l2Misses     *telemetry.Counter
	walkRefs     *telemetry.Counter
	rangeWalks   *telemetry.Counter
	rangeRefs    *telemetry.Counter
	pageFaults   *telemetry.Counter
	shootdowns   *telemetry.Counter
	missCycles   *telemetry.Counter
	liteResizes  *telemetry.Counter
	liteReacts   *telemetry.Counter
	simsActive   *telemetry.Gauge
	energy       [energy.NumAccounts]*telemetry.FloatCounter
}

// NewMetrics registers the simulator metric families into reg and
// returns the shared handle set. Safe to call more than once on the
// same registry: handles are shared, not duplicated.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		reg: reg,
		accesses: reg.Counter("xlate_accesses_total",
			"memory references simulated"),
		instructions: reg.Counter("xlate_instructions_total",
			"instructions simulated"),
		l1Misses: reg.Counter("xlate_tlb_l1_misses_total",
			"references that missed every L1 translation structure"),
		l2Misses: reg.Counter("xlate_tlb_l2_misses_total",
			"references that missed the L2 TLBs and walked the page table"),
		walkRefs: reg.Counter("xlate_walk_refs_total",
			"page-walk memory references"),
		rangeWalks: reg.Counter("xlate_range_walks_total",
			"background range-table walks"),
		rangeRefs: reg.Counter("xlate_range_walk_refs_total",
			"memory references of background range-table walks"),
		pageFaults: reg.Counter("xlate_page_faults_total",
			"demand-paging faults"),
		shootdowns: reg.Counter("xlate_shootdowns_total",
			"OS-initiated TLB shootdowns (InvalidateRegion calls)"),
		missCycles: reg.Counter("xlate_tlb_miss_cycles_total",
			"cycles spent in L1 and L2 TLB misses"),
		liteResizes: reg.Counter("xlate_lite_resizes_total",
			"Lite way-disabling actions"),
		liteReacts: reg.Counter("xlate_lite_reactivations_total",
			"Lite full-reactivation events"),
		simsActive: reg.Gauge("xlate_sims_active",
			"simulators currently inside RunContext"),
	}
	const hitHelp = "L1 hits by providing structure kind"
	m.hits4K = reg.Counter("xlate_tlb_l1_hits_total", hitHelp, telemetry.L("kind", "4k"))
	m.hits2M = reg.Counter("xlate_tlb_l1_hits_total", hitHelp, telemetry.L("kind", "2m"))
	m.hits1G = reg.Counter("xlate_tlb_l1_hits_total", hitHelp, telemetry.L("kind", "1g"))
	m.hitsRange = reg.Counter("xlate_tlb_l1_hits_total", hitHelp, telemetry.L("kind", "range"))
	for a := energy.Account(0); a < energy.NumAccounts; a++ {
		m.energy[a] = reg.FloatCounter("xlate_energy_picojoules_total",
			"dynamic translation energy by breakdown account",
			telemetry.L("account", a.String()))
	}
	return m
}

// Registry returns the registry the metrics live in.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// structCounters is the labeled per-structure counter set ("L1-4KB TLB",
// "L2-range TLB", the MMU caches, ...).
type structCounters struct {
	lookups, hits, fills, evicts, invals *telemetry.Counter
}

func (m *Metrics) structCounters(name string) structCounters {
	l := telemetry.L("structure", name)
	return structCounters{
		lookups: m.reg.Counter("xlate_structure_lookups_total", "probes per lookup structure", l),
		hits:    m.reg.Counter("xlate_structure_hits_total", "hits per lookup structure", l),
		fills:   m.reg.Counter("xlate_structure_fills_total", "fills per lookup structure", l),
		evicts:  m.reg.Counter("xlate_structure_evictions_total", "evictions per lookup structure", l),
		invals:  m.reg.Counter("xlate_structure_invalidations_total", "invalidations per lookup structure", l),
	}
}

// structFlush binds one structure's private Stats to its shared
// counters, remembering the last-flushed values for delta computation.
type structFlush struct {
	stats func() tlb.Stats
	dst   structCounters
	last  tlb.Stats
}

// teleState is one simulator's telemetry attachment: the shared metric
// handles, the tracer track, and the last-flushed snapshot of every
// counter the flush publishes. All fields are owned by the simulator's
// goroutine; only the shared atomics are crossed.
type teleState struct {
	m       *Metrics
	tr      *telemetry.Tracer
	track   uint64
	last    teleSnapshot
	structs []structFlush
}

// teleSnapshot mirrors the flushed subset of runStats.
type teleSnapshot struct {
	memRefs, instructions              uint64
	hits4K, hits2M, hits1G, hitsRange  uint64
	l1Misses, l2Misses, walkRefs       uint64
	pageFaults, shootdowns, missCycles uint64
	rangeWalks, rangeRefs              uint64
	liteResizes, liteReacts            uint64
	energy                             energy.Breakdown
}

// attachTelemetry wires the simulator to the shared metrics and/or
// tracer. Called from NewSimulator after every structure exists.
func (s *Simulator) attachTelemetry(m *Metrics, tr *telemetry.Tracer) {
	t := &teleState{m: m, tr: tr}
	if tr != nil {
		t.track = tr.NextTrack()
		tr.Emit(t.track, 0, "sim", "configured", telemetry.KV{K: "config", V: s.p.Kind.String()})
	}
	if m != nil {
		bind := func(name string, stats func() tlb.Stats) {
			t.structs = append(t.structs, structFlush{stats: stats, dst: m.structCounters(name)})
		}
		bind(energy.L14KB, s.l14k.Stats)
		if s.l12m != nil {
			bind(energy.L12MB, s.l12m.Stats)
		}
		if s.l11g != nil {
			bind(energy.L11GB, s.l11g.Stats)
		}
		bind(energy.L2Page, s.l2.Stats)
		if s.l1rng != nil {
			bind(energy.L1Range, s.l1rng.Stats)
		}
		if s.l2rng != nil {
			bind(energy.L2Range, s.l2rng.Stats)
		}
		for _, st := range s.mmu.Structures() {
			bind(st.Name(), st.Stats)
		}
	}
	if s.ctl != nil && tr != nil {
		// Lite interval decisions are rare (one per million instructions)
		// and are what a Figure 4 drill-down needs, so they are emitted
		// unconditionally rather than sampled.
		track := t.track
		s.ctl.OnDecision(func(d lite.Decision) {
			ways := 0
			for _, w := range d.Ways {
				ways = ways*10 + w
			}
			tr.Emit(track, s.st.memRefs, "lite", "lite_decision",
				telemetry.KV{K: "interval", V: d.Interval},
				telemetry.KV{K: "mpki", V: d.ActualMPKI},
				telemetry.KV{K: "reactivated", V: d.Reactivated},
				telemetry.KV{K: "random", V: d.RandomTrig},
				telemetry.KV{K: "degraded", V: d.DegradedTrig},
				telemetry.KV{K: "ways", V: ways})
		})
	}
	s.tele = t
}

// flushTelemetry publishes the deltas since the previous flush into the
// shared registry. Allocation-free (pinned by TestFlushTelemetryAllocFree)
// and cheap enough for the 16 Ki-reference cadence: a few dozen atomic
// adds.
func (s *Simulator) flushTelemetry() {
	t := s.tele
	if t == nil || t.m == nil {
		return
	}
	m, last := t.m, &t.last
	cur := teleSnapshot{
		memRefs:      s.st.memRefs,
		instructions: s.st.instructions,
		hits4K:       s.st.hits4K,
		hits2M:       s.st.hits2M,
		hits1G:       s.st.hits1G,
		hitsRange:    s.st.hitsRange,
		l1Misses:     s.st.l1Misses,
		l2Misses:     s.st.l2Misses,
		walkRefs:     s.st.walkRefs,
		pageFaults:   s.st.pageFaults,
		shootdowns:   s.st.shootdowns,
		missCycles:   s.st.cycles,
		energy:       s.st.energy,
	}
	if s.rt != nil {
		cur.rangeWalks, cur.rangeRefs = s.rt.Stats()
	}
	if s.ctl != nil {
		cur.liteResizes = s.ctl.Resizes()
		cur.liteReacts = s.ctl.Reactivations()
	}
	m.accesses.Add(cur.memRefs - last.memRefs)
	m.instructions.Add(cur.instructions - last.instructions)
	m.hits4K.Add(cur.hits4K - last.hits4K)
	m.hits2M.Add(cur.hits2M - last.hits2M)
	m.hits1G.Add(cur.hits1G - last.hits1G)
	m.hitsRange.Add(cur.hitsRange - last.hitsRange)
	m.l1Misses.Add(cur.l1Misses - last.l1Misses)
	m.l2Misses.Add(cur.l2Misses - last.l2Misses)
	m.walkRefs.Add(cur.walkRefs - last.walkRefs)
	m.pageFaults.Add(cur.pageFaults - last.pageFaults)
	m.shootdowns.Add(cur.shootdowns - last.shootdowns)
	m.missCycles.Add(cur.missCycles - last.missCycles)
	m.rangeWalks.Add(cur.rangeWalks - last.rangeWalks)
	m.rangeRefs.Add(cur.rangeRefs - last.rangeRefs)
	m.liteResizes.Add(cur.liteResizes - last.liteResizes)
	m.liteReacts.Add(cur.liteReacts - last.liteReacts)
	for a := range cur.energy {
		if d := cur.energy[a] - last.energy[a]; d != 0 {
			m.energy[a].Add(d)
		}
	}
	for i := range t.structs {
		f := &t.structs[i]
		st := f.stats()
		f.dst.lookups.Add(st.Lookups - f.last.Lookups)
		f.dst.hits.Add(st.Hits - f.last.Hits)
		f.dst.fills.Add(st.Fills - f.last.Fills)
		f.dst.evicts.Add(st.Evicts - f.last.Evicts)
		f.dst.invals.Add(st.Invals - f.last.Invals)
		f.last = st
	}
	t.last = cur
}

// Trace emission helpers. Each is nil-guarded so the untraced hot path
// pays one branch, mirroring the audit helpers above. Sampling uses the
// pre-increment event count (the counter was just bumped at the call
// site), so event #1 of every kind is always in the trace even when a
// run has fewer events than the sampling cadence.

func (s *Simulator) traceMiss(va uint64) {
	t := s.tele
	if t == nil || t.tr == nil || !t.tr.ShouldSample(s.st.l1Misses-1) {
		return
	}
	t.tr.Emit(t.track, s.st.memRefs, "tlb", "l1_miss",
		telemetry.KV{K: "va", V: va}, telemetry.KV{K: "miss", V: s.st.l1Misses})
}

func (s *Simulator) traceWalk(va uint64, refs int, size string) {
	t := s.tele
	if t == nil || t.tr == nil || !t.tr.ShouldSample(s.st.l2Misses-1) {
		return
	}
	t.tr.Emit(t.track, s.st.memRefs, "walk", "page_walk",
		telemetry.KV{K: "va", V: va}, telemetry.KV{K: "refs", V: refs}, telemetry.KV{K: "size", V: size})
}

func (s *Simulator) traceRangeHit(base, limit uint64) {
	t := s.tele
	if t == nil || t.tr == nil || !t.tr.ShouldSample(s.st.hitsRange-1) {
		return
	}
	t.tr.Emit(t.track, s.st.memRefs, "tlb", "range_hit",
		telemetry.KV{K: "start", V: base}, telemetry.KV{K: "end", V: limit})
}

func (s *Simulator) traceShootdown(start, end uint64, flush bool) {
	t := s.tele
	if t == nil || t.tr == nil {
		return
	}
	t.tr.Emit(t.track, s.st.memRefs, "os", "shootdown",
		telemetry.KV{K: "start", V: start}, telemetry.KV{K: "end", V: end}, telemetry.KV{K: "full_flush", V: flush})
}

func (s *Simulator) tracePageFault(va uint64) {
	t := s.tele
	if t == nil || t.tr == nil {
		return
	}
	t.tr.Emit(t.track, s.st.memRefs, "os", "page_fault", telemetry.KV{K: "va", V: va})
}
