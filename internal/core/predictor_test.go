package core

import (
	"testing"

	"xlate/internal/addr"
)

func TestPredictorLearnsRegions(t *testing.T) {
	p := newSizePredictor(256)
	huge := addr.VA(0x40000000)  // region backed by 2MB pages
	small := addr.VA(0x80000000) // region backed by 4KB pages
	for i := 0; i < 4; i++ {
		p.update(huge, addr.Page2M)
		p.update(small, addr.Page4K)
	}
	if got := p.predict(huge); got != addr.Page2M {
		t.Fatalf("trained huge region predicted %v", got)
	}
	if got := p.predict(small); got != addr.Page4K {
		t.Fatalf("trained small region predicted %v", got)
	}
	// Addresses within the same 2MB region share a prediction.
	if got := p.predict(huge + 0x12345); got != addr.Page2M {
		t.Fatalf("same-region address predicted %v", got)
	}
}

func TestPredictorHysteresis(t *testing.T) {
	p := newSizePredictor(64)
	va := addr.VA(0x1000000)
	for i := 0; i < 4; i++ {
		p.update(va, addr.Page2M)
	}
	// One contrary observation must not flip a saturated counter.
	p.update(va, addr.Page4K)
	if got := p.predict(va); got != addr.Page2M {
		t.Fatal("2-bit counter should resist a single contrary sample")
	}
	// Sustained contrary evidence flips it.
	for i := 0; i < 4; i++ {
		p.update(va, addr.Page4K)
	}
	if got := p.predict(va); got != addr.Page4K {
		t.Fatal("sustained evidence should retrain the predictor")
	}
}

func TestPredictorColdBiasIs4K(t *testing.T) {
	p := newSizePredictor(64)
	// 4KB pages vastly outnumber huge pages in practice: a cold
	// predictor must default to 4KB.
	if got := p.predict(0xdeadbeef000); got != addr.Page4K {
		t.Fatalf("cold prediction = %v, want 4KB", got)
	}
}

func TestPredictorStats(t *testing.T) {
	p := newSizePredictor(64)
	if p.MispredictRate() != 0 {
		t.Fatal("no predictions yet")
	}
	p.predict(0)
	p.predict(0)
	p.noteMispredict()
	if got := p.MispredictRate(); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
}

func TestPredictorSizeValidation(t *testing.T) {
	for _, n := range []int{0, -4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entries=%d should panic", n)
				}
			}()
			newSizePredictor(n)
		}()
	}
}
