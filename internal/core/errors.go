package core

import "errors"

// ErrInvalidParams is wrapped by every validation failure of Params, so
// callers at the API boundary can classify configuration errors with
// errors.Is without matching message text. Panics remain reserved for
// internal invariants (and the experiment harness recovers those).
var ErrInvalidParams = errors.New("invalid simulation parameters")
