package core

import (
	"xlate/internal/addr"
)

// sizePredictor is a realizable page-size predictor in the spirit of
// TLB_Pred (Papadopoulou et al., HPCA 2015): a table of 2-bit saturating
// counters indexed by a hash of the 2 MB-region bits of the virtual
// address, predicting whether the reference falls in a huge page. The
// paper evaluates only the *perfect* upper bound (TLB_PP); this
// implementation quantifies how far a practical predictor lands from it
// (the paper notes TLB_PP "under reports its true costs").
//
// A misprediction forces a second, re-indexed probe of the mixed TLB
// (charged a second read) and one extra cycle.
type sizePredictor struct {
	counters []uint8
	mask     uint64

	predictions    uint64
	mispredictions uint64
}

// newSizePredictor builds a predictor with a power-of-two entry count.
func newSizePredictor(entries int) *sizePredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: predictor entries must be a positive power of two")
	}
	return &sizePredictor{counters: make([]uint8, entries), mask: uint64(entries - 1)}
}

func (p *sizePredictor) index(va addr.VA) uint64 {
	region := uint64(va) >> addr.Shift2M
	// Mix the bits so aliasing is not purely modular.
	region ^= region >> 13
	region *= 0x9e3779b97f4a7c15
	return (region >> 32) & p.mask
}

// predict returns the predicted page size for va and counts the
// prediction.
func (p *sizePredictor) predict(va addr.VA) addr.PageSize {
	p.predictions++
	if p.counters[p.index(va)] >= 2 {
		return addr.Page2M
	}
	return addr.Page4K
}

// update trains the predictor with the resolved page size; mispredicted
// is recorded by the caller via noteMispredict (the caller knows whether
// the wrong-size probe cost anything).
func (p *sizePredictor) update(va addr.VA, actual addr.PageSize) {
	i := p.index(va)
	if actual == addr.Page2M {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else if p.counters[i] > 0 {
		p.counters[i]--
	}
}

// noteMispredict counts one misprediction.
func (p *sizePredictor) noteMispredict() { p.mispredictions++ }

// MispredictRate returns mispredictions per prediction.
func (p *sizePredictor) MispredictRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.mispredictions) / float64(p.predictions)
}
