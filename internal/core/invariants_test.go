package core

import (
	"testing"

	"xlate/internal/energy"
	"xlate/internal/trace"
	"xlate/internal/vm"
)

// TestCrossConfigInvariants runs every configuration (paper + extension)
// over the same synthetic working set and checks the accounting
// invariants that must hold regardless of configuration:
//
//	refs  = L1 hits + L1 misses
//	walks = L2 misses; walk refs ∈ [walks, 4·walks]
//	cycles = 7·L1miss + 50·L2miss (+ mispredict penalties)
//	every enabled structure's energy account is positive
//	lookups of each structure reconcile with refs/misses
func TestCrossConfigInvariants(t *testing.T) {
	kinds := append(AllConfigs(), ExtendedConfigs()...)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.5), Seed: 11})
			reg, err := as.Mmap(48 << 20)
			if err != nil {
				t.Fatal(err)
			}
			p := DefaultParams(kind)
			sim, err := NewSimulator(p, as)
			if err != nil {
				t.Fatal(err)
			}
			stream := trace.Mix(5,
				trace.Weighted{Stream: trace.Zipf(window(reg), 1.6, 6), Weight: 0.8},
				trace.Weighted{Stream: trace.Uniform(window(reg), 7), Weight: 0.2},
			)
			res := sim.Run(trace.NewGenerator(stream, 3), 600_000)
			st := sim.StructureStats()

			if res.L1Hits()+res.L1Misses != res.MemRefs {
				t.Errorf("hits %d + misses %d != refs %d", res.L1Hits(), res.L1Misses, res.MemRefs)
			}

			l2 := st[energy.L2Page]
			if l2.Lookups != res.L1Misses {
				t.Errorf("L2 lookups %d != L1 misses %d", l2.Lookups, res.L1Misses)
			}
			if res.WalkRefs < res.L2Misses || res.WalkRefs > 4*res.L2Misses {
				t.Errorf("walk refs %d outside [%d, %d]", res.WalkRefs, res.L2Misses, 4*res.L2Misses)
			}

			baseCycles := 7*res.L1Misses + 50*res.L2Misses
			if res.CyclesTLBMiss < baseCycles {
				t.Errorf("cycles %d below model floor %d", res.CyclesTLBMiss, baseCycles)
			}
			if res.MispredictRate == 0 && res.CyclesTLBMiss != baseCycles {
				t.Errorf("cycles %d != model %d without mispredictions", res.CyclesTLBMiss, baseCycles)
			}

			// The L1-4KB account (also the mixed-TLB account) is always
			// live; the walk account must be live whenever walks happened.
			if res.Energy.Get(energy.AccL1Page4K) <= 0 {
				t.Error("L1 page energy not charged")
			}
			if res.L2Misses > 0 && res.Energy.Get(energy.AccPageWalk) <= 0 {
				t.Error("walks happened but no walk energy")
			}
			if res.Energy.Total() <= 0 {
				t.Error("no energy charged at all")
			}

			// Structures must pass their own invariants after a run.
			if err := checkAllStructures(sim); err != nil {
				t.Error(err)
			}
		})
	}
}

func checkAllStructures(s *Simulator) error {
	if err := s.l14k.CheckInvariants(); err != nil {
		return err
	}
	if s.l12m != nil {
		if err := s.l12m.CheckInvariants(); err != nil {
			return err
		}
	}
	if err := s.l2.CheckInvariants(); err != nil {
		return err
	}
	for _, st := range s.mmu.Structures() {
		if err := st.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// TestLiteNeverBreaksCorrectness: way-disabling may only add misses,
// never wrong translations — with Lite enabled, the translated stream
// must produce exactly the same per-structure consistency as without,
// and MPKI may only move within the configured threshold's reach.
func TestLiteCostBounded(t *testing.T) {
	build := func(kind ConfigKind) Result {
		as := vm.New(vm.Config{Policy: PolicyFor(kind, 0.6), Seed: 4})
		reg, err := as.Mmap(32 << 20)
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams(kind)
		p.Lite.IntervalInstrs = 100_000
		sim, err := NewSimulator(p, as)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(trace.NewGenerator(trace.Zipf(window(reg), 2.2, 3), 3), 3_000_000)
	}
	thp := build(CfgTHP)
	lite := build(CfgTLBLite)
	if lite.EnergyPJ() >= thp.EnergyPJ() {
		t.Fatalf("Lite saved nothing: %v vs %v", lite.EnergyPJ(), thp.EnergyPJ())
	}
	// The paper reports +4% L1 misses on average; allow generous slack
	// but catch runaway degradation (which would indicate the decision
	// algorithm mis-accounting).
	if lite.L1MPKI() > thp.L1MPKI()*1.5+1 {
		t.Fatalf("Lite degraded MPKI %v → %v", thp.L1MPKI(), lite.L1MPKI())
	}
}
