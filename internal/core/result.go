package core

import (
	"xlate/internal/audit"
	"xlate/internal/energy"
	"xlate/internal/stats"
	"xlate/internal/tlb"
)

// Result summarizes one simulation run: the counters of the performance
// model and the energy breakdown of Table 3's equations.
type Result struct {
	Config string

	Instructions uint64
	MemRefs      uint64
	L1Misses     uint64
	L2Misses     uint64
	WalkRefs     uint64

	// PageFaults counts demand-paging faults (replayed external traces
	// with Params.DemandPaging only).
	PageFaults uint64

	// CyclesTLBMiss is the cycles spent in L1 and L2 TLB misses
	// (Table 3: 7 per L1 miss + 50 per L2 miss; L1 hits are free).
	CyclesTLBMiss uint64

	// Energy is the dynamic-energy breakdown in picojoules.
	Energy energy.Breakdown

	// L1 hit attribution (Table 5 right half).
	Hits4K, Hits2M, Hits1G, HitsRange uint64

	// LiteLookupShare[tlbIdx][k] is the fraction of lookups TLB tlbIdx
	// performed with 2^k active ways (Table 5 left half); nil for
	// non-Lite configurations. Index 0 is the L1-4KB TLB; index 1, when
	// present, the L1-2MB TLB.
	LiteLookupShare [][]float64

	// IntervalL1MPKI is the per-interval L1 MPKI series (Figure 4);
	// empty unless Params.SeriesIntervalInstrs was set.
	IntervalL1MPKI stats.Series

	// IntervalEnergyPerRefPJ and IntervalLiteWays extend the Figure 4
	// drill-down: dynamic energy per access and L1-4KB active ways,
	// sampled on the same interval boundaries. Empty unless
	// Params.SeriesIntervalInstrs was set.
	IntervalEnergyPerRefPJ stats.Series
	IntervalLiteWays       stats.Series

	// LiteResizes / LiteReactivations count controller actions.
	LiteResizes       uint64
	LiteReactivations uint64

	// MispredictRate is the page-size predictor's misprediction rate
	// (TLB_Pred / Combined extension configurations only; 0 otherwise).
	MispredictRate float64

	// Audit summarizes the integrity layer's activity (zero when
	// Params.Audit was disabled). It is diagnostic metadata: rendered
	// tables ignore it, so audited and unaudited runs stay
	// byte-identical.
	Audit audit.Stats
}

// L1MPKI returns L1 TLB misses per thousand instructions.
func (r Result) L1MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L1Misses) * 1000 / float64(r.Instructions)
}

// L2MPKI returns L2 TLB misses per thousand instructions.
func (r Result) L2MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L2Misses) * 1000 / float64(r.Instructions)
}

// L1Hits returns the total L1 TLB hits.
func (r Result) L1Hits() uint64 { return r.Hits4K + r.Hits2M + r.Hits1G + r.HitsRange }

// EnergyPJ returns the total dynamic energy in picojoules.
func (r Result) EnergyPJ() float64 { return r.Energy.Total() }

// EnergyPerRefPJ returns the dynamic energy per memory reference.
func (r Result) EnergyPerRefPJ() float64 {
	if r.MemRefs == 0 {
		return 0
	}
	return r.Energy.Total() / float64(r.MemRefs)
}

// MissCycleFraction returns the fraction of (approximate) total
// execution cycles spent in TLB misses, assuming one cycle per
// instruction otherwise — the quantity behind the paper's "cycles spent
// in TLB misses" percentages.
func (r Result) MissCycleFraction() float64 {
	total := float64(r.Instructions + r.CyclesTLBMiss)
	if total == 0 {
		return 0
	}
	return float64(r.CyclesTLBMiss) / total
}

// Result snapshots the current run statistics.
func (s *Simulator) Result() Result {
	r := Result{
		Config:        s.p.Kind.String(),
		Instructions:  s.st.instructions,
		MemRefs:       s.st.memRefs,
		L1Misses:      s.st.l1Misses,
		L2Misses:      s.st.l2Misses,
		WalkRefs:      s.st.walkRefs,
		PageFaults:    s.st.pageFaults,
		CyclesTLBMiss: s.st.cycles,
		Energy:        s.st.energy,
		Hits4K:        s.st.hits4K,
		Hits2M:        s.st.hits2M,
		Hits1G:        s.st.hits1G,
		HitsRange:     s.st.hitsRange,
		IntervalL1MPKI: stats.Series{
			Name:   s.st.series.Name,
			Points: append([]float64(nil), s.st.series.Points...),
		},
		IntervalEnergyPerRefPJ: stats.Series{
			Name:   s.st.seriesEnergy.Name,
			Points: append([]float64(nil), s.st.seriesEnergy.Points...),
		},
		IntervalLiteWays: stats.Series{
			Name:   s.st.seriesWays.Name,
			Points: append([]float64(nil), s.st.seriesWays.Points...),
		},
	}
	// Result is every run's exit point, so flushing here guarantees the
	// registry's totals match the returned counters exactly.
	s.flushTelemetry()
	if s.ctl != nil {
		r.LiteLookupShare = append(r.LiteLookupShare, s.ctl.LookupShareAtWays(0))
		if s.lite2mIdx >= 0 {
			r.LiteLookupShare = append(r.LiteLookupShare, s.ctl.LookupShareAtWays(s.lite2mIdx))
		}
		if s.lite1gIdx >= 0 {
			r.LiteLookupShare = append(r.LiteLookupShare, s.ctl.LookupShareAtWays(s.lite1gIdx))
		}
		r.LiteResizes = s.ctl.Resizes()
		r.LiteReactivations = s.ctl.Reactivations()
	}
	if s.pred != nil {
		r.MispredictRate = s.pred.MispredictRate()
	}
	if s.aud != nil {
		r.Audit = s.aud.Stats()
	}
	return r
}

// StructureStats returns the raw event counters of every structure in
// the hierarchy, keyed by structure name. Intended for tests and
// debugging output.
func (s *Simulator) StructureStats() map[string]tlb.Stats {
	out := map[string]tlb.Stats{
		energy.L14KB:  s.l14k.Stats(),
		energy.L2Page: s.l2.Stats(),
	}
	if s.l12m != nil {
		out[energy.L12MB] = s.l12m.Stats()
	}
	if s.l11g != nil {
		out[energy.L11GB] = s.l11g.Stats()
	}
	if s.l1rng != nil {
		out[energy.L1Range] = s.l1rng.Stats()
	}
	if s.l2rng != nil {
		out[energy.L2Range] = s.l2rng.Stats()
	}
	for _, st := range s.mmu.Structures() {
		out[st.Name()] = st.Stats()
	}
	return out
}
