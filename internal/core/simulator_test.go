package core

import (
	"math"
	"testing"

	"xlate/internal/addr"
	"xlate/internal/energy"
	"xlate/internal/trace"
	"xlate/internal/vm"
)

// mkSpace builds an address space for the configuration with one region
// of the given size, returning the space and region.
func mkSpace(t *testing.T, kind ConfigKind, coverage float64, size uint64) (*vm.AddressSpace, vm.Region) {
	t.Helper()
	as := vm.New(vm.Config{Policy: PolicyFor(kind, coverage), Seed: 1})
	reg, err := as.Mmap(size)
	if err != nil {
		t.Fatal(err)
	}
	return as, reg
}

func window(reg vm.Region) trace.Window {
	return trace.Window{Base: reg.Base, Size: reg.Size}
}

func runSim(t *testing.T, p Params, as *vm.AddressSpace, stream trace.Stream, instrs uint64) (*Simulator, Result) {
	t.Helper()
	sim, err := NewSimulator(p, as)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(trace.NewGenerator(stream, 3), instrs)
	return sim, res
}

func TestConfigNames(t *testing.T) {
	want := []string{"4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite"}
	for i, k := range AllConfigs() {
		if k.String() != want[i] {
			t.Errorf("config %d = %q, want %q", i, k, want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	p := DefaultParams(Cfg4KB)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.L14KEntries = 63
	if bad.Validate() == nil {
		t.Error("63-entry 4-way should be invalid")
	}
	bad = p
	bad.WalkL1HitRatio = 1.5
	if bad.Validate() == nil {
		t.Error("hit ratio 1.5 should be invalid")
	}
	bad = p
	bad.EnergyDB = nil
	if bad.Validate() == nil {
		t.Error("nil energy DB should be invalid")
	}
}

func Test4KBSequentialHitsAfterWarmup(t *testing.T) {
	as, reg := mkSpace(t, Cfg4KB, 0, 16*addr.Bytes4K)
	// Repeatedly touch 16 pages: fits easily in the 64-entry L1.
	sim, res := runSim(t, DefaultParams(Cfg4KB), as, trace.Sequential(window(reg), 64), 300_000)
	if res.L1MPKI() > 1 {
		t.Fatalf("tiny working set should almost always hit: L1 MPKI = %v", res.L1MPKI())
	}
	// Cold misses: exactly 16 pages walked once.
	if res.L2Misses != 16 {
		t.Fatalf("L2 misses = %d, want 16 cold walks", res.L2Misses)
	}
	st := sim.StructureStats()
	if st[energy.L14KB].Hits == 0 {
		t.Fatal("L1-4KB should serve hits")
	}
	if res.Hits2M != 0 || res.HitsRange != 0 {
		t.Fatal("4KB config cannot hit in 2MB or range structures")
	}
}

func TestCycleModelExact(t *testing.T) {
	as, reg := mkSpace(t, Cfg4KB, 0, 1<<20)
	_, res := runSim(t, DefaultParams(Cfg4KB), as, trace.Sequential(window(reg), 4096), 100_000)
	want := 7*res.L1Misses + 50*res.L2Misses
	if res.CyclesTLBMiss != want {
		t.Fatalf("cycles = %d, want 7·%d + 50·%d = %d",
			res.CyclesTLBMiss, res.L1Misses, res.L2Misses, want)
	}
}

func TestEnergyEquationMatchesCounters(t *testing.T) {
	// E = A·E_read + M·E_write per structure (Table 3).
	as, reg := mkSpace(t, Cfg4KB, 0, 2<<20)
	sim, res := runSim(t, DefaultParams(Cfg4KB), as, trace.Uniform(window(reg), 2), 200_000)
	db := energy.Table2()
	st := sim.StructureStats()

	l14k := st[energy.L14KB]
	want4k := float64(l14k.Lookups)*db.Cost(energy.L14KB, 4).ReadPJ +
		float64(l14k.Fills)*db.Cost(energy.L14KB, 4).WritePJ
	if got := res.Energy.Get(energy.AccL1Page4K); math.Abs(got-want4k) > 1e-6*want4k {
		t.Errorf("L1-4KB energy = %v, want %v", got, want4k)
	}

	l2 := st[energy.L2Page]
	wantL2 := float64(l2.Lookups)*db.Cost(energy.L2Page, 0).ReadPJ +
		float64(l2.Fills)*db.Cost(energy.L2Page, 0).WritePJ
	if got := res.Energy.Get(energy.AccL2Page); math.Abs(got-wantL2) > 1e-6*wantL2 {
		t.Errorf("L2 energy = %v, want %v", got, wantL2)
	}

	// Page-walk energy: refs × L1-cache read (hit ratio 1).
	wantWalk := float64(res.WalkRefs) * db.Cost(energy.L1Cache, 0).ReadPJ
	if got := res.Energy.Get(energy.AccPageWalk); math.Abs(got-wantWalk) > 1e-6*wantWalk {
		t.Errorf("walk energy = %v, want %v", got, wantWalk)
	}

	// MMU cache energy: 3 probes per walk plus fills.
	var wantMMU float64
	for _, name := range []string{energy.PDE, energy.PDPTE, energy.PML4} {
		c := db.Cost(name, 0)
		wantMMU += float64(st[name].Lookups)*c.ReadPJ + float64(st[name].Fills)*c.WritePJ
	}
	if got := res.Energy.Get(energy.AccMMUCache); math.Abs(got-wantMMU) > 1e-6*wantMMU {
		t.Errorf("MMU cache energy = %v, want %v", got, wantMMU)
	}
}

func TestTHPUsesHugePages(t *testing.T) {
	as, reg := mkSpace(t, CfgTHP, 1.0, 64<<20)
	_, res := runSim(t, DefaultParams(CfgTHP), as, trace.Uniform(window(reg), 3), 500_000)
	if res.Hits2M == 0 {
		t.Fatal("full-coverage THP should hit in the L1-2MB TLB")
	}
	if res.Hits4K != 0 {
		t.Fatalf("no 4K pages exist at full coverage, but got %d 4K hits", res.Hits4K)
	}
	if res.Energy.Get(energy.AccL1Page2M) == 0 {
		t.Fatal("L1-2MB TLB probes should be charged once enabled")
	}
	// 64 MB = 32 huge pages fit the 32-entry L1-2MB TLB: near-zero
	// steady-state misses.
	if res.L1MPKI() > 1 {
		t.Fatalf("L1 MPKI = %v, want near zero", res.L1MPKI())
	}
}

func TestL12MBDisableMask(t *testing.T) {
	// THP config but zero coverage: no 2 MB page is ever walked, so the
	// L1-2MB TLB stays disabled and consumes no energy (§3.1).
	as, reg := mkSpace(t, CfgTHP, 0.0, 8<<20)
	sim, res := runSim(t, DefaultParams(CfgTHP), as, trace.Uniform(window(reg), 3), 300_000)
	if got := res.Energy.Get(energy.AccL1Page2M); got != 0 {
		t.Fatalf("disabled L1-2MB TLB charged %v pJ", got)
	}
	if sim.StructureStats()[energy.L12MB].Lookups != 0 {
		t.Fatal("disabled L1-2MB TLB should never be probed")
	}
}

func TestTHPReducesWalksVs4KB(t *testing.T) {
	// The headline THP effect (Figure 2b): fewer TLB-miss cycles, but
	// higher L1 lookup energy per reference.
	mk := func(kind ConfigKind) Result {
		as, reg := mkSpace(t, kind, 0.95, 256<<20)
		_, res := runSim(t, DefaultParams(kind), as, trace.Uniform(window(reg), 3), 2_000_000)
		return res
	}
	r4k := mk(Cfg4KB)
	rthp := mk(CfgTHP)
	if rthp.CyclesTLBMiss >= r4k.CyclesTLBMiss/2 {
		t.Fatalf("THP miss cycles %d not well below 4KB %d", rthp.CyclesTLBMiss, r4k.CyclesTLBMiss)
	}
	l1Per4k := r4k.Energy.L1Total() / float64(r4k.MemRefs)
	l1PerTHP := rthp.Energy.L1Total() / float64(rthp.MemRefs)
	if l1PerTHP <= l1Per4k {
		t.Fatalf("THP L1 energy/ref %v should exceed 4KB %v (extra structure probed)", l1PerTHP, l1Per4k)
	}
}

func TestRMMEliminatesWalks(t *testing.T) {
	as, reg := mkSpace(t, CfgRMM, 0.9, 256<<20)
	sim, res := runSim(t, DefaultParams(CfgRMM), as, trace.Uniform(window(reg), 3), 2_000_000)
	// One region = one range: after the first walk, the L2-range TLB
	// covers everything.
	if res.L2Misses > 5 {
		t.Fatalf("RMM L2 misses = %d, want ~1", res.L2Misses)
	}
	if res.Energy.Get(energy.AccL2Range) == 0 {
		t.Fatal("L2-range probes unaccounted")
	}
	if res.Energy.Get(energy.AccRangeWalk) == 0 {
		t.Fatal("background range-table walk energy unaccounted")
	}
	if sim.StructureStats()[energy.L2Range].Hits == 0 {
		t.Fatal("L2-range TLB should serve the L1 misses")
	}
}

func TestRMMLiteRangeHitsAndDownsizing(t *testing.T) {
	as, reg := mkSpace(t, CfgRMMLite, 0, 256<<20)
	p := DefaultParams(CfgRMMLite)
	p.Lite.Seed = 7
	_, res := runSim(t, p, as, trace.Uniform(window(reg), 3), 4_000_000)
	// One range covers the region: the 4-entry L1-range TLB serves
	// nearly every access.
	total := res.L1Hits()
	if float64(res.HitsRange)/float64(total) < 0.95 {
		t.Fatalf("range hits %d of %d — want ≥95%%", res.HitsRange, total)
	}
	// Lite should have downsized the L1-4KB TLB to 1 way for most
	// lookups (the paper's Table 5 shows 63.7% on average, higher for
	// single-structure workloads).
	share := res.LiteLookupShare[0]
	if share[0] < 0.5 {
		t.Fatalf("1-way lookup share = %v, want ≥ 0.5 (shares: %v)", share[0], share)
	}
	if res.LiteResizes == 0 {
		t.Fatal("controller never resized")
	}
}

func TestRMMLiteBeatsTHPEnergy(t *testing.T) {
	// The headline result (Figure 10): RMM_Lite spends far less dynamic
	// energy than THP on a range-friendly workload.
	run := func(kind ConfigKind) Result {
		as, reg := mkSpace(t, kind, 0.9, 128<<20)
		p := DefaultParams(kind)
		_, res := runSim(t, p, as, trace.Uniform(window(reg), 3), 3_000_000)
		return res
	}
	thp := run(CfgTHP)
	rl := run(CfgRMMLite)
	ratio := rl.EnergyPerRefPJ() / thp.EnergyPerRefPJ()
	if ratio > 0.5 {
		t.Fatalf("RMM_Lite/THP energy ratio = %.3f, want well below 0.5", ratio)
	}
}

func TestTLBPPMixedSizes(t *testing.T) {
	as, reg := mkSpace(t, CfgTLBPP, 0.5, 32<<20)
	sim, res := runSim(t, DefaultParams(CfgTLBPP), as, trace.Uniform(window(reg), 3), 1_000_000)
	// Only one L1 structure exists: all L1 energy is on the 4KB account,
	// and both page sizes hit there.
	if res.Energy.Get(energy.AccL1Page2M) != 0 {
		t.Fatal("TLB_PP has no separate 2MB structure")
	}
	if res.Hits2M == 0 || res.Hits4K == 0 {
		t.Fatalf("mixed TLB should hit both sizes: 4K=%d 2M=%d", res.Hits4K, res.Hits2M)
	}
	// Exactly one L1 probe per memory reference.
	if got := sim.StructureStats()[energy.L14KB].Lookups; got != res.MemRefs {
		t.Fatalf("L1 probes = %d, want %d", got, res.MemRefs)
	}
}

func TestWalkLocalitySweepIncreasesEnergy(t *testing.T) {
	// Figure 3: worse walk locality → more dynamic energy, 4KB pages.
	run := func(hit float64) float64 {
		as, reg := mkSpace(t, Cfg4KB, 0, 64<<20)
		p := DefaultParams(Cfg4KB)
		p.WalkL1HitRatio = hit
		_, res := runSim(t, p, as, trace.Uniform(window(reg), 11), 500_000)
		return res.EnergyPerRefPJ()
	}
	e100, e0 := run(1.0), run(0.0)
	if e0 <= e100 {
		t.Fatalf("energy at 0%% walk locality (%v) should exceed 100%% (%v)", e0, e100)
	}
}

func TestIntervalSeries(t *testing.T) {
	as, reg := mkSpace(t, Cfg4KB, 0, 4<<20)
	p := DefaultParams(Cfg4KB)
	p.SeriesIntervalInstrs = 10_000
	_, res := runSim(t, p, as, trace.Uniform(window(reg), 5), 200_000)
	if res.IntervalL1MPKI.Len() < 19 {
		t.Fatalf("series has %d points, want ~20", res.IntervalL1MPKI.Len())
	}
	// Mean of interval MPKIs ≈ overall MPKI.
	if math.Abs(res.IntervalL1MPKI.Mean()-res.L1MPKI()) > 0.15*res.L1MPKI()+0.1 {
		t.Fatalf("series mean %v far from overall MPKI %v", res.IntervalL1MPKI.Mean(), res.L1MPKI())
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	as, _ := mkSpace(t, Cfg4KB, 0, 1<<20)
	sim, err := NewSimulator(DefaultParams(Cfg4KB), as)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access should panic")
		}
	}()
	sim.Access(addr.VA(0xdead0000), 1)
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Instructions: 1_000_000, MemRefs: 300_000, L1Misses: 5000, L2Misses: 100,
		CyclesTLBMiss: 40_000, Hits4K: 200_000, Hits2M: 95_000}
	if r.L1MPKI() != 5 {
		t.Errorf("L1MPKI = %v", r.L1MPKI())
	}
	if r.L2MPKI() != 0.1 {
		t.Errorf("L2MPKI = %v", r.L2MPKI())
	}
	if r.L1Hits() != 295_000 {
		t.Errorf("L1Hits = %d", r.L1Hits())
	}
	if got := r.MissCycleFraction(); math.Abs(got-40_000.0/1_040_000) > 1e-12 {
		t.Errorf("MissCycleFraction = %v", got)
	}
	var zero Result
	if zero.L1MPKI() != 0 || zero.L2MPKI() != 0 || zero.MissCycleFraction() != 0 || zero.EnergyPerRefPJ() != 0 {
		t.Error("zero-value result metrics should be 0")
	}
}

func TestPolicyForMatchesConfigs(t *testing.T) {
	if PolicyFor(Cfg4KB, 0.5).THP {
		t.Error("4KB policy must not use THP")
	}
	if p := PolicyFor(CfgRMM, 0.5); !p.EagerPaging || !p.THP {
		t.Error("RMM policy needs eager paging and THP")
	}
	if p := PolicyFor(CfgRMMLite, 0.5); !p.EagerPaging || p.THP {
		t.Error("RMM_Lite policy is eager paging with 4KB pages only")
	}
}

// Failure injection: the OS breaks huge pages under memory pressure
// (§4.2.2 cites this as a reason Lite must reactivate ways). After the
// break, translations previously served by the L1-2MB TLB fall to the
// L1-4KB TLB; the degradation response must re-enable its ways.
func TestLiteReactsToHugePageBreaking(t *testing.T) {
	as := vm.New(vm.Config{Policy: PolicyFor(CfgTLBLite, 1.0), Seed: 3})
	reg, err := as.Mmap(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(CfgTLBLite)
	p.Lite.IntervalInstrs = 50_000
	p.Lite.ReactivateProb = 0 // isolate the degradation response
	sim, err := NewSimulator(p, as)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(trace.Zipf(window(reg), 2.0, 9), 3)

	// Phase 1: all-huge-page phase. The 4KB TLB sees no hits, so Lite
	// shrinks it to one way.
	sim.Run(gen, 2_000_000)
	share := sim.Lite().LookupShareAtWays(0)
	if share[0] < 0.5 {
		t.Fatalf("setup: 4KB TLB should mostly run at 1 way, share=%v", share)
	}

	// Memory pressure: the OS demotes every huge page to 4KB pages.
	if n, err := as.BreakHugePages(reg); err != nil || n == 0 {
		t.Fatalf("BreakHugePages: n=%d err=%v", n, err)
	}
	// The OS shoots down the stale 2MB translations.
	sim.InvalidateRegion(reg.Base, reg.End())
	misses0 := sim.Result().L1Misses

	before := sim.Lite().Reactivations()
	sim.Run(gen, 4_000_000)
	if sim.Lite().Reactivations() == before {
		t.Fatal("degradation response did not fire after huge-page breaking")
	}
	if sim.Result().L1Misses == misses0 {
		t.Fatal("breaking huge pages should induce new L1 misses")
	}
	// And the 4KB TLB must have been re-enabled at some point: lookups
	// at 4 ways must have occurred after the break.
	shareAfter := sim.Lite().LookupShareAtWays(0)
	if shareAfter[2] <= 0 {
		t.Fatalf("4KB TLB never ran at 4 ways after break: %v", shareAfter)
	}
}

func TestTLBPredMispredictions(t *testing.T) {
	as, reg := mkSpace(t, CfgTLBPred, 0.5, 64<<20)
	sim, res := runSim(t, DefaultParams(CfgTLBPred), as, trace.Uniform(window(reg), 3), 1_000_000)
	// Half the 2MB chunks are huge pages: a region-indexed predictor is
	// imperfect but far better than chance.
	if res.MispredictRate <= 0 {
		t.Fatal("mixed page sizes must cause some mispredictions")
	}
	if res.MispredictRate > 0.45 {
		t.Fatalf("mispredict rate %.3f — predictor not learning", res.MispredictRate)
	}
	// Mispredictions cost a second physical probe.
	if got := sim.StructureStats()[energy.L14KB].Lookups; got <= res.MemRefs {
		t.Fatalf("lookups %d should exceed refs %d (re-probes)", got, res.MemRefs)
	}
	// And one extra cycle each.
	want := 7*res.L1Misses + 50*res.L2Misses
	if res.CyclesTLBMiss <= want {
		t.Fatal("mispredict penalty cycles missing")
	}
}

func TestTLBPredPerfectCoverageNeverMispredicts(t *testing.T) {
	// With a uniform page size (all 2MB or all 4KB), the predictor
	// converges and mispredicts only during its brief warmup.
	as, reg := mkSpace(t, CfgTLBPred, 1.0, 32<<20)
	_, res := runSim(t, DefaultParams(CfgTLBPred), as, trace.Uniform(window(reg), 3), 1_000_000)
	if res.MispredictRate > 0.01 {
		t.Fatalf("homogeneous pages should be near-perfectly predicted, rate=%.4f", res.MispredictRate)
	}
}

func TestCombinedConfig(t *testing.T) {
	// The §6.1 combined design: ranges at both levels + predictor-based
	// mixed page TLB + Lite. On a range-friendly workload it should at
	// least match RMM_Lite's structure behaviour.
	as, reg := mkSpace(t, CfgCombined, 0.8, 128<<20)
	p := DefaultParams(CfgCombined)
	sim, res := runSim(t, p, as, trace.Uniform(window(reg), 3), 3_000_000)
	if res.HitsRange == 0 {
		t.Fatal("combined config should hit in the L1-range TLB")
	}
	if res.L2Misses > 5 {
		t.Fatalf("ranges should eliminate walks, L2 misses = %d", res.L2Misses)
	}
	if sim.Lite() == nil {
		t.Fatal("combined config must run Lite")
	}
	if res.LiteLookupShare[0][0] < 0.5 {
		t.Fatalf("Lite should downsize the mixed TLB behind the range TLB: %v", res.LiteLookupShare[0])
	}
}

func TestPredictorValidation(t *testing.T) {
	p := DefaultParams(CfgTLBPred)
	p.PredictorEntries = 100 // not a power of two
	if p.Validate() == nil {
		t.Fatal("non-power-of-two predictor should be invalid")
	}
	p = DefaultParams(CfgTLBPred)
	p.MispredictPenaltyCycles = -1
	if p.Validate() == nil {
		t.Fatal("negative penalty should be invalid")
	}
	// Non-predictor configs ignore the predictor fields.
	p = DefaultParams(Cfg4KB)
	p.PredictorEntries = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedConfigNames(t *testing.T) {
	if CfgTLBPred.String() != "TLB_Pred" || CfgCombined.String() != "Combined" {
		t.Fatal("extension config names wrong")
	}
	if len(ExtendedConfigs()) != 2 {
		t.Fatal("two extension configs expected")
	}
}

func TestInvalidateRegionSmall(t *testing.T) {
	as, reg := mkSpace(t, CfgTHP, 0.5, 4<<20)
	sim, _ := runSim(t, DefaultParams(CfgTHP), as, trace.Uniform(window(reg), 3), 200_000)
	// Shoot down the first 1 MB (256 pages < flush threshold).
	st0 := sim.StructureStats()
	sim.InvalidateRegion(reg.Base, reg.Base+addr.VA(1<<20))
	st1 := sim.StructureStats()
	if st1[energy.L14KB].Invals <= st0[energy.L14KB].Invals &&
		st1[energy.L12MB].Invals <= st0[energy.L12MB].Invals {
		t.Fatal("shootdown removed nothing")
	}
	// Functionally: the next accesses to the shot-down region must miss
	// and re-walk (the mappings still exist; only cached translations
	// died).
	l2missBefore := sim.Result().L2Misses
	sim.Access(reg.Base+0x100, 3)
	if sim.Result().L2Misses == l2missBefore {
		t.Fatal("access after shootdown should re-walk")
	}
}

func TestInvalidateRegionLargeFlushes(t *testing.T) {
	as, reg := mkSpace(t, CfgRMMLite, 0, 16<<20)
	sim, _ := runSim(t, DefaultParams(CfgRMMLite), as, trace.Uniform(window(reg), 3), 200_000)
	sim.InvalidateRegion(reg.Base, reg.End()) // 4096 pages → full flush
	st := sim.StructureStats()
	// Range TLBs must have dropped the overlapping range.
	if st[energy.L1Range].Invals == 0 && st[energy.L2Range].Invals == 0 {
		t.Fatal("range TLBs kept a shot-down range")
	}
	// Empty or reversed regions are no-ops.
	before := sim.StructureStats()[energy.L14KB].Invals
	sim.InvalidateRegion(reg.End(), reg.Base)
	if sim.StructureStats()[energy.L14KB].Invals != before {
		t.Fatal("reversed region should be a no-op")
	}
}

func TestInvalidateRegionMixedTLB(t *testing.T) {
	as, reg := mkSpace(t, CfgTLBPP, 0.5, 4<<20)
	sim, _ := runSim(t, DefaultParams(CfgTLBPP), as, trace.Uniform(window(reg), 3), 200_000)
	inv0 := sim.StructureStats()[energy.L14KB].Invals
	sim.InvalidateRegion(reg.Base, reg.End()&^addr.VA(addr.Bytes2M-1))
	if sim.StructureStats()[energy.L14KB].Invals <= inv0 {
		t.Fatal("mixed TLB shootdown removed nothing")
	}
}

func TestGBPagesEndToEnd(t *testing.T) {
	// Figure 1's L1-1GB TLB, exercised end to end: a 2 GB region backed
	// by 1 GB pages under an explicit huge-page policy.
	as := vm.New(vm.Config{
		Policy:    vm.Policy{THP: true, THPCoverage: 1.0, GBPages: true},
		PhysBytes: 8 << 30, Seed: 1})
	reg, err := as.Mmap(2 << 30)
	if err != nil {
		t.Fatal(err)
	}
	sim, res := runSim(t, DefaultParams(CfgTHP), as, trace.Uniform(window(reg), 3), 500_000)
	if res.Hits1G == 0 {
		t.Fatal("1GB TLB should serve hits")
	}
	if res.Hits4K != 0 || res.Hits2M != 0 {
		t.Fatalf("all-GB region should not hit smaller TLBs: %+v", res)
	}
	if res.Energy.Get(energy.AccL1Page1G) == 0 {
		t.Fatal("1GB TLB probes should be charged once enabled")
	}
	// Two pages in a 4-entry TLB: near-zero steady-state misses. The
	// first cold walk takes 2 references (paper §3.2); the second hits
	// the PML4 paging-structure cache and takes 1.
	if res.L2Misses != 2 || res.WalkRefs != 3 {
		t.Fatalf("L2 misses %d (want 2), walk refs %d (want 3)", res.L2Misses, res.WalkRefs)
	}
	if sim.StructureStats()[energy.L11GB].Hits == 0 {
		t.Fatal("structure stats missing 1GB TLB")
	}
}

func TestGBTLBDisabledWithoutGBPages(t *testing.T) {
	// The §3.1 mask: no 1GB mapping was ever walked, so the L1-1GB TLB
	// must never be probed nor charged.
	as, reg := mkSpace(t, CfgTHP, 0.5, 16<<20)
	sim, res := runSim(t, DefaultParams(CfgTHP), as, trace.Uniform(window(reg), 3), 300_000)
	if got := res.Energy.Get(energy.AccL1Page1G); got != 0 {
		t.Fatalf("disabled L1-1GB TLB charged %v pJ", got)
	}
	if sim.StructureStats()[energy.L11GB].Lookups != 0 {
		t.Fatal("disabled L1-1GB TLB was probed")
	}
}

func TestLiteMonitorsGBTLB(t *testing.T) {
	// Under TLB_Lite with 1GB pages active, Lite monitors all three
	// L1-page TLBs and can downsize the mostly-idle ones.
	as := vm.New(vm.Config{
		Policy:    vm.Policy{THP: true, THPCoverage: 1.0, GBPages: true},
		PhysBytes: 8 << 30, Seed: 1})
	reg, err := as.Mmap(2 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(CfgTLBLite)
	p.Lite.IntervalInstrs = 100_000
	p.Lite.ReactivateProb = 0
	_, res := runSim(t, p, as, trace.Uniform(window(reg), 3), 2_000_000)
	if len(res.LiteLookupShare) != 3 {
		t.Fatalf("Lite should monitor 3 TLBs, got %d", len(res.LiteLookupShare))
	}
	// With everything served by 2 resident GB pages, the 4KB TLB is
	// useless and must shrink.
	if res.LiteLookupShare[0][0] < 0.5 {
		t.Fatalf("idle 4KB TLB not downsized: %v", res.LiteLookupShare[0])
	}
}
