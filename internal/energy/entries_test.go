package energy

import "testing"

// Entries/FromEntries must round-trip a database exactly — the cluster
// ships databases as entries and the content-addressed cell key hashes
// the rebuilt database's fingerprint.
func TestEntriesRoundTrip(t *testing.T) {
	db := Table2()
	db.Register("custom", 2, Cost{ReadPJ: 1.5, WritePJ: 2.25, LeakMW: 0.125})

	entries := db.Entries()
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Ways >= b.Ways) {
			t.Fatalf("entries not in canonical (name, ways) order: %v before %v", a, b)
		}
	}
	back := FromEntries(entries)
	if back.Fingerprint() != db.Fingerprint() {
		t.Error("fingerprint changed across Entries/FromEntries")
	}
}

func TestEntriesNilDB(t *testing.T) {
	var db *DB
	if got := db.Entries(); got != nil {
		t.Errorf("nil DB Entries = %v, want nil", got)
	}
}
