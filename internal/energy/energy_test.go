package energy

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable2Values(t *testing.T) {
	db := Table2()
	cases := []struct {
		name  string
		ways  int
		read  float64
		write float64
		leak  float64
	}{
		{L14KB, 4, 5.865, 6.858, 0.3632},
		{L14KB, 2, 1.881, 2.377, 0.1491},
		{L14KB, 1, 0.697, 0.945, 0.0636},
		{L12MB, 4, 4.801, 5.562, 0.1715},
		{L12MB, 2, 1.536, 1.924, 0.0703},
		{L12MB, 1, 0.568, 0.764, 0.0295},
		{L1Range, 0, 1.806, 1.172, 0.1395},
		{L2Page, 0, 8.078, 12.379, 1.6663},
		{L2Range, 0, 3.306, 1.568, 0.2401},
		{PDE, 0, 1.824, 2.281, 0.1402},
		{PDPTE, 0, 0.766, 0.279, 0.0500},
		{PML4, 0, 0.473, 0.158, 0.0296},
		{L1Cache, 0, 174.171, 186.723, 13.3364},
	}
	for _, c := range cases {
		got := db.Cost(c.name, c.ways)
		if got.ReadPJ != c.read || got.WritePJ != c.write || got.LeakMW != c.leak {
			t.Errorf("Cost(%s, %d) = %+v, want {%v %v %v}",
				c.name, c.ways, got, c.read, c.write, c.leak)
		}
	}
}

func TestWayDisablingCostsShrink(t *testing.T) {
	db := Table2()
	for _, name := range []string{L14KB, L12MB} {
		r4 := db.Cost(name, 4).ReadPJ
		r2 := db.Cost(name, 2).ReadPJ
		r1 := db.Cost(name, 1).ReadPJ
		if !(r4 > r2 && r2 > r1) {
			t.Errorf("%s read energy not monotone in ways: %v %v %v", name, r4, r2, r1)
		}
	}
}

func TestUnknownCostPanics(t *testing.T) {
	db := Table2()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown structure")
		}
	}()
	db.Cost("no-such-structure", 0)
}

func TestLookupAndRegister(t *testing.T) {
	db := Table2()
	if _, ok := db.Lookup("custom", 0); ok {
		t.Fatal("unknown structure should not be found")
	}
	db.Register("custom", 0, Cost{1, 2, 3})
	c, ok := db.Lookup("custom", 0)
	if !ok || c.ReadPJ != 1 {
		t.Fatal("registered structure not retrievable")
	}
	// L1-4KB at 3 ways is not a power-of-two configuration and is absent.
	if _, ok := db.Lookup(L14KB, 3); ok {
		t.Fatal("3-way configuration should be absent")
	}
}

func TestWalkRefCost(t *testing.T) {
	db := Table2()
	l1 := db.Cost(L1Cache, 0).ReadPJ
	l2 := db.Cost(L2Cache, 0).ReadPJ
	if got := db.WalkRefCost(1.0); got != l1 {
		t.Errorf("WalkRefCost(1) = %v, want %v", got, l1)
	}
	if got := db.WalkRefCost(0.0); got != l1+l2 {
		t.Errorf("WalkRefCost(0) = %v, want %v", got, l1+l2)
	}
	mid := db.WalkRefCost(0.5)
	if !approx(mid, l1+0.5*l2, 1e-9) {
		t.Errorf("WalkRefCost(0.5) = %v", mid)
	}
	// Degrading locality must never decrease energy.
	prev := 0.0
	for h := 1.0; h >= 0; h -= 0.25 {
		c := db.WalkRefCost(h)
		if c < prev {
			t.Errorf("WalkRefCost not monotone at %v", h)
		}
		prev = c
	}
}

func TestWalkRefCostBounds(t *testing.T) {
	db := Table2()
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WalkRefCost(%v) should panic", bad)
				}
			}()
			db.WalkRefCost(bad)
		}()
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(AccL1Page4K, 10)
	b.Add(AccL1Page2M, 5)
	b.Add(AccPageWalk, 20)
	b.Add(AccL1Range, 1)
	if b.Total() != 36 {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.L1Total() != 16 {
		t.Fatalf("L1Total = %v", b.L1Total())
	}
	if b.Get(AccPageWalk) != 20 {
		t.Fatalf("Get = %v", b.Get(AccPageWalk))
	}
	var c Breakdown
	c.Add(AccL1Page4K, 2)
	b.Merge(&c)
	if b.Get(AccL1Page4K) != 12 {
		t.Fatalf("Merge result = %v", b.Get(AccL1Page4K))
	}
	s := b.Scale(0.5)
	if s.Get(AccL1Page4K) != 6 || b.Get(AccL1Page4K) != 12 {
		t.Fatal("Scale should not mutate the receiver")
	}
}

func TestAccountStrings(t *testing.T) {
	for a := Account(0); a < NumAccounts; a++ {
		if a.String() == "" || a.String()[0] == 'A' && a.String()[1] == 'c' {
			t.Errorf("account %d has placeholder name %q", int(a), a.String())
		}
	}
}

// The energy hierarchy of Table 2 encodes the paper's central
// observation: an L1 TLB probe (all structures in parallel under THP)
// costs about 10.7 pJ while a full 4-ref page walk that hits in the L1
// cache costs about 700 pJ — so walks dominate only when frequent, and
// once THP/RMM remove them the L1 TLBs become the dominant term.
func TestEnergyHierarchySanity(t *testing.T) {
	db := Table2()
	thpProbe := db.Cost(L14KB, 4).ReadPJ + db.Cost(L12MB, 4).ReadPJ
	fullWalk := 4 * db.WalkRefCost(1.0)
	if thpProbe >= db.Cost(L1Cache, 0).ReadPJ {
		t.Error("an L1 TLB probe should cost far less than a cache read")
	}
	if fullWalk <= 50*thpProbe {
		t.Errorf("a full walk (%v pJ) should dwarf a TLB probe (%v pJ)", fullWalk, thpProbe)
	}
}
