package energy

import "fmt"

// Account identifies one slice of the address-translation energy
// breakdown, matching the categories of the paper's Figures 2 and 10.
type Account int

// The breakdown accounts.
const (
	AccL1Page4K  Account = iota // L1-4KB TLB lookups and fills
	AccL1Page2M                 // L1-2MB TLB lookups and fills
	AccL1Page1G                 // L1-1GB TLB lookups and fills
	AccL1Range                  // L1-range TLB lookups and fills
	AccL2Page                   // L2 page TLB lookups and fills
	AccL2Range                  // L2-range TLB lookups and fills
	AccMMUCache                 // paging-structure cache probes and fills
	AccPageWalk                 // page-walk memory references
	AccRangeWalk                // background range-table walk references
	NumAccounts
)

// String returns the display name of the account.
func (a Account) String() string {
	switch a {
	case AccL1Page4K:
		return "L1-4KB TLB"
	case AccL1Page2M:
		return "L1-2MB TLB"
	case AccL1Page1G:
		return "L1-1GB TLB"
	case AccL1Range:
		return "L1-range TLB"
	case AccL2Page:
		return "L2 TLB"
	case AccL2Range:
		return "L2-range TLB"
	case AccMMUCache:
		return "MMU cache"
	case AccPageWalk:
		return "Page walks"
	case AccRangeWalk:
		return "Range-table walks"
	}
	return fmt.Sprintf("Account(%d)", int(a))
}

// Breakdown accumulates picojoules per account.
type Breakdown [NumAccounts]float64

// Add charges pj picojoules to account a.
//
//eeat:hotpath
func (b *Breakdown) Add(a Account, pj float64) { b[a] += pj }

// Get returns the picojoules charged to account a.
func (b *Breakdown) Get(a Account) float64 { return b[a] }

// Total returns the sum over all accounts.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// L1Total returns the energy spent in L1 TLB structures (page + range).
func (b *Breakdown) L1Total() float64 {
	return b[AccL1Page4K] + b[AccL1Page2M] + b[AccL1Page1G] + b[AccL1Range]
}

// Merge adds every account of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}

// Scale multiplies every account by f, returning a new breakdown.
// Useful for normalizing to a baseline.
func (b *Breakdown) Scale(f float64) Breakdown {
	var out Breakdown
	for i, v := range b {
		out[i] = v * f
	}
	return out
}
