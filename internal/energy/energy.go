// Package energy implements the paper's dynamic-energy model (Table 3)
// over the Cacti-derived per-structure costs of Table 2.
//
// The model is: for every lookup structure,
//
//	E = A · E_read + M · E_write
//
// where A is the number of accesses (probes, hit or miss) and M the
// number of misses that cause a fill; plus the page-walk term
//
//	E_walks = Mem · E_read(L1 cache)
//
// where Mem is the number of page-table memory references. The paper's
// default optimistically assumes every walk reference hits in the L1
// data cache; Figure 3 sweeps that assumption, which this package
// supports through WalkRefCost.
//
// Costs are expressed in picojoules per operation and milliwatts of
// leakage, exactly as Table 2 reports them (32 nm process).
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Cost is the per-operation energy and leakage of one structure
// configuration.
type Cost struct {
	ReadPJ  float64 // dynamic energy per lookup, picojoules
	WritePJ float64 // dynamic energy per fill, picojoules
	LeakMW  float64 // leakage power, milliwatts
}

// Structure names. These are the keys of the Table 2 database and the
// identifiers the simulator uses when charging energy.
const (
	L14KB   = "L1-4KB TLB"
	L12MB   = "L1-2MB TLB"
	L11GB   = "L1-1GB TLB"
	L1Range = "L1-range TLB"
	L2Page  = "L2-4KB TLB"
	L2Range = "L2-range TLB"
	PDE     = "MMU-cache-PDE"
	PDPTE   = "MMU-cache-PDPTE"
	PML4    = "MMU-cache-PML4"
	L1Cache = "L1-Cache"
	L2Cache = "L2-Cache"
)

type key struct {
	name string
	ways int // active ways; 0 for structures without way-disabling
}

// DB maps (structure, active ways) to cost. The paper models a TLB with
// disabled ways as the equivalent smaller structure (§5): a 64-entry
// 4-way TLB running with 2 active ways costs what a 32-entry 2-way TLB
// costs.
type DB struct {
	m map[key]Cost
}

// Table2 returns a database populated with the paper's Table 2 values.
//
// Two entries are not in Table 2 and are synthesized (documented in
// DESIGN.md §1): the L1-1GB TLB (a 4-entry fully associative page TLB,
// estimated from the 4-entry L1-range TLB by removing the second bound
// comparison) and the L2 data cache (a 256 KB 8-way cache, needed only
// for Figure 3's walk-locality sweep; anchored by internal/cactimodel).
func Table2() *DB {
	db := &DB{m: make(map[key]Cost)}
	// L1-4KB TLB: 64e/4w, 32e/2w, 16e/1w.
	db.Register(L14KB, 4, Cost{5.865, 6.858, 0.3632})
	db.Register(L14KB, 2, Cost{1.881, 2.377, 0.1491})
	db.Register(L14KB, 1, Cost{0.697, 0.945, 0.0636})
	// L1-2MB TLB: 32e/4w, 16e/2w, 8e/1w.
	db.Register(L12MB, 4, Cost{4.801, 5.562, 0.1715})
	db.Register(L12MB, 2, Cost{1.536, 1.924, 0.0703})
	db.Register(L12MB, 1, Cost{0.568, 0.764, 0.0295})
	// L1-range TLB: 4 entries, fully associative, double-width tags.
	db.Register(L1Range, 0, Cost{1.806, 1.172, 0.1395})
	// L1-1GB TLB: 4 entries, fully associative (synthesized estimate:
	// L1-range with single-width comparison ≈ 2/3 of the search energy).
	// Way-disabled variants follow the CAM model's scaling so Lite can
	// resize this TLB too (§4.2.2 names all three L1-page TLBs).
	db.Register(L11GB, 0, Cost{1.204, 0.781, 0.0930})
	db.Register(L11GB, 4, Cost{1.204, 0.781, 0.0930})
	db.Register(L11GB, 2, Cost{0.742, 0.501, 0.0465})
	db.Register(L11GB, 1, Cost{0.457, 0.321, 0.0233})
	// L2 TLB: 512 entries, 4-way.
	db.Register(L2Page, 0, Cost{8.078, 12.379, 1.6663})
	// L2-range TLB: 32 entries, fully associative.
	db.Register(L2Range, 0, Cost{3.306, 1.568, 0.2401})
	// MMU paging-structure caches.
	db.Register(PDE, 0, Cost{1.824, 2.281, 0.1402})
	db.Register(PDPTE, 0, Cost{0.766, 0.279, 0.0500})
	db.Register(PML4, 0, Cost{0.473, 0.158, 0.0296})
	// L1 data cache: 32 KB, 8-way.
	db.Register(L1Cache, 0, Cost{174.171, 186.723, 13.3364})
	// L2 data cache: 256 KB, 8-way (synthesized; see package comment).
	db.Register(L2Cache, 0, Cost{495.0, 520.0, 90.0})
	return db
}

// Register installs (or overrides) the cost of a structure
// configuration. ways is the active way count, or 0 for structures
// without way-disabling.
func (db *DB) Register(name string, ways int, c Cost) {
	db.m[key{name, ways}] = c
}

// Cost returns the cost of the named structure at the given active way
// count. It panics if the configuration is unknown — an unknown
// configuration means the simulator is charging a structure the energy
// model cannot price, which is a programming error, not a runtime
// condition.
//
//eeat:hotpath
func (db *DB) Cost(name string, ways int) Cost {
	if c, ok := db.m[key{name, ways}]; ok {
		return c
	}
	panic(fmt.Sprintf("energy: no cost registered for %q at %d ways", name, ways))
}

// Fingerprint returns a canonical string covering every registered
// cost, so two databases with the same contents fingerprint identically
// regardless of registration order or pointer identity. The harness
// folds this into its content-addressed cell keys: a Params value is
// identified by what its energy database says, not by which *DB it
// happens to point at.
func (db *DB) Fingerprint() string {
	if db == nil || len(db.m) == 0 {
		return "energy:empty"
	}
	keys := make([]key, 0, len(db.m))
	for k := range db.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].ways < keys[j].ways
	})
	var b strings.Builder
	for _, k := range keys {
		c := db.m[k]
		fmt.Fprintf(&b, "%s/%d=%g,%g,%g;", k.name, k.ways, c.ReadPJ, c.WritePJ, c.LeakMW)
	}
	return b.String()
}

// Entry is one registered cost row in the canonical (name, ways)
// order — the serializable form of a DB. The cluster coordinator ships
// a cell's database to workers as entries and rebuilds it there with
// FromEntries; because Entries is canonically ordered, the rebuilt
// database fingerprints identically to the original, which is what
// keeps the content-addressed cell key stable across nodes.
type Entry struct {
	Name string `json:"name"`
	Ways int    `json:"ways"`
	Cost Cost   `json:"cost"`
}

// Entries returns every registered cost sorted by (name, ways).
func (db *DB) Entries() []Entry {
	if db == nil {
		return nil
	}
	keys := make([]key, 0, len(db.m))
	for k := range db.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].ways < keys[j].ways
	})
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, Entry{Name: k.name, Ways: k.ways, Cost: db.m[k]})
	}
	return out
}

// FromEntries rebuilds a DB from its serialized entries.
func FromEntries(entries []Entry) *DB {
	db := &DB{m: make(map[key]Cost, len(entries))}
	for _, e := range entries {
		db.Register(e.Name, e.Ways, e.Cost)
	}
	return db
}

// Lookup is the non-panicking variant of Cost.
func (db *DB) Lookup(name string, ways int) (Cost, bool) {
	c, ok := db.m[key{name, ways}]
	return c, ok
}

// WalkRefCost returns the energy of one page-walk memory reference given
// the probability that walk references hit in the L1 data cache
// (Figure 3's sweep parameter). A hit costs one L1 read; a miss costs
// the L1 probe plus an L2 read (the paper's Figure 3 assumes misses hit
// in the L2 cache).
func (db *DB) WalkRefCost(l1HitRatio float64) float64 {
	if l1HitRatio < 0 || l1HitRatio > 1 {
		panic(fmt.Sprintf("energy: walk L1 hit ratio %v outside [0,1]", l1HitRatio))
	}
	l1 := db.Cost(L1Cache, 0).ReadPJ
	l2 := db.Cost(L2Cache, 0).ReadPJ
	return l1HitRatio*l1 + (1-l1HitRatio)*(l1+l2)
}
