package lint

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
	"time"
)

// Timing is one analyzer's wall-clock cost within a RunAnalyzers call.
// The first analyzer to touch Pass.Graph() pays for building the shared
// engine, so its time includes the graph construction.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunAnalyzers runs every analyzer over the loaded packages, applies
// pragma suppression, and returns the surviving diagnostics sorted by
// position. Malformed and unused pragmas are reported as diagnostics of
// the pseudo-check "pragma" (which is not itself suppressible).
func RunAnalyzers(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(pkgs, fset, analyzers)
	return diags
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall-clock
// timings, for the lint budget check in CI.
func RunAnalyzersTimed(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var raw []Diagnostic
	var timings []Timing
	shared := &engine{}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{Analyzer: a, Pkgs: pkgs, Fset: fset, diags: &raw, engine: shared}
		start := time.Now()
		a.Run(pass)
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}

	idx, pragmaDiags := collectPragmas(pkgs, fset)
	var out []Diagnostic
	for _, d := range raw {
		if !idx.suppresses(d) {
			out = append(out, d)
		}
	}
	out = append(out, pragmaDiags...)
	out = append(out, idx.unused(ran)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, timings
}

// WriteText renders diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := io.WriteString(w, d.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as a JSON array (empty slice, not null,
// when there are none) for toolchain consumption.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
