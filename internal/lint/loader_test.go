package lint

import "testing"

// TestLoadModule pins the loader against the real module: every
// package parses and typechecks through the chain importer (in-module
// packages from the topological cache, stdlib through the source
// importer), and the type info the analyzers depend on is populated.
func TestLoadModule(t *testing.T) {
	pkgs, fset, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if fset == nil {
		t.Fatal("nil FileSet")
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, path := range []string{"xlate", "xlate/internal/core", "xlate/internal/energy", "xlate/internal/tlb"} {
		p, ok := byPath[path]
		if !ok {
			t.Errorf("package %s not loaded", path)
			continue
		}
		if len(p.Files) == 0 {
			t.Errorf("package %s has no files", path)
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %s missing type information", path)
			continue
		}
		if len(p.Info.Defs) == 0 || len(p.Info.Uses) == 0 {
			t.Errorf("package %s has empty Defs/Uses", path)
		}
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded %d packages, expected the whole module (>= 20)", len(pkgs))
	}
}
