package lint

import (
	"go/token"
	"strings"
)

// pragmaPrefix introduces a suppression: //eeatlint:allow <check> <reason>.
const pragmaPrefix = "//eeatlint:allow"

// Pragma is one parsed suppression annotation.
type Pragma struct {
	Check  string // analyzer name the suppression applies to
	Reason string // mandatory justification
	File   string
	Line   int
	used   bool
}

// ParsePragma parses a comment's text as a suppression pragma. ok is
// false when the comment is not a pragma at all; a pragma with a
// missing check or reason is returned with those fields empty, for the
// driver to report.
func ParsePragma(text string) (p Pragma, ok bool) {
	if !strings.HasPrefix(text, pragmaPrefix) {
		return Pragma{}, false
	}
	rest := text[len(pragmaPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Pragma{}, false // e.g. //eeatlint:allowance
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Pragma{}, true
	}
	p.Check = fields[0]
	p.Reason = strings.Join(fields[1:], " ")
	return p, true
}

// pragmaIndex maps file → line → pragma for suppression lookups.
type pragmaIndex map[string]map[int]*Pragma

// collectPragmas scans every comment of the loaded packages, returning
// the suppression index plus a diagnostic for each malformed pragma
// (missing check or missing reason) — an unexplained suppression is
// itself a finding.
func collectPragmas(pkgs []*Package, fset *token.FileSet) (pragmaIndex, []Diagnostic) {
	idx := make(pragmaIndex)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					p, ok := ParsePragma(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					if p.Check == "" || p.Reason == "" {
						diags = append(diags, Diagnostic{
							Analyzer: "pragma",
							File:     pos.Filename,
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  "suppression needs a check and a reason: //eeatlint:allow <check> <reason>",
						})
						continue
					}
					p.File, p.Line = pos.Filename, pos.Line
					if idx[p.File] == nil {
						idx[p.File] = make(map[int]*Pragma)
					}
					idx[p.File][p.Line] = &p
				}
			}
		}
	}
	return idx, diags
}

// suppresses reports whether a pragma covers the diagnostic: same file,
// matching check, on the diagnostic's line or the line above it.
func (idx pragmaIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.File]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		if p, ok := lines[line]; ok && p.Check == d.Analyzer {
			p.used = true
			return true
		}
	}
	return false
}

// unused returns a diagnostic for every pragma naming one of the checks
// that ran but suppressing nothing — a stale suppression hides nothing
// and should be deleted before it starts hiding something.
func (idx pragmaIndex) unused(ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, lines := range idx {
		for _, p := range lines {
			if p.used || !ran[p.Check] {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "pragma",
				File:     p.File,
				Line:     p.Line,
				Col:      1,
				Message:  "unused suppression for check " + p.Check + "; delete it",
			})
		}
	}
	return diags
}
