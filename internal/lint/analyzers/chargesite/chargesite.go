// Package chargesite enforces the energy-accounting discipline: every
// point that *creates* charged energy — a Breakdown.Add call or a
// direct write to a breakdown account — must live either inside
// internal/energy itself or inside a function annotated
// //eeat:chargesite (the simulator's charge primitive).
//
// The discipline is what makes the PR-2 differential oracle's
// call-site evidence model sound: the auditor observes reads, writes
// and walk references at the charging primitives and re-derives the
// expected energy; a rogue Add elsewhere would charge energy the
// oracle never sees evidence for. Aggregation that *moves* energy
// between ledgers (Breakdown.Merge, Scale) is deliberately out of
// scope — it creates nothing.
package chargesite

import (
	"go/ast"
	"go/types"
	"strings"

	"xlate/internal/lint"
)

// Analyzer is the energy-accounting discipline check.
var Analyzer = &lint.Analyzer{
	Name: "chargesite",
	Doc:  "energy may only be charged inside internal/energy or //eeat:chargesite primitives",
	Run:  run,
}

func run(pass *lint.Pass) {
	for _, pkg := range pass.Pkgs {
		if strings.HasSuffix(pkg.Path, "internal/energy") {
			continue // the charging primitives themselves
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || lint.FuncMarker(fd, "//eeat:chargesite") {
					continue
				}
				checkFunc(pass, pkg, fd)
			}
		}
	}
}

func checkFunc(pass *lint.Pass, pkg *lint.Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Add" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isBreakdown(sig.Recv().Type()) {
				return true
			}
			pass.Reportf(n.Pos(), "energy charged outside a charging primitive; route it through internal/energy or an //eeat:chargesite function")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pkg.Info.Types[idx.X]
				if ok && isBreakdown(tv.Type) {
					pass.Reportf(n.Pos(), "direct write to a Breakdown account outside a charging primitive")
				}
			}
		}
		return true
	})
}

// isBreakdown reports whether t is (a pointer to) the
// internal/energy.Breakdown ledger type.
func isBreakdown(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Breakdown" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/energy")
}
