package chargesite_test

import (
	"testing"

	"xlate/internal/lint/analyzers/chargesite"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", chargesite.Analyzer)
}
