// Package energy is a stub of the real ledger for the chargesite
// fixture: the analyzer recognizes Breakdown by type name and the
// internal/energy import-path suffix, and never flags the package
// itself — it is the charging primitive.
package energy

// Account indexes one ledger account.
type Account int

// NumAccounts sizes the ledger.
const NumAccounts = 4

// Breakdown accumulates picojoules per account.
type Breakdown [NumAccounts]float64

// Add charges pj picojoules to account a.
func (b *Breakdown) Add(a Account, pj float64) { b[a] += pj }

// Total sums the ledger.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}
