// Package core exercises the energy-accounting discipline against the
// energy stub.
package core

import "example.com/sim/internal/energy"

// Sim carries a ledger.
type Sim struct {
	ledger energy.Breakdown
}

// charge is the annotated charging primitive: the one place energy may
// be created.
//
//eeat:chargesite
func (s *Sim) charge(a energy.Account, pj float64) {
	s.ledger.Add(a, pj)
}

// Probe books through the primitive: allowed.
func (s *Sim) Probe() {
	s.charge(0, 1.5)
}

// rogue charges the ledger directly, outside any primitive — the bug
// class the differential oracle cannot see evidence for.
func (s *Sim) rogue(pj float64) {
	s.ledger.Add(1, pj) // want "energy charged outside a charging primitive"
}

// poke writes an account without even calling Add.
func (s *Sim) poke() {
	s.ledger[2] = 3 // want "direct write to a Breakdown account"
}

// stub fabricates a placeholder ledger for a planning pass; the pragma
// records that no modeled energy is being created.
func stub() energy.Breakdown {
	var b energy.Breakdown
	b[0] = 1 //eeatlint:allow chargesite synthetic placeholder; no modeled energy is charged
	return b
}
