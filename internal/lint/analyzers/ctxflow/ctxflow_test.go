package ctxflow_test

import (
	"testing"

	"xlate/internal/lint/analyzers/ctxflow"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.Analyzer)
}
