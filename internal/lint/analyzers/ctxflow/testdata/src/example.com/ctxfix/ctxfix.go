// Package ctxfix seeds one defect per ctxflow rule plus the shapes the
// analyzer must leave alone.
package ctxfix

import (
	"context"
	"time"
)

// PollUntilReady spins a bare retry loop: the loop sleep is rule 1 and
// the exported ctx-free signature is rule 3.
func PollUntilReady() { // want "exported PollUntilReady sleeps"
	for i := 0; i < 10; i++ {
		time.Sleep(time.Millisecond) // want "uncancellable poll"
	}
}

// fetch has the cancellation chain in hand and sleeps anyway: rule 2.
func fetch(ctx context.Context) error {
	time.Sleep(time.Millisecond) // want "ignores the context in scope"
	return ctx.Err()
}

// A literal inherits the enclosing signature's context scope.
func inLiteral(ctx context.Context) error {
	wait := func() {
		time.Sleep(time.Millisecond) // want "ignores the context in scope"
	}
	wait()
	return ctx.Err()
}

// detach severs the chain exactly where a caller expects cancel to
// reach: rule 2's context.Background arm.
func detach(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want "severs the cancellation chain"
}

func todo(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() // want "severs the cancellation chain"
}

// Backoff's sleep hides one ctx-free hop down; the taint climbs to the
// exported signature.
func Backoff() { nap() } // want "exported Backoff sleeps"

func nap() { time.Sleep(time.Millisecond) }

// Cancellable accepts a context, so nap's sleep is not its signature's
// problem (and the call site carries no context mandate of its own).
func Cancellable(ctx context.Context) error {
	nap()
	return ctx.Err()
}

// oneShot: no loop, no context in scope — a ctx-free internal helper
// may sleep (startup settle delays and the like).
func oneShot() { time.Sleep(time.Millisecond) }

// boot mints the root context where none exists yet: legitimate.
func boot() context.Context { return context.Background() }

// waitCtx is the shape the analyzer pushes toward: a timer raced
// against the context.
func waitCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// RetryWithContext is the fixed form of PollUntilReady: exported, but
// the context threads through and the loop waits cancellably.
func RetryWithContext(ctx context.Context) error {
	for i := 0; i < 10; i++ {
		waitCtx(ctx, time.Millisecond)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return nil
}
