// Package ctxflow enforces the repo's cancellation discipline: blocking
// on the request or control path must be interruptible by the
// context.Context that governs it (DESIGN.md §14).
//
// The cluster layer taught us the failure modes this analyzer encodes.
// A coordinator takeover that retries its listener bind in a bare
// time.Sleep loop keeps running after the generation it serves is dead;
// a context.Background() minted where a caller's ctx is in scope severs
// the cancellation chain exactly where an operator would expect Ctrl-C
// to work. Three rules, all driven by the interprocedural engine
// (lint.Graph):
//
//  1. time.Sleep inside a for/range loop is an uncancellable poll —
//     select on a context's Done channel (the cluster package's
//     sleepCtx) instead.
//  2. time.Sleep, or context.Background()/context.TODO(), in a function
//     whose signature (or an enclosing literal's) already carries a
//     context.Context: the cancellation chain is right there and the
//     code ignores it. context.WithoutCancel(ctx) is the sanctioned way
//     to detach deliberately — it keeps values and says so in the type.
//  3. An exported, context-free function whose transitive callees
//     time.Sleep: callers get a blocking API with no cancel lever. The
//     taint stops at context-accepting callees — their sleeps are their
//     own rule-2 findings, not every caller's.
//
// Intentional sites carry //eeatlint:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"xlate/internal/lint"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "blocking on control paths must be cancellable by the governing context",
	Run:  run,
}

func run(pass *lint.Pass) {
	g := pass.Graph()
	for _, n := range g.Nodes {
		checkNode(pass, n)
	}
}

// checkNode applies the site rules to one function body and the
// signature rule to its declaration.
func checkNode(pass *lint.Pass, n *lint.FuncNode) {
	// Rule 3: exported ctx-free API with a transitive bare sleep.
	if n.Decl != nil && n.Obj.Exported() && !n.Summary.CtxParam && n.Summary.BareSleep {
		pass.Reportf(n.Decl.Name.Pos(),
			"exported %s sleeps (%s) but accepts no context.Context; callers cannot cancel it",
			n.Obj.Name(), n.Summary.Via(lint.BlockSleep))
	}

	// Is a caller-supplied context in scope — the node's own params, or
	// an enclosing function's for literals?
	ctxInScope := false
	for p := n; p != nil; p = p.Parent {
		if p.Summary.CtxParam {
			ctxInScope = true
			break
		}
	}

	var walk func(node ast.Node, inLoop bool)
	walk = func(node ast.Node, inLoop bool) {
		switch x := node.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // its own node
		case *ast.ForStmt, *ast.RangeStmt:
			ast.Inspect(node, func(child ast.Node) bool {
				if child == node || child == nil {
					return child == node
				}
				walk(child, true)
				return false
			})
			return
		case *ast.CallExpr:
			checkCall(pass, n, x, inLoop, ctxInScope)
		}
		ast.Inspect(node, func(child ast.Node) bool {
			if child == node || child == nil {
				return child == node
			}
			walk(child, inLoop)
			return false
		})
	}
	for _, stmt := range n.Body().List {
		walk(stmt, false)
	}
}

// checkCall applies rules 1 and 2 to one call site.
func checkCall(pass *lint.Pass, n *lint.FuncNode, call *ast.CallExpr, inLoop, ctxInScope bool) {
	if k, _, ok := lint.StdBlockingCall(n.Pkg, call); ok && k == lint.BlockSleep {
		switch {
		case inLoop:
			pass.Reportf(call.Pos(),
				"time.Sleep in a loop is an uncancellable poll; select on a context Done channel instead")
		case ctxInScope:
			pass.Reportf(call.Pos(),
				"time.Sleep ignores the context in scope; use a context-aware wait")
		}
		return
	}
	if name, ok := contextRoot(n.Pkg, call); ok && ctxInScope {
		pass.Reportf(call.Pos(),
			"context.%s() severs the cancellation chain while a context is in scope; derive from it (context.WithoutCancel to detach deliberately)",
			name)
	}
}

// contextRoot recognizes context.Background() and context.TODO().
func contextRoot(pkg *lint.Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}
