// Package gorofix seeds goroutines with and without shutdown paths.
package gorofix

import (
	"context"
	"net"
	"net/http"
	"sync"
)

func work() {}

// fireAndForget spawns with no ears at all: no context, no channels,
// no WaitGroup.
func fireAndForget() {
	go func() { // want "no shutdown path"
		work()
	}()
}

// namedLeak is the same defect through a named callee.
func namedLeak() {
	go work() // want "no shutdown path"
}

// ctxArg hands the context in as an argument: supervised even though
// the summary never needs to look inside.
func ctxArg(ctx context.Context) {
	go runLoop(ctx)
}

func runLoop(ctx context.Context) {
	<-ctx.Done()
}

// ctxCapture's literal reads the captured context: supervised.
func ctxCapture(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// chanLoop drains a channel; closing it is the shutdown path.
func chanLoop(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

// buriedChan's shutdown path sits one call down; the transitive
// summary carries it up.
func buriedChan(jobs chan int) {
	go func() {
		drain(jobs)
	}()
}

func drain(jobs chan int) {
	for range jobs {
	}
}

// wgSpawn is WaitGroup-structured concurrency.
func wgSpawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// serve: (*http.Server).Serve owns its shutdown story (Shutdown/Close
// unblock it).
func serve(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln)
}

// computed callees are opaque to the summaries; stay silent rather
// than guess wrong.
func computed(f func()) {
	go f()
}
