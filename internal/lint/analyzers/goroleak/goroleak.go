// Package goroleak demands a shutdown path for every goroutine: a go
// statement must spawn work that is tied to a cancellation chain — a
// context, a WaitGroup, or channel traffic a closing peer can unblock
// (DESIGN.md §14).
//
// The judgment is interprocedural and deliberately permissive: the
// spawned function's transitive summary (lint.Graph) passes if it
// touches a context, performs any channel operation, or participates in
// a WaitGroup; so does handing a context value in as an argument. The
// analyzer under-reports by construction — a goroutine that blocks on a
// channel nobody closes still passes — because the alternative is
// flagging every structured-concurrency idiom the summaries cannot
// prove terminates. What it catches is the goroutine with no ears at
// all: no context, no channels, no group — the kind that outlives a
// coordinator generation and keeps mutating state nobody owns.
//
// Fire-and-forget sites that are genuinely sound carry
// //eeatlint:allow goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"

	"xlate/internal/lint"
)

// Analyzer is the goroleak check.
var Analyzer = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine must be tied to a context, WaitGroup, or channel shutdown path",
	Run:  run,
}

// stdSupervised are stdlib callees that own their shutdown story:
// (*http.Server).Serve returns when the server is Shutdown/Closed.
var stdSupervised = map[string]bool{
	"(*net/http.Server).Serve":          true,
	"(*net/http.Server).ListenAndServe": true,
}

func run(pass *lint.Pass) {
	g := pass.Graph()
	for _, n := range g.Nodes {
		ast.Inspect(n.Body(), func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false // its own node
			}
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !supervised(g, n.Pkg, gs.Call) {
				pass.Reportf(gs.Pos(),
					"goroutine has no shutdown path: tie it to a context, WaitGroup, or channel (or justify with //eeatlint:allow goroleak)")
			}
			// The call's arguments and a literal callee still deserve the
			// generic walk for nested go statements.
			return true
		})
	}
}

// supervised decides whether the spawned call has a shutdown path.
func supervised(g *lint.Graph, pkg *lint.Package, call *ast.CallExpr) bool {
	// A context handed in as an argument is a shutdown path even if the
	// summary cannot see inside the callee.
	for _, arg := range call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil && lint.IsContextType(tv.Type) {
			return true
		}
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n, ok := g.ByLit[fun]; ok {
			return summaryPasses(&n.Summary)
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return calleePasses(g, fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return calleePasses(g, fn)
		}
	}
	// Computed callee (function value from a variable): the summaries
	// cannot see through it; stay silent rather than guess wrong.
	return true
}

// calleePasses judges a named callee: module functions by summary,
// stdlib by the supervised table.
func calleePasses(g *lint.Graph, fn *types.Func) bool {
	if n, ok := g.ByObj[fn]; ok {
		return summaryPasses(&n.Summary)
	}
	return stdSupervised[fn.FullName()]
}

// summaryPasses is the shutdown-path judgment on a transitive summary.
func summaryPasses(s *lint.Summary) bool {
	return s.UsesCtx || s.ChanOps || s.WaitGroup
}
