package goroleak_test

import (
	"testing"

	"xlate/internal/lint/analyzers/goroleak"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", goroleak.Analyzer)
}
