// Package wireparity guards the cluster's two serialization contracts
// (DESIGN.md §14):
//
//   - Wire parity. A struct marked //eeat:wire crosses the
//     coordinator/worker HTTP boundary as JSON, so every top-level
//     field must be exported and json-tagged, and every type reachable
//     from its fields must marshal losslessly: an unexported field
//     anywhere in the module-type closure is data JSON drops silently;
//     a func or chan field is a marshal error at runtime. Fields that
//     knowingly violate this (WireJob.Params, whose EnergyDB is
//     re-encoded as canonical rows by EncodeJob) carry
//     //eeatlint:allow wireparity <reason> — the pragma is the audit
//     trail that someone checked the side channel.
//
//   - Key exclusion. A field marked //eeat:keyexcluded is an
//     observability attachment that must never influence the
//     content-addressed cell key: reading it anywhere in the transitive
//     callees of an //eeat:cellkey function is a cache-identity bug
//     (traced and untraced runs would stop sharing cells). Writing the
//     field — the nil-out idiom jobKey uses to strip attachments — is
//     the sanctioned shape.
package wireparity

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"

	"xlate/internal/lint"
)

// Analyzer is the wireparity check.
var Analyzer = &lint.Analyzer{
	Name: "wireparity",
	Doc:  "wire-marked structs must JSON round-trip losslessly; key-excluded fields must not reach cell-key computation",
	Run:  run,
}

func run(pass *lint.Pass) {
	modulePkgs := make(map[*types.Package]bool, len(pass.Pkgs))
	for _, pkg := range pass.Pkgs {
		modulePkgs[pkg.Types] = true
	}

	excluded := make(map[*types.Var]string)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectExcluded(pkg, ts.Name.Name, st, excluded)
					if lint.GenDeclMarker(gd.Doc, "//eeat:wire") || lint.GenDeclMarker(ts.Doc, "//eeat:wire") {
						checkWireStruct(pass, pkg, modulePkgs, ts.Name.Name, st)
					}
				}
			}
		}
	}

	checkKeyPaths(pass, excluded)
}

// collectExcluded records //eeat:keyexcluded fields by object identity.
func collectExcluded(pkg *lint.Package, typeName string, st *ast.StructType, out map[*types.Var]string) {
	for _, field := range st.Fields.List {
		if !lint.GenDeclMarker(field.Doc, "//eeat:keyexcluded") &&
			!lint.GenDeclMarker(field.Comment, "//eeat:keyexcluded") {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				out[v] = typeName + "." + name.Name
			}
		}
	}
}

// checkWireStruct enforces the round-trip contract on one //eeat:wire
// struct.
func checkWireStruct(pass *lint.Pass, pkg *lint.Package, modulePkgs map[*types.Package]bool, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				pass.Reportf(name.Pos(),
					"wire struct %s: unexported field %s will not survive a JSON round trip",
					typeName, name.Name)
				continue
			}
			if !hasJSONTag(field) {
				pass.Reportf(name.Pos(),
					"wire struct %s: field %s has no json tag; the wire name must be explicit",
					typeName, name.Name)
			}
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			seen := make(map[types.Type]bool)
			if path, problem := lossyPath(v.Type(), modulePkgs, name.Name, seen); problem != "" {
				pass.Reportf(name.Pos(),
					"wire struct %s: field %s does not JSON round-trip — %s %s",
					typeName, name.Name, path, problem)
			}
		}
	}
}

// hasJSONTag reports whether the field carries a json struct tag.
func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	_, ok := reflect.StructTag(raw).Lookup("json")
	return ok
}

// lossyPath walks the module-type closure of t looking for the first
// thing encoding/json cannot round-trip: an unexported struct field
// (silently dropped) or a func/chan (marshal error). It returns the
// field path and the problem, or "" when the type is clean. Types
// outside the module (stdlib, etc.) are trusted to manage their own
// marshalling; interfaces are dynamic and unprovable, so they pass.
func lossyPath(t types.Type, modulePkgs map[*types.Package]bool, path string, seen map[types.Type]bool) (string, string) {
	if seen[t] {
		return "", ""
	}
	seen[t] = true

	switch u := t.(type) {
	case *types.Pointer:
		return lossyPath(u.Elem(), modulePkgs, path, seen)
	case *types.Slice:
		return lossyPath(u.Elem(), modulePkgs, path+"[]", seen)
	case *types.Array:
		return lossyPath(u.Elem(), modulePkgs, path+"[]", seen)
	case *types.Map:
		return lossyPath(u.Elem(), modulePkgs, path+"[]", seen)
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && !modulePkgs[obj.Pkg()] {
			return "", "" // out-of-module type: trusted
		}
		return lossyPath(u.Underlying(), modulePkgs, path, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				return path + "." + f.Name(), "is unexported: JSON drops it silently"
			}
			if p, problem := lossyPath(f.Type(), modulePkgs, path+"."+f.Name(), seen); problem != "" {
				return p, problem
			}
		}
	case *types.Signature:
		return path, "is a func: JSON cannot marshal it"
	case *types.Chan:
		return path, "is a chan: JSON cannot marshal it"
	}
	return "", ""
}

// checkKeyPaths flags reads of key-excluded fields in the transitive
// callees of //eeat:cellkey roots.
func checkKeyPaths(pass *lint.Pass, excluded map[*types.Var]string) {
	if len(excluded) == 0 {
		return
	}
	g := pass.Graph()

	reach := make(map[*lint.FuncNode]bool)
	var stack []*lint.FuncNode
	for _, n := range g.Nodes {
		if n.Decl != nil && lint.FuncMarker(n.Decl, "//eeat:cellkey") {
			reach[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e.Kind != lint.EdgeCall && e.Kind != lint.EdgeDefer {
				continue
			}
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}

	for n := range reach {
		checkKeyBody(pass, n, excluded)
	}
}

// checkKeyBody scans one reachable body for key-excluded reads.
// Assignments TO such a field (the nil-out idiom) are the sanctioned
// write shape and are skipped.
func checkKeyBody(pass *lint.Pass, n *lint.FuncNode, excluded map[*types.Var]string) {
	var scan func(node ast.Node)
	scan = func(node ast.Node) {
		switch x := node.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // its own node; reachable only when called
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && excludedField(n.Pkg, sel, excluded) != "" {
					scan(sel.X) // the base expression is still a read
					continue
				}
				scan(lhs)
			}
			for _, rhs := range x.Rhs {
				scan(rhs)
			}
			return
		case *ast.SelectorExpr:
			if label := excludedField(n.Pkg, x, excluded); label != "" {
				pass.Reportf(x.Pos(),
					"key-excluded field %s read on a cell-key path (%s); the cache identity must not depend on it",
					label, n.Label())
			}
			scan(x.X)
			return
		}
		ast.Inspect(node, func(child ast.Node) bool {
			if child == node || child == nil {
				return child == node
			}
			scan(child)
			return false
		})
	}
	for _, stmt := range n.Body().List {
		scan(stmt)
	}
}

// excludedField resolves a selector to a key-excluded field label, or
// "".
func excludedField(pkg *lint.Package, sel *ast.SelectorExpr, excluded map[*types.Var]string) string {
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok {
		return excluded[v]
	}
	return ""
}
