// Package wirefix seeds wire-contract and key-exclusion defects.
package wirefix

// Packet crosses the node boundary as JSON.
//
//eeat:wire
type Packet struct {
	ID       string `json:"id"`
	Size     int    `json:"size"`
	Inner    Inner  `json:"inner"`    // want "does not JSON round-trip"
	Callback func() `json:"callback"` // want "is a func"
	Note     string // want "no json tag"
	seq      int    // want "unexported field seq"

	// TraceID propagates observability context; it must never reach
	// the content-addressed key.
	//
	//eeat:keyexcluded
	TraceID string `json:"trace_id,omitempty"`
}

// Inner hides a field JSON will silently drop.
type Inner struct {
	Label  string `json:"label"`
	hidden int
}

// Ack is a clean wire struct: exported, tagged, flat.
//
//eeat:wire
type Ack struct {
	Code int    `json:"code"`
	Note string `json:"note,omitempty"`
}

// cellKey is the content-addressed identity root; the nil-out write is
// the sanctioned way to strip attachments.
//
//eeat:cellkey
func cellKey(p Packet) string {
	q := p
	q.TraceID = ""
	return encode(q)
}

func encode(q Packet) string {
	return q.ID + q.TraceID // want "key-excluded field Packet.TraceID"
}

// transport reads the trace context off the key path: that is its job.
func transport(p Packet) string { return p.TraceID }
