package wireparity_test

import (
	"testing"

	"xlate/internal/lint/analyzers/wireparity"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", wireparity.Analyzer)
}
