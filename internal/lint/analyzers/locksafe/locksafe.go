// Package locksafe guards the mutex discipline of the service and
// cluster layers: no blocking under a lock, and one global acquisition
// order per lock pair (DESIGN.md §14).
//
// Two checks share one intraprocedural scan over each function body,
// with the interprocedural engine (lint.Graph) supplying what callees
// do:
//
//   - Blocking while holding a mutex. The scan tracks the held set
//     through straight-line code (branch bodies scan against a copy —
//     an acquisition inside an if must not leak into the fall-through
//     path) and flags channel operations, known-blocking stdlib calls
//     (HTTP round trips, fsync, time.Sleep, WaitGroup waits), and calls
//     to module functions whose transitive summary blocks. A deferred
//     Unlock keeps the lock held to the end of the scan, which is
//     exactly the semantics; other deferred calls are skipped (they run
//     at return, when the analysis of interleaving is the runtime's
//     problem, not a linear scan's).
//
//   - Lock-order inversion. Every acquisition while another lock is
//     held records an ordered pair — including acquisitions the callee
//     summary performs on the caller's behalf. Two sites establishing
//     (A,B) and (B,A) are a deadlock waiting for contention; both sites
//     are reported, each naming the other.
//
// Sites that hold a lock across a channel send by design (the
// depth-checked queue send in service.Submit) carry
// //eeatlint:allow locksafe <reason>.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"xlate/internal/lint"
)

// Analyzer is the locksafe check.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking under a mutex; one global acquisition order per lock pair",
	Run:  run,
}

// pairKey orders one acquisition: second was acquired while first was
// held.
type pairKey struct {
	first, second *types.Var
}

// checker accumulates lock-order evidence across the whole module.
type checker struct {
	pass *lint.Pass
	g    *lint.Graph
	// pairs: first site establishing each ordered pair.
	pairs map[pairKey]token.Pos
}

func run(pass *lint.Pass) {
	c := &checker{pass: pass, g: pass.Graph(), pairs: make(map[pairKey]token.Pos)}
	for _, n := range c.g.Nodes {
		held := []*types.Var{}
		c.scanList(n, n.Body().List, &held)
	}
	c.reportInversions()
}

// scanList scans statements in order, mutating held.
func (c *checker) scanList(n *lint.FuncNode, stmts []ast.Stmt, held *[]*types.Var) {
	for _, s := range stmts {
		c.scan(n, s, held)
	}
}

// scan walks one statement or expression. Straight-line constructs
// mutate held; branch bodies get a copy, so acquisitions inside them
// stay local to the branch.
func (c *checker) scan(n *lint.FuncNode, node ast.Node, held *[]*types.Var) {
	switch x := node.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return // its own node, scanned with an empty held set
	case *ast.DeferStmt:
		if op, ok := lint.MutexOpOf(n.Pkg, x.Call); ok && op.Kind == lint.MutexRelease {
			return // defer mu.Unlock(): the lock stays held to the end
		}
		return // other deferred work runs at return; out of scan scope
	case *ast.CallExpr:
		c.checkCall(n, x, held)
		return
	case *ast.SendStmt:
		c.blockingWhileHeld(n, x.Pos(), "channel send", *held)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			c.blockingWhileHeld(n, x.Pos(), "channel receive", *held)
		}
	case *ast.SelectStmt:
		blocking := true
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false
			}
		}
		if blocking {
			c.blockingWhileHeld(n, x.Pos(), "select", *held)
		}
		// The comm operations' blocking IS the select's, judged above —
		// a receive in a default-carrying select never blocks. Their
		// subexpressions (calls computing channels or values) still scan.
		for _, cl := range x.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			branchHeld := append([]*types.Var(nil), *held...)
			if cc.Comm != nil {
				c.scanCommExprs(n, cc.Comm, &branchHeld)
			}
			c.scanList(n, cc.Body, &branchHeld)
		}
		return
	case *ast.RangeStmt:
		if tv, ok := n.Pkg.Info.Types[x.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.blockingWhileHeld(n, x.Pos(), "range over channel", *held)
			}
		}
		c.scan(n, x.X, held)
		c.scanBranch(n, x.Body, *held)
		return
	case *ast.IfStmt:
		c.scan(n, x.Init, held)
		c.scan(n, x.Cond, held)
		c.scanBranch(n, x.Body, *held)
		if x.Else != nil {
			elseHeld := append([]*types.Var(nil), *held...)
			c.scan(n, x.Else, &elseHeld)
		}
		return
	case *ast.ForStmt:
		c.scan(n, x.Init, held)
		c.scan(n, x.Cond, held)
		body := append([]*types.Var(nil), *held...)
		c.scanList(n, x.Body.List, &body)
		c.scan(n, x.Post, &body)
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		ast.Inspect(node, func(child ast.Node) bool {
			if child == node || child == nil {
				return child == node
			}
			branchHeld := append([]*types.Var(nil), *held...)
			c.scan(n, child, &branchHeld)
			return false
		})
		return
	case *ast.BlockStmt:
		c.scanList(n, x.List, held)
		return
	}
	// Generic one-level recursion, same held set.
	ast.Inspect(node, func(child ast.Node) bool {
		if child == node || child == nil {
			return child == node
		}
		c.scan(n, child, held)
		return false
	})
}

// scanCommExprs scans a select comm statement's subexpressions while
// skipping the channel operation itself (the select already judged it).
func (c *checker) scanCommExprs(n *lint.FuncNode, comm ast.Stmt, held *[]*types.Var) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		c.scan(n, s.Chan, held)
		c.scan(n, s.Value, held)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			c.scan(n, u.X, held)
			return
		}
		c.scan(n, s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				c.scan(n, u.X, held)
				continue
			}
			c.scan(n, rhs, held)
		}
		for _, lhs := range s.Lhs {
			c.scan(n, lhs, held)
		}
	default:
		c.scan(n, comm, held)
	}
}

// scanBranch scans a block against a copy of the held set.
func (c *checker) scanBranch(n *lint.FuncNode, body *ast.BlockStmt, held []*types.Var) {
	branchHeld := append([]*types.Var(nil), held...)
	c.scanList(n, body.List, &branchHeld)
}

// checkCall handles one call site: mutex ops mutate the held set,
// blocking callees are flagged, callee acquisitions feed the pair map.
func (c *checker) checkCall(n *lint.FuncNode, call *ast.CallExpr, held *[]*types.Var) {
	// Arguments may themselves contain calls and channel ops.
	for _, arg := range call.Args {
		c.scan(n, arg, held)
	}

	if op, ok := lint.MutexOpOf(n.Pkg, call); ok {
		switch op.Kind {
		case lint.MutexAcquire:
			for _, h := range *held {
				c.recordPair(h, op.Var, call.Pos())
			}
			*held = append(*held, op.Var)
		case lint.MutexRelease:
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i] == op.Var {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}

	if k, name, ok := lint.StdBlockingCall(n.Pkg, call); ok {
		c.blockingWhileHeld(n, call.Pos(), fmt.Sprintf("%s (%s)", name, k), *held)
		return
	}

	// Module callee: its transitive summary says whether it blocks and
	// which locks it takes on our behalf.
	callee := c.calleeNode(n.Pkg, call)
	if callee == nil {
		return
	}
	if callee.Summary.Blocks != 0 && len(*held) > 0 {
		k := lowestBlock(callee.Summary.Blocks)
		c.blockingWhileHeld(n, call.Pos(),
			fmt.Sprintf("call to %s, which blocks (%s: %s)", callee.Label(), callee.Summary.Blocks, callee.Summary.Via(k)),
			*held)
	}
	for v := range callee.Summary.Acquires {
		for _, h := range *held {
			if h != v {
				c.recordPair(h, v, call.Pos())
			}
		}
	}
}

// lowestBlock isolates the lowest set bit of a block mask — the kind
// whose provenance label the diagnostic shows.
func lowestBlock(k lint.BlockKind) lint.BlockKind {
	return k & (^k + 1)
}

// calleeNode resolves a call to a module graph node (nil for stdlib,
// builtins, computed callees, and interface dispatch).
func (c *checker) calleeNode(pkg *lint.Package, call *ast.CallExpr) *lint.FuncNode {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.FuncLit:
		return c.g.ByLit[fun]
	default:
		return nil
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		return c.g.ByObj[fn]
	}
	return nil
}

// blockingWhileHeld reports op happening with locks held.
func (c *checker) blockingWhileHeld(n *lint.FuncNode, pos token.Pos, op string, held []*types.Var) {
	if len(held) == 0 {
		return
	}
	labels := ""
	for i, v := range held {
		if i > 0 {
			labels += ", "
		}
		labels += c.g.LockLabel(v)
	}
	c.pass.Reportf(pos, "%s while holding %s; shrink the critical section or justify with //eeatlint:allow locksafe", op, labels)
}

// recordPair notes that second was acquired while first was held.
func (c *checker) recordPair(first, second *types.Var, pos token.Pos) {
	if first == second {
		return
	}
	k := pairKey{first, second}
	if _, ok := c.pairs[k]; !ok {
		c.pairs[k] = pos
	}
}

// reportInversions flags every lock pair acquired in both orders, at
// both establishing sites.
func (c *checker) reportInversions() {
	for k, pos := range c.pairs {
		revPos, ok := c.pairs[pairKey{k.second, k.first}]
		if !ok {
			continue
		}
		a, b := c.g.LockLabel(k.first), c.g.LockLabel(k.second)
		other := c.pass.Fset.Position(revPos)
		c.pass.Reportf(pos,
			"lock order inversion: %s acquired while holding %s here, but the opposite order is established at %s:%d",
			b, a, other.Filename, other.Line)
	}
}
