package locksafe_test

import (
	"testing"

	"xlate/internal/lint/analyzers/locksafe"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", locksafe.Analyzer)
}
