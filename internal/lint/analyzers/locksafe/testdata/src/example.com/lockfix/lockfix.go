// Package lockfix seeds blocking-under-lock and lock-order defects.
package lockfix

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	cmu   sync.Mutex
	queue chan int
	n     int
}

// sendUnderLock blocks on a channel send with mu held.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.queue <- v // want "channel send while holding server.mu"
	s.mu.Unlock()
}

// sleepUnderLock: the deferred unlock keeps mu held to the end of the
// body, so the sleep happens under it.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep .sleep. while holding server.mu"
}

// httpUnderLock holds the lock across a network round trip.
func (s *server) httpUnderLock(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Do(req) // want "http. while holding server.mu"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func persist(f *os.File) error {
	return f.Sync()
}

// fsyncUnderLock reaches the disk barrier through a callee; the
// transitive summary carries it to the call site.
func (s *server) fsyncUnderLock(f *os.File) {
	s.mu.Lock()
	_ = persist(f) // want "call to lockfix.persist, which blocks"
	s.mu.Unlock()
}

// branchLocal: an acquisition inside a branch must not leak into the
// fall-through path — the send below is lock-free.
func (s *server) branchLocal(cond bool, v int) {
	if cond {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
	s.queue <- v
}

// releaseFirst shrinks the critical section the way the analyzer asks.
func (s *server) releaseFirst(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.queue <- v
}

// pollUnderLock: a select with a default clause is a non-blocking
// poll; its comm receive must not be flagged on its own.
func (s *server) pollUnderLock(stop chan struct{}) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// waitUnderLock: the same shape without the default blocks for real.
func (s *server) waitUnderLock(stop chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while holding server.mu"
	case <-stop:
	case v := <-s.queue:
		s.n += v
	}
}

// lockAB and lockBA disagree on the order of mu and cmu: a deadlock
// waiting for contention, flagged at both establishing sites.
func (s *server) lockAB() {
	s.mu.Lock()
	s.cmu.Lock() // want "lock order inversion"
	s.n++
	s.cmu.Unlock()
	s.mu.Unlock()
}

func (s *server) lockBA() {
	s.cmu.Lock()
	s.mu.Lock() // want "lock order inversion"
	s.n++
	s.mu.Unlock()
	s.cmu.Unlock()
}

type registry struct {
	rmu     sync.Mutex
	jmu     sync.Mutex
	entries int
}

func (r *registry) appendEntry() {
	r.jmu.Lock()
	r.entries++
	r.jmu.Unlock()
}

// viaCallee acquires jmu through appendEntry while holding rmu: the
// callee summary feeds the pair map, so the inversion against
// reversed() is caught interprocedurally.
func (r *registry) viaCallee() {
	r.rmu.Lock()
	r.appendEntry() // want "lock order inversion"
	r.rmu.Unlock()
}

func (r *registry) reversed() {
	r.jmu.Lock()
	r.rmu.Lock() // want "lock order inversion"
	r.entries++
	r.rmu.Unlock()
	r.jmu.Unlock()
}
