package analyzers_test

import (
	"strings"
	"testing"

	"xlate/internal/lint"
	"xlate/internal/lint/analyzers"
)

// TestDetectionMatrix is the suite's coverage contract in one table:
// every analyzer, run over its own seeded fixture tree, must detect
// every defect class that fixture plants. The per-analyzer linttest
// goldens already pin exact positions and messages; this matrix guards
// the other direction — an analyzer that silently degrades to zero
// findings (a marker that stops resolving, an engine edge that goes
// missing) fails here by class name instead of by a wall of unmatched
// `want` comments.
func TestDetectionMatrix(t *testing.T) {
	matrix := []struct {
		analyzer string
		classes  []string // one diagnostic fragment per seeded defect class
	}{
		{"boundaryerrors", []string{
			"fmt.Errorf without %w at the API boundary",
			"ad-hoc errors.New at the API boundary",
		}},
		{"chargesite", []string{
			"energy charged outside a charging primitive",
			"direct write to a Breakdown account",
		}},
		{"ctxflow", []string{
			"uncancellable poll",
			"ignores the context in scope",
			"severs the cancellation chain",
			"accepts no context.Context",
		}},
		{"determinism", []string{
			"time.Now reads the wall clock",
			"global math/rand source is process-random",
			"map iteration order is randomized",
		}},
		{"goroleak", []string{
			"no shutdown path",
		}},
		{"hotpath", []string{
			"make allocates",
			"closure captures its environment",
			"string concatenation allocates",
		}},
		{"invariants", []string{
			"must implement CheckInvariants",
			"must have signature",
		}},
		{"locksafe", []string{
			"channel send while holding",
			"time.Sleep (sleep) while holding",
			"which blocks",
			"select while holding",
			"lock order inversion",
		}},
		{"wireparity", []string{
			"does not JSON round-trip",
			"no json tag",
			"unexported field",
			"key-excluded field",
		}},
	}

	byName := make(map[string]*lint.Analyzer)
	for _, a := range analyzers.All() {
		byName[a.Name] = a
	}

	for _, row := range matrix {
		t.Run(row.analyzer, func(t *testing.T) {
			a, ok := byName[row.analyzer]
			if !ok {
				t.Fatalf("analyzer %s is not registered in All()", row.analyzer)
			}
			pkgs, fset, err := lint.LoadTree(row.analyzer+"/testdata/src", "")
			if err != nil {
				t.Fatalf("loading %s fixtures: %v", row.analyzer, err)
			}
			diags := lint.RunAnalyzers(pkgs, fset, []*lint.Analyzer{a})
			for _, class := range row.classes {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, class) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("defect class %q not detected by %s over its fixture (%d diagnostics total)",
						class, row.analyzer, len(diags))
				}
			}
		})
	}

	// The registered suite and the matrix must cover each other: a new
	// analyzer lands with a fixture row, and a row never outlives its
	// analyzer.
	if len(matrix) != len(byName) {
		t.Errorf("matrix covers %d analyzers, All() registers %d — keep them in lockstep", len(matrix), len(byName))
	}
}
