package analyzers_test

import (
	"testing"

	"xlate/internal/lint"
	"xlate/internal/lint/analyzers"
)

// TestModuleClean is the lint gate as a test: the whole module must
// pass every analyzer with zero unexplained findings, exactly like
// make lint. A finding here means either a real defect or a missing
// //eeatlint:allow with its reason.
func TestModuleClean(t *testing.T) {
	pkgs, fset, err := lint.LoadModule("../../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := lint.RunAnalyzers(pkgs, fset, analyzers.All())
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
