package invariants_test

import (
	"testing"

	"xlate/internal/lint/analyzers/invariants"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", invariants.Analyzer)
}
