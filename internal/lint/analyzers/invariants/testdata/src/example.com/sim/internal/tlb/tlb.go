// Package tlb is the invariants fixture: every mutable exported
// structure in a simulated-hardware package must implement
// CheckInvariants() error so the runtime audit can cover it.
package tlb

import "errors"

// Good is mutable and audited.
type Good struct {
	n int
}

// Bump mutates in place.
func (g *Good) Bump() { g.n++ }

// CheckInvariants validates the structure.
func (g *Good) CheckInvariants() error {
	if g.n < 0 {
		return errors.New("negative count")
	}
	return nil
}

// Bad is mutable but gives the audit nothing to call.
type Bad struct { // want "mutable exported structure Bad must implement CheckInvariants"
	n int
}

// Grow mutates in place.
func (b *Bad) Grow() { b.n++ }

// Wrong declares the method with the wrong shape.
type Wrong struct { // want "Wrong.CheckInvariants must have signature"
	n int
}

// Set mutates in place.
func (w *Wrong) Set(n int) { w.n = n }

// CheckInvariants returns the wrong type.
func (w *Wrong) CheckInvariants() bool { return w.n >= 0 }

// Plain has no pointer-receiver methods: nothing mutates it in place,
// so it has no invariants to drift.
type Plain struct {
	N int
}

// Value returns the payload.
func (p Plain) Value() int { return p.N }

// Frozen is deliberately uncovered; the pragma records why.
type Frozen struct { //eeatlint:allow invariants write-once configuration, frozen after construction
	n int
}

// Init mutates once, at construction time.
func (f *Frozen) Init(n int) { f.n = n }
