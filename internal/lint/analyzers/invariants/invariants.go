// Package invariants guarantees the PR-2 audit layer can never
// silently lose coverage: every mutable exported structure in the
// simulated-hardware packages (tlb, rmm, lite) must implement
// CheckInvariants() error, so the runtime structural audit has
// something to call when a new structure appears.
//
// "Mutable" means the type declares at least one pointer-receiver
// method — a structure nothing mutates in place (plain value types
// like tlb.Entry, configuration structs) has no invariants to drift.
// A deliberately uncovered type carries //eeatlint:allow invariants
// <reason> on its declaration.
package invariants

import (
	"go/types"
	"strings"

	"xlate/internal/lint"
)

// Analyzer is the audit-coverage check.
var Analyzer = &lint.Analyzer{
	Name: "invariants",
	Doc:  "mutable exported structures in tlb/rmm/lite must implement CheckInvariants() error",
	Run:  run,
}

var targets = []string{"internal/tlb", "internal/rmm", "internal/lite"}

func targeted(path string) bool {
	for _, t := range targets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) {
	for _, pkg := range pass.Pkgs {
		if !targeted(pkg.Path) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !tn.Exported() || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				continue
			}
			if !hasPointerMethod(named) {
				continue
			}
			if ci := lookupCheckInvariants(named); ci != nil {
				if !validSignature(ci) {
					pass.Reportf(tn.Pos(), "%s.CheckInvariants must have signature func() error", name)
				}
				continue
			}
			pass.Reportf(tn.Pos(),
				"mutable exported structure %s must implement CheckInvariants() error so the runtime audit covers it", name)
		}
	}
}

// hasPointerMethod reports whether the type declares any
// pointer-receiver method — the marker of in-place mutability.
func hasPointerMethod(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		sig := named.Method(i).Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		if _, ok := sig.Recv().Type().(*types.Pointer); ok {
			return true
		}
	}
	return false
}

func lookupCheckInvariants(named *types.Named) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == "CheckInvariants" {
			return m
		}
	}
	return nil
}

func validSignature(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
