// Package analyzers registers the domain analyzer suite for
// cmd/eeatlint and the lint self-check test.
package analyzers

import (
	"xlate/internal/lint"
	"xlate/internal/lint/analyzers/boundaryerrors"
	"xlate/internal/lint/analyzers/chargesite"
	"xlate/internal/lint/analyzers/ctxflow"
	"xlate/internal/lint/analyzers/determinism"
	"xlate/internal/lint/analyzers/goroleak"
	"xlate/internal/lint/analyzers/hotpath"
	"xlate/internal/lint/analyzers/invariants"
	"xlate/internal/lint/analyzers/locksafe"
	"xlate/internal/lint/analyzers/wireparity"
)

// All returns every analyzer of the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		boundaryerrors.Analyzer,
		chargesite.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		goroleak.Analyzer,
		hotpath.Analyzer,
		invariants.Analyzer,
		locksafe.Analyzer,
		wireparity.Analyzer,
	}
}
