package boundaryerrors_test

import (
	"testing"

	"xlate/internal/lint/analyzers/boundaryerrors"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", boundaryerrors.Analyzer)
}
