// Package boundaryerrors extends the PR-1 validated-error boundary to
// compile time: every exported function of the root xlate package that
// can fail must return errors classifiable with errors.Is — which in
// practice means every fmt.Errorf wraps a typed sentinel with %w, and
// ad-hoc errors.New values never cross the boundary.
//
// The contract (DESIGN.md §6): malformed user input surfaces as an
// error wrapping ErrInvalidParams / ErrInvalidWorkload; panics are
// reserved for internal invariant violations. An unwrapped Errorf at
// the boundary is an error a caller can only classify by string
// matching, which is exactly the bug class this analyzer removes.
//
// The coordinator/worker RPC boundary is held to the same standard:
// the cluster coordinator decides whether to requeue a cell (transient,
// client.ErrUnavailable) or fail it (deterministic, client.ErrJobFailed
// / client.ErrProtocol) purely via errors.Is, so every exported
// function in internal/service/client and internal/service/cluster
// must wrap a sentinel with %w too — a bare Errorf there silently
// turns a dead worker into a failed experiment.
//
// The cluster's crash-survivability internals (DESIGN.md §12) extend
// the contract below the export line: journal replay classifies damage
// as heal-vs-refuse purely via errors.Is(ErrJournalCorrupt /
// ErrJournalMismatch), and takeover/federation callers classify probe
// misses the same way — so unexported cluster functions whose names
// mark them as journal, replay, federation, or takeover code are held
// to the %w rule too, even though they never cross the package
// boundary.
package boundaryerrors

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"xlate/internal/lint"
)

// Analyzer is the API error-boundary check.
var Analyzer = &lint.Analyzer{
	Name: "boundaryerrors",
	Doc:  "exported boundary functions must wrap typed sentinels with %w",
	Run:  run,
}

// boundaryPkgs are the packages whose exported error returns callers
// classify with errors.Is: the public API, and the two sides of the
// coordinator/worker RPC boundary.
var boundaryPkgs = map[string]bool{
	"xlate":                          true,
	"xlate/internal/service/client":  true,
	"xlate/internal/service/cluster": true,
}

func run(pass *lint.Pass) {
	for _, pkg := range pass.Pkgs {
		if !boundaryPkgs[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !returnsError(pkg, fd) {
					continue
				}
				if !fd.Name.IsExported() && !crashPathFunc(pkg.Path, fd.Name.Name) {
					continue
				}
				checkFunc(pass, pkg, fd)
			}
		}
	}
}

// crashPathFunc reports whether an unexported cluster function belongs
// to the crash-survivability machinery, whose error returns are
// classified with errors.Is by the coordinator's heal-vs-refuse and
// requeue-vs-fail decisions.
func crashPathFunc(pkgPath, name string) bool {
	if pkgPath != "xlate/internal/service/cluster" {
		return false
	}
	l := strings.ToLower(name)
	for _, kw := range []string{"journal", "replay", "federat", "takeover"} {
		if strings.Contains(l, kw) {
			return true
		}
	}
	return false
}

func returnsError(pkg *lint.Package, fd *ast.FuncDecl) bool {
	sig, ok := pkg.Info.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

func checkFunc(pass *lint.Pass, pkg *lint.Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "errors.New":
			pass.Reportf(call.Pos(), "ad-hoc errors.New at the API boundary; wrap a typed sentinel with fmt.Errorf and %%w")
		case "fmt.Errorf":
			if len(call.Args) == 0 {
				return true
			}
			format, known := constantString(pkg, call.Args[0])
			if known && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w at the API boundary; callers cannot classify this error with errors.Is")
			}
		}
		return true
	})
}

// constantString evaluates a constant string expression.
func constantString(pkg *lint.Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
