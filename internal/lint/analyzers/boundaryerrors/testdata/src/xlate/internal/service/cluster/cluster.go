// Package cluster is the coordinator-side RPC-boundary fixture:
// dispatch errors must carry the worker id and cell key AND wrap a
// sentinel with %w, or the transient/deterministic failure split
// breaks.
package cluster

import (
	"errors"
	"fmt"
)

// ErrCrashed is the fixture's sentinel.
var ErrCrashed = errors.New("cluster: worker crashed")

// Dispatch wraps the sentinel with the worker and cell context:
// allowed.
func Dispatch(worker, key string, dead bool) error {
	if dead {
		return fmt.Errorf("cluster: cell %s on worker %s: %w", key, worker, ErrCrashed)
	}
	return nil
}

// Swallow drops the sentinel, making the coordinator's requeue-or-fail
// decision impossible.
func Swallow(worker string) error {
	return fmt.Errorf("cluster: worker %s broke", worker) // want "fmt.Errorf without %w at the API boundary"
}
