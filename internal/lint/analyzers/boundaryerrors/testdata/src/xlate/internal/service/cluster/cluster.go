// Package cluster is the coordinator-side RPC-boundary fixture:
// dispatch errors must carry the worker id and cell key AND wrap a
// sentinel with %w, or the transient/deterministic failure split
// breaks.
package cluster

import (
	"errors"
	"fmt"
)

// ErrCrashed is the fixture's sentinel.
var ErrCrashed = errors.New("cluster: worker crashed")

// Dispatch wraps the sentinel with the worker and cell context:
// allowed.
func Dispatch(worker, key string, dead bool) error {
	if dead {
		return fmt.Errorf("cluster: cell %s on worker %s: %w", key, worker, ErrCrashed)
	}
	return nil
}

// Swallow drops the sentinel, making the coordinator's requeue-or-fail
// decision impossible.
func Swallow(worker string) error {
	return fmt.Errorf("cluster: worker %s broke", worker) // want "fmt.Errorf without %w at the API boundary"
}

// ErrJournalCorrupt is the fixture's journal sentinel.
var ErrJournalCorrupt = errors.New("cluster: coordinator journal corrupt")

// replayJournal is unexported but crash-path code (its name marks it):
// wrapping the typed sentinel is allowed.
func replayJournal(damaged bool) error {
	if damaged {
		return fmt.Errorf("cluster: journal line 3 unreadable: %w", ErrJournalCorrupt)
	}
	return nil
}

// openJournalSloppy is crash-path code that loses the sentinel: the
// caller can no longer tell heal-vs-refuse apart with errors.Is.
func openJournalSloppy(path string) error {
	return fmt.Errorf("cluster: journal %s is broken", path) // want "fmt.Errorf without %w at the API boundary"
}

// federatedProbe is crash-path code minting an ad-hoc error.
func federatedProbe(worker string) error {
	return errors.New("cluster: probe of " + worker + " failed") // want "ad-hoc errors.New at the API boundary"
}

// helper is unexported and not crash-path code: out of scope.
func helper() error {
	return fmt.Errorf("cluster: internal detail")
}
