// Package client is the RPC-boundary fixture: the coordinator requeues
// or fails cells purely via errors.Is on the client's sentinels, so its
// exported error returns must be classifiable.
package client

import (
	"errors"
	"fmt"
)

// ErrUnavailable is the fixture's transient sentinel.
var ErrUnavailable = errors.New("client: daemon unavailable")

// Submit classifies its failure by wrapping the sentinel: allowed.
func Submit(code int) error {
	if code >= 500 {
		return fmt.Errorf("client: submit: %w: HTTP %d", ErrUnavailable, code)
	}
	return nil
}

// Leaky fails with a bare Errorf the coordinator can only string-match:
// a dead worker would surface as a failed experiment.
func Leaky(code int) error {
	if code >= 500 {
		return fmt.Errorf("client: submit: HTTP %d", code) // want "fmt.Errorf without %w at the API boundary"
	}
	return nil
}

// AdHoc invents an unclassifiable error value at the RPC boundary.
func AdHoc() error {
	return errors.New("client: nope") // want "ad-hoc errors.New at the API boundary"
}

// retry is unexported: only the exported surface is bound.
func retry() error {
	return errors.New("internal detail")
}
