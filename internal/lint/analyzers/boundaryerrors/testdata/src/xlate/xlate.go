// Package xlate is the boundary fixture; the analyzer targets the root
// package path exactly, so this directory impersonates it.
package xlate

import (
	"errors"
	"fmt"
)

// ErrInvalidParams is the fixture's typed sentinel.
var ErrInvalidParams = errors.New("invalid params")

// Run fails classifiably by wrapping the sentinel: allowed.
func Run(n int) error {
	if n < 0 {
		return fmt.Errorf("xlate: %w: negative budget %d", ErrInvalidParams, n)
	}
	return nil
}

// Broken fails with an unwrapped Errorf: callers can only classify it
// by string matching.
func Broken(n int) error {
	if n < 0 {
		return fmt.Errorf("xlate: negative budget %d", n) // want "fmt.Errorf without %w at the API boundary"
	}
	return nil
}

// AdHoc invents an unclassifiable error value at the boundary.
func AdHoc() error {
	return errors.New("xlate: nope") // want "ad-hoc errors.New at the API boundary"
}

// helper is unexported: the boundary contract binds only the exported
// surface.
func helper() error {
	return errors.New("internal detail")
}

// Legacy keeps a known-unwrapped message; the pragma records the
// compatibility reason.
func Legacy() error {
	return fmt.Errorf("xlate: legacy message") //eeatlint:allow boundaryerrors message text is a documented compatibility contract
}
