package determinism_test

import (
	"testing"

	"xlate/internal/lint/analyzers/determinism"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", determinism.Analyzer)
}
