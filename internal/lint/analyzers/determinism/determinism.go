// Package determinism flags constructs whose output depends on
// something other than the inputs — wall-clock reads, the global
// math/rand source, and map iteration — inside the packages whose
// state or rendered output must be bit-reproducible (DESIGN.md §9).
//
// The repo's reproducibility contract is absolute: two runs with the
// same seed must render byte-identical tables, Prometheus text and
// status JSON (the make audit / make telemetry diffs enforce it
// dynamically). The classes of bug that break it are statically
// recognizable, and this analyzer recognizes them:
//
//   - time.Now (and time.Since) reads the wall clock;
//   - package-level math/rand functions draw from the global source
//     (explicitly seeded rand.New(rand.NewSource(seed)) generators are
//     fine and are the repo idiom);
//   - ranging over a map visits keys in randomized order. The one
//     allowed shape is the collect-and-sort idiom: a loop whose entire
//     body appends the key and/or value to slices (the caller is
//     expected to sort before use). Anything else needs an
//     //eeatlint:allow determinism <reason> pragma — a min-reduction or
//     a validation scan is order-insensitive, but the burden of saying
//     so is on the code.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"xlate/internal/lint"
)

// Analyzer is the determinism check.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global-rand and unordered map iteration in result-bearing packages",
	Run:  run,
}

// targets are the packages whose state feeds simulator results or
// rendered output. The harness and obsflags layers are deliberately
// absent: wall-clock progress logging is their job.
var targets = []string{
	"internal/core", "internal/tlb", "internal/rmm", "internal/lite",
	"internal/energy", "internal/pagetable", "internal/physmem",
	"internal/trace", "internal/workloads", "internal/mmucache",
	"internal/vm", "internal/addr", "internal/stats", "internal/exper",
	"internal/telemetry", "internal/cactimodel",
}

func targeted(path string) bool {
	for _, t := range targets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand entry points that build explicitly
// seeded generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) {
	for _, pkg := range pass.Pkgs {
		if !targeted(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkSelector(pass, pkg, n)
				case *ast.RangeStmt:
					checkRange(pass, pkg, n)
				}
				return true
			})
		}
	}
}

// checkSelector flags wall-clock and global-rand references by the
// package of the selected object.
func checkSelector(pass *lint.Pass, pkg *lint.Package, sel *ast.SelectorExpr) {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until" {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; results must depend only on inputs and seeds", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // methods on an explicitly seeded *rand.Rand / *rand.Zipf
		}
		if !randConstructors[obj.Name()] {
			pass.Reportf(sel.Pos(), "global math/rand source is process-random; use rand.New(rand.NewSource(seed))")
		}
	}
}

// checkRange flags ranging over a map unless the loop is the
// collect-and-sort idiom.
func checkRange(pass *lint.Pass, pkg *lint.Package, rs *ast.RangeStmt) {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isCollectLoop(rs) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order is randomized; collect keys and sort, or justify with //eeatlint:allow determinism <reason>")
}

// isCollectLoop reports whether every statement of the loop body is an
// append of the range variables into a slice — the first half of the
// collect-and-sort idiom. The sort itself is the author's obligation;
// the idiom merely proves no side effect depends on visit order.
func isCollectLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	vars := make(map[string]bool, 2)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			vars[id.Name] = true
		}
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		// Everything appended must be a range variable (the key, the
		// value) — any other expression could observe visit order.
		for _, arg := range call.Args[1:] {
			id, ok := arg.(*ast.Ident)
			if !ok || !vars[id.Name] {
				return false
			}
		}
	}
	return true
}
