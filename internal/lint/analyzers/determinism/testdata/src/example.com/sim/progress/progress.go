// Package progress is outside the determinism target list: wall-clock
// progress reporting is exactly what the harness layers are for, so
// nothing here may be flagged.
package progress

import "time"

// Elapsed reports wall-clock time since start.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
