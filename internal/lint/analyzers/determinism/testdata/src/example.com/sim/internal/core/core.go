// Package core is a determinism fixture impersonating a result-bearing
// package (the import path suffix /internal/core makes it a target).
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock: forbidden in a result-bearing package.
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// Draw uses the global math/rand source: process-random.
func Draw() float64 {
	return rand.Float64() // want "global math/rand source is process-random"
}

// Seeded draws from an explicitly seeded generator: the repo idiom,
// allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Keys is the collect-and-sort idiom: the loop body only appends the
// range variables, so no side effect observes visit order.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// First returns an arbitrary key: visit order leaks into the result.
func First(m map[string]int) string {
	for k := range m { // want "map iteration order is randomized"
		return k
	}
	return ""
}

// Min is a justified false positive: the reduction is insensitive to
// visit order, and the pragma carries the reason.
func Min(m map[uint64]int) uint64 {
	best := ^uint64(0)
	for k := range m { //eeatlint:allow determinism min-reduction is iteration-order-insensitive
		if k < best {
			best = k
		}
	}
	return best
}
