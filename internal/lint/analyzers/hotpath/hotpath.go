// Package hotpath turns the repo's per-function AllocsPerRun pins into
// a whole-call-graph guarantee: every function statically reachable
// from a root annotated //eeat:hotpath must be free of allocating
// constructs.
//
// Roots are the per-access entry points (Simulator.Access, the TLB and
// range-table probe/fill primitives, the energy charging primitives).
// A type declaration may also carry //eeat:hotpath: every method of a
// marked type is then a root, which keeps small value types that ride
// inside per-access structures (trace context, counters) covered
// without annotating each method individually.
// Reachability comes from the shared interprocedural engine
// (lint.Graph): call and defer edges plus references to named module
// functions (a function value taken on the hot path may be invoked
// there), so allocations are seen through any depth of static calls
// instead of syntactically. CHA dispatch edges are deliberately not
// traversed — every interface implementation would join the hot set and
// drown the pin in false positives. Every reachable body is inspected
// for:
//
//   - make, new, and slice/map composite literals;
//   - append (growth cannot be ruled out statically — preallocated
//     scratch earns an //eeatlint:allow hotpath <reason> pragma);
//   - closures (func literals capture their environment on the heap);
//   - string concatenation and string<->[]byte conversions;
//   - calls into allocating stdlib packages (fmt, errors, sort,
//     strings, strconv, bytes, reflect);
//   - concrete values boxed into interface arguments or results.
//
// Two escape hatches keep the guarantee honest rather than vacuous:
// arguments of panic calls are exempt (the program is dying — the
// repo's panics are invariant violations), and a function annotated
// //eeat:coldpath <reason> is an architectural cold path (demand
// faults, fault injection, sampled tracing) that the walk does not
// enter.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"xlate/internal/lint"
)

// Analyzer is the hot-path allocation-freedom check.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in functions reachable from //eeat:hotpath roots",
	Run:  run,
}

// allocPkgs are stdlib packages whose exported functions allocate (or
// reflect, which both allocates and defeats static reasoning).
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "sort": true, "strings": true,
	"strconv": true, "bytes": true, "reflect": true,
}

func run(pass *lint.Pass) {
	g := pass.Graph()
	// First pass: type declarations annotated //eeat:hotpath. Every
	// method of a marked type is a root, so the marker must be known
	// before functions are indexed (methods may precede the type in
	// source order).
	hotTypes := make(map[types.Object]bool)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				declMarked := lint.GenDeclMarker(gd.Doc, "//eeat:hotpath")
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declMarked || lint.GenDeclMarker(ts.Doc, "//eeat:hotpath") {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							hotTypes[obj] = true
						}
					}
				}
			}
		}
	}

	// Roots: //eeat:hotpath functions and methods of marked types.
	// rootOf doubles as the visited set; its value is the root each node
	// was first reached from, for diagnostics.
	cold := func(n *lint.FuncNode) bool {
		return n.Decl != nil && lint.FuncMarker(n.Decl, "//eeat:coldpath")
	}
	rootOf := make(map[*lint.FuncNode]string)
	var queue []*lint.FuncNode
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Body == nil || cold(n) {
			continue
		}
		if lint.FuncMarker(n.Decl, "//eeat:hotpath") || onHotType(n.Obj, hotTypes) {
			rootOf[n] = n.Label()
			queue = append(queue, n)
		}
	}

	// Breadth-first reachability over the engine's static edges: calls,
	// defers, and references to named functions. Literal nodes propagate
	// reachability (a call inside a closure still runs on the hot path)
	// but are not themselves checked — the closure is already flagged as
	// an allocation at its use site.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Kind != lint.EdgeCall && e.Kind != lint.EdgeDefer && e.Kind != lint.EdgeRef {
				continue
			}
			t := e.To
			if _, seen := rootOf[t]; seen || cold(t) {
				continue
			}
			rootOf[t] = rootOf[n]
			queue = append(queue, t)
		}
	}

	// Inspect every reachable declared body.
	for n, root := range rootOf {
		if n.Decl != nil {
			checkBody(pass, n, root)
		}
	}
}

// onHotType reports whether fn is a method whose receiver's named type
// carries the //eeat:hotpath type-level marker.
func onHotType(fn *types.Func, hotTypes map[types.Object]bool) bool {
	if len(hotTypes) == 0 {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return hotTypes[named.Obj()]
}

// checkBody flags allocating constructs in one reachable function,
// skipping subtrees that are arguments of panic calls.
func checkBody(pass *lint.Pass, node *lint.FuncNode, root string) {
	pkg, decl := node.Pkg, node.Decl
	where := "hot path (reachable from " + root + ")"

	// Result interface types, for return-boxing checks.
	var results []types.Type
	if sig, ok := pkg.Info.Defs[decl.Name].Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			results = append(results, sig.Results().At(i).Type())
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pkg, n) {
				return false // dying: the Sprintf inside a panic is free
			}
			checkCall(pass, pkg, n, where)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s: closure captures its environment on the heap", where)
			return false // the literal's body runs elsewhere; roots must annotate it if hot
		case *ast.CompositeLit:
			switch pkg.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s: slice literal allocates", where)
			case *types.Map:
				pass.Reportf(n.Pos(), "%s: map literal allocates", where)
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pkg, n.X) {
				pass.Reportf(n.Pos(), "%s: string concatenation allocates", where)
			}
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if i < len(results) {
					checkBoxing(pass, pkg, res, results[i], where, "returned")
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating stdlib calls, string
// conversions and interface-boxing arguments.
func checkCall(pass *lint.Pass, pkg *lint.Package, call *ast.CallExpr, where string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s: make allocates", where)
			case "new":
				pass.Reportf(call.Pos(), "%s: new allocates", where)
			case "append":
				pass.Reportf(call.Pos(), "%s: append may grow its backing array; justify preallocated scratch with a pragma", where)
			}
			return
		}
	}
	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pkg.Info.Types[call.Args[0]].Type
		if from != nil {
			_, toSlice := to.Underlying().(*types.Slice)
			_, fromSlice := from.Underlying().(*types.Slice)
			if isStringType(to) && fromSlice {
				pass.Reportf(call.Pos(), "%s: conversion to string copies", where)
			} else if toSlice && isStringType(from) {
				pass.Reportf(call.Pos(), "%s: conversion from string copies", where)
			}
		}
		return
	}
	fn := resolvedFunc(pkg, call)
	if fn != nil && fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
		pass.Reportf(call.Pos(), "%s: %s.%s allocates", where, fn.Pkg().Name(), fn.Name())
		return
	}
	// Concrete arguments boxed into interface parameters.
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			params := sig.Params()
			for i, arg := range call.Args {
				idx := i
				if sig.Variadic() && idx >= params.Len()-1 {
					idx = params.Len() - 1
				}
				if idx >= params.Len() {
					break
				}
				pt := params.At(idx).Type()
				if sig.Variadic() && idx == params.Len()-1 && !call.Ellipsis.IsValid() {
					if sl, ok := pt.Underlying().(*types.Slice); ok {
						pt = sl.Elem()
					}
				}
				checkBoxing(pass, pkg, arg, pt, where, "passed")
			}
		}
	}
}

// checkBoxing reports a concrete, non-pointer-free value converted to a
// non-empty home in an interface.
func checkBoxing(pass *lint.Pass, pkg *lint.Package, expr ast.Expr, to types.Type, where, verb string) {
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	from := tv.Type
	if _, already := from.Underlying().(*types.Interface); already {
		return
	}
	// Pointers box without allocating; larger values escape.
	if _, isPtr := from.Underlying().(*types.Pointer); isPtr {
		return
	}
	pass.Reportf(expr.Pos(), "%s: concrete %s value %s as interface is boxed on the heap", where, from.String(), verb)
}

func resolvedFunc(pkg *lint.Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

func isPanic(pkg *lint.Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isString(pkg *lint.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
