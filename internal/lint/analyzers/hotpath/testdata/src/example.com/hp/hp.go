// Package hp is the hot-path fixture: Access is the annotated root,
// reachability is transitive over static calls, and the escape hatches
// (panic arguments, //eeat:coldpath, pragmas) are each exercised.
package hp

import "fmt"

var sink []int

// Access is the annotated hot-path root.
//
//eeat:hotpath
func Access(n int) int {
	v := probe(n)
	record(v)
	if v < 0 {
		fault(v)
	}
	demand(v)
	return v
}

// probe is transitively reachable, so its allocations are findings.
func probe(n int) int {
	buf := make([]int, n) // want "make allocates"
	for i := range buf {
		buf[i] = i
	}
	f := func() int { return n } // want "closure captures its environment"
	return buf[n/2] + f()
}

// record appends into scratch the harness preallocates; the pragma
// carries the justification.
func record(v int) {
	sink = append(sink, v) //eeatlint:allow hotpath sink is preallocated by the harness before the run
}

// fault dies: formatting inside a panic argument is exempt.
func fault(v int) {
	panic(fmt.Sprintf("hp: negative probe %d", v))
}

// demand is an architectural cold path the walk must not enter.
//
//eeat:coldpath demand faults are rare and their cost is charged explicitly
func demand(n int) []int {
	return make([]int, n)
}

// unreachable is never called from a root, so it may allocate freely.
func unreachable() []int {
	return []int{1, 2, 3}
}

// Ctx is a type-level root: every method is on the hot path without
// per-method annotation.
//
//eeat:hotpath
type Ctx struct {
	id string
	n  int
}

// Bump is clean and calls into helper code the walk must follow.
func (c *Ctx) Bump() int {
	c.n++
	return probeCtx(c.n)
}

// Label allocates: the type marker made it a root, so the finding fires
// without any annotation on the method itself.
func (c *Ctx) Label() string {
	return c.id + "!" // want "string concatenation allocates"
}

// Reset is an architectural cold path; //eeat:coldpath on the method
// overrides the type-level marker.
//
//eeat:coldpath reinitialisation happens once per run, off the hot path
func (c *Ctx) Reset(n int) {
	c.id = fmt.Sprintf("ctx-%d", n)
	c.n = 0
}

// probeCtx is reachable only through the marked type's methods.
func probeCtx(n int) int {
	buf := make([]int, n) // want "make allocates"
	return len(buf)
}

// Unmarked has no marker, so its methods stay unchecked.
type Unmarked struct{ v []int }

func (u *Unmarked) Grow() {
	u.v = append(u.v, 1)
}
