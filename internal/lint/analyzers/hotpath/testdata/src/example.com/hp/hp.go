// Package hp is the hot-path fixture: Access is the annotated root,
// reachability is transitive over static calls, and the escape hatches
// (panic arguments, //eeat:coldpath, pragmas) are each exercised.
package hp

import "fmt"

var sink []int

// Access is the annotated hot-path root.
//
//eeat:hotpath
func Access(n int) int {
	v := probe(n)
	record(v)
	if v < 0 {
		fault(v)
	}
	demand(v)
	return v
}

// probe is transitively reachable, so its allocations are findings.
func probe(n int) int {
	buf := make([]int, n) // want "make allocates"
	for i := range buf {
		buf[i] = i
	}
	f := func() int { return n } // want "closure captures its environment"
	return buf[n/2] + f()
}

// record appends into scratch the harness preallocates; the pragma
// carries the justification.
func record(v int) {
	sink = append(sink, v) //eeatlint:allow hotpath sink is preallocated by the harness before the run
}

// fault dies: formatting inside a panic argument is exempt.
func fault(v int) {
	panic(fmt.Sprintf("hp: negative probe %d", v))
}

// demand is an architectural cold path the walk must not enter.
//
//eeat:coldpath demand faults are rare and their cost is charged explicitly
func demand(n int) []int {
	return make([]int, n)
}

// unreachable is never called from a root, so it may allocate freely.
func unreachable() []int {
	return []int{1, 2, 3}
}
