package hotpath_test

import (
	"testing"

	"xlate/internal/lint/analyzers/hotpath"
	"xlate/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", hotpath.Analyzer)
}
