package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile creates path (and its directories) with the given source.
func writeFile(t *testing.T, path, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParsePragma(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		check  string
		reason string
	}{
		{"//eeatlint:allow determinism min-reduction is order-insensitive", true,
			"determinism", "min-reduction is order-insensitive"},
		{"//eeatlint:allow hotpath preallocated scratch", true, "hotpath", "preallocated scratch"},
		// Missing reason: still a pragma, with an empty reason for the
		// driver to report.
		{"//eeatlint:allow determinism", true, "determinism", ""},
		// Bare prefix: a pragma with nothing in it.
		{"//eeatlint:allow", true, "", ""},
		{"//eeatlint:allow   ", true, "", ""},
		// Not pragmas at all.
		{"// ordinary comment", false, "", ""},
		{"//eeatlint:allowance determinism reason", false, "", ""},
		{"//eeatlint:deny determinism reason", false, "", ""},
	}
	for _, c := range cases {
		p, ok := ParsePragma(c.text)
		if ok != c.ok {
			t.Errorf("ParsePragma(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if p.Check != c.check || p.Reason != c.reason {
			t.Errorf("ParsePragma(%q) = check %q reason %q, want check %q reason %q",
				c.text, p.Check, p.Reason, c.check, c.reason)
		}
	}
}

// loadSnippet typechecks one in-memory package through the real loader
// by writing it under a temp module tree.
func loadSnippet(t *testing.T, src string) ([]*Package, *token.FileSet) {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, dir+"/pkg/pkg.go", src)
	pkgs, fset, err := LoadTree(dir, "")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	return pkgs, fset
}

// alwaysReport flags every function declaration, so suppression
// mechanics can be tested independent of any real analyzer.
var alwaysReport = &Analyzer{
	Name: "alwaysreport",
	Doc:  "test analyzer flagging every function declaration",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					pass.Reportf(decl.Pos(), "declaration flagged")
				}
			}
		}
	},
}

func TestPragmaSuppression(t *testing.T) {
	pkgs, fset := loadSnippet(t, `package pkg

//eeatlint:allow alwaysreport covered by the suppression above the line
func Suppressed() {}

func Reported() {}

func SameLine() {} //eeatlint:allow alwaysreport covered by the same-line suppression
`)
	diags := RunAnalyzers(pkgs, fset, []*Analyzer{alwaysReport})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "declaration flagged") {
		t.Errorf("surviving diagnostic = %v, want the unsuppressed function", diags[0])
	}
	if want := "pkg.go"; !strings.HasSuffix(diags[0].File, want) {
		t.Errorf("diagnostic file = %q, want suffix %q", diags[0].File, want)
	}
}

func TestMalformedPragmaReported(t *testing.T) {
	pkgs, fset := loadSnippet(t, `package pkg

//eeatlint:allow alwaysreport
func MissingReason() {}
`)
	diags := RunAnalyzers(pkgs, fset, []*Analyzer{alwaysReport})
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		if d.Analyzer == "pragma" && strings.Contains(d.Message, "needs a check and a reason") {
			sawMalformed = true
		}
		if d.Analyzer == "alwaysreport" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing-reason pragma not reported: %v", diags)
	}
	if !sawFinding {
		t.Errorf("malformed pragma must not suppress the finding: %v", diags)
	}
}

func TestUnusedPragmaReported(t *testing.T) {
	pkgs, fset := loadSnippet(t, `package pkg

// nothing below this pragma is flagged, so it is stale
var x = 1 //eeatlint:allow alwaysreport stale suppression hiding nothing
`)
	// The analyzer flags declarations; a GenDecl is a declaration, so
	// craft the fixture so nothing is reported on the pragma's line by
	// running an analyzer that never reports instead.
	silent := &Analyzer{Name: "alwaysreport", Doc: "reports nothing", Run: func(*Pass) {}}
	diags := RunAnalyzers(pkgs, fset, []*Analyzer{silent})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused suppression for check alwaysreport") {
		t.Fatalf("got %v, want exactly one unused-suppression diagnostic", diags)
	}
}

func TestUnusedPragmaIgnoredWhenCheckDidNotRun(t *testing.T) {
	pkgs, fset := loadSnippet(t, `package pkg

var x = 1 //eeatlint:allow otherlint suppression for a check that is not running
`)
	silent := &Analyzer{Name: "alwaysreport", Doc: "reports nothing", Run: func(*Pass) {}}
	diags := RunAnalyzers(pkgs, fset, []*Analyzer{silent})
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: a pragma for a check that did not run is not stale", diags)
	}
}
