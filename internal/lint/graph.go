package lint

import (
	"go/ast"
	"go/types"
)

// This file is the interprocedural substrate of the framework
// (DESIGN.md §14): a module-level call graph over go/types whose nodes
// are declared functions and function literals, with classified edges.
// Per-function facts are folded bottom-up over the graph's strongly
// connected components in summary.go; analyzers reach both through
// Pass.Graph(), which builds the graph once per RunAnalyzers call and
// shares it across the suite.

// EdgeKind classifies one call-graph edge.
type EdgeKind uint8

const (
	// EdgeCall is a direct, statically resolved call (including an
	// immediately invoked function literal).
	EdgeCall EdgeKind = iota
	// EdgeGo spawns the callee in a new goroutine.
	EdgeGo
	// EdgeDefer is a deferred call; it runs in the caller before
	// returning, so summaries treat it like EdgeCall.
	EdgeDefer
	// EdgeRef is a reference to a function, method value, or literal
	// without an immediate call — the value escapes to a variable,
	// argument, or field, and may run anywhere. Summaries do not flow
	// across it; reachability analyses may choose to follow it.
	EdgeRef
	// EdgeDynamic is a possible interface-dispatch target: the call goes
	// through an interface method, and the edge points at a module
	// method whose receiver type implements that interface
	// (class-hierarchy analysis). Over-approximate by construction, so
	// summaries do not flow across it either.
	EdgeDynamic
)

// String names the edge kind for diagnostics and tests.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	case EdgeRef:
		return "ref"
	case EdgeDynamic:
		return "dynamic"
	}
	return "?"
}

// Edge is one outgoing edge of a FuncNode.
type Edge struct {
	Kind EdgeKind
	To   *FuncNode
	// Site is the call expression, go/defer statement's call, or the
	// referencing expression — where the edge happens in source.
	Site ast.Node
}

// FuncNode is one function of the module call graph: a declared
// function or method (Obj/Decl set) or a function literal (Lit and
// Parent set).
type FuncNode struct {
	Obj    *types.Func   // nil for literals
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declared functions
	Pkg    *Package
	Parent *FuncNode // enclosing function, for literals
	Out    []Edge

	// Summary carries the bottom-up facts of summary.go.
	Summary Summary

	scc int // SCC id, assigned by summarize; callee SCCs have lower ids
}

// Body returns the function's body ("nil" only for bodiless decls,
// which never become nodes).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Label renders the node for diagnostics: pkg.Func, pkg.Recv.Func, or
// "func literal in pkg.Func" for literals.
func (n *FuncNode) Label() string {
	if n.Lit != nil {
		root := n.Parent
		for root != nil && root.Lit != nil {
			root = root.Parent
		}
		if root != nil {
			return "func literal in " + root.Label()
		}
		return "func literal"
	}
	return funcObjLabel(n.Obj)
}

// funcObjLabel renders pkg.Func or pkg.Recv.Func.
func funcObjLabel(fn *types.Func) string {
	label := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			label = named.Obj().Name() + "." + label
		}
	}
	if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return label
}

// Graph is the module call graph plus the node indexes analyzers
// resolve through.
type Graph struct {
	Nodes []*FuncNode
	ByObj map[*types.Func]*FuncNode
	ByLit map[*ast.FuncLit]*FuncNode

	// lockLabels names every mutex object seen by the summarizer
	// (Type.field or pkg.var), for lock-order diagnostics.
	lockLabels map[*types.Var]string

	// ifaceMethods caches CHA results: interface method → module
	// methods possibly dispatched to.
	ifaceMethods map[*types.Func][]*FuncNode
}

// LockLabel names a mutex object for diagnostics ("Coordinator.mu").
func (g *Graph) LockLabel(v *types.Var) string {
	if l, ok := g.lockLabels[v]; ok {
		return l
	}
	return v.Name()
}

// BuildGraph constructs the call graph over the loaded packages. The
// resolution rules, in order, for each call site:
//
//   - an ident or selector resolving to a declared module function or
//     concrete method → EdgeCall (EdgeGo/EdgeDefer under go/defer);
//   - a directly invoked function literal → the same;
//   - a call through an interface method → EdgeDynamic edges to every
//     module method that may satisfy the dispatch (CHA over the
//     module's named types);
//   - any other mention of a module function, method value, or literal
//     (assigned, passed, returned) → EdgeRef.
//
// Calls out of the module (stdlib) produce no edges; analyzers classify
// those against known-behavior tables in summary.go instead.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		ByObj:        make(map[*types.Func]*FuncNode),
		ByLit:        make(map[*ast.FuncLit]*FuncNode),
		lockLabels:   make(map[*types.Var]string),
		ifaceMethods: make(map[*types.Func][]*FuncNode),
	}

	// Pass 1: a node per declared function with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				g.ByObj[obj] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}

	// Pass 2: walk every body, creating literal nodes and edges.
	for _, n := range g.Nodes {
		if n.Lit == nil { // literals are appended during the walk
			g.walkBody(n, n.Decl.Body)
		}
	}

	summarize(g, pkgs)
	return g
}

// walkBody records the edges of one function body, spawning child
// nodes for the function literals it contains.
func (g *Graph) walkBody(n *FuncNode, body *ast.BlockStmt) {
	var walk func(node ast.Node, kind EdgeKind)
	// walk visits an expression/statement tree; kind is the edge kind a
	// directly invoked callee at the root gets (EdgeCall normally,
	// EdgeGo/EdgeDefer under the respective statements).
	walk = func(node ast.Node, kind EdgeKind) {
		switch x := node.(type) {
		case nil:
			return
		case *ast.GoStmt:
			walk(x.Call, EdgeGo)
			return
		case *ast.DeferStmt:
			walk(x.Call, EdgeDefer)
			return
		case *ast.CallExpr:
			g.callEdges(n, x, kind)
			return
		case *ast.FuncLit:
			// A bare literal (not the Fun of a call): it escapes.
			child := g.litNode(n, x)
			n.Out = append(n.Out, Edge{Kind: EdgeRef, To: child, Site: x})
			return
		case *ast.Ident:
			g.refEdge(n, x, x)
			return
		case *ast.SelectorExpr:
			// A method value or package-qualified function reference.
			g.refEdge(n, x.Sel, x)
			walk(x.X, EdgeCall)
			return
		}
		// Generic recursion for every other node.
		ast.Inspect(node, func(child ast.Node) bool {
			if child == node || child == nil {
				return child == node
			}
			walk(child, EdgeCall)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, EdgeCall)
	}
}

// callEdges resolves one call site into edges; kind is EdgeCall, or
// EdgeGo/EdgeDefer when the call hangs off a go/defer statement.
func (g *Graph) callEdges(n *FuncNode, call *ast.CallExpr, kind EdgeKind) {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		child := g.litNode(n, f)
		n.Out = append(n.Out, Edge{Kind: kind, To: child, Site: call})
	case *ast.Ident:
		if fn, ok := n.Pkg.Info.Uses[f].(*types.Func); ok {
			if target := g.ByObj[fn]; target != nil {
				n.Out = append(n.Out, Edge{Kind: kind, To: target, Site: call})
			}
		}
	case *ast.SelectorExpr:
		fn, ok := n.Pkg.Info.Uses[f.Sel].(*types.Func)
		if ok {
			if isInterfaceMethod(fn) {
				for _, target := range g.dispatchTargets(n.Pkg, fn) {
					n.Out = append(n.Out, Edge{Kind: EdgeDynamic, To: target, Site: call})
				}
			} else if target := g.ByObj[fn]; target != nil {
				n.Out = append(n.Out, Edge{Kind: kind, To: target, Site: call})
			}
		}
		// The receiver expression may itself mention functions.
		g.walkBody(n, &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: f.X}}})
	default:
		// Computed callee (function-typed expression): no edge, but the
		// expression may reference functions.
		g.walkBody(n, &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: fun}}})
	}
	for _, arg := range call.Args {
		g.walkBody(n, &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: arg}}})
	}
}

// refEdge records an EdgeRef when id mentions a module function outside
// a call position.
func (g *Graph) refEdge(n *FuncNode, id *ast.Ident, site ast.Node) {
	fn, ok := n.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if target := g.ByObj[fn]; target != nil {
		n.Out = append(n.Out, Edge{Kind: EdgeRef, To: target, Site: site})
	}
}

// litNode creates (and walks) the node of a function literal.
func (g *Graph) litNode(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n, ok := g.ByLit[lit]; ok {
		return n
	}
	n := &FuncNode{Lit: lit, Pkg: parent.Pkg, Parent: parent}
	g.ByLit[lit] = n
	g.Nodes = append(g.Nodes, n)
	g.walkBody(n, lit.Body)
	return n
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// dispatchTargets returns the module methods an interface-method call
// may dispatch to: for every named type of the analyzed packages whose
// value or pointer method set implements the interface, the method with
// the call's name. Results are cached per interface method.
func (g *Graph) dispatchTargets(pkg *Package, iface *types.Func) []*FuncNode {
	if cached, ok := g.ifaceMethods[iface]; ok {
		return cached
	}
	sig := iface.Type().(*types.Signature)
	ifaceType, ok := sig.Recv().Type().Underlying().(*types.Interface)
	var targets []*FuncNode
	if ok {
		seen := make(map[*FuncNode]bool)
		for obj := range g.ByObj {
			osig, k := obj.Type().(*types.Signature)
			if !k || osig.Recv() == nil || obj.Name() != iface.Name() {
				continue
			}
			recv := osig.Recv().Type()
			if _, ri := recv.Underlying().(*types.Interface); ri {
				continue
			}
			if types.Implements(recv, ifaceType) ||
				types.Implements(types.NewPointer(recv), ifaceType) {
				if n := g.ByObj[obj]; n != nil && !seen[n] {
					seen[n] = true
					targets = append(targets, n)
				}
			}
		}
	}
	g.ifaceMethods[iface] = targets
	return targets
}
