// Package linttest runs analyzers over fixture trees with golden
// expectations, the way x/tools/go/analysis/analysistest does for
// go/analysis — but self-contained on the stdlib like the framework it
// tests.
//
// A fixture lives under <testdata>/src/<import/path>/*.go; directories
// mirror real import paths, so a fixture can impersonate, say,
// xlate/internal/energy with a stub and exercise path-targeted
// analyzers. Expected findings are marked in the fixture source:
//
//	x := rand.Int() // want "global math/rand"
//
// The quoted string is a regular expression matched against the
// diagnostic message; every diagnostic must match a want on its line
// and every want must be matched. Pragma suppression runs exactly as in
// production, so fixtures also pin the false-positive story: an
// annotated line must produce no diagnostic (and the pragma must not be
// reported unused).
package linttest

import (
	"regexp"
	"strconv"
	"testing"

	"xlate/internal/lint"
)

// wantRE matches one `// want "..."` expectation; the quoted body
// allows escaped quotes.
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// Run loads the fixture tree under testdataDir, runs the analyzer with
// full pragma processing, and reports any mismatch between produced
// diagnostics and // want expectations as test errors.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer) {
	t.Helper()
	pkgs, fset, err := lint.LoadTree(testdataDir+"/src", "")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s/src", testdataDir)
	}
	diags := lint.RunAnalyzers(pkgs, fset, []*lint.Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string]map[int][]*want) // file → line → expectations
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("bad want expectation %q: %v", m[1], err)
						}
						re, err := regexp.Compile(unq)
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", unq, err)
						}
						pos := fset.Position(c.Pos())
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = make(map[int][]*want)
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
							&want{re: re, raw: unq})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants[d.File][d.Line] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.raw)
				}
			}
		}
	}
}
