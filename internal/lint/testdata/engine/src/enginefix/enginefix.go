// Package enginefix exercises the call-graph engine: SCC recursion,
// method values, interface dispatch, go/defer edges, and lock/blocking
// summaries. The graph tests load it through LoadTree and assert on
// node summaries and edges directly.
package enginefix

import (
	"context"
	"sync"
	"time"
)

// ping and pong are mutually recursive: one SCC, and pong's sleep must
// surface in both summaries.
func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	time.Sleep(time.Millisecond)
	if n > 0 {
		ping(n - 1)
	}
}

// waiter is dispatched through an interface; the engine's CHA must
// find both implementations.
type waiter interface{ Wait(ctx context.Context) }

type chanWaiter struct{ ch chan struct{} }

func (w chanWaiter) Wait(ctx context.Context) {
	select {
	case <-w.ch:
	case <-ctx.Done():
	}
}

type spinWaiter struct{ spins int }

func (s spinWaiter) Wait(ctx context.Context) { s.spins++ }

func dispatch(ctx context.Context, w waiter) { w.Wait(ctx) }

// counter carries a named mutex for lock summaries.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// methodValue hands out a bound method: an EdgeRef, not a call.
func methodValue(c *counter) func() { return c.bump }

// spawn's goroutine blocks on a channel, but the spawner itself does
// not: EdgeGo must not propagate the block.
func spawn(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// deferred runs bump on return: EdgeDefer propagates like a call.
func deferred(c *counter) { defer c.bump() }

// sleepWrapper buries the sleep one call deep; callers inherit
// BareSleep because neither hop accepts a context.
func sleepWrapper() { pause() }

func pause() { time.Sleep(time.Millisecond) }

// ctxSleeper accepts a context but sleeps anyway; BareSleep must stop
// here instead of tainting its callers.
func ctxSleeper(ctx context.Context) { time.Sleep(time.Millisecond) }

func callsCtxSleeper(ctx context.Context) { ctxSleeper(ctx) }
