// Package lint is a self-contained static-analysis framework for the
// domain invariants of this repository (DESIGN.md §9). It carries the
// load-and-typecheck plumbing shared by every analyzer, the positioned
// diagnostic model with JSON rendering, and the pragma-based
// suppression grammar; the analyzers themselves live under
// internal/lint/analyzers and are wired into cmd/eeatlint.
//
// The framework is built purely on the standard library (go/ast,
// go/parser, go/types) — the module is dependency-free by policy, so
// x/tools is off the table. The trade-offs relative to go/analysis are
// deliberate: analyzers are module-scoped (each Run sees every package
// at once, which the hot-path call-graph analyzer needs anyway), and
// typechecking of out-of-module imports delegates to the toolchain's
// source importer.
//
// Interprocedural analyzers build on the shared engine (DESIGN.md
// §14): Pass.Graph() returns the module call graph (graph.go) with
// bottom-up per-function summaries (summary.go), constructed once per
// RunAnalyzers call and shared by every analyzer in the suite. Write
// against it in three steps: pick the edge kinds your question flows
// over (EdgeCall/EdgeDefer carry summaries; EdgeRef/EdgeGo/EdgeDynamic
// are reachability-only, over-approximate by construction), read
// Summary facts off nodes instead of re-walking callee bodies, and
// report at the site that proves the violation — Edge.Site or the AST
// position inside the one body you do walk. Graph construction is
// deterministic, so diagnostics stay byte-stable across runs.
//
// Source annotations recognized by the framework and the analyzers:
//
//	//eeatlint:allow <check> <reason>   suppress a finding of <check> on
//	                                    this or the next line; the
//	                                    reason is mandatory
//	//eeat:hotpath                      marks a function as a hot-path
//	                                    root for the hotpath analyzer
//	//eeat:coldpath <reason>            marks a function as off the
//	                                    steady-state path; the hotpath
//	                                    call-graph walk stops here
//	//eeat:chargesite                   marks a function as an energy
//	                                    charging primitive
//	//eeat:wire                         marks a struct that crosses the
//	                                    cluster HTTP boundary as JSON;
//	                                    wireparity proves it round-trips
//	//eeat:keyexcluded                  marks a struct field excluded
//	                                    from the content-addressed cell
//	                                    key (observability attachments)
//	//eeat:cellkey                      marks a cell-key root; wireparity
//	                                    proves no key-excluded field is
//	                                    read beneath it
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Package is one loaded, type-checked package of the analyzed tree.
type Package struct {
	// Path is the import path ("xlate", "xlate/internal/core", ...).
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed compiled Go files (no _test.go files).
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one domain check. Its Name doubles as the <check> key of
// the suppression pragma grammar.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects every package of the pass and reports findings.
	Run func(*Pass)
}

// Pass hands an analyzer the whole loaded module plus a reporting
// sink. Analyzers are module-scoped: one Run call sees every package,
// so cross-package analyses (call graphs, boundary checks) need no
// extra machinery.
type Pass struct {
	Analyzer *Analyzer
	// Pkgs are the packages under analysis, in dependency order.
	Pkgs []*Package
	Fset *token.FileSet

	diags  *[]Diagnostic
	engine *engine
}

// engine lazily holds the interprocedural substrate shared by every
// analyzer of one RunAnalyzers call: the module call graph with
// bottom-up summaries (graph.go, summary.go). Building it costs one
// walk over every body, so the first analyzer to ask pays and the rest
// share.
type engine struct {
	graph *Graph
}

// Graph returns the module call graph with per-function summaries,
// built on first use and shared across the suite's analyzers.
func (p *Pass) Graph() *Graph {
	if p.engine.graph == nil {
		p.engine.graph = BuildGraph(p.Pkgs)
	}
	return p.engine.graph
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// FuncMarker reports whether the function declaration's doc comment
// carries the given marker directive (e.g. "//eeat:hotpath"). Markers
// must start a comment line; trailing text is permitted (and for
// //eeat:coldpath, expected: the reason).
func FuncMarker(decl *ast.FuncDecl, marker string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if matchesMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

// GenDeclMarker reports whether a declaration comment group carries the
// given marker directive.
func GenDeclMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if matchesMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

func matchesMarker(text, marker string) bool {
	if len(text) < len(marker) || text[:len(marker)] != marker {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}
