package lint

import (
	"go/ast"
	"go/types"
)

// BlockKind is a bitmask of the ways a function may block. The base
// facts come from a table of known-blocking operations (time.Sleep,
// channel operations, HTTP round trips, fsync, WaitGroup/Cond waits);
// summarize folds them bottom-up over the call graph, so a function's
// Summary.Blocks covers everything its transitive module callees do.
type BlockKind uint8

const (
	// BlockSleep is a time.Sleep — blocking that no context can cancel.
	BlockSleep BlockKind = 1 << iota
	// BlockChan is a channel send, receive, range, or a select without
	// a default clause.
	BlockChan
	// BlockHTTP is an HTTP round trip (net/http client call).
	BlockHTTP
	// BlockFsync is an (*os.File).Sync — a disk barrier, typically
	// milliseconds.
	BlockFsync
	// BlockWait is a sync.WaitGroup or sync.Cond wait.
	BlockWait
)

// String renders the mask for diagnostics ("sleep+fsync").
func (k BlockKind) String() string {
	names := []struct {
		bit  BlockKind
		name string
	}{
		{BlockSleep, "sleep"}, {BlockChan, "chan"}, {BlockHTTP, "http"},
		{BlockFsync, "fsync"}, {BlockWait, "wait"},
	}
	out := ""
	for _, n := range names {
		if k&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// Summary is the bottom-up fact set of one function node, folded over
// the call graph's SCC condensation: every field covers the function
// itself plus its transitive EdgeCall/EdgeDefer callees (go, ref, and
// dynamic edges do not propagate — a spawned goroutine's blocking is
// not its spawner's, and ref/dynamic targets are over-approximations).
type Summary struct {
	// Blocks is the union of blocking operations reachable from here.
	Blocks BlockKind
	// BareSleep reports a time.Sleep reachable without crossing a
	// function that accepts a context.Context — an uncancellable delay
	// no caller-supplied context can interrupt. (Propagation stops at
	// ctx-taking callees: a sleep inside one is that function's own
	// finding, not every caller's.)
	BareSleep bool
	// CtxParam: the function's own signature accepts a context.Context.
	CtxParam bool
	// UsesCtx: the body (or a transitive callee) reads a value of type
	// context.Context — the cheap proxy for "is tied to a cancellation
	// chain" that goroleak keys on.
	UsesCtx bool
	// ChanOps: performs a channel operation (send, receive, select,
	// range, close) anywhere in the transitive body.
	ChanOps bool
	// WaitGroup: calls (*sync.WaitGroup).Done or Wait.
	WaitGroup bool
	// Spawns: contains a go statement.
	Spawns bool
	// Acquires are the mutexes locked here or in transitive callees
	// (released or not) — the alphabet of the lock-order analysis.
	Acquires map[*types.Var]bool

	// via explains, per block kind, the immediate source: the operation
	// itself, or the callee the kind arrived through.
	via map[BlockKind]string
}

// Via names where a block kind comes from: the blocking operation for
// direct facts, or "via <callee>" when inherited.
func (s *Summary) Via(k BlockKind) string {
	return s.via[k]
}

// acquire records a mutex in the summary.
func (s *Summary) acquire(v *types.Var) {
	if s.Acquires == nil {
		s.Acquires = make(map[*types.Var]bool)
	}
	s.Acquires[v] = true
}

// setBlock records a block kind with its provenance (first writer wins,
// so direct facts recorded before propagation keep their labels).
func (s *Summary) setBlock(k BlockKind, via string) {
	if s.Blocks&k == 0 {
		s.Blocks |= k
		if s.via == nil {
			s.via = make(map[BlockKind]string)
		}
		s.via[k] = via
	}
}

// stdBlocking maps fully qualified stdlib functions to the block kind
// calling them implies. Module-internal blocking (a wrapper around
// these) is covered by propagation instead.
var stdBlocking = map[string]BlockKind{
	"time.Sleep":                  BlockSleep,
	"(*net/http.Client).Do":       BlockHTTP,
	"(*net/http.Client).Get":      BlockHTTP,
	"(*net/http.Client).Post":     BlockHTTP,
	"(*net/http.Client).Head":     BlockHTTP,
	"(*net/http.Client).PostForm": BlockHTTP,
	"net/http.Get":                BlockHTTP,
	"net/http.Post":               BlockHTTP,
	"net/http.PostForm":           BlockHTTP,
	"net/http.Head":               BlockHTTP,
	"(*os.File).Sync":             BlockFsync,
	"(*sync.WaitGroup).Wait":      BlockWait,
	"(*sync.Cond).Wait":           BlockWait,
}

// StdBlockingCall classifies a call against the known-blocking stdlib
// table, returning the kind and the function's qualified name.
func StdBlockingCall(pkg *Package, call *ast.CallExpr) (BlockKind, string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return 0, "", false
	}
	name := fn.FullName()
	k, ok := stdBlocking[name]
	return k, name, ok
}

// calleeFunc resolves a call's target to a *types.Func (module or not),
// nil for builtins, conversions and computed callees.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// MutexOpKind says what a mutex method call does.
type MutexOpKind uint8

const (
	// MutexAcquire is Lock or RLock.
	MutexAcquire MutexOpKind = iota
	// MutexRelease is Unlock or RUnlock.
	MutexRelease
)

// MutexOp is one recognized sync.Mutex / sync.RWMutex method call,
// resolved to the identity of the mutex it operates on: the struct
// field or variable object, which is stable across every mention of
// the same lock.
type MutexOp struct {
	Kind MutexOpKind
	// Reader is true for RLock/RUnlock.
	Reader bool
	// Var identifies the mutex (field or variable object).
	Var *types.Var
	// Label renders the identity for diagnostics ("Coordinator.mu").
	Label string
}

// MutexOpOf recognizes x.mu.Lock()-shaped calls (including promoted
// embedded mutexes) and resolves the mutex identity. ok is false for
// anything else — including mutexes reached through locker interfaces
// or function results, which identity-based analysis cannot track.
func MutexOpOf(pkg *Package, call *ast.CallExpr) (MutexOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return MutexOp{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return MutexOp{}, false
	}
	var op MutexOp
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		op.Kind = MutexAcquire
	case "(*sync.RWMutex).RLock":
		op.Kind, op.Reader = MutexAcquire, true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		op.Kind = MutexRelease
	case "(*sync.RWMutex).RUnlock":
		op.Kind, op.Reader = MutexRelease, true
	default:
		return MutexOp{}, false
	}

	// The usual shape: the receiver expression is a field selector
	// (s.mu) or plain variable (mu) of mutex type.
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if fsel, ok := pkg.Info.Selections[recv]; ok && fsel.Kind() == types.FieldVal {
			if v, ok := fsel.Obj().(*types.Var); ok {
				op.Var = v
				op.Label = recvLabel(fsel.Recv()) + "." + v.Name()
				return op, true
			}
		}
		// Package-qualified variable: pkg.mu.Lock().
		if v, ok := pkg.Info.Uses[recv.Sel].(*types.Var); ok {
			op.Var = v
			op.Label = qualifiedVarLabel(v)
			return op, true
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[recv].(*types.Var); ok {
			// Promoted embedded mutex: x.Lock() where x is a struct
			// embedding sync.Mutex — resolve the embedded field.
			if msel, ok := pkg.Info.Selections[sel]; ok && len(msel.Index()) > 1 {
				if field := embeddedField(msel); field != nil {
					op.Var = field
					op.Label = recvLabel(msel.Recv()) + "." + field.Name()
					return op, true
				}
			}
			op.Var = v
			op.Label = qualifiedVarLabel(v)
			return op, true
		}
		// x.Lock() on a named struct value: promoted mutex.
		if msel, ok := pkg.Info.Selections[sel]; ok && len(msel.Index()) > 1 {
			if field := embeddedField(msel); field != nil {
				op.Var = field
				op.Label = recvLabel(msel.Recv()) + "." + field.Name()
				return op, true
			}
		}
	}
	return MutexOp{}, false
}

// embeddedField walks a promoted method selection's index path to the
// embedded struct field holding the mutex.
func embeddedField(sel *types.Selection) *types.Var {
	t := sel.Recv()
	var field *types.Var
	for _, i := range sel.Index()[:len(sel.Index())-1] {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil
		}
		field = st.Field(i)
		t = field.Type()
	}
	return field
}

// recvLabel names a receiver type for lock labels ("Coordinator").
func recvLabel(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// qualifiedVarLabel names a plain mutex variable ("telemetry.regMu").
func qualifiedVarLabel(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// summarize computes every node's Summary: direct facts per body, then
// a bottom-up fold over the SCC condensation of the EdgeCall/EdgeDefer
// subgraph (Tarjan emits SCCs callees-first, so one pass suffices; an
// SCC's members share one union summary, which makes recursion exact —
// monotone facts over a cycle are the union of the cycle's facts).
func summarize(g *Graph, pkgs []*Package) {
	for _, n := range g.Nodes {
		directFacts(g, n)
	}

	sccs := tarjanSCC(g)
	for _, scc := range sccs {
		// Union the members' facts plus every external callee's
		// (already-final) summary.
		var u Summary
		for _, n := range scc {
			mergeSummary(&u, &n.Summary, "")
			for _, e := range n.Out {
				if e.Kind != EdgeCall && e.Kind != EdgeDefer {
					continue
				}
				if e.To.scc == n.scc {
					continue // same SCC: covered by the member union
				}
				inherit(&u, &e.To.Summary, e.To.Label())
			}
		}
		for _, n := range scc {
			// Per-node signature facts stay per-node.
			ctxParam := n.Summary.CtxParam
			n.Summary = u
			n.Summary.CtxParam = ctxParam
		}
	}
}

// mergeSummary unions src into dst (same-SCC member merge).
func mergeSummary(dst, src *Summary, _ string) {
	for k := BlockSleep; k <= BlockWait; k <<= 1 {
		if src.Blocks&k != 0 {
			dst.setBlock(k, src.via[k])
		}
	}
	dst.BareSleep = dst.BareSleep || src.BareSleep
	dst.UsesCtx = dst.UsesCtx || src.UsesCtx
	dst.ChanOps = dst.ChanOps || src.ChanOps
	dst.WaitGroup = dst.WaitGroup || src.WaitGroup
	dst.Spawns = dst.Spawns || src.Spawns
	for v := range src.Acquires {
		dst.acquire(v)
	}
}

// inherit folds a callee's summary into the caller's: like merge, but
// block provenance is re-labeled with the callee, and BareSleep stops
// at callees that accept a context (their sleeps are their own
// findings).
func inherit(dst, src *Summary, calleeLabel string) {
	for k := BlockSleep; k <= BlockWait; k <<= 1 {
		if src.Blocks&k != 0 {
			dst.setBlock(k, "via "+calleeLabel)
		}
	}
	if src.BareSleep && !src.CtxParam {
		dst.BareSleep = true
	}
	dst.UsesCtx = dst.UsesCtx || src.UsesCtx
	dst.ChanOps = dst.ChanOps || src.ChanOps
	dst.WaitGroup = dst.WaitGroup || src.WaitGroup
	dst.Spawns = dst.Spawns || src.Spawns
	for v := range src.Acquires {
		dst.acquire(v)
	}
}

// directFacts gathers one node's own facts, skipping nested function
// literals (they are their own nodes).
func directFacts(g *Graph, n *FuncNode) {
	s := &n.Summary

	// Signature: does it accept a context?
	var sig *types.Signature
	if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	} else if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if IsContextType(sig.Params().At(i).Type()) {
				s.CtxParam = true
			}
		}
	}

	root := n.Body()
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // a separate node
		case *ast.GoStmt:
			s.Spawns = true
		case *ast.SendStmt:
			s.setBlock(BlockChan, "channel send")
			s.ChanOps = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				s.setBlock(BlockChan, "channel receive")
				s.ChanOps = true
			}
		case *ast.SelectStmt:
			s.ChanOps = true
			blocking := true
			for _, cl := range x.Body.List {
				if c, ok := cl.(*ast.CommClause); ok && c.Comm == nil {
					blocking = false // default clause: non-blocking poll
				}
			}
			if blocking {
				s.setBlock(BlockChan, "select")
			}
		case *ast.RangeStmt:
			if tv, ok := n.Pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.setBlock(BlockChan, "range over channel")
					s.ChanOps = true
				}
			}
		case *ast.Ident:
			if v, ok := n.Pkg.Info.Uses[x].(*types.Var); ok && IsContextType(v.Type()) {
				s.UsesCtx = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					s.ChanOps = true
				}
			}
			if op, ok := MutexOpOf(n.Pkg, x); ok {
				if op.Kind == MutexAcquire {
					s.acquire(op.Var)
					g.lockLabels[op.Var] = op.Label
				}
				return true
			}
			if k, name, ok := StdBlockingCall(n.Pkg, x); ok {
				s.setBlock(k, name)
				if k == BlockSleep {
					s.BareSleep = true
				}
				return true
			}
			if fn := calleeFunc(n.Pkg, x); fn != nil {
				switch fn.FullName() {
				case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
					s.WaitGroup = true
				}
			}
		}
		return true
	})
}

// tarjanSCC computes the strongly connected components of the
// EdgeCall/EdgeDefer subgraph, emitted callees-first (reverse
// topological order of the condensation), and stamps each node's scc
// id.
func tarjanSCC(g *Graph) [][]*FuncNode {
	type state struct {
		index, low int
		onStack    bool
	}
	states := make(map[*FuncNode]*state, len(g.Nodes))
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		st := &state{index: next, low: next}
		next++
		states[n] = st
		stack = append(stack, n)
		st.onStack = true

		for _, e := range n.Out {
			if e.Kind != EdgeCall && e.Kind != EdgeDefer {
				continue
			}
			w := e.To
			ws, seen := states[w]
			if !seen {
				strongconnect(w)
				if states[w].low < st.low {
					st.low = states[w].low
				}
			} else if ws.onStack {
				if ws.index < st.low {
					st.low = ws.index
				}
			}
		}

		if st.low == st.index {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				w.scc = len(sccs)
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}

	for _, n := range g.Nodes {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// SCCOf returns the node's SCC id (callees have lower ids than their
// callers outside cycles) — exposed for the engine tests.
func (n *FuncNode) SCCOf() int { return n.scc }
