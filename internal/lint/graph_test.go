package lint

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadEngineFixture loads testdata/engine/src as a tree and builds the
// graph over it.
func loadEngineFixture(t *testing.T) *Graph {
	t.Helper()
	pkgs, _, err := LoadTree(filepath.Join("testdata", "engine", "src"), "")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	return BuildGraph(pkgs)
}

// nodeByName finds a declared function node by bare name.
func nodeByName(t *testing.T, g *Graph, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.Nodes {
		if n.Obj != nil && n.Obj.Name() == name {
			if found != nil {
				t.Fatalf("multiple nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// methodNode finds a method node by receiver type name and method name.
func methodNode(t *testing.T, g *Graph, recv, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Obj == nil || n.Obj.Name() != name {
			continue
		}
		sig := n.Obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Name() == recv {
			return n
		}
	}
	t.Fatalf("no method %s.%s", recv, name)
	return nil
}

func edgesTo(n *FuncNode, to *FuncNode) []Edge {
	var out []Edge
	for _, e := range n.Out {
		if e.To == to {
			out = append(out, e)
		}
	}
	return out
}

func TestGraphRecursionSCC(t *testing.T) {
	g := loadEngineFixture(t)
	ping := nodeByName(t, g, "ping")
	pong := nodeByName(t, g, "pong")

	if ping.SCCOf() != pong.SCCOf() {
		t.Fatalf("ping (scc %d) and pong (scc %d) should share an SCC",
			ping.SCCOf(), pong.SCCOf())
	}
	for _, n := range []*FuncNode{ping, pong} {
		if n.Summary.Blocks&BlockSleep == 0 {
			t.Errorf("%s: BlockSleep missing from summary (got %s)", n.Label(), n.Summary.Blocks)
		}
		if !n.Summary.BareSleep {
			t.Errorf("%s: BareSleep should propagate around the cycle", n.Label())
		}
	}
	// ping has no direct sleep: its provenance must point at the cycle.
	if via := ping.Summary.Via(BlockSleep); via == "" {
		t.Errorf("ping: no provenance recorded for sleep")
	}
}

func TestGraphInterfaceDispatch(t *testing.T) {
	g := loadEngineFixture(t)
	dispatch := nodeByName(t, g, "dispatch")
	chanWait := methodNode(t, g, "chanWaiter", "Wait")
	spinWait := methodNode(t, g, "spinWaiter", "Wait")

	for _, target := range []*FuncNode{chanWait, spinWait} {
		es := edgesTo(dispatch, target)
		if len(es) == 0 {
			t.Errorf("dispatch: no edge to %s", target.Label())
			continue
		}
		if es[0].Kind != EdgeDynamic {
			t.Errorf("dispatch→%s: kind = %s, want dynamic", target.Label(), es[0].Kind)
		}
	}
	// Dynamic edges must not propagate summaries: dispatch itself does
	// not block even though chanWaiter.Wait does.
	if dispatch.Summary.Blocks != 0 {
		t.Errorf("dispatch: Blocks = %s, want none (dynamic edges don't propagate)",
			dispatch.Summary.Blocks)
	}
	if chanWait.Summary.Blocks&BlockChan == 0 {
		t.Errorf("chanWaiter.Wait: BlockChan missing (select over channels)")
	}
}

func TestGraphMethodValueRef(t *testing.T) {
	g := loadEngineFixture(t)
	mv := nodeByName(t, g, "methodValue")
	bump := methodNode(t, g, "counter", "bump")

	es := edgesTo(mv, bump)
	if len(es) == 0 {
		t.Fatalf("methodValue: no edge to counter.bump")
	}
	if es[0].Kind != EdgeRef {
		t.Errorf("methodValue→bump: kind = %s, want ref", es[0].Kind)
	}
	// Refs don't propagate: methodValue acquires nothing.
	if len(mv.Summary.Acquires) != 0 {
		t.Errorf("methodValue: Acquires = %d locks, want 0", len(mv.Summary.Acquires))
	}
}

func TestGraphLockSummary(t *testing.T) {
	g := loadEngineFixture(t)
	bump := methodNode(t, g, "counter", "bump")

	if len(bump.Summary.Acquires) != 1 {
		t.Fatalf("bump: Acquires = %d locks, want 1", len(bump.Summary.Acquires))
	}
	for v := range bump.Summary.Acquires {
		if got := g.LockLabel(v); got != "counter.mu" {
			t.Errorf("lock label = %q, want counter.mu", got)
		}
	}

	// deferred defer-calls bump: EdgeDefer propagates the acquisition.
	deferred := nodeByName(t, g, "deferred")
	es := edgesTo(deferred, bump)
	if len(es) == 0 || es[0].Kind != EdgeDefer {
		t.Fatalf("deferred→bump: want a defer edge, got %v", es)
	}
	if len(deferred.Summary.Acquires) != 1 {
		t.Errorf("deferred: Acquires = %d locks, want 1 (inherited via defer)",
			len(deferred.Summary.Acquires))
	}
}

func TestGraphGoEdgeDoesNotPropagate(t *testing.T) {
	g := loadEngineFixture(t)
	spawn := nodeByName(t, g, "spawn")

	if !spawn.Summary.Spawns {
		t.Errorf("spawn: Spawns = false, want true")
	}
	if spawn.Summary.Blocks&BlockChan != 0 {
		t.Errorf("spawn: BlockChan leaked across a go edge")
	}
	var lit *FuncNode
	for _, e := range spawn.Out {
		if e.Kind == EdgeGo {
			lit = e.To
		}
	}
	if lit == nil {
		t.Fatalf("spawn: no go edge")
	}
	if lit.Summary.Blocks&BlockChan == 0 {
		t.Errorf("spawned literal: BlockChan missing (it sends on ch)")
	}
	if lit.Parent != spawn {
		t.Errorf("spawned literal: Parent = %v, want spawn", lit.Parent)
	}
}

func TestGraphBareSleepStopsAtCtxParam(t *testing.T) {
	g := loadEngineFixture(t)

	// Two ctx-less hops: the sleep taints both.
	wrapper := nodeByName(t, g, "sleepWrapper")
	if !wrapper.Summary.BareSleep {
		t.Errorf("sleepWrapper: BareSleep should flow through ctx-less pause")
	}

	// A ctx-taking sleeper keeps the taint to itself.
	sleeper := nodeByName(t, g, "ctxSleeper")
	if !sleeper.Summary.BareSleep {
		t.Errorf("ctxSleeper: its own sleep is still bare")
	}
	if !sleeper.Summary.CtxParam {
		t.Errorf("ctxSleeper: CtxParam = false, want true")
	}
	caller := nodeByName(t, g, "callsCtxSleeper")
	if caller.Summary.BareSleep {
		t.Errorf("callsCtxSleeper: BareSleep must stop at the ctx-taking callee")
	}
	// The blocking fact itself still propagates.
	if caller.Summary.Blocks&BlockSleep == 0 {
		t.Errorf("callsCtxSleeper: BlockSleep should still propagate")
	}
}
