package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadModule discovers, parses and type-checks every package of the
// module rooted at root (the directory holding go.mod). Test files are
// excluded: the analyzers guard production code, and test packages are
// free to use maps, clocks and allocation as they please.
func LoadModule(root string) ([]*Package, *token.FileSet, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	return LoadTree(root, modPath)
}

// LoadTree loads every package under root, mapping a directory at
// relative path p to import path prefix/p (or prefix itself for the
// root directory). The analyzer fixture runner uses it with prefix ""
// so testdata trees can impersonate real import paths.
func LoadTree(root, prefix string) ([]*Package, *token.FileSet, error) {
	// The out-of-module fallback importer type-checks dependencies from
	// source via go/build; cgo-flavoured variants of stdlib packages
	// (net, os/user) cannot be loaded that way, so force the pure-Go
	// build configuration. Nothing in this module uses cgo.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, nil, err
	}

	type rawPkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		path := prefix
		if rel != "." {
			path = filepath.ToSlash(rel)
			if prefix != "" {
				path = prefix + "/" + path
			}
		}
		if path == "" {
			continue // tree root itself has no import path under prefix ""
		}
		files, imports, err := parseDir(fset, dir)
		if err != nil {
			return nil, nil, err
		}
		if len(files) == 0 {
			continue
		}
		raw[path] = &rawPkg{path: path, dir: dir, files: files, imports: imports}
	}

	order, err := topoSort(raw, func(p *rawPkg) []string {
		var deps []string
		for imp := range p.imports {
			if _, ok := raw[imp]; ok {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		return deps
	})
	if err != nil {
		return nil, nil, err
	}

	imp := &chainImporter{
		std: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		mod: make(map[string]*types.Package),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
		}
		imp.mod[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   rp.dir,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, fset, nil
}

// chainImporter resolves in-tree packages from the already-checked set
// and delegates everything else (the standard library) to the
// toolchain's source importer.
type chainImporter struct {
	std types.ImporterFrom
	mod map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.mod[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// packageDirs walks root collecting every directory holding Go files,
// skipping testdata trees, hidden directories and underscore prefixes —
// the same shape the go tool considers part of a module.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files in order, so duplicates are already adjacent;
	// compact after the sort to be safe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// parseDir parses the compiled (non-test) Go files of one directory and
// returns them with the union of their import paths.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: bad import in %s: %w", name, err)
			}
			imports[p] = true
		}
	}
	return files, imports, nil
}

// topoSort orders packages so every package follows its in-tree
// dependencies, detecting import cycles.
func topoSort[T any](nodes map[string]*T, deps func(*T) []string) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(nodes))
	var order []string
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, d := range deps(nodes[n]) {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
