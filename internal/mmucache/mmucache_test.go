package mmucache

import (
	"testing"

	"xlate/internal/addr"
	"xlate/internal/pagetable"
)

func TestColdProbeMisses(t *testing.T) {
	c := New(DefaultConfig())
	if lvl := c.Probe(0x1000); lvl != addr.LvlPML4 {
		t.Fatalf("cold probe start level = %v, want PML4", lvl)
	}
	for _, s := range c.Structures() {
		st := s.Stats()
		if st.Lookups != 1 || st.Hits != 0 {
			t.Fatalf("%s stats = %+v, want 1 lookup 0 hits", s.Name(), st)
		}
	}
}

func TestFillThenProbe4K(t *testing.T) {
	c := New(DefaultConfig())
	va := addr.VA(0x7f0012345000)
	c.Fill(va, addr.LvlPT) // a 4K walk fills PML4, PDPTE, PDE entries
	if lvl := c.Probe(va); lvl != addr.LvlPT {
		t.Fatalf("probe after 4K fill = %v, want PT (PDE hit)", lvl)
	}
	// Same 2MB region, different 4K page: PDE entry covers it.
	if lvl := c.Probe(va + 0x1000); lvl != addr.LvlPT {
		t.Fatalf("probe of sibling 4K page = %v, want PT", lvl)
	}
	// Different 2MB region, same 1GB region: PDE misses, PDPTE hits.
	if lvl := c.Probe(va + addr.Bytes2M); lvl != addr.LvlPD {
		t.Fatalf("probe of sibling 2MB region = %v, want PD", lvl)
	}
	// Different 1GB region, same 512GB region: only PML4 hits.
	if lvl := c.Probe(va + addr.Bytes1G); lvl != addr.LvlPDPT {
		t.Fatalf("probe of sibling 1GB region = %v, want PDPT", lvl)
	}
	// Different PML4 region: all miss.
	if lvl := c.Probe(va + (1 << 39)); lvl != addr.LvlPML4 {
		t.Fatalf("probe of sibling PML4 region = %v, want PML4", lvl)
	}
}

func TestFill2MDoesNotTouchPDECache(t *testing.T) {
	c := New(DefaultConfig())
	va := addr.VA(0x40000000)
	c.Fill(va, addr.LvlPD) // 2MB leaf: only PML4 + PDPTE cached
	if lvl := c.Probe(va); lvl != addr.LvlPD {
		t.Fatalf("probe after 2M fill = %v, want PD", lvl)
	}
	pde := c.Structures()[0]
	if pde.Len() != 0 {
		t.Fatal("PDE cache must not cache leaf PDEs")
	}
}

func TestFill1GOnlyPML4(t *testing.T) {
	c := New(DefaultConfig())
	va := addr.VA(0x80000000)
	c.Fill(va, addr.LvlPDPT)
	if lvl := c.Probe(va); lvl != addr.LvlPDPT {
		t.Fatalf("probe after 1G fill = %v, want PDPT", lvl)
	}
	if c.Structures()[1].Len() != 0 {
		t.Fatal("PDPTE cache must not cache leaf PDPTEs")
	}
}

func TestRefillDoesNotDoubleCountWrites(t *testing.T) {
	c := New(DefaultConfig())
	va := addr.VA(0x1000)
	c.Fill(va, addr.LvlPT)
	c.Fill(va, addr.LvlPT)
	for _, s := range c.Structures() {
		if got := s.Stats().Fills; got != 1 {
			t.Fatalf("%s fills = %d, want 1", s.Name(), got)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(DefaultConfig())
	// The PML4 cache holds 2 entries; touching 3 distinct 512GB regions
	// evicts the first.
	for i := uint64(0); i < 3; i++ {
		c.Fill(addr.VA(i<<39), addr.LvlPT)
	}
	if lvl := c.Probe(addr.VA(0)); lvl == addr.LvlPT {
		// PDE cache has 32 entries so the PDE entry may survive; probe a
		// different 2MB+1GB offset in region 0 to isolate PML4.
		t.Log("PDE still resident; checking PML4 only")
	}
	if lvl := c.Probe(addr.VA(0) + addr.Bytes1G); lvl != addr.LvlPML4 {
		t.Fatalf("oldest PML4 entry should have been evicted; got %v", lvl)
	}
	if lvl := c.Probe(addr.VA(2<<39) + addr.Bytes1G); lvl != addr.LvlPDPT {
		t.Fatalf("newest PML4 entry should be resident; got %v", lvl)
	}
}

func TestFlushAndReset(t *testing.T) {
	c := New(DefaultConfig())
	c.Fill(0x1000, addr.LvlPT)
	c.Flush()
	if lvl := c.Probe(0x1000); lvl != addr.LvlPML4 {
		t.Fatal("flush should drop all entries")
	}
	c.ResetStats()
	for _, s := range c.Structures() {
		if s.Stats().Lookups != 0 {
			t.Fatal("ResetStats should zero counters")
		}
	}
}

// Integration: a walk accelerated by the cache produces the shortened
// reference counts of paper §2.1 ("a page walk requires between one and
// four memory operations").
func TestIntegrationWithWalker(t *testing.T) {
	pt := pagetable.New()
	w := pagetable.NewWalker(pt)
	c := New(DefaultConfig())
	va := addr.VA(0x7f0000000000)
	if err := pt.Map(va, addr.Page4K, 0x1000); err != nil {
		t.Fatal(err)
	}

	// First access: full walk, 4 refs.
	start := c.Probe(va)
	m, refs, ok := w.Walk(va, start)
	if !ok || refs != 4 {
		t.Fatalf("first walk refs = %d ok=%v, want 4", refs, ok)
	}
	c.Fill(va, addr.LvlPT)
	_ = m

	// Second access to a neighbouring page: PDE hit, 1 ref.
	va2 := va + 0x1000
	if err := pt.Map(va2, addr.Page4K, 0x2000); err != nil {
		t.Fatal(err)
	}
	start = c.Probe(va2)
	if start != addr.LvlPT {
		t.Fatalf("start = %v, want PT", start)
	}
	if _, refs, ok = w.Walk(va2, start); !ok || refs != 1 {
		t.Fatalf("accelerated walk refs = %d ok=%v, want 1", refs, ok)
	}
}
