// Package mmucache models the MMU paging-structure caches that back the
// TLB hierarchy (Intel's Paging Structure Caches [27]; configuration per
// Bhattacharjee, MICRO 2013 [15] and the paper's Table 2).
//
// The cache consists of three individual structures, each holding
// non-leaf entries of one page-table level:
//
//   - PDE cache:   32 entries, 2-way — entries pointing to PT pages,
//     tagged by VA bits 47:21.
//   - PDPTE cache:  4 entries, fully associative — entries pointing to
//     PD pages, tagged by VA bits 47:30.
//   - PML4 cache:   2 entries, fully associative — entries pointing to
//     PDPT pages, tagged by VA bits 47:39.
//
// All three are probed in parallel after an L2 TLB miss. The deepest hit
// determines which page-table level the hardware walker starts from,
// eliminating the memory references for the levels above it.
package mmucache

import (
	"fmt"

	"xlate/internal/addr"
	"xlate/internal/tlb"
)

// Structure names, used as energy-table keys.
const (
	NamePDE   = "MMU-cache-PDE"
	NamePDPTE = "MMU-cache-PDPTE"
	NamePML4  = "MMU-cache-PML4"
)

// Config fixes the geometry of the three structures.
type Config struct {
	PDEEntries   int
	PDEWays      int
	PDPTEEntries int // fully associative
	PML4Entries  int // fully associative
}

// DefaultConfig is the paper's Table 2 geometry.
func DefaultConfig() Config {
	return Config{PDEEntries: 32, PDEWays: 2, PDPTEEntries: 4, PML4Entries: 2}
}

// Validate checks the geometry, returning an error describing the first
// inconsistency instead of panicking at construction.
func (cfg Config) Validate() error {
	if cfg.PDEEntries <= 0 || cfg.PDEWays <= 0 || cfg.PDEEntries%cfg.PDEWays != 0 {
		return fmt.Errorf("mmucache: bad PDE geometry %d/%d", cfg.PDEEntries, cfg.PDEWays)
	}
	if cfg.PDPTEEntries <= 0 {
		return fmt.Errorf("mmucache: bad PDPTE capacity %d", cfg.PDPTEEntries)
	}
	if cfg.PML4Entries <= 0 {
		return fmt.Errorf("mmucache: bad PML4 capacity %d", cfg.PML4Entries)
	}
	return nil
}

// Cache is one core's set of paging-structure caches.
type Cache struct {
	pde   *tlb.SetAssoc
	pdpte *tlb.SetAssoc
	pml4  *tlb.SetAssoc
}

// New constructs the paging-structure caches with the given geometry.
func New(cfg Config) *Cache {
	return &Cache{
		pde:   tlb.NewSetAssoc(NamePDE, cfg.PDEEntries, cfg.PDEWays),
		pdpte: tlb.NewFullyAssoc(NamePDPTE, cfg.PDPTEEntries),
		pml4:  tlb.NewFullyAssoc(NamePML4, cfg.PML4Entries),
	}
}

// Probe looks up va in all three structures in parallel (each probe is
// counted for energy accounting regardless of outcome) and returns the
// page-table level the walk can start from: LvlPT after a PDE-cache hit,
// LvlPD after a PDPTE hit, LvlPDPT after a PML4 hit, or LvlPML4 when all
// miss (full walk).
//
//eeat:hotpath
func (c *Cache) Probe(va addr.VA) addr.Level {
	_, _, pdeHit := c.pde.Lookup(addr.LvlPD.Prefix(va))
	_, _, pdpteHit := c.pdpte.Lookup(addr.LvlPDPT.Prefix(va))
	_, _, pml4Hit := c.pml4.Lookup(addr.LvlPML4.Prefix(va))
	switch {
	case pdeHit:
		return addr.LvlPT
	case pdpteHit:
		return addr.LvlPD
	case pml4Hit:
		return addr.LvlPDPT
	}
	return addr.LvlPML4
}

// Fill inserts the non-leaf entries a completed walk read, given the
// level at which the walk terminated (LvlPT for a 4 KB page, LvlPD for
// 2 MB, LvlPDPT for 1 GB). Leaf entries are never cached here — they go
// to the TLBs. Re-inserting a resident entry refreshes recency without
// counting as a write.
//
//eeat:hotpath
func (c *Cache) Fill(va addr.VA, leaf addr.Level) {
	if leaf > addr.LvlPDPT {
		c.pdpte.Insert(tlb.Entry{Key: addr.LvlPDPT.Prefix(va)})
	}
	if leaf > addr.LvlPD {
		c.pde.Insert(tlb.Entry{Key: addr.LvlPD.Prefix(va)})
	}
	if leaf > addr.LvlPML4 {
		c.pml4.Insert(tlb.Entry{Key: addr.LvlPML4.Prefix(va)})
	}
}

// Flush invalidates all three structures.
func (c *Cache) Flush() {
	c.pde.Flush()
	c.pdpte.Flush()
	c.pml4.Flush()
}

// Structures returns the three underlying lookup structures (PDE, PDPTE,
// PML4 order) for stats and energy accounting. It returns a fixed array
// rather than a slice so per-walk callers stay allocation-free.
func (c *Cache) Structures() [3]*tlb.SetAssoc {
	return [3]*tlb.SetAssoc{c.pde, c.pdpte, c.pml4}
}

// ResetStats zeroes the counters on all three structures.
func (c *Cache) ResetStats() {
	c.pde.ResetStats()
	c.pdpte.ResetStats()
	c.pml4.ResetStats()
}
