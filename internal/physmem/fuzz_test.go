package physmem

import (
	"testing"

	"xlate/internal/addr"
)

// FuzzAllocator drives the buddy allocator with an op stream decoded
// from fuzz bytes: allocations of varying order interleaved with frees,
// checking the structural invariants after every step.
func FuzzAllocator(f *testing.F) {
	f.Add([]byte{0x01, 0x85, 0x03, 0x80, 0x09})
	f.Add([]byte{0xff, 0x00, 0x10, 0x90})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		a := New(1 << 12) // 16 MB of frames
		var live []addr.PA
		for _, op := range ops {
			if op&0x80 != 0 && len(live) > 0 {
				i := int(op&0x7f) % len(live)
				if err := a.Free(live[i]); err != nil {
					t.Fatalf("free of live block failed: %v", err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				pa, err := a.Alloc(int(op) % 10)
				if err != nil {
					continue // legitimately out of memory
				}
				live = append(live, pa)
			}
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, pa := range live {
			if err := a.Free(pa); err != nil {
				t.Fatal(err)
			}
		}
		if a.Allocated() != 0 {
			t.Fatalf("leak: %d frames", a.Allocated())
		}
	})
}
