package physmem

import (
	"math/rand"
	"testing"

	"xlate/internal/addr"
)

// TestAllocDeterministic pins the buddy allocator's placement policy:
// two allocators driven by the same operation sequence must hand out
// identical addresses. Alloc picks the lowest-base free block of the
// chosen order, so placement never depends on map iteration order.
func TestAllocDeterministic(t *testing.T) {
	run := func() []addr.PA {
		a := New(1 << 16)
		rng := rand.New(rand.NewSource(42))
		var live []addr.PA
		var got []addr.PA
		for i := 0; i < 2000; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				if err := a.Free(live[k]); err != nil {
					t.Fatalf("Free(%#x): %v", uint64(live[k]), err)
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			pa, err := a.Alloc(rng.Intn(6))
			if err != nil {
				continue // out of memory is fine; the sequence stays identical
			}
			live = append(live, pa)
			got = append(got, pa)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("runs allocated %d vs %d blocks", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("allocation %d differs: %#x vs %#x", i, uint64(first[i]), uint64(second[i]))
		}
	}
}

// TestAllocLowestBase pins the tie-break directly: with several free
// blocks of the requested order, Alloc must return the lowest base.
func TestAllocLowestBase(t *testing.T) {
	a := New(64)
	var pas []addr.PA
	for i := 0; i < 8; i++ {
		pa, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	// Free a scattered subset, then re-allocate: the freed frames must
	// come back lowest-base first.
	for _, k := range []int{5, 1, 3} {
		if err := a.Free(pas[k]); err != nil {
			t.Fatal(err)
		}
	}
	want := []addr.PA{pas[1], pas[3], pas[5]}
	for i, w := range want {
		pa, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if pa != w {
			t.Fatalf("re-allocation %d = %#x, want lowest free base %#x", i, uint64(pa), uint64(w))
		}
	}
}
