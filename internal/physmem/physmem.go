// Package physmem implements a buddy allocator over physical page
// frames.
//
// The allocator is the source of physical contiguity for the OS model in
// internal/vm: transparent huge pages need naturally aligned 2 MB blocks,
// and RMM's eager paging (Karakostas et al., ISCA 2015) asks for an
// arbitrarily large physically contiguous block per allocation request so
// that one range translation can map the whole region. A classic
// power-of-two buddy system provides both, with splitting on allocation
// and coalescing on free, so fragmentation behaviour is realistic rather
// than assumed away.
//
// Frame numbers are 4 KB-granular. Order k describes a block of 2^k
// contiguous frames aligned to 2^k frames (order 0 = 4 KB, order 9 =
// 2 MB, order 18 = 1 GB).
package physmem

import (
	"fmt"
	"math/bits"

	"xlate/internal/addr"
)

// FrameShift is the log2 of the allocation granule (one 4 KB frame).
const FrameShift = addr.Shift4K

// MaxOrder is the largest supported block order: 2^24 frames = 64 GB.
const MaxOrder = 24

// Allocator is a buddy allocator over a contiguous physical frame range
// [0, frames). The zero value is not usable; use New.
type Allocator struct {
	frames uint64
	// free[k] holds the set of free block base frames of order k.
	// A map doubles as membership test for O(1) buddy coalescing.
	free [MaxOrder + 1]map[uint64]struct{}
	// orderOf records the order of every allocated block, keyed by base
	// frame, so Free does not need the caller to remember sizes.
	orderOf map[uint64]int

	allocated uint64 // frames currently allocated
	peak      uint64 // high-water mark of allocated frames
}

// New returns an allocator managing the given number of 4 KB frames.
// The frame count is rounded down to a multiple of the largest block
// that fits, and the whole range is seeded as free blocks.
func New(frames uint64) *Allocator {
	a := &Allocator{frames: frames, orderOf: make(map[uint64]int)}
	for k := range a.free {
		a.free[k] = make(map[uint64]struct{})
	}
	// Seed maximal aligned free blocks greedily from frame 0.
	base := uint64(0)
	for base < frames {
		k := MaxOrder
		for k > 0 && (base&blockMask(k) != 0 || base+blockFrames(k) > frames) {
			k--
		}
		if base+blockFrames(k) > frames {
			break // trailing fragment smaller than one frame cannot happen; k=0 fits
		}
		a.free[k][base] = struct{}{}
		base += blockFrames(k)
	}
	return a
}

func blockFrames(order int) uint64 { return 1 << order }
func blockMask(order int) uint64   { return (1 << order) - 1 }

// OrderForBytes returns the smallest block order whose size covers the
// given byte length.
func OrderForBytes(bytes uint64) int {
	if bytes == 0 {
		return 0
	}
	frames := (bytes + (1 << FrameShift) - 1) >> FrameShift
	if frames == 1 {
		return 0
	}
	return bits.Len64(frames - 1)
}

// Alloc allocates one naturally aligned block of 2^order frames and
// returns its base physical address. It fails if no block of that order
// or larger is free.
func (a *Allocator) Alloc(order int) (addr.PA, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("physmem: invalid order %d", order)
	}
	k := order
	for k <= MaxOrder && len(a.free[k]) == 0 {
		k++
	}
	if k > MaxOrder {
		return 0, fmt.Errorf("physmem: out of memory for order-%d block (%d frames allocated of %d)",
			order, a.allocated, a.frames)
	}
	// Pick the lowest-based free block of the order. Taking an arbitrary
	// map key here would make frame placement — and therefore physical
	// contiguity, range-table contents and energy totals — depend on
	// Go's randomized map iteration order.
	base := ^uint64(0)
	for b := range a.free[k] { //eeatlint:allow determinism min-reduction over the free set is iteration-order-insensitive
		if b < base {
			base = b
		}
	}
	delete(a.free[k], base)
	// Split down to the requested order, freeing the upper buddies.
	for k > order {
		k--
		a.free[k][base+blockFrames(k)] = struct{}{}
	}
	a.orderOf[base] = order
	a.allocated += blockFrames(order)
	if a.allocated > a.peak {
		a.peak = a.allocated
	}
	return addr.PA(base << FrameShift), nil
}

// Free releases a block previously returned by Alloc, coalescing with
// free buddies as far as possible.
func (a *Allocator) Free(pa addr.PA) error {
	base := uint64(pa) >> FrameShift
	order, ok := a.orderOf[base]
	if !ok {
		return fmt.Errorf("physmem: free of unallocated block at %#x", uint64(pa))
	}
	delete(a.orderOf, base)
	a.allocated -= blockFrames(order)
	for order < MaxOrder {
		buddy := base ^ blockFrames(order)
		if _, free := a.free[order][buddy]; !free {
			break
		}
		delete(a.free[order], buddy)
		if buddy < base {
			base = buddy
		}
		order++
	}
	a.free[order][base] = struct{}{}
	return nil
}

// Frames returns the total number of frames managed.
func (a *Allocator) Frames() uint64 { return a.frames }

// Allocated returns the number of frames currently allocated.
func (a *Allocator) Allocated() uint64 { return a.allocated }

// Peak returns the high-water mark of allocated frames.
func (a *Allocator) Peak() uint64 { return a.peak }

// FreeFrames returns the number of frames currently free.
func (a *Allocator) FreeFrames() uint64 { return a.frames - a.allocated }

// LargestFreeOrder returns the order of the largest free block, or -1 if
// memory is exhausted. The OS model uses this to decide whether a huge
// page or an eager range of a given size can be satisfied contiguously.
func (a *Allocator) LargestFreeOrder() int {
	for k := MaxOrder; k >= 0; k-- {
		if len(a.free[k]) > 0 {
			return k
		}
	}
	return -1
}

// CheckInvariants validates internal consistency: free blocks are
// aligned, in range, non-overlapping with each other, and the free +
// allocated frame counts add up. Intended for tests.
func (a *Allocator) CheckInvariants() error {
	seen := make(map[uint64]int) // frame -> owner count
	var freeFrames uint64
	for k, set := range a.free {
		for base := range set { //eeatlint:allow determinism validation scan; any violation is reported regardless of visit order
			if base&blockMask(k) != 0 {
				return fmt.Errorf("free block %#x order %d misaligned", base, k)
			}
			if base+blockFrames(k) > a.frames {
				return fmt.Errorf("free block %#x order %d out of range", base, k)
			}
			for f := base; f < base+blockFrames(k); f++ {
				seen[f]++
				if seen[f] > 1 {
					return fmt.Errorf("frame %#x covered twice", f)
				}
			}
			freeFrames += blockFrames(k)
		}
	}
	var allocFrames uint64
	for base, k := range a.orderOf { //eeatlint:allow determinism validation scan; any violation is reported regardless of visit order
		for f := base; f < base+blockFrames(k); f++ {
			seen[f]++
			if seen[f] > 1 {
				return fmt.Errorf("allocated frame %#x also free", f)
			}
		}
		allocFrames += blockFrames(k)
	}
	if allocFrames != a.allocated {
		return fmt.Errorf("allocated count %d != sum of blocks %d", a.allocated, allocFrames)
	}
	if freeFrames+allocFrames != a.frames {
		return fmt.Errorf("free %d + allocated %d != total %d", freeFrames, allocFrames, a.frames)
	}
	return nil
}
