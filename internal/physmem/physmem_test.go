package physmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xlate/internal/addr"
)

func TestOrderForBytes(t *testing.T) {
	cases := []struct {
		bytes uint64
		order int
	}{
		{0, 0},
		{1, 0},
		{4096, 0},
		{4097, 1},
		{8192, 1},
		{2 << 20, 9},
		{(2 << 20) + 1, 10},
		{1 << 30, 18},
	}
	for _, c := range cases {
		if got := OrderForBytes(c.bytes); got != c.order {
			t.Errorf("OrderForBytes(%d) = %d, want %d", c.bytes, got, c.order)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New(1 << 20) // 4 GB of frames
	for order := 0; order <= 12; order++ {
		pa, err := a.Alloc(order)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", order, err)
		}
		bytesAlign := uint64(1) << (FrameShift + uint(order))
		if !addr.IsAligned(uint64(pa), bytesAlign) {
			t.Errorf("order-%d block at %#x not aligned to %#x", order, uint64(pa), bytesAlign)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New(4096)
	pa, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Allocated() != 8 {
		t.Fatalf("Allocated = %d, want 8", a.Allocated())
	}
	if err := a.Free(pa); err != nil {
		t.Fatal(err)
	}
	if a.Allocated() != 0 {
		t.Fatalf("Allocated after free = %d, want 0", a.Allocated())
	}
	// After a full free, coalescing should restore one maximal block.
	if got := a.LargestFreeOrder(); got != 12 { // 4096 frames = order 12
		t.Fatalf("LargestFreeOrder = %d, want 12", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(64)
	pa, _ := a.Alloc(0)
	if err := a.Free(pa); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(pa); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestFreeUnallocated(t *testing.T) {
	a := New(64)
	if err := a.Free(addr.PA(0x5000)); err == nil {
		t.Fatal("free of never-allocated address should fail")
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(4)
	if _, err := a.Alloc(3); err == nil {
		t.Fatal("allocating more than total memory should fail")
	}
	// Exhaust and then fail.
	if _, err := a.Alloc(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("allocation from empty allocator should fail")
	}
}

func TestInvalidOrder(t *testing.T) {
	a := New(64)
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("negative order should fail")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Fatal("oversized order should fail")
	}
}

func TestDistinctBlocks(t *testing.T) {
	a := New(1024)
	got := make(map[addr.PA]bool)
	for i := 0; i < 64; i++ {
		pa, err := a.Alloc(2)
		if err != nil {
			t.Fatal(err)
		}
		if got[pa] {
			t.Fatalf("block %#x returned twice", uint64(pa))
		}
		got[pa] = true
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPeakTracking(t *testing.T) {
	a := New(1024)
	p1, _ := a.Alloc(5) // 32 frames
	p2, _ := a.Alloc(5)
	if a.Peak() != 64 {
		t.Fatalf("Peak = %d, want 64", a.Peak())
	}
	a.Free(p1)
	a.Free(p2)
	if a.Peak() != 64 {
		t.Fatalf("Peak after free = %d, want 64", a.Peak())
	}
}

func TestNonPowerOfTwoTotal(t *testing.T) {
	// 1000 frames: seeded as 512+256+128+64+32+8 blocks.
	a := New(1000)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != 1000 {
		t.Fatalf("FreeFrames = %d, want 1000", a.FreeFrames())
	}
}

// Property: a random interleaving of allocations and frees never breaks
// the allocator's invariants, and freeing everything restores all frames.
func TestQuickRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(1 << 14)
		live := make([]addr.PA, 0, 128)
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(live))
				if err := a.Free(live[j]); err != nil {
					return false
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				pa, err := a.Alloc(rng.Intn(6))
				if err != nil {
					continue // legitimately out of memory
				}
				live = append(live, pa)
			}
		}
		if a.CheckInvariants() != nil {
			return false
		}
		for _, pa := range live {
			if a.Free(pa) != nil {
				return false
			}
		}
		return a.Allocated() == 0 && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCoalescingRestoresMaximalBlock(t *testing.T) {
	a := New(256) // order 8
	var blocks []addr.PA
	for i := 0; i < 256; i++ {
		pa, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, pa)
	}
	if a.LargestFreeOrder() != -1 {
		t.Fatal("memory should be exhausted")
	}
	// Free in a scrambled order; coalescing must still fully merge.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	for _, pa := range blocks {
		if err := a.Free(pa); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.LargestFreeOrder(); got != 8 {
		t.Fatalf("LargestFreeOrder after full free = %d, want 8", got)
	}
}
