// Package vm models the operating system's memory manager: virtual
// address-space layout, physical frame allocation, page-table
// population, transparent huge pages (THP), and RMM's eager paging.
//
// It is the oracle the simulator consults the way the paper's simulator
// consulted /proc/pid/pagemap: "what backs this virtual address — a 4 KB
// page, a 2 MB page, and is it inside a range translation?".
//
// Two policy knobs matter for fidelity:
//
//   - THPCoverage: real transparent huge pages are defeated by
//     fragmentation and alignment; the paper's Table 5 hit splits show
//     workloads with anywhere from ~4 % to ~70 % of L1 hits served by
//     2 MB entries. Coverage is the probability that an eligible,
//     aligned 2 MB chunk is actually backed by a huge page.
//   - EagerPaging: RMM allocates physical memory contiguously at request
//     time so each allocation becomes one range translation. The paper
//     evaluates *perfect* eager paging; provisioning enough physical
//     memory makes the buddy allocator always succeed, and the fallback
//     path (range splitting on contiguity failure) is also implemented.
package vm

import (
	"fmt"
	"math/rand"

	"xlate/internal/addr"
	"xlate/internal/pagetable"
	"xlate/internal/physmem"
	"xlate/internal/rmm"
)

// Policy selects how the OS backs memory.
type Policy struct {
	// THP enables transparent huge pages: aligned 2 MB chunks of a
	// region may be backed by a single 2 MB page.
	THP bool
	// THPCoverage is the probability an eligible chunk gets a huge page
	// (1.0 = ideal THP, 0 = always fragmented). Only meaningful with THP.
	THPCoverage float64
	// EagerPaging allocates each region physically contiguously and
	// records it in the range table (RMM).
	EagerPaging bool
	// GBPages backs 1 GB-aligned gigabyte chunks of sufficiently large
	// regions with 1 GB pages (explicitly reserved huge pages, not
	// transparent ones — hence no coverage probability).
	GBPages bool
}

// Config parameterizes an address space.
type Config struct {
	Policy    Policy
	PhysBytes uint64 // physical memory size; 0 selects 64 GB
	Seed      int64  // THP-coverage sampling seed
}

// Region is one virtual memory allocation.
type Region struct {
	Base addr.VA
	Size uint64 // bytes, 4 KB-granular
}

// End returns the first address past the region.
func (r Region) End() addr.VA { return r.Base + addr.VA(r.Size) }

// Contains reports whether va falls inside the region.
func (r Region) Contains(va addr.VA) bool { return va >= r.Base && va < r.End() }

// Stats summarizes what the OS has mapped.
type Stats struct {
	Regions     int
	Bytes4K     uint64 // bytes backed by 4 KB pages
	Bytes2M     uint64 // bytes backed by 2 MB pages
	Bytes1G     uint64 // bytes backed by 1 GB pages
	RangedBytes uint64 // bytes covered by range translations
	RangesMade  int    // ranges created (before table-side merging)
	RangeSplits int    // eager allocations that had to fall back to pieces
}

// AddressSpace is one process's memory image.
type AddressSpace struct {
	policy Policy
	pt     *pagetable.Table
	phys   *physmem.Allocator
	ranges *rmm.RangeTable
	rng    *rand.Rand

	nextVA      uint64
	blocks      map[addr.VA][]addr.PA // physical blocks owned by each region
	curCoverage float64               // THP coverage for the mmap in progress
	stats       Stats
}

// vaBase is where the allocator starts placing regions (1 TB), far from
// address zero so tests spot accidental zero-value addresses.
const vaBase = 1 << 40

// regionGuard separates consecutive regions so distinct allocations are
// never virtually contiguous (they would otherwise merge into one range
// and hide range-TLB capacity effects).
const regionGuard = addr.Bytes2M

// New creates an empty address space under the given configuration.
func New(cfg Config) *AddressSpace {
	phys := cfg.PhysBytes
	if phys == 0 {
		phys = 64 << 30
	}
	if cfg.Policy.THP && (cfg.Policy.THPCoverage < 0 || cfg.Policy.THPCoverage > 1) {
		panic(fmt.Sprintf("vm: THP coverage %v outside [0,1]", cfg.Policy.THPCoverage))
	}
	return &AddressSpace{
		policy: cfg.Policy,
		pt:     pagetable.New(),
		phys:   physmem.New(phys >> physmem.FrameShift),
		ranges: rmm.NewRangeTable(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextVA: vaBase,
		blocks: make(map[addr.VA][]addr.PA),
	}
}

// PageTable exposes the process page table for the hardware walker.
func (as *AddressSpace) PageTable() *pagetable.Table { return as.pt }

// RangeTable exposes the process range table for the background walker.
func (as *AddressSpace) RangeTable() *rmm.RangeTable { return as.ranges }

// Phys exposes the physical allocator (for inspection in tests).
func (as *AddressSpace) Phys() *physmem.Allocator { return as.phys }

// Stats returns the mapping summary.
func (as *AddressSpace) Stats() Stats { return as.stats }

// Mmap allocates and maps a region of the given size (rounded up to
// 4 KB). Memory is populated eagerly: demand faults are irrelevant to
// steady-state TLB behaviour and eager paging requires request-time
// allocation anyway.
func (as *AddressSpace) Mmap(size uint64) (Region, error) {
	return as.MmapCoverage(size, -1)
}

// MmapCoverage is Mmap with a per-region THP coverage override: real
// transparent huge pages succeed or fail per region depending on
// allocation pattern, madvise hints and fragmentation, so workload
// models need region-level control. A negative coverage uses the
// policy's default; the override is ignored when the policy disables
// THP.
func (as *AddressSpace) MmapCoverage(size uint64, coverage float64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("vm: zero-size mmap")
	}
	if coverage > 1 {
		return Region{}, fmt.Errorf("vm: THP coverage %v > 1", coverage)
	}
	if coverage < 0 {
		coverage = as.policy.THPCoverage
	}
	as.curCoverage = coverage
	size = addr.AlignUp(size, addr.Bytes4K)
	align := uint64(addr.Bytes2M)
	if as.policy.GBPages && size >= addr.Bytes1G {
		align = addr.Bytes1G
	}
	base := addr.VA(addr.AlignUp(as.nextVA, align))
	as.nextVA = uint64(base) + size + regionGuard
	reg := Region{Base: base, Size: size}

	var err error
	if as.policy.EagerPaging {
		err = as.populateEager(reg)
	} else {
		err = as.populatePaged(reg)
	}
	if err != nil {
		return Region{}, err
	}
	as.stats.Regions++
	return reg, nil
}

// populateEager backs the region with one physically contiguous block
// (or, on contiguity failure, progressively smaller blocks, each its own
// range) and installs both the range translation and the redundant page
// mappings.
func (as *AddressSpace) populateEager(reg Region) error {
	remaining := reg.Size
	va := reg.Base
	for remaining > 0 {
		order := physmem.OrderForBytes(remaining)
		var pa addr.PA
		var err error
		for {
			pa, err = as.phys.Alloc(order)
			if err == nil {
				break
			}
			if order == 0 {
				return fmt.Errorf("vm: eager paging out of physical memory: %w", err)
			}
			order--
			as.stats.RangeSplits++
		}
		chunk := remaining
		if blockBytes := uint64(1) << (physmem.FrameShift + uint(order)); chunk > blockBytes {
			chunk = blockBytes
		}
		r := rmm.Range{Start: va, End: va + addr.VA(chunk), PABase: pa}
		if chunk >= rmm.MinRangeBytes {
			if err := as.ranges.Insert(r); err != nil {
				return fmt.Errorf("vm: range table insert: %w", err)
			}
			as.stats.RangesMade++
			as.stats.RangedBytes += chunk
		}
		if err := as.mapChunkPaged(va, chunk, func(off uint64) (addr.PA, error) {
			return pa + addr.PA(off), nil
		}); err != nil {
			return err
		}
		as.blocks[reg.Base] = append(as.blocks[reg.Base], pa)
		va += addr.VA(chunk)
		remaining -= chunk
	}
	return nil
}

// populatePaged backs the region page by page (with THP promotion when
// the policy allows), using independently allocated frames.
func (as *AddressSpace) populatePaged(reg Region) error {
	return as.mapChunkPaged(reg.Base, reg.Size, func(uint64) (addr.PA, error) {
		return 0, errAllocate
	})
}

// errAllocate signals mapChunkPaged to allocate frames itself.
var errAllocate = fmt.Errorf("vm: allocate sentinel")

// mapChunkPaged installs page mappings for [va, va+bytes). paAt returns
// the physical address for a given offset within the chunk when the
// backing is pre-allocated contiguously (eager paging); returning
// errAllocate makes this function allocate frames from the buddy
// allocator instead. THP policy applies in both cases.
func (as *AddressSpace) mapChunkPaged(va addr.VA, bytes uint64, paAt func(off uint64) (addr.PA, error)) error {
	regionBase := va
	end := va + addr.VA(bytes)
	for va < end {
		left := uint64(end - va)
		if as.policy.GBPages && addr.IsAligned(uint64(va), addr.Bytes1G) && left >= addr.Bytes1G {
			pa, err := paAt(uint64(va - regionBase))
			if err == errAllocate {
				pa, err = as.phys.Alloc(18) // 1 GB block
				if err != nil {
					return fmt.Errorf("vm: gigabyte page allocation: %w", err)
				}
				as.blocks[regionBase] = append(as.blocks[regionBase], pa)
			} else if err != nil {
				return err
			}
			if err := as.pt.Map(va, addr.Page1G, pa); err != nil {
				return err
			}
			as.stats.Bytes1G += addr.Bytes1G
			va += addr.VA(addr.Bytes1G)
			continue
		}
		if as.policy.THP && addr.IsAligned(uint64(va), addr.Bytes2M) && left >= addr.Bytes2M &&
			as.rng.Float64() < as.curCoverage {
			pa, err := paAt(uint64(va - regionBase))
			if err == errAllocate {
				pa, err = as.phys.Alloc(9) // 2 MB block
				if err != nil {
					return fmt.Errorf("vm: huge page allocation: %w", err)
				}
				as.blocks[regionBase] = append(as.blocks[regionBase], pa)
			} else if err != nil {
				return err
			}
			if err := as.pt.Map(va, addr.Page2M, pa); err != nil {
				return err
			}
			as.stats.Bytes2M += addr.Bytes2M
			va += addr.VA(addr.Bytes2M)
			continue
		}
		pa, err := paAt(uint64(va - regionBase))
		if err == errAllocate {
			pa, err = as.phys.Alloc(0)
			if err != nil {
				return fmt.Errorf("vm: page allocation: %w", err)
			}
			as.blocks[regionBase] = append(as.blocks[regionBase], pa)
		} else if err != nil {
			return err
		}
		if err := as.pt.Map(va, addr.Page4K, pa); err != nil {
			return err
		}
		as.stats.Bytes4K += addr.Bytes4K
		va += addr.VA(addr.Bytes4K)
	}
	return nil
}

// Munmap tears down a region previously returned by Mmap: page-table
// entries, range translations, and physical blocks are all released.
func (as *AddressSpace) Munmap(reg Region) error {
	blocks, ok := as.blocks[reg.Base]
	if !ok && !as.policy.EagerPaging {
		return fmt.Errorf("vm: munmap of unknown region %#x", uint64(reg.Base))
	}
	va := reg.Base
	end := reg.End()
	for va < end {
		m, err := as.pt.Unmap(va)
		if err != nil {
			return err
		}
		switch m.Size {
		case addr.Page1G:
			as.stats.Bytes1G -= addr.Bytes1G
		case addr.Page2M:
			as.stats.Bytes2M -= addr.Bytes2M
		case addr.Page4K:
			as.stats.Bytes4K -= addr.Bytes4K
		}
		va += addr.VA(m.Size.Bytes())
	}
	for _, r := range as.ranges.Ranges() {
		if r.Start >= reg.Base && r.End <= end {
			if err := as.ranges.Remove(r.Start); err != nil {
				return err
			}
			as.stats.RangedBytes -= r.Bytes()
		}
	}
	for _, pa := range blocks {
		if err := as.phys.Free(pa); err != nil {
			return err
		}
	}
	delete(as.blocks, reg.Base)
	as.stats.Regions--
	return nil
}

// BreakHugePages demotes every 2 MB page inside the region back to 4 KB
// pages, modeling the OS responding to memory pressure (the event the
// paper cites as a reason Lite must reactivate ways, §4.2.2). The
// physical frames are reused in place, so range translations survive.
func (as *AddressSpace) BreakHugePages(reg Region) (int, error) {
	broken := 0
	for va := reg.Base; va < reg.End(); {
		m, ok := as.pt.Lookup(va)
		if !ok {
			return broken, fmt.Errorf("vm: hole at %#x", uint64(va))
		}
		if m.Size != addr.Page2M {
			va += addr.VA(m.Size.Bytes())
			continue
		}
		if _, err := as.pt.Unmap(va); err != nil {
			return broken, err
		}
		for off := uint64(0); off < addr.Bytes2M; off += addr.Bytes4K {
			if err := as.pt.Map(va+addr.VA(off), addr.Page4K, m.Frame+addr.PA(off)); err != nil {
				return broken, err
			}
		}
		as.stats.Bytes2M -= addr.Bytes2M
		as.stats.Bytes4K += addr.Bytes2M
		broken++
		va += addr.VA(addr.Bytes2M)
	}
	return broken, nil
}

// EnsureMapped demand-maps the 2 MB-aligned chunk containing va if it is
// not already backed, applying the policy (THP coverage draw, eager
// paging). It reports whether a fault was taken. This is the path that
// lets externally recorded traces — whose address layout the OS never
// saw — drive the simulator: memory materializes chunk by chunk on
// first touch.
//
// Demand-mapped chunks are not Regions: they cannot be munmapped, and
// under eager paging each chunk becomes its own range translation
// (merged by the range table only when physically contiguous), which
// approximates eager paging at chunk granularity.
//
//eeat:coldpath page-fault handling; faults are rare at architecture scale and their cost is charged explicitly
func (as *AddressSpace) EnsureMapped(va addr.VA) (bool, error) {
	if _, ok := as.pt.Lookup(va); ok {
		return false, nil
	}
	base := addr.VA(addr.AlignDown(uint64(va), addr.Bytes2M))
	as.curCoverage = as.policy.THPCoverage
	if as.policy.EagerPaging {
		pa, err := as.phys.Alloc(9) // one 2 MB block
		if err != nil {
			return false, fmt.Errorf("vm: demand fault at %#x: %w", uint64(va), err)
		}
		r := rmm.Range{Start: base, End: base + addr.VA(addr.Bytes2M), PABase: pa}
		if err := as.ranges.Insert(r); err != nil {
			return false, fmt.Errorf("vm: demand range insert: %w", err)
		}
		as.stats.RangesMade++
		as.stats.RangedBytes += addr.Bytes2M
		as.blocks[base] = append(as.blocks[base], pa)
		if err := as.mapChunkPaged(base, addr.Bytes2M, func(off uint64) (addr.PA, error) {
			return pa + addr.PA(off), nil
		}); err != nil {
			return false, err
		}
		return true, nil
	}
	if err := as.mapChunkPaged(base, addr.Bytes2M, func(uint64) (addr.PA, error) {
		return 0, errAllocate
	}); err != nil {
		return false, err
	}
	return true, nil
}
