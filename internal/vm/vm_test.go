package vm

import (
	"testing"

	"xlate/internal/addr"
)

func TestMmap4KOnly(t *testing.T) {
	as := New(Config{})
	reg, err := as.Mmap(10 << 20) // 10 MB
	if err != nil {
		t.Fatal(err)
	}
	if reg.Size != 10<<20 {
		t.Fatalf("size = %d", reg.Size)
	}
	st := as.Stats()
	if st.Bytes4K != 10<<20 || st.Bytes2M != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Every page translates.
	for off := uint64(0); off < reg.Size; off += addr.Bytes4K {
		m, ok := as.PageTable().Lookup(reg.Base + addr.VA(off))
		if !ok || m.Size != addr.Page4K {
			t.Fatalf("page at +%#x: ok=%v size=%v", off, ok, m.Size)
		}
	}
	if as.RangeTable().Len() != 0 {
		t.Fatal("no ranges without eager paging")
	}
}

func TestMmapTHPFullCoverage(t *testing.T) {
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 1.0}})
	reg, err := as.Mmap(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes2M != 10<<20 || st.Bytes4K != 0 {
		t.Fatalf("full coverage should be all huge pages: %+v", st)
	}
	m, ok := as.PageTable().Lookup(reg.Base + addr.VA(5<<20))
	if !ok || m.Size != addr.Page2M {
		t.Fatalf("lookup = %+v ok=%v", m, ok)
	}
	// 2 MB pages must be physically aligned.
	if !addr.IsAligned(uint64(m.Frame), addr.Bytes2M) {
		t.Fatalf("huge page frame %#x misaligned", uint64(m.Frame))
	}
}

func TestMmapTHPPartialCoverage(t *testing.T) {
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 0.5}, Seed: 42})
	_, err := as.Mmap(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes2M == 0 || st.Bytes4K == 0 {
		t.Fatalf("partial coverage should mix page sizes: %+v", st)
	}
	if st.Bytes2M+st.Bytes4K != 64<<20 {
		t.Fatalf("coverage bytes don't add up: %+v", st)
	}
}

func TestMmapTHPTail(t *testing.T) {
	// A region that is not a multiple of 2 MB gets a 4 KB tail.
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 1.0}})
	_, err := as.Mmap(2<<20 + 3*addr.Bytes4K)
	if err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes2M != 2<<20 || st.Bytes4K != 3*addr.Bytes4K {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEagerPagingCreatesOneRange(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true}})
	reg, err := as.Mmap(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	rt := as.RangeTable()
	if rt.Len() != 1 {
		t.Fatalf("ranges = %d, want 1", rt.Len())
	}
	r, ok := rt.Lookup(reg.Base + addr.VA(5<<20))
	if !ok || r.Start != reg.Base || r.End != reg.End() {
		t.Fatalf("range = %+v ok=%v", r, ok)
	}
	// Redundancy: pages inside the range are also in the page table,
	// and the two translations agree.
	for _, off := range []uint64{0, 4096, 5 << 20, 10<<20 - 4096} {
		va := reg.Base + addr.VA(off)
		paPT, ok := as.PageTable().Translate(va)
		if !ok {
			t.Fatalf("page table hole at +%#x", off)
		}
		if paRange := r.Translate(va); paRange != paPT {
			t.Fatalf("range PA %#x != page table PA %#x at +%#x",
				uint64(paRange), uint64(paPT), off)
		}
	}
}

func TestEagerPagingWithTHP(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true, THP: true, THPCoverage: 1.0}})
	reg, err := as.Mmap(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes2M != 8<<20 {
		t.Fatalf("eager+THP should back with huge pages: %+v", st)
	}
	if as.RangeTable().Len() != 1 {
		t.Fatal("eager paging should still create the range")
	}
	m, _ := as.PageTable().Lookup(reg.Base)
	if !addr.IsAligned(uint64(m.Frame), addr.Bytes2M) {
		t.Fatal("huge page inside range misaligned")
	}
}

func TestEagerPagingSplitsUnderFragmentation(t *testing.T) {
	// Tiny physical memory (8 MB): a 6 MB eager request rounds to an
	// 8 MB buddy block which cannot be satisfied after a small prior
	// allocation, forcing a split into multiple ranges.
	as := New(Config{Policy: Policy{EagerPaging: true}, PhysBytes: 8 << 20})
	if _, err := as.Mmap(addr.Bytes4K); err != nil {
		t.Fatal(err)
	}
	_, err := as.Mmap(6 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if as.Stats().RangeSplits == 0 {
		t.Fatal("expected eager-paging split under fragmentation")
	}
	if as.RangeTable().Len() < 2 {
		t.Fatalf("expected multiple ranges, got %d", as.RangeTable().Len())
	}
}

func TestMmapErrors(t *testing.T) {
	as := New(Config{})
	if _, err := as.Mmap(0); err == nil {
		t.Fatal("zero-size mmap should fail")
	}
	small := New(Config{PhysBytes: 1 << 20})
	if _, err := small.Mmap(64 << 20); err == nil {
		t.Fatal("oversubscription should fail")
	}
}

func TestRegionsAreGuarded(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true}})
	r1, _ := as.Mmap(1 << 20)
	r2, _ := as.Mmap(1 << 20)
	if r1.End() >= r2.Base {
		t.Fatal("regions overlap")
	}
	if uint64(r2.Base-r1.End()) < regionGuard/2 {
		t.Fatal("regions not guarded; ranges could merge")
	}
	if as.RangeTable().Len() != 2 {
		t.Fatalf("ranges = %d, want 2 distinct", as.RangeTable().Len())
	}
}

func TestMunmap(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true, THP: true, THPCoverage: 0.5}, Seed: 1})
	reg, err := as.Mmap(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	allocBefore := as.Phys().Allocated()
	if allocBefore == 0 {
		t.Fatal("nothing allocated")
	}
	if err := as.Munmap(reg); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes4K != 0 || st.Bytes2M != 0 || st.Regions != 0 || st.RangedBytes != 0 {
		t.Fatalf("stats after munmap = %+v", st)
	}
	if as.Phys().Allocated() != 0 {
		t.Fatalf("physical memory leaked: %d frames", as.Phys().Allocated())
	}
	if as.RangeTable().Len() != 0 {
		t.Fatal("range table entry leaked")
	}
	if _, ok := as.PageTable().Lookup(reg.Base); ok {
		t.Fatal("page table entry leaked")
	}
}

func TestBreakHugePages(t *testing.T) {
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 1.0}})
	reg, err := as.Mmap(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	paBefore, _ := as.PageTable().Translate(reg.Base + 0x1234)
	n, err := as.BreakHugePages(reg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("broke %d huge pages, want 4", n)
	}
	m, ok := as.PageTable().Lookup(reg.Base)
	if !ok || m.Size != addr.Page4K {
		t.Fatalf("after break: %+v ok=%v", m, ok)
	}
	// Translation is preserved (frames reused in place).
	paAfter, _ := as.PageTable().Translate(reg.Base + 0x1234)
	if paBefore != paAfter {
		t.Fatalf("translation changed: %#x → %#x", uint64(paBefore), uint64(paAfter))
	}
	st := as.Stats()
	if st.Bytes2M != 0 || st.Bytes4K != 8<<20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTHPCoverageDeterminism(t *testing.T) {
	mk := func(seed int64) Stats {
		as := New(Config{Policy: Policy{THP: true, THPCoverage: 0.5}, Seed: seed})
		as.Mmap(32 << 20)
		return as.Stats()
	}
	if mk(7) != mk(7) {
		t.Fatal("same seed must give identical layout")
	}
	if mk(7) == mk(8) {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestInvalidCoveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("coverage > 1 should panic")
		}
	}()
	New(Config{Policy: Policy{THP: true, THPCoverage: 1.5}})
}

func TestMmapCoverageOverride(t *testing.T) {
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 1.0}, Seed: 3})
	// Region-level override forces 4 KB pages despite the ideal policy.
	if _, err := as.MmapCoverage(8<<20, 0); err != nil {
		t.Fatal(err)
	}
	if st := as.Stats(); st.Bytes2M != 0 || st.Bytes4K != 8<<20 {
		t.Fatalf("override to 0 ignored: %+v", st)
	}
	// Negative override falls back to the policy default.
	if _, err := as.MmapCoverage(8<<20, -1); err != nil {
		t.Fatal(err)
	}
	if st := as.Stats(); st.Bytes2M != 8<<20 {
		t.Fatalf("policy default not applied: %+v", st)
	}
	if _, err := as.MmapCoverage(1<<20, 1.5); err == nil {
		t.Fatal("coverage > 1 should be rejected")
	}
}

func TestEnsureMapped(t *testing.T) {
	as := New(Config{Policy: Policy{THP: true, THPCoverage: 1.0}, Seed: 2})
	va := addr.VA(0x7fff12345678)
	faulted, err := as.EnsureMapped(va)
	if err != nil || !faulted {
		t.Fatalf("first touch: faulted=%v err=%v", faulted, err)
	}
	m, ok := as.PageTable().Lookup(va)
	if !ok || m.Size != addr.Page2M {
		t.Fatalf("demand mapping = %+v ok=%v", m, ok)
	}
	// Second touch of the same chunk: no fault.
	if faulted, _ := as.EnsureMapped(va + 0x1000); faulted {
		t.Fatal("chunk already mapped")
	}
}

func TestEnsureMappedEager(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true}})
	va := addr.VA(0x123456789000)
	if _, err := as.EnsureMapped(va); err != nil {
		t.Fatal(err)
	}
	r, ok := as.RangeTable().Lookup(va)
	if !ok || r.Bytes() != addr.Bytes2M {
		t.Fatalf("demand range = %+v ok=%v", r, ok)
	}
	// Page table agrees with the range translation.
	paPT, _ := as.PageTable().Translate(va)
	if r.Translate(va) != paPT {
		t.Fatal("redundant mappings disagree")
	}
}

func TestEnsureMappedOOM(t *testing.T) {
	as := New(Config{Policy: Policy{EagerPaging: true}, PhysBytes: 1 << 20})
	if _, err := as.EnsureMapped(0x1000); err == nil {
		t.Fatal("demand fault beyond physical memory should fail")
	}
}

func TestMmapGBPages(t *testing.T) {
	as := New(Config{Policy: Policy{GBPages: true, THP: true, THPCoverage: 1.0}, PhysBytes: 8 << 30})
	reg, err := as.Mmap(2<<30 + 6<<20) // 2 GB + 6 MB tail
	if err != nil {
		t.Fatal(err)
	}
	if !addr.IsAligned(uint64(reg.Base), addr.Bytes1G) {
		t.Fatalf("GB region base %#x not 1GB aligned", uint64(reg.Base))
	}
	st := as.Stats()
	if st.Bytes1G != 2<<30 {
		t.Fatalf("Bytes1G = %d, want 2 GB", st.Bytes1G)
	}
	if st.Bytes2M != 6<<20 {
		t.Fatalf("tail should be 2MB pages: %+v", st)
	}
	m, ok := as.PageTable().Lookup(reg.Base + addr.VA(1<<30+12345))
	if !ok || m.Size != addr.Page1G {
		t.Fatalf("lookup = %+v ok=%v", m, ok)
	}
	if !addr.IsAligned(uint64(m.Frame), addr.Bytes1G) {
		t.Fatal("1GB frame misaligned")
	}
	// Small regions are unaffected by the GB policy.
	small, err := as.Mmap(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if q, _ := as.PageTable().Lookup(small.Base); q.Size == addr.Page1G {
		t.Fatal("small region must not use 1GB pages")
	}
	// And munmap releases everything.
	if err := as.Munmap(reg); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Bytes1G != 0 {
		t.Fatal("Bytes1G not released")
	}
}
