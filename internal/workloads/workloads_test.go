package workloads_test

import (
	"testing"

	"xlate/internal/core"
	"xlate/internal/workloads"
)

func TestAllSpecsValidate(t *testing.T) {
	all := workloads.All()
	if len(all) != 8+15+10 {
		t.Fatalf("catalog has %d workloads", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestFootprintsMatchTable4(t *testing.T) {
	// Table 4's "Memory" column.
	want := map[string]uint64{
		"astar":     350 << 20,
		"cactusADM": 690 << 20,
		"GemsFDTD":  860 << 20,
		"mcf":       1700 << 20,
		"omnetpp":   165 << 20,
		"zeusmp":    530 << 20,
		"canneal":   780 << 20,
		"mummer":    470 << 20,
	}
	for _, s := range workloads.TLBIntensive() {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected intensive workload %q", s.Name)
			continue
		}
		if got := s.FootprintBytes(); got != w {
			t.Errorf("%s footprint = %d MB, want %d MB", s.Name, got>>20, w>>20)
		}
		if !s.TLBIntensive {
			t.Errorf("%s should be flagged TLB intensive", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := workloads.ByName("mcf"); !ok {
		t.Fatal("mcf should exist")
	}
	if _, ok := workloads.ByName("nope"); ok {
		t.Fatal("unknown workload should not resolve")
	}
}

func TestValidationErrors(t *testing.T) {
	base := workloads.Spec{
		Name: "x", InstrPerRef: 3,
		Regions: []workloads.RegionSpec{{Name: "r", Bytes: 1 << 20}},
		Phases: []workloads.PhaseSpec{{Refs: 10, Access: []workloads.AccessSpec{
			{Region: 0, Weight: 1, Pattern: workloads.Uni}}}},
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.InstrPerRef = 0.5
	if bad.Validate() == nil {
		t.Error("low instrPerRef should fail")
	}
	bad = base
	bad.Phases = []workloads.PhaseSpec{{Refs: 10, Access: []workloads.AccessSpec{
		{Region: 5, Weight: 1, Pattern: workloads.Uni}}}}
	if bad.Validate() == nil {
		t.Error("out-of-range region should fail")
	}
	bad = base
	bad.Phases = []workloads.PhaseSpec{{Refs: 10, Access: []workloads.AccessSpec{
		{Region: 0, Weight: 1, Pattern: workloads.Seq}}}}
	if bad.Validate() == nil {
		t.Error("Seq without stride should fail")
	}
	bad = base
	bad.Phases = []workloads.PhaseSpec{{Refs: 10, Access: []workloads.AccessSpec{
		{Region: 0, Weight: 1, Pattern: workloads.Zpf, ZipfS: 1.0}}}}
	if bad.Validate() == nil {
		t.Error("Zpf with s<=1 should fail")
	}
}

func runWorkload(t *testing.T, s workloads.Spec, kind core.ConfigKind, instrs uint64, scale float64) core.Result {
	t.Helper()
	// Per-workload achievable THP coverage is region-level; the policy
	// default only matters for regions without an override.
	as, gen, err := s.Build(workloads.BuildOptions{
		Policy: core.PolicyFor(kind, 0.5), Seed: 42, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.DefaultParams(kind), as)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run(gen, instrs)
}

// Calibration: the intensive set must exceed 5 L1 MPKI with 4 KB pages —
// the paper's definition of TLB intensive (§5).
func TestIntensiveSetCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-footprint calibration is slow")
	}
	for _, s := range workloads.TLBIntensive() {
		res := runWorkload(t, s, core.Cfg4KB, 2_000_000, 1.0)
		if got := res.L1MPKI(); got < 5 {
			t.Errorf("%s: L1 MPKI = %.2f with 4KB pages, want > 5", s.Name, got)
		}
		if res.MemRefs == 0 || res.L2Misses == 0 {
			t.Errorf("%s: degenerate run: %+v", s.Name, res)
		}
	}
}

// The paper's per-workload character: mcf and cactusADM are the
// walk-dominated workloads; canneal's misses are absorbed by the L2 TLB.
func TestWorkloadCharacter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-footprint calibration is slow")
	}
	l2mpki := map[string]float64{}
	for _, name := range []string{"mcf", "cactusADM", "canneal", "omnetpp"} {
		s, _ := workloads.ByName(name)
		res := runWorkload(t, s, core.Cfg4KB, 2_000_000, 1.0)
		l2mpki[name] = res.L2MPKI()
	}
	if l2mpki["mcf"] < 2 {
		t.Errorf("mcf L2 MPKI = %.2f, want walk-heavy (>2)", l2mpki["mcf"])
	}
	if l2mpki["cactusADM"] < 2 {
		t.Errorf("cactusADM L2 MPKI = %.2f, want walk-heavy (>2)", l2mpki["cactusADM"])
	}
	if l2mpki["canneal"] > 2.5 {
		t.Errorf("canneal L2 MPKI = %.2f, want L2-absorbed (<2.5)", l2mpki["canneal"])
	}
	if l2mpki["omnetpp"] > l2mpki["mcf"] {
		t.Errorf("omnetpp (%.2f) should walk less than mcf (%.2f)",
			l2mpki["omnetpp"], l2mpki["mcf"])
	}
}

func TestLightWorkloadsAreLight(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Spot-check three Figure 12 workloads: well under the intensive
	// threshold region (the paper only requires they "stress the TLB
	// hierarchy less").
	for _, name := range []string{"namd", "swaptions", "hmmer"} {
		s, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if s.TLBIntensive {
			t.Errorf("%s should not be flagged intensive", name)
		}
		res := runWorkload(t, s, core.Cfg4KB, 1_000_000, 1.0)
		if got := res.L1MPKI(); got > 15 {
			t.Errorf("%s: L1 MPKI = %.2f, unexpectedly heavy", name, got)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	s, _ := workloads.ByName("omnetpp")
	run := func() core.Result {
		return runWorkload(t, s, core.CfgTHP, 300_000, 0.25)
	}
	a, b := run(), run()
	if a.L1Misses != b.L1Misses || a.L2Misses != b.L2Misses || a.EnergyPJ() != b.EnergyPJ() {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	s, _ := workloads.ByName("astar")
	as, _, err := s.Build(workloads.BuildOptions{
		Policy: core.PolicyFor(core.Cfg4KB, 0), Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Stats().Bytes4K; got > s.FootprintBytes()/5 {
		t.Fatalf("scaled footprint %d too large", got)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	s, _ := workloads.ByName("astar")
	if _, _, err := s.Build(workloads.BuildOptions{Scale: -1}); err == nil {
		t.Fatal("negative scale should fail")
	}
	var empty workloads.Spec
	if _, _, err := empty.Build(workloads.BuildOptions{}); err == nil {
		t.Fatal("invalid spec should fail to build")
	}
}

// Every workload must run under every configuration without panicking
// (policy/structure mismatches would panic in the simulator).
func TestAllConfigsAllIntensiveWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, s := range workloads.TLBIntensive() {
		for _, kind := range core.AllConfigs() {
			res := runWorkload(t, s, kind, 150_000, 0.2)
			if res.Instructions < 150_000 {
				t.Errorf("%s/%v: short run", s.Name, kind)
			}
		}
	}
}
