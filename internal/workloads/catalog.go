package workloads

// This file is the workload catalog: the paper's TLB-intensive set
// (Table 4) and the remaining SPEC 2006 / PARSEC workloads of Figure 12.
// Every model is a parameter table over the same small set of
// primitives; the calibration rationale for the intensive set is in the
// comment on each spec.

const (
	kB = uint64(1) << 10
	mB = uint64(1) << 20
	gB = uint64(1) << 30
)

// phaseRefs is the default phase length: long enough for steady-state
// behaviour, short enough that phased workloads change behaviour several
// times within an experiment run.
const phaseRefs = 1_500_000

// lightSpec builds a low-TLB-pressure model for the Figure 12 sets: a
// hot working set that mostly fits the L1 TLB, a skewed warm zone the
// L2 TLB absorbs, and a page-slow streaming component. hotKB sizes the
// hot set; zipfS controls how much of it concentrates in the L1's
// reach.
func lightSpec(name, suite string, footMB uint64, hotKB uint64, zipfS float64,
	coverage float64, streamWeight float64, ipr float64) Spec {
	warm := footMB / 2
	if warm < 1 {
		warm = 1
	}
	stream := footMB - warm
	if stream < 1 {
		stream = 1
	}
	return Spec{
		Name: name, Suite: suite, TLBIntensive: false, InstrPerRef: ipr,
		Regions: []RegionSpec{
			{Name: "hot", Bytes: hotKB * kB, THPCoverage: coverage},
			{Name: "warm", Bytes: warm * mB, THPCoverage: coverage},
			{Name: "stream", Bytes: stream * mB, THPCoverage: coverage},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 1 - streamWeight/2 - 0.03, Pattern: Zpf, ZipfS: zipfS},
				{Region: 1, Weight: 0.03, Pattern: Zpf, ZipfS: 2.4},
				{Region: 2, Weight: streamWeight / 2, Pattern: Seq, Stride: 96},
			}},
		},
	}
}

// OtherSpec2006 returns the non-TLB-intensive SPEC 2006 models of
// Figure 12 (top and middle).
func OtherSpec2006() []Spec {
	return []Spec{
		lightSpec("bzip2", "SPEC 2006", 190, 512, 1.8, 0.45, 0.25, 3.1),
		lightSpec("gcc", "SPEC 2006", 130, 1024, 1.6, 0.30, 0.10, 3.0),
		lightSpec("gobmk", "SPEC 2006", 60, 384, 1.9, 0.35, 0.05, 3.4),
		lightSpec("h264ref", "SPEC 2006", 120, 512, 1.9, 0.50, 0.15, 3.2),
		lightSpec("hmmer", "SPEC 2006", 90, 320, 2.0, 0.55, 0.05, 3.0),
		lightSpec("lbm", "SPEC 2006", 420, 512, 1.8, 0.85, 0.45, 3.6),
		lightSpec("leslie3d", "SPEC 2006", 130, 768, 1.7, 0.70, 0.30, 3.5),
		lightSpec("libquantum", "SPEC 2006", 100, 384, 1.9, 0.80, 0.40, 3.3),
		lightSpec("milc", "SPEC 2006", 680, 1280, 1.6, 0.70, 0.30, 3.2),
		lightSpec("namd", "SPEC 2006", 50, 256, 2.1, 0.50, 0.05, 3.5),
		lightSpec("perlbench", "SPEC 2006", 110, 1024, 1.6, 0.25, 0.05, 2.9),
		lightSpec("sjeng", "SPEC 2006", 170, 768, 1.7, 0.40, 0.05, 3.3),
		lightSpec("soplex", "SPEC 2006", 250, 1536, 1.55, 0.50, 0.20, 3.0),
		lightSpec("sphinx3", "SPEC 2006", 45, 384, 1.9, 0.45, 0.10, 3.2),
		lightSpec("xalancbmk", "SPEC 2006", 190, 1536, 1.5, 0.30, 0.05, 2.8),
	}
}

// OtherParsec returns the non-TLB-intensive PARSEC models of Figure 12
// (bottom).
func OtherParsec() []Spec {
	return []Spec{
		lightSpec("blackscholes", "PARSEC", 64, 256, 2.1, 0.60, 0.30, 3.4),
		lightSpec("bodytrack", "PARSEC", 80, 512, 1.9, 0.45, 0.15, 3.2),
		lightSpec("dedup", "PARSEC", 830, 1536, 1.6, 0.40, 0.35, 3.0),
		lightSpec("facesim", "PARSEC", 310, 1024, 1.7, 0.60, 0.25, 3.3),
		lightSpec("ferret", "PARSEC", 100, 768, 1.7, 0.40, 0.15, 3.0),
		lightSpec("fluidanimate", "PARSEC", 210, 768, 1.8, 0.65, 0.25, 3.4),
		lightSpec("freqmine", "PARSEC", 330, 1536, 1.55, 0.45, 0.10, 3.0),
		lightSpec("streamcluster", "PARSEC", 110, 384, 1.9, 0.70, 0.45, 3.5),
		lightSpec("swaptions", "PARSEC", 30, 256, 2.2, 0.50, 0.05, 3.5),
		lightSpec("vips", "PARSEC", 80, 448, 1.9, 0.55, 0.25, 3.3),
	}
}

// All returns every workload model in the catalog.
func All() []Spec {
	var out []Spec
	out = append(out, TLBIntensive()...)
	out = append(out, OtherSpec2006()...)
	out = append(out, OtherParsec()...)
	return out
}

// ByName looks up a workload model by its benchmark name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
