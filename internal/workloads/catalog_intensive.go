package workloads

// The TLB-intensive models share a structural idiom calibrated against
// the paper's per-workload observables:
//
//   - a "core" region with steep Zipf reuse whose hot pages mostly fit
//     the 64-entry L1 TLB (its THP coverage controls Table 5's 4KB/2MB
//     hit split);
//   - a "ring" region sized between the L1 and L2 reach, accessed
//     uniformly: it misses the L1 almost always and hits the L2 almost
//     always, supplying the L1 MPKI that makes the workload TLB
//     intensive without inflating page walks (rings model the small
//     fragmented allocations real THP cannot back, so coverage 0);
//   - "far" components (streams, pointer chases, uniform sprays over
//     hundreds of MB) that escape the L2 TLB and generate the page
//     walks; their weight sets the L2 MPKI.
//
// Region counts also matter: under RMM_Lite each region is one range
// translation, and the number of interleaved regions versus the 4-entry
// L1-range TLB reproduces the paper's range-vs-page hit splits.

// TLBIntensive returns the paper's eight TLB-intensive workload models
// (Table 4), in the paper's row order.
func TLBIntensive() []Spec {
	return []Spec{
		astar(), cactusADM(), gemsFDTD(), mcf(),
		omnetpp(), zeusmp(), canneal(), mummer(),
	}
}

// astar — SPEC 2006 path-finding, 350 MB. Skewed reuse over map tiles
// plus phased graph expansion (Figure 4 shows astar's TLB demand
// changing over time). Real THP helps it little (Table 5: 24% 2 MB
// hits).
func astar() Spec {
	return Spec{
		Name: "astar", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 3.0,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 16 * mB, THPCoverage: 0.16},
			{Name: "ring", Bytes: 1024 * kB, THPCoverage: 0},
			{Name: "map", Bytes: 256 * mB, THPCoverage: 0.95},
			{Name: "graph", Bytes: 60 * mB, THPCoverage: 0.90},
			{Name: "open", Bytes: 15360 * kB, THPCoverage: 0.20},
			{Name: "scratch", Bytes: 2 * mB, THPCoverage: 0},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.760, Pattern: Zpf, ZipfS: 3.0},
				{Region: 1, Weight: 0.090, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.060, Pattern: Zpf, ZipfS: 1.35},
				{Region: 3, Weight: 0.004, Pattern: Chs},
				{Region: 4, Weight: 0.084, Pattern: Zpf, ZipfS: 2.2},
				{Region: 5, Weight: 0.002, Pattern: Seq, Stride: 128},
			}},
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.608, Pattern: Zpf, ZipfS: 3.0},
				{Region: 1, Weight: 0.075, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.145, Pattern: Zpf, ZipfS: 1.35},
				{Region: 3, Weight: 0.010, Pattern: Chs},
				{Region: 4, Weight: 0.156, Pattern: Zpf, ZipfS: 2.2},
				{Region: 5, Weight: 0.006, Pattern: Seq, Stride: 128},
			}},
		},
	}
}

// cactusADM — SPEC 2006 numerical relativity, 690 MB. Stencil sweeps
// over a grid far larger than any TLB level: page-walk dominated with
// 4 KB pages; THP on the grid removes the walks, yet hits stay
// 4 KB-dominated (Table 5: 90.8%) because the hot state is small
// fragmented allocations THP cannot back.
func cactusADM() Spec {
	return Spec{
		Name: "cactusADM", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 3.2,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 24 * mB, THPCoverage: 0},
			{Name: "ring", Bytes: 1536 * kB, THPCoverage: 0},
			{Name: "grid", Bytes: 656 * mB, THPCoverage: 0.95},
			{Name: "scratch", Bytes: 8704 * kB, THPCoverage: 0},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.631, Pattern: Zpf, ZipfS: 3.0},
				{Region: 1, Weight: 0.135, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.090, Pattern: Seq, Stride: 640},
				{Region: 2, Weight: 0.084, Pattern: Zpf, ZipfS: 1.35},
				{Region: 3, Weight: 0.060, Pattern: Seq, Stride: 128},
			}},
		},
	}
}

// gemsFDTD — SPEC 2006 electromagnetics, 860 MB. Alternating sweeps
// over field grids (phased, Figure 4); THP works well (Table 5: ~70%
// 2 MB hits).
func gemsFDTD() Spec {
	return Spec{
		Name: "GemsFDTD", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 3.4,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 32 * mB, THPCoverage: 0.62},
			{Name: "ring", Bytes: 1536 * kB, THPCoverage: 0},
			{Name: "gridE", Bytes: 276 * mB, THPCoverage: 0.95},
			{Name: "gridH", Bytes: 276 * mB, THPCoverage: 0.95},
			{Name: "gridJ", Bytes: 274*mB + 512*kB, THPCoverage: 0.95},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.730, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.150, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.060, Pattern: Seq, Stride: 768},
				{Region: 2, Weight: 0.038, Pattern: Zpf, ZipfS: 1.35},
				{Region: 3, Weight: 0.020, Pattern: Seq, Stride: 768},
				{Region: 4, Weight: 0.002, Pattern: Chs},
			}},
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.75, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.120, Pattern: Uni, Burst: 3},
				{Region: 3, Weight: 0.056, Pattern: Seq, Stride: 768},
				{Region: 4, Weight: 0.035, Pattern: Seq, Stride: 768},
			}},
			{Refs: phaseRefs / 2, Access: []AccessSpec{
				{Region: 0, Weight: 0.82, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.090, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.057, Pattern: Seq, Stride: 768},
				{Region: 4, Weight: 0.008, Pattern: Chs},
			}},
		},
	}
}

// mcf — SPEC 2006 network simplex, 1.7 GB, the canonical page-walk
// victim: dependent pointer chases over node and arc arrays defeat
// every TLB level with 4 KB pages (Figures 2, 3, 11). THP helps
// substantially (61% 2 MB hits); RMM_Lite nearly eliminates translation
// overhead (88% range hits, 100% of lookups at 1 way).
func mcf() Spec {
	return Spec{
		Name: "mcf", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 2.6,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 40 * mB, THPCoverage: 0.50},
			{Name: "ring", Bytes: 1536 * kB, THPCoverage: 0},
			{Name: "nodes", Bytes: 1200 * mB, THPCoverage: 0.95},
			{Name: "arcs", Bytes: 458*mB + 512*kB, THPCoverage: 0.95},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.655, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.075, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.200, Pattern: Zpf, ZipfS: 1.35},
				{Region: 2, Weight: 0.010, Pattern: Chs},
				{Region: 3, Weight: 0.060, Pattern: Zpf, ZipfS: 1.35},
			}},
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.585, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.075, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.250, Pattern: Zpf, ZipfS: 1.35},
				{Region: 2, Weight: 0.015, Pattern: Chs},
				{Region: 3, Weight: 0.075, Pattern: Zpf, ZipfS: 1.35},
			}},
		},
	}
}

// omnetpp — SPEC 2006 discrete-event simulation, 165 MB. Many modest
// pools touched in an interleaved fashion: the L1-4KB TLB stays fully
// utilized (Table 5: 100% 4-way under TLB_Lite, 99.3% under RMM_Lite)
// and interleaving across more pools than the 4-entry L1-range TLB
// holds keeps RMM_Lite's range hit share near 50%.
func omnetpp() Spec {
	regions := make([]RegionSpec, 0, 9)
	var acc []AccessSpec
	for i := 0; i < 8; i++ {
		regions = append(regions, RegionSpec{Name: "pool", Bytes: 18 * mB, THPCoverage: 0.48})
		acc = append(acc, AccessSpec{Region: i, Weight: 0.115, Pattern: Zpf, ZipfS: 2.35})
	}
	regions = append(regions, RegionSpec{Name: "heap", Bytes: 21 * mB, THPCoverage: 0.30})
	acc = append(acc, AccessSpec{Region: 8, Weight: 0.08, Pattern: Zpf, ZipfS: 2.2})
	return Spec{
		Name: "omnetpp", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 2.9,
		Regions: regions,
		Phases:  []PhaseSpec{{Refs: phaseRefs, Access: acc}},
	}
}

// zeusmp — SPEC 2006 CFD, 530 MB. Regular field sweeps plus a skewed
// hot set; THP covers it well (62% 2 MB hits) and Lite finds
// substantial way-disabling slack (Table 5).
func zeusmp() Spec {
	return Spec{
		Name: "zeusmp", Suite: "SPEC 2006", TLBIntensive: true, InstrPerRef: 3.3,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 48 * mB, THPCoverage: 0.60},
			{Name: "ring", Bytes: 1536 * kB, THPCoverage: 0},
			{Name: "fieldA", Bytes: 240 * mB, THPCoverage: 0.95},
			{Name: "fieldB", Bytes: 240*mB + 512*kB, THPCoverage: 0.95},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.800, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.120, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.024, Pattern: Seq, Stride: 896},
				{Region: 2, Weight: 0.022, Pattern: Zpf, ZipfS: 1.35},
				{Region: 3, Weight: 0.034, Pattern: Seq, Stride: 896},
			}},
		},
	}
}

// canneal — PARSEC simulated annealing over a netlist, 780 MB. Random
// element swaps with a hot core: the L1 misses constantly but the L2
// absorbs almost everything, so 4 KB walks are rare and THP's extra
// L1-2MB probe is pure overhead — the paper's worst case for THP (+43%
// dynamic energy).
func canneal() Spec {
	return Spec{
		Name: "canneal", Suite: "PARSEC", TLBIntensive: true, InstrPerRef: 2.7,
		Regions: []RegionSpec{
			{Name: "coreA", Bytes: 2 * mB, THPCoverage: 0},
			{Name: "coreB", Bytes: 2 * mB, THPCoverage: 0},
			{Name: "ring", Bytes: 1024 * kB, THPCoverage: 0},
			{Name: "warmA", Bytes: 4 * mB, THPCoverage: 0.5},
			{Name: "warmB", Bytes: 4 * mB, THPCoverage: 0.5},
			{Name: "netlist", Bytes: 767 * mB, THPCoverage: 0.08},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.375, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.345, Pattern: Zpf, ZipfS: 2.6},
				{Region: 2, Weight: 0.195, Pattern: Uni, Burst: 3},
				{Region: 3, Weight: 0.0415, Pattern: Zpf, ZipfS: 2.6},
				{Region: 4, Weight: 0.0415, Pattern: Zpf, ZipfS: 2.6},
				{Region: 5, Weight: 0.002, Pattern: Uni},
			}},
		},
	}
}

// mummer — BioBench genome alignment, 470 MB. Streams the reference
// genome while chasing a suffix tree; THP barely materializes for its
// allocation pattern (Table 5: 4.3% 2 MB hits).
func mummer() Spec {
	return Spec{
		Name: "mummer", Suite: "BioBench", TLBIntensive: true, InstrPerRef: 3.1,
		Regions: []RegionSpec{
			{Name: "core", Bytes: 12 * mB, THPCoverage: 0.05},
			{Name: "ring", Bytes: 1536 * kB, THPCoverage: 0},
			{Name: "genome", Bytes: 440 * mB, THPCoverage: 0.05},
			{Name: "suffixtree", Bytes: 16*mB + 512*kB, THPCoverage: 0.02},
		},
		Phases: []PhaseSpec{
			{Refs: phaseRefs, Access: []AccessSpec{
				{Region: 0, Weight: 0.792, Pattern: Zpf, ZipfS: 2.6},
				{Region: 1, Weight: 0.162, Pattern: Uni, Burst: 3},
				{Region: 2, Weight: 0.044, Pattern: Seq, Stride: 640},
				{Region: 3, Weight: 0.002, Pattern: Chs},
			}},
		},
	}
}
