// Package workloads defines parameterized models of the paper's
// benchmarks (Table 4: SPEC 2006, PARSEC, BioBench) built from the
// primitives in internal/trace, plus the remaining SPEC/PARSEC workloads
// of Figure 12.
//
// Each model is a substitution for the real binary (DESIGN.md §1): it
// reproduces the observables that drive the translation path — memory
// footprint, the number and interleaving of hot data structures, reuse
// skew, pointer-chasing vs streaming character, achievable THP coverage
// (the paper measured real, fragmentation-limited THP via pagemap), the
// instructions-per-memory-reference rate, and phase structure (Figure
// 4). The calibration targets are the paper's per-workload observables:
// L1/L2 MPKI bands under 4 KB pages, the 4KB/2MB hit split of Table 5,
// and the range-vs-page hit split under RMM_Lite.
package workloads

import (
	"errors"
	"fmt"

	"xlate/internal/trace"
	"xlate/internal/vm"
)

// ErrInvalidSpec is wrapped by every Spec validation failure, so callers
// at the API boundary can classify malformed workload models with
// errors.Is. The trace primitives still panic on the same conditions;
// Validate (called by Build) keeps user-supplied specs on the error
// path.
var ErrInvalidSpec = errors.New("invalid workload spec")

// Pattern selects a trace primitive for one region access.
type Pattern int

// The access patterns.
const (
	Seq Pattern = iota // sequential sweep with a byte stride
	Uni                // uniform random
	Zpf                // Zipf-skewed page popularity
	Chs                // pointer chase (full-cycle page permutation)
)

// RegionSpec is one data structure of the modeled program.
type RegionSpec struct {
	Name  string
	Bytes uint64
	// THPCoverage is the fraction of this region the OS manages to back
	// with 2 MB pages when THP is enabled (negative = policy default).
	// Real THP coverage is region-dependent: large, early, aligned
	// allocations fare well; small or churning ones do not.
	THPCoverage float64
}

// AccessSpec is one weighted access stream into a region.
type AccessSpec struct {
	Region  int     // index into Spec.Regions
	Weight  float64 // share of references in the phase
	Pattern Pattern
	Stride  uint64  // Seq: bytes between successive references
	ZipfS   float64 // Zpf: skew exponent (> 1)
	// Burst references each drawn page this many times before moving
	// on (within-page spatial locality); 0 or 1 = none.
	Burst int
}

// PhaseSpec is one execution phase: a mixture of region accesses that
// runs for Refs references before the workload moves to the next phase
// (cycling).
type PhaseSpec struct {
	Refs   uint64
	Access []AccessSpec
}

// Spec is a complete workload model.
type Spec struct {
	Name         string
	Suite        string
	TLBIntensive bool    // > 5 L1 MPKI with 4 KB pages (paper §5)
	InstrPerRef  float64 // instructions per memory reference
	Regions      []RegionSpec
	Phases       []PhaseSpec

	// TraceRef, when non-empty, marks a trace-backed workload: instead
	// of a synthesized model, the cell replays the ingested trace
	// segment with this content hash (internal/tracec). Trace-backed
	// specs carry no regions or phases and cannot Build — they execute
	// only through a trace executor holding a segment store.
	TraceRef string
}

// TraceSpec returns the spec for an ingested reference stream,
// runnable anywhere a model workload is (experiments, the audit
// oracle, cluster dispatch) once a trace executor is wired in. The
// name doubles as the job-API workload name.
func TraceSpec(ref string) Spec {
	return Spec{Name: "trace:" + ref, Suite: "ingested", TLBIntensive: true, TraceRef: ref}
}

// FootprintBytes returns the total memory footprint (Table 4's
// "Memory" column).
func (s Spec) FootprintBytes() uint64 {
	var b uint64
	for _, r := range s.Regions {
		b += r.Bytes
	}
	return b
}

// Validate checks internal consistency of the spec. Every failure wraps
// ErrInvalidSpec.
func (s Spec) Validate() error {
	if s.TraceRef != "" {
		// Trace-backed specs are pure references: the segment carries
		// the stream, so a model here would be dead weight at best and
		// a key-identity lie at worst.
		if s.Name == "" {
			return fmt.Errorf("workloads: %w: trace-backed spec without a name", ErrInvalidSpec)
		}
		if len(s.Regions) != 0 || len(s.Phases) != 0 {
			return fmt.Errorf("workloads: %w: %q: trace-backed spec carries a model", ErrInvalidSpec, s.Name)
		}
		return nil
	}
	if s.Name == "" || len(s.Regions) == 0 || len(s.Phases) == 0 {
		return fmt.Errorf("workloads: %w: %q: empty spec", ErrInvalidSpec, s.Name)
	}
	if s.InstrPerRef < 1 {
		return fmt.Errorf("workloads: %w: %q: instrPerRef %v < 1", ErrInvalidSpec, s.Name, s.InstrPerRef)
	}
	for _, r := range s.Regions {
		if r.Bytes == 0 {
			return fmt.Errorf("workloads: %w: %q: empty region %q", ErrInvalidSpec, s.Name, r.Name)
		}
		if r.THPCoverage > 1 {
			return fmt.Errorf("workloads: %w: %q: region %q coverage > 1", ErrInvalidSpec, s.Name, r.Name)
		}
	}
	for pi, p := range s.Phases {
		if p.Refs == 0 || len(p.Access) == 0 {
			return fmt.Errorf("workloads: %w: %q: phase %d empty", ErrInvalidSpec, s.Name, pi)
		}
		for _, a := range p.Access {
			if a.Region < 0 || a.Region >= len(s.Regions) {
				return fmt.Errorf("workloads: %w: %q: phase %d references region %d", ErrInvalidSpec, s.Name, pi, a.Region)
			}
			if a.Weight <= 0 {
				return fmt.Errorf("workloads: %w: %q: non-positive weight", ErrInvalidSpec, s.Name)
			}
			switch a.Pattern {
			case Seq:
				if a.Stride == 0 {
					return fmt.Errorf("workloads: %w: %q: Seq access needs a stride", ErrInvalidSpec, s.Name)
				}
			case Zpf:
				if a.ZipfS <= 1 {
					return fmt.Errorf("workloads: %w: %q: Zpf access needs s > 1", ErrInvalidSpec, s.Name)
				}
			case Uni, Chs:
			default:
				return fmt.Errorf("workloads: %w: %q: unknown pattern %d", ErrInvalidSpec, s.Name, int(a.Pattern))
			}
		}
	}
	return nil
}

// BuildOptions parameterizes workload instantiation.
type BuildOptions struct {
	// Policy is the OS memory policy (see core.PolicyFor).
	Policy vm.Policy
	// Seed drives every random choice deterministically.
	Seed int64
	// Scale multiplies region sizes (0 = 1.0). Benches use < 1 to bound
	// setup time; experiments use 1.
	Scale float64
	// PhysBytes overrides physical memory (0 = footprint × 2, at least
	// 4 GB), enough for perfect eager paging.
	PhysBytes uint64
}

// Build instantiates the workload: it creates the address space (mapping
// every region under the policy) and the paced reference generator.
func (s Spec) Build(opt BuildOptions) (*vm.AddressSpace, *trace.Generator, error) {
	as, gens, err := s.BuildThreads(opt, 1)
	if err != nil {
		return nil, nil, err
	}
	return as, gens[0], nil
}

// BuildThreads instantiates the workload once and returns one reference
// generator per thread, all over the same shared address space — the
// multi-threaded process model for core.Multicore. Threads execute the
// same phase structure with decorrelated random draws.
func (s Spec) BuildThreads(opt BuildOptions, threads int) (*vm.AddressSpace, []*trace.Generator, error) {
	if threads <= 0 {
		return nil, nil, fmt.Errorf("workloads: need at least one thread")
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if s.TraceRef != "" {
		return nil, nil, fmt.Errorf("workloads: %w: %q: trace-backed workloads replay through a trace store (run with a trace executor)", ErrInvalidSpec, s.Name)
	}
	scale := opt.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, nil, fmt.Errorf("workloads: negative scale")
	}
	phys := opt.PhysBytes
	if phys == 0 {
		phys = 2 * uint64(float64(s.FootprintBytes())*scale)
		if phys < 4<<30 {
			phys = 4 << 30
		}
	}
	as := vm.New(vm.Config{Policy: opt.Policy, PhysBytes: phys, Seed: opt.Seed})

	regions := make([]vm.Region, len(s.Regions))
	for i, rs := range s.Regions {
		bytes := uint64(float64(rs.Bytes) * scale)
		if bytes < 64<<10 {
			bytes = 64 << 10
		}
		reg, err := as.MmapCoverage(bytes, rs.THPCoverage)
		if err != nil {
			return nil, nil, fmt.Errorf("workloads: %q: mapping %q: %w", s.Name, rs.Name, err)
		}
		regions[i] = reg
	}

	gens := make([]*trace.Generator, threads)
	for t := range gens {
		seed := opt.Seed + int64(t)*0x5851f42d4c957f2d
		nextSeed := func() int64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }

		var phases []trace.Phase
		for _, ps := range s.Phases {
			var parts []trace.Weighted
			for _, a := range ps.Access {
				reg := regions[a.Region]
				w := trace.Window{Base: reg.Base, Size: reg.Size}
				var st trace.Stream
				switch a.Pattern {
				case Seq:
					st = trace.Sequential(w, a.Stride)
				case Uni:
					st = trace.Uniform(w, nextSeed())
				case Zpf:
					st = trace.Zipf(w, a.ZipfS, nextSeed())
				case Chs:
					st = trace.Chase(w, nextSeed())
				}
				if a.Burst > 1 {
					st = trace.Burst(st, a.Burst, nextSeed())
				}
				parts = append(parts, trace.Weighted{Stream: st, Weight: a.Weight})
			}
			phases = append(phases, trace.Phase{Stream: trace.Mix(nextSeed(), parts...), Refs: ps.Refs})
		}
		var stream trace.Stream
		if len(phases) == 1 {
			stream = phases[0].Stream
		} else {
			stream = trace.Phased(phases...)
		}
		gens[t] = trace.NewGenerator(stream, s.InstrPerRef)
	}
	return as, gens, nil
}
