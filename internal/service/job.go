package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
	"xlate/internal/workloads"
)

// SubmitRequest is the POST /v1/jobs body. Exactly one of Workload or
// Experiment selects the job kind:
//
//   - Workload + Config: one simulation cell, the same cell eeatsim
//     runs — the daemon's unit of caching and deduplication.
//   - Experiment: one paper artifact (fig2, table5, ...) run through
//     the harness suite; its cells checkpoint to the daemon spool so a
//     drained job resumes instead of restarting.
//
// Instrs, Scale and Seed default like exper.Options (20 M, 1.0, 42).
type SubmitRequest struct {
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	// Interval, for cell jobs, collects the per-interval series with
	// this instruction cadence (eeatsim -interval).
	Interval uint64 `json:"interval,omitempty"`

	Experiment string `json:"experiment,omitempty"`

	// Cell is a fully parameterized cell in wire form — the cluster
	// coordinator's dispatch payload. Unlike Workload+Config it can
	// express sweep cells with non-default parameters and custom energy
	// databases. Mutually exclusive with Workload and Experiment; when
	// set, Instrs/Scale/Seed are carried inside the cell itself.
	Cell *WireJob `json:"cell,omitempty"`

	Instrs uint64  `json:"instrs,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
}

// job kinds.
const (
	kindCell       = "cell"
	kindExperiment = "experiment"
)

// job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// resolved is a validated, executable submission: its content-
// addressed key plus whichever of the two payloads the kind selects.
type resolved struct {
	kind string
	key  string

	cell exper.Job        // kindCell
	expr exper.Experiment // kindExperiment
	opt  exper.Options    // kindExperiment: instrs/scale/seed

	// trace is the propagated trace context a cell submission carried
	// (zero when the submitter is not tracing). It is deliberately NOT
	// part of the key: traced and untraced submissions of the same cell
	// share one cache entry.
	trace telemetry.TraceContext
}

// resolve validates a submission and computes its identity. Cell jobs
// are keyed by the canonical harness cell key — the same identity the
// experiment harness dedups and resumes by — so equal keys guarantee
// byte-identical results. Experiment jobs hash the artifact id and the
// options that parameterize every cell under it.
func resolve(req SubmitRequest, edb cellDefaults) (resolved, error) {
	if req.Cell != nil {
		if req.Workload != "" || req.Experiment != "" || req.Config != "" ||
			req.Interval != 0 || req.Instrs != 0 || req.Scale != 0 || req.Seed != 0 {
			return resolved{}, fmt.Errorf("%w: a cell payload carries its own parameters; no other fields may be set", ErrBadRequest)
		}
		j, err := req.Cell.Job()
		if err != nil {
			return resolved{}, err
		}
		if edb.maxInstrs > 0 && j.Instrs > edb.maxInstrs {
			return resolved{}, fmt.Errorf("%w: instrs %d exceeds the admission cap %d", ErrBadRequest, j.Instrs, edb.maxInstrs)
		}
		return resolved{
			kind:  kindCell,
			key:   harness.JobKey(j),
			cell:  j,
			trace: telemetry.TraceContext{TraceID: req.Cell.TraceID, ParentSpan: req.Cell.ParentSpan},
		}, nil
	}
	if (req.Workload == "") == (req.Experiment == "") {
		return resolved{}, fmt.Errorf("%w: exactly one of workload, experiment, or cell must be set", ErrBadRequest)
	}
	if req.Instrs == 0 {
		req.Instrs = 20_000_000
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	if req.Scale < 0 || req.Scale > 64 {
		return resolved{}, fmt.Errorf("%w: scale %g out of range (0, 64]", ErrBadRequest, req.Scale)
	}
	if edb.maxInstrs > 0 && req.Instrs > edb.maxInstrs {
		return resolved{}, fmt.Errorf("%w: instrs %d exceeds the admission cap %d", ErrBadRequest, req.Instrs, edb.maxInstrs)
	}

	if req.Experiment != "" {
		if req.Config != "" || req.Interval != 0 {
			return resolved{}, fmt.Errorf("%w: config/interval apply to cell jobs only", ErrBadRequest)
		}
		var e exper.Experiment
		if ref, isTrace := strings.CutPrefix(req.Experiment, "trace:"); isTrace {
			// An ingested trace run as a full experiment: characterize the
			// stream across the headline configurations (DESIGN.md §15).
			if err := checkTraceRef(ref, edb); err != nil {
				return resolved{}, err
			}
			e = exper.TraceExperiment(ref)
		} else {
			var ok bool
			e, ok = exper.ByID(req.Experiment)
			if !ok {
				return resolved{}, fmt.Errorf("%w: unknown experiment %q (known: %v)", ErrBadRequest, req.Experiment, exper.IDs())
			}
		}
		sum := sha256.Sum256([]byte(fmt.Sprintf("experiment|%s|instrs=%d|scale=%g|seed=%d",
			e.ID, req.Instrs, req.Scale, req.Seed)))
		return resolved{
			kind: kindExperiment,
			key:  hex.EncodeToString(sum[:]),
			expr: e,
			opt:  exper.Options{Instrs: req.Instrs, Scale: req.Scale, Seed: req.Seed},
		}, nil
	}

	var spec workloads.Spec
	if ref, isTrace := strings.CutPrefix(req.Workload, "trace:"); isTrace {
		if err := checkTraceRef(ref, edb); err != nil {
			return resolved{}, err
		}
		spec = workloads.TraceSpec(ref)
	} else {
		var ok bool
		spec, ok = workloads.ByName(req.Workload)
		if !ok {
			return resolved{}, fmt.Errorf("%w: unknown workload %q", ErrBadRequest, req.Workload)
		}
	}
	if req.Config == "" {
		return resolved{}, fmt.Errorf("%w: cell jobs need a config", ErrBadRequest)
	}
	var kind core.ConfigKind
	found := false
	for _, k := range append(core.AllConfigs(), core.ExtendedConfigs()...) {
		if strings.EqualFold(k.String(), req.Config) {
			kind, found = k, true
		}
	}
	if !found {
		return resolved{}, fmt.Errorf("%w: unknown config %q", ErrBadRequest, req.Config)
	}
	p := core.DefaultParams(kind)
	p.SeriesIntervalInstrs = req.Interval
	j := exper.Job{
		Spec:   spec,
		Params: p,
		Policy: core.PolicyFor(kind, 0.5),
		Instrs: req.Instrs,
		Scale:  req.Scale,
		Seed:   req.Seed,
	}
	return resolved{kind: kindCell, key: harness.JobKey(j), cell: j}, nil
}

// cellDefaults carries the server-side admission parameters resolve
// enforces on every submission.
type cellDefaults struct {
	maxInstrs uint64
	// traces is true when the daemon holds a segment store; without one,
	// "trace:<key>" submissions are rejected at admission rather than
	// failing on a worker.
	traces bool
}

// checkTraceRef validates a "trace:<key>" reference at admission time:
// the key must be a well-formed content hash and the daemon must hold a
// segment store to replay it from.
func checkTraceRef(ref string, edb cellDefaults) error {
	if !tracec.IsKey(ref) {
		return fmt.Errorf("%w: malformed trace key %q (want 64 hex digits)", ErrBadRequest, ref)
	}
	if !edb.traces {
		return fmt.Errorf("%w: this daemon has no trace store (start with -trace-store)", ErrBadRequest)
	}
	return nil
}

// job is one admitted submission's lifecycle record.
type job struct {
	id   string // == resolved.key
	kind string
	req  SubmitRequest
	res  resolved

	created time.Time
	// done closes when the job reaches a terminal state; long-poll
	// waiters and the drain path select on it.
	done chan struct{}
	log  *logBuffer

	// Written before done closes, read after (or under the server mu).
	state    string
	started  time.Time
	finished time.Time
	errMsg   string
	payload  []byte
}

// JobStatus is the wire form of a job's lifecycle state, returned by
// POST /v1/jobs and GET /v1/jobs/{id}.
//
//eeat:wire
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Cached is true when the response was satisfied from the result
	// cache without touching the queue.
	Cached bool `json:"cached,omitempty"`
	// Deduped is true when the submission attached to an already
	// queued or running identical job (singleflight).
	Deduped   bool    `json:"deduped,omitempty"`
	Error     string  `json:"error,omitempty"`
	ResultURL string  `json:"result_url,omitempty"`
	LogURL    string  `json:"log_url,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`
	// TraceID echoes the submission's propagated trace context so a
	// tracing coordinator can stitch worker-side timing into its own
	// trace; QueueSeconds/ExecSeconds report, on terminal states, how
	// long the job waited in the queue and ran on a worker slot. They
	// describe this execution, not the cached result — a Cached reply
	// reports zeros.
	TraceID      string  `json:"trace_id,omitempty"`
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	ExecSeconds  float64 `json:"exec_seconds,omitempty"`
	// RetryAfter, on a 429/503 rejection, estimates seconds until the
	// queue likely has room (also sent as the Retry-After header).
	RetryAfter float64 `json:"retry_after_seconds,omitempty"`
}

// CellResult is the cached payload of a cell job.
type CellResult struct {
	Key      string      `json:"key"`
	Kind     string      `json:"kind"`
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	Result   core.Result `json:"result"`
}

// ExperimentResult is the cached payload of an experiment job.
type ExperimentResult struct {
	Key        string            `json:"key"`
	Kind       string            `json:"kind"`
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Tables     []ExperimentTable `json:"tables"`
}

// ExperimentTable is one rendered table of an experiment payload.
type ExperimentTable struct {
	Title    string `json:"title"`
	Markdown string `json:"markdown"`
	CSV      string `json:"csv"`
}
