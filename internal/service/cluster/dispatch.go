package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
)

// cellFlight is one in-flight cell execution shared by every suite
// that wants the same key: the coordinator-level singleflight that
// keeps the global cells-executed counter equal to the number of
// unique cells even when the soak harness drives many concurrent
// suites through one coordinator.
type cellFlight struct {
	done chan struct{}
	res  core.Result
	err  error
}

// executeCell is the harness Config.Execute hook: answer one cell from
// the completed set, an identical in-flight execution, a federated
// cache, a worker dispatch, or local fallback — in that order.
func (c *Coordinator) executeCell(ctx context.Context, j exper.Job) (core.Result, error) {
	key := harness.JobKey(j)
	for {
		c.cmu.Lock()
		if res, ok := c.completed[key]; ok {
			c.cmu.Unlock()
			c.m.cellsMemo.Inc()
			return res, nil
		}
		if f, ok := c.flight[key]; ok {
			c.cmu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return core.Result{}, fmt.Errorf("cluster: cell %s: %w", shortKey(key), ctx.Err())
			}
			if f.err == nil {
				c.m.cellsDeduped.Inc()
				return f.res, nil
			}
			// The leader failed. If its failure was its own context dying
			// (its suite was cancelled, e.g. by a coordinator kill) and we
			// are still live, take the lead ourselves.
			if (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue
			}
			return core.Result{}, f.err
		}
		f := &cellFlight{done: make(chan struct{})}
		c.flight[key] = f
		c.cmu.Unlock()

		res, err := c.leadCell(ctx, j, key)
		c.cmu.Lock()
		f.res, f.err = res, err
		delete(c.flight, key)
		c.cmu.Unlock()
		close(f.done)
		return res, err
	}
}

// leadCell executes one cell as the flight leader: federated probe
// first when resuming a predecessor's suite, then dispatch to the ring
// owner, walking the preference list as workers die.
//
// The failure split is the protocol's core invariant: a transient
// failure (worker unreachable after the client's backoff, or killed
// mid-RPC) condemns the *worker* and requeues the cell — with its
// original seed, so the surviving worker computes exactly what the dead
// one would have; a deterministic failure (the simulation itself
// failed, or a protocol violation) condemns the *cell* — rerunning a
// deterministic failure elsewhere just fails again, slower.
//
// The lead is also the unit of observation: the whole call is one
// "cell" stage observation (and, when tracing, one root span on the
// cell's own track), with dispatch / federation / local / worker
// stages nested inside.
func (c *Coordinator) leadCell(ctx context.Context, j exper.Job, key string) (res core.Result, err error) {
	ct := c.traceCell(key)
	cellStart := time.Now()
	c.event(ct, "enqueue")
	defer func() {
		c.m.stageCell.Observe(time.Since(cellStart).Seconds())
		c.spanRange(ct, cellStart, time.Now(), "cell", telemetry.KV{K: "ok", V: err == nil})
	}()
	// After a takeover, a cell missing from the journal may still sit in
	// a worker's content-addressed cache: the old coordinator dispatched
	// it, the worker finished it under its own daemon-scoped context,
	// and only the acknowledgment died. Ask the owners before paying
	// for a re-simulation.
	if c.tookOver {
		if res, ok := c.federatedLookup(ctx, key, ct); ok {
			c.recordCell(key, res)
			return res, nil
		}
	}
	wire := service.EncodeJob(j)
	if ct.active() {
		// The propagated trace context: the worker tags its own spans
		// and its terminal status with this id, which is what lets the
		// merged trace (and the tests) match both sides of the cell.
		wire.TraceID = ct.id
		wire.ParentSpan = ct.span
	}
	tried := make(map[string]bool)
	requeued := false
	for {
		w := c.pick(key, tried)
		if w == nil {
			res, err := c.executeLocal(ctx, j, key, ct)
			if err != nil {
				return core.Result{}, err
			}
			c.recordCell(key, res)
			return res, nil
		}
		tried[w.id] = true
		if requeued {
			c.m.requeues.Inc()
			c.event(ct, "requeue", telemetry.KV{K: "worker", V: w.id})
			c.cfg.Logf("requeueing cell %s onto worker %s", shortKey(key), w.id)
			// A requeued cell's previous owner may have completed it
			// before dying; the new owner (or any surviving owner) may
			// hold it from an earlier membership epoch. Read through the
			// federation before re-simulating.
			if res, ok := c.federatedLookup(ctx, key, ct); ok {
				c.recordCell(key, res)
				return res, nil
			}
		}
		res, err := c.dispatchTo(ctx, w, key, wire, ct)
		if err == nil {
			c.recordCell(key, res)
			return res, nil
		}
		if ctx.Err() != nil {
			return core.Result{}, fmt.Errorf("cluster: cell %s on worker %s: %w", shortKey(key), w.id, ctx.Err())
		}
		if errors.Is(err, client.ErrJobFailed) || errors.Is(err, client.ErrProtocol) {
			return core.Result{}, fmt.Errorf("cluster: cell %s on worker %s: %w", shortKey(key), w.id, err)
		}
		c.workerUnavailable(w, err)
		requeued = true
	}
}

// recordCell commits a completed cell: into the completed set, the
// crash journal (fsync'd before the result is handed to the harness),
// and the no-double-execution counter. The OnJournalAppend hook fires
// outside all locks.
func (c *Coordinator) recordCell(key string, res core.Result) {
	total := 0
	if c.jrnl != nil {
		n, err := c.jrnl.appendCell(key, res)
		if err != nil {
			// Not durable — a successor coordinator will serve this cell
			// from a federated cache or re-execute it, so counting it now
			// would double-count the run. The in-memory publish still
			// happens: flight waiters on this (dying) generation get
			// their result.
			c.cfg.Logf("journal: %v", err)
			c.cmu.Lock()
			c.completed[key] = res
			c.cmu.Unlock()
			return
		}
		total = n
	}
	c.cmu.Lock()
	c.completed[key] = res
	c.cmu.Unlock()
	c.m.cellsExecuted.Inc()
	if hook := c.cfg.OnJournalAppend; hook != nil && total > 0 {
		hook(total)
	}
}

// federatedLookup asks each live ring owner of key, in preference
// order, for a cached result. Only reached when re-execution is the
// alternative (takeover-resume or requeue), so probes are worth their
// round trip.
func (c *Coordinator) federatedLookup(ctx context.Context, key string, ct cellTrace) (core.Result, bool) {
	for _, w := range c.liveOwners(key) {
		if res, ok := c.federatedProbe(ctx, w, key, ct); ok {
			return res, true
		}
		if ctx.Err() != nil {
			return core.Result{}, false
		}
	}
	return core.Result{}, false
}

// liveOwners snapshots the live workers on key's preference list.
func (c *Coordinator) liveOwners(key string) []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*worker
	for _, id := range c.ring.Owners(key) {
		if w, ok := c.workers[id]; ok && !w.dead {
			out = append(out, w)
		}
	}
	return out
}

// federatedProbe is one read-through GET /v1/results/{key} against one
// worker's content-addressed cache. The trust rule matches wire-job
// admission (§11): the payload's key — recomputed by the worker from
// the job itself when it cached the cell — must equal the key this
// coordinator computed from its own job; anything else is rejected and
// the cell falls through to execution.
func (c *Coordinator) federatedProbe(ctx context.Context, w *worker, key string, ct cellTrace) (res core.Result, ok bool) {
	c.m.fedProbes.Inc()
	probeStart := time.Now()
	defer func() {
		c.m.stageFederation.Observe(time.Since(probeStart).Seconds())
		c.spanRange(ct, probeStart, time.Now(), "federation_probe",
			telemetry.KV{K: "worker", V: w.id}, telemetry.KV{K: "hit", V: ok})
	}()
	pctx, cancel := context.WithTimeout(ctx, c.cfg.FederationTimeout)
	defer cancel()
	body, err := w.cl.Result(pctx, key)
	if err != nil {
		if !errors.Is(err, client.ErrNotFound) && ctx.Err() == nil {
			c.cfg.Logf("federated probe of worker %s for cell %s: %v", w.id, shortKey(key), err)
		}
		return core.Result{}, false
	}
	var cr service.CellResult
	if err := json.Unmarshal(body, &cr); err != nil {
		c.m.fedRejects.Inc()
		c.cfg.Logf("federated probe of worker %s for cell %s: undecodable payload: %v", w.id, shortKey(key), err)
		return core.Result{}, false
	}
	if cr.Key != key {
		c.m.fedRejects.Inc()
		c.cfg.Logf("worker %s answered federated read for cell %s under key %s; rejected",
			w.id, shortKey(key), shortKey(cr.Key))
		return core.Result{}, false
	}
	c.m.cellsFederated.Inc()
	c.cfg.Logf("cell %s served from worker %s's federated cache", shortKey(key), w.id)
	return cr.Result, true
}

// executeLocal is the graceful-degradation path: no live worker can
// take the cell, so the coordinator runs it in-process. The seed and
// parameters are untouched, so the result — and the merged report — is
// the same one a worker would have produced.
func (c *Coordinator) executeLocal(ctx context.Context, j exper.Job, key string, ct cellTrace) (core.Result, error) {
	c.m.cellsLocal.Inc()
	c.cfg.Logf("no live workers for cell %s; executing locally", shortKey(key))
	localStart := time.Now()
	var res core.Result
	var err error
	if c.cfg.Traces != nil {
		res, err = c.cfg.Traces.ExecuteJob(ctx, j)
	} else {
		res, err = exper.ExecuteJobContext(ctx, j)
	}
	c.m.stageLocal.Observe(time.Since(localStart).Seconds())
	c.spanRange(ct, localStart, time.Now(), "local_exec", telemetry.KV{K: "ok", V: err == nil})
	if err != nil {
		return core.Result{}, fmt.Errorf("cluster: cell %s local fallback: %w", shortKey(key), err)
	}
	return res, nil
}

// workerUnavailable declares a worker dead after a failed dispatch.
func (c *Coordinator) workerUnavailable(w *worker, cause error) {
	c.mu.Lock()
	//eeatlint:allow locksafe the death verdict and its journal record must be atomic under mu; membership appends are rare and small
	c.markDeadLocked(w, cause)
	c.mu.Unlock()
}

// dispatchTo runs one cell on one worker. The RPC context is cancelled
// the moment the worker is declared dead (by the watchdog or a
// concurrent dispatch), so a goroutine blocked in a long-poll Wait
// against a silent worker unblocks at the death verdict instead of its
// own timeout.
func (c *Coordinator) dispatchTo(ctx context.Context, w *worker, key string, wire service.WireJob, ct cellTrace) (core.Result, error) {
	rpcCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.deadCh:
			cancel()
		case <-rpcCtx.Done():
		}
	}()
	w.cells.Inc()
	c.m.cellsDispatched.Inc()
	dispatchStart := time.Now()
	cr, st, err := w.cl.RunCell(rpcCtx, service.SubmitRequest{Cell: &wire})
	dispatchEnd := time.Now()
	c.m.stageDispatch.Observe(dispatchEnd.Sub(dispatchStart).Seconds())
	c.spanRange(ct, dispatchStart, dispatchEnd, "dispatch",
		telemetry.KV{K: "worker", V: w.id}, telemetry.KV{K: "ok", V: err == nil})
	if st.QueueSeconds > 0 || st.ExecSeconds > 0 {
		// Worker-reported stage timing: only present on a terminal
		// status that actually executed (a cache-served reply spent no
		// worker time and would skew the histograms with zeros).
		c.m.stageWorkerQueue.Observe(st.QueueSeconds)
		c.m.stageWorkerExec.Observe(st.ExecSeconds)
		c.workerSpans(ct, w.id, dispatchEnd, st)
	}
	if err != nil {
		if ctx.Err() == nil && rpcCtx.Err() != nil {
			return core.Result{}, fmt.Errorf("cluster: worker %s died mid-dispatch of cell %s: %w",
				w.id, shortKey(key), client.ErrUnavailable)
		}
		return core.Result{}, fmt.Errorf("cluster: worker %s, cell %s: %w", w.id, shortKey(key), err)
	}
	if cr.Key != key {
		// A worker answering under the wrong key would poison the merge;
		// treat it as a protocol violation, not a retryable blip.
		return core.Result{}, fmt.Errorf("cluster: worker %s answered cell %s with key %s: %w",
			w.id, shortKey(key), shortKey(cr.Key), client.ErrProtocol)
	}
	return cr.Result, nil
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
