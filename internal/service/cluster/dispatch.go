package cluster

import (
	"context"
	"errors"
	"fmt"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service"
	"xlate/internal/service/client"
)

// executeCell is the harness Config.Execute hook: dispatch one cell to
// its ring owner, walking the preference list as workers die.
//
// The failure split is the protocol's core invariant: a transient
// failure (worker unreachable after the client's backoff, or killed
// mid-RPC) condemns the *worker* and requeues the cell — with its
// original seed, so the surviving worker computes exactly what the dead
// one would have; a deterministic failure (the simulation itself
// failed, or a protocol violation) condemns the *cell* — rerunning a
// deterministic failure elsewhere just fails again, slower.
func (c *Coordinator) executeCell(ctx context.Context, j exper.Job) (core.Result, error) {
	key := harness.JobKey(j)
	wire := service.EncodeJob(j)
	tried := make(map[string]bool)
	requeued := false
	for {
		w := c.pick(key, tried)
		if w == nil {
			return c.executeLocal(ctx, j, key)
		}
		tried[w.id] = true
		if requeued {
			c.m.requeues.Inc()
			c.cfg.Logf("requeueing cell %s onto worker %s", shortKey(key), w.id)
		}
		res, err := c.dispatchTo(ctx, w, key, wire)
		if err == nil {
			c.m.cellsExecuted.Inc()
			return res, nil
		}
		if ctx.Err() != nil {
			return core.Result{}, fmt.Errorf("cluster: cell %s on worker %s: %w", shortKey(key), w.id, ctx.Err())
		}
		if errors.Is(err, client.ErrJobFailed) || errors.Is(err, client.ErrProtocol) {
			return core.Result{}, fmt.Errorf("cluster: cell %s on worker %s: %w", shortKey(key), w.id, err)
		}
		c.workerUnavailable(w, err)
		requeued = true
	}
}

// executeLocal is the graceful-degradation path: no live worker can
// take the cell, so the coordinator runs it in-process. The seed and
// parameters are untouched, so the result — and the merged report — is
// the same one a worker would have produced.
func (c *Coordinator) executeLocal(ctx context.Context, j exper.Job, key string) (core.Result, error) {
	c.m.cellsLocal.Inc()
	c.cfg.Logf("no live workers for cell %s; executing locally", shortKey(key))
	res, err := exper.ExecuteJobContext(ctx, j)
	if err != nil {
		return core.Result{}, fmt.Errorf("cluster: cell %s local fallback: %w", shortKey(key), err)
	}
	c.m.cellsExecuted.Inc()
	return res, nil
}

// workerUnavailable declares a worker dead after a failed dispatch.
func (c *Coordinator) workerUnavailable(w *worker, cause error) {
	c.mu.Lock()
	c.markDeadLocked(w, cause)
	c.mu.Unlock()
}

// dispatchTo runs one cell on one worker. The RPC context is cancelled
// the moment the worker is declared dead (by the watchdog or a
// concurrent dispatch), so a goroutine blocked in a long-poll Wait
// against a silent worker unblocks at the death verdict instead of its
// own timeout.
func (c *Coordinator) dispatchTo(ctx context.Context, w *worker, key string, wire service.WireJob) (core.Result, error) {
	rpcCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.deadCh:
			cancel()
		case <-rpcCtx.Done():
		}
	}()
	w.cells.Inc()
	c.m.cellsDispatched.Inc()
	cr, err := w.cl.RunCell(rpcCtx, service.SubmitRequest{Cell: &wire})
	if err != nil {
		if ctx.Err() == nil && rpcCtx.Err() != nil {
			return core.Result{}, fmt.Errorf("cluster: worker %s died mid-dispatch of cell %s: %w",
				w.id, shortKey(key), client.ErrUnavailable)
		}
		return core.Result{}, fmt.Errorf("cluster: worker %s, cell %s: %w", w.id, shortKey(key), err)
	}
	if cr.Key != key {
		// A worker answering under the wrong key would poison the merge;
		// treat it as a protocol violation, not a retryable blip.
		return core.Result{}, fmt.Errorf("cluster: worker %s answered cell %s with key %s: %w",
			w.id, shortKey(key), shortKey(cr.Key), client.ErrProtocol)
	}
	return cr.Result, nil
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
