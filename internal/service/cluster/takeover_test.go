package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"xlate/internal/exper"
	"xlate/internal/service"
	"xlate/internal/telemetry"
)

// goldenOptions is the committed-golden configuration (`make cluster`):
// the merged report under these options must be byte-identical to
// testdata/cluster/fig2.golden.
func goldenOptions() exper.Options {
	return exper.Options{Instrs: 400_000, Scale: 0.1, Seed: 7}
}

func readGolden(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "cluster", "fig2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitWorkersIdle blocks until no live dev worker has a queued or
// running job — the moment every cell admitted before a coordinator
// kill has landed in its worker's content-addressed cache.
func waitWorkersIdle(t *testing.T, dev *DevCluster, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		idle := true
	scan:
		for _, w := range dev.workers {
			if w.killed.Load() {
				continue
			}
			st := w.svc.Status()
			if st.QueueDepth > 0 {
				idle = false
				break
			}
			for _, j := range st.Jobs {
				if j.State == service.StateQueued || j.State == service.StateRunning {
					idle = false
					break scan
				}
			}
		}
		if idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never went idle after the coordinator kill")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// The tentpole acceptance test: SIGKILL-equivalent the coordinator
// mid-suite (after its journal holds 12 of fig2's 24 cells), restart
// it, and require (a) the re-run report byte-identical to the
// committed golden, (b) the global cells-executed counter equal to the
// planned 24 — no cell executed twice across both coordinator
// generations — and (c) at least one interrupted cell served from a
// worker's federated cache instead of being re-simulated.
func TestCoordinatorTakeoverResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	golden := readGolden(t)
	reg := telemetry.NewRegistry()
	journal := filepath.Join(t.TempDir(), "coord.journal")

	dev, err := StartDev(context.Background(), DevConfig{
		Workers:  3,
		Options:  goldenOptions(),
		Retry:    fastRetry(),
		Journal:  journal,
		Chaos:    []Directive{{Kind: kindKillCoord, Worker: coordinatorIndex, AtRPC: 12}},
		Registry: reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	// First run: dies with the coordinator mid-suite.
	_, err = dev.Run(ctx, []exper.Experiment{fig2(t)})
	if !errors.Is(err, ErrCoordinatorDown) {
		t.Fatalf("first run = %v, want ErrCoordinatorDown", err)
	}
	if !dev.CoordinatorDown() {
		t.Fatal("coordinator still up after killcoord fired")
	}

	// Let the workers finish every cell they had already admitted —
	// those results exist only in worker caches, not in the journal,
	// and are exactly what the takeover's federation must harvest.
	waitWorkersIdle(t, dev, 60*time.Second)

	if err := dev.RestartCoordinator(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !dev.Coordinator().TookOver() {
		t.Fatal("restarted coordinator did not replay the journal")
	}
	if n := len(dev.Coordinator().CompletedCells()); n < 12 {
		t.Fatalf("journal replayed %d cells, want >= 12", n)
	}

	// Second run: resumes from the journal, finishes the suite.
	results, err := dev.Run(ctx, []exper.Experiment{fig2(t)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed in the takeover run", n)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("takeover report differs from the committed golden:\n--- takeover\n%s\n--- golden\n%s", buf.String(), golden)
	}

	if got := metric(t, reg, "xlate_cluster_cells_executed_total"); got != 24 {
		t.Errorf("cells executed across both generations = %d, want exactly 24", got)
	}
	if got := metric(t, reg, "xlate_cluster_cells_federated_total"); got == 0 {
		t.Error("no cell was served from a federated worker cache after the takeover")
	}
	if got := metric(t, reg, "xlate_cluster_takeovers_total"); got != 1 {
		t.Errorf("takeovers = %d, want 1", got)
	}
	if got := metric(t, reg, "xlate_cluster_coordinator_restarts_total"); got != 1 {
		t.Errorf("coordinator restarts = %d, want 1", got)
	}
}

// The chaos soak (tentpole part 3, in-process edition): concurrent
// identical suites through one coordinator while the chaos plan kills
// a worker and then the coordinator itself. Every suite's report must
// come out byte-identical and the no-double-execution invariant must
// hold globally; RunSoak fails loudly on either violation.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster soak")
	}
	want := singleProcessReport(t)
	reg := telemetry.NewRegistry()

	res, err := RunSoak(context.Background(), SoakConfig{
		Workers:     3,
		Suites:      3,
		Experiments: []exper.Experiment{fig2(t)},
		Options:     testOptions(),
		Retry:       fastRetry(),
		Journal:     filepath.Join(t.TempDir(), "coord.journal"),
		Chaos: []Directive{
			{Kind: "kill", Worker: 0, AtRPC: 10},
			{Kind: kindKillCoord, Worker: coordinatorIndex, AtRPC: 12},
		},
		Golden:           []byte(want),
		HeartbeatTimeout: 500 * time.Millisecond,
		Registry:         reg,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d of %d soak suites mismatched the golden", res.Mismatches, res.Suites)
	}
	if res.Restarts < 1 {
		t.Errorf("coordinator restarts = %d, want >= 1", res.Restarts)
	}
	if res.UniqueCells != 24 {
		t.Errorf("unique cells = %d, want 24", res.UniqueCells)
	}
	if res.CellsExecuted != 24 {
		t.Errorf("cells executed = %d, want exactly 24 across all suites and generations", res.CellsExecuted)
	}
	if res.WorkersDead < 1 {
		t.Errorf("workers dead = %d, want the chaos-killed one", res.WorkersDead)
	}
}

// dropOneHeartbeat fails exactly one heartbeat POST with a transport
// error; everything else passes through.
type dropOneHeartbeat struct {
	dropped atomic.Bool
}

func (d *dropOneHeartbeat) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/v1/cluster/heartbeat" && d.dropped.CompareAndSwap(false, true) {
		return nil, errors.New("chaos: heartbeat packet dropped")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// Satellite 2: a single dropped heartbeat must not get a healthy
// worker declared dead. The beat period (600ms) is tuned so that
// without the sender's in-beat retry the gap to the next tick (1.2s)
// would blow the 1s timeout; the capped retry closes the gap within
// tens of milliseconds instead.
func TestHeartbeatDropToleratedByRetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(Config{
		HeartbeatTimeout: time.Second,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.End()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	drop := &dropOneHeartbeat{}
	ctx, cancel := context.WithCancel(context.Background())
	hb := HeartbeatSender{
		Coord: srv.URL, ID: "w0", Addr: "http://127.0.0.1:1",
		Every: 600 * time.Millisecond,
		Retry: fastRetry(),
		HTTP:  &http.Client{Transport: drop},
		Logf:  t.Logf,
	}
	done := make(chan struct{})
	go func() { defer close(done); hb.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for coord.LiveWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Ride out several beat periods — including the dropped beat and
	// multiple watchdog sweeps past the timeout — then check liveness
	// before stopping the sender (its shutdown posts a graceful leave).
	time.Sleep(2500 * time.Millisecond)
	live := coord.LiveWorkers()
	dead := metric(t, reg, "xlate_cluster_workers_dead_total")
	cancel()
	<-done

	if !drop.dropped.Load() {
		t.Fatal("the chaos transport never dropped a heartbeat — the test exercised nothing")
	}
	if dead != 0 {
		t.Errorf("a single dropped heartbeat killed the worker (workers dead = %d, want 0)", dead)
	}
	if live != 1 {
		t.Errorf("live workers = %d, want 1", live)
	}
}
