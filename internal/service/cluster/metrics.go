package cluster

import "xlate/internal/telemetry"

// clusterMetrics is the coordinator's instrumentation, registered into
// the run-wide registry so one /metrics scrape (or -metrics-out dump)
// shows the cluster, harness, and simulator layers together.
type clusterMetrics struct {
	reg *telemetry.Registry

	workersLive     *telemetry.Gauge
	workersDead     *telemetry.Counter
	ringMoves       *telemetry.Counter
	requeues        *telemetry.Counter
	heartbeats      *telemetry.Counter
	cellsDispatched *telemetry.Counter
	cellsExecuted   *telemetry.Counter
	cellsLocal      *telemetry.Counter
	cellsMemo       *telemetry.Counter
	cellsDeduped    *telemetry.Counter
	cellsFederated  *telemetry.Counter
	fedProbes       *telemetry.Counter
	fedRejects      *telemetry.Counter
	takeovers       *telemetry.Counter

	// Per-stage latency histograms (one labeled family): a cell's
	// journey decomposed into the stages the distributed trace names,
	// so /metrics answers "where does cell time go" without a trace.
	stageCell        *telemetry.Histogram // leadCell: the whole per-cell critical path
	stageDispatch    *telemetry.Histogram // one worker RPC, submit to terminal status
	stageWorkerQueue *telemetry.Histogram // worker-reported queue wait
	stageWorkerExec  *telemetry.Histogram // worker-reported execution time
	stageFederation  *telemetry.Histogram // one federated cache probe
	stageLocal       *telemetry.Histogram // local-fallback execution
}

func newClusterMetrics(reg *telemetry.Registry) *clusterMetrics {
	return &clusterMetrics{
		reg: reg,
		workersLive: reg.Gauge("xlate_cluster_workers_live",
			"workers currently registered and heartbeating"),
		workersDead: reg.Counter("xlate_cluster_workers_dead_total",
			"workers declared dead (heartbeat timeout or dispatch failure)"),
		ringMoves: reg.Counter("xlate_cluster_ring_moves_total",
			"keyspace arcs that changed owner on ring join/leave/death"),
		requeues: reg.Counter("xlate_cluster_requeues_total",
			"cells requeued onto a surviving worker after their owner died"),
		heartbeats: reg.Counter("xlate_cluster_heartbeats_total",
			"heartbeats received from workers"),
		cellsDispatched: reg.Counter("xlate_cluster_cells_dispatched_total",
			"cell dispatch attempts sent to workers (includes requeued retries)"),
		cellsExecuted: reg.Counter("xlate_cluster_cells_executed_total",
			"cells that completed successfully, remote or local; equal to the "+
				"planned cell count on a clean run — the no-double-execution witness"),
		cellsLocal: reg.Counter("xlate_cluster_cells_local_total",
			"cells executed locally because no live worker remained"),
		cellsMemo: reg.Counter("xlate_cluster_cells_memo_total",
			"cell requests answered from the coordinator's completed-cell set "+
				"(journal replay or an earlier concurrent suite) without dispatch"),
		cellsDeduped: reg.Counter("xlate_cluster_cells_deduped_total",
			"concurrent identical cell requests folded into one in-flight execution"),
		cellsFederated: reg.Counter("xlate_cluster_cells_federated_total",
			"cells answered from a worker's content-addressed cache via the "+
				"federated read-through instead of re-simulating"),
		fedProbes: reg.Counter("xlate_cluster_federation_probes_total",
			"federated cache read-through probes issued (hits and misses)"),
		fedRejects: reg.Counter("xlate_cluster_federation_rejects_total",
			"federated cache hits rejected by the key trust rule"),
		takeovers: reg.Counter("xlate_cluster_takeovers_total",
			"coordinator starts that resumed prior state from the journal"),

		stageCell:        stageHistogram(reg, "cell"),
		stageDispatch:    stageHistogram(reg, "dispatch"),
		stageWorkerQueue: stageHistogram(reg, "worker_queue"),
		stageWorkerExec:  stageHistogram(reg, "worker_exec"),
		stageFederation:  stageHistogram(reg, "federation"),
		stageLocal:       stageHistogram(reg, "local"),
	}
}

// stageHistogram registers one stage of the per-cell latency breakdown.
func stageHistogram(reg *telemetry.Registry, stage string) *telemetry.Histogram {
	return reg.Histogram("xlate_cluster_stage_seconds",
		"per-stage latency of a cell's journey through the cluster",
		telemetry.DurationBuckets(), telemetry.L("stage", stage))
}

// workerCells returns the per-worker dispatched-cells counter.
func (m *clusterMetrics) workerCells(id string) *telemetry.Counter {
	return m.reg.Counter("xlate_cluster_worker_cells_total",
		"cells dispatched to this worker", telemetry.L("worker", id))
}
