package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"xlate/internal/service/client"
	"xlate/internal/telemetry"
)

// statusProbeTimeout bounds each per-worker probe (the /status GET and
// the /metrics scrape). A worker that cannot answer in this window is
// reported degraded, not waited for.
const statusProbeTimeout = 2 * time.Second

// WorkerStatus is one worker row of the cluster status: the
// coordinator-side registry view plus the queue occupancy the worker
// itself reported when probed.
type WorkerStatus struct {
	WorkerInfo
	// QueueDepth and ActiveJobs come from the worker's own /status:
	// jobs admitted but not yet picked up, and jobs tracked by the
	// daemon (queued, running, or terminal within the retention window).
	QueueDepth int `json:"queue_depth"`
	ActiveJobs int `json:"active_jobs"`
	// ProbeError records a failed status probe; the registry half of
	// the row is still valid.
	ProbeError string `json:"probe_error,omitempty"`
}

// ClusterStatus is the coordinator's /status snapshot: ring membership
// and generation, per-worker queue depth, in-flight cells, and the
// counters that tell the crash-recovery story (requeues, federation,
// takeover) — the cluster-state half the daemon-level /status never
// had.
type ClusterStatus struct {
	RingGeneration int  `json:"ring_generation"`
	WorkersLive    int  `json:"workers_live"`
	InFlightCells  int  `json:"in_flight_cells"`
	CompletedCells int  `json:"completed_cells"`
	TookOver       bool `json:"took_over"`

	CellsExecuted    uint64 `json:"cells_executed"`
	CellsFederated   uint64 `json:"cells_federated"`
	Requeues         uint64 `json:"requeues"`
	FederationProbes uint64 `json:"federation_probes"`
	WorkersDead      uint64 `json:"workers_dead"`

	Workers []WorkerStatus `json:"workers"`
}

// workerProbe pairs a worker's registry snapshot with its client so
// probes run outside the coordinator lock.
type workerProbe struct {
	info WorkerInfo
	base string
	cl   *client.Client
}

// probeTargets snapshots every known worker under the lock: live ones
// first (ring order), dead ones after, matching Workers().
func (c *Coordinator) probeTargets() []workerProbe {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]workerProbe, 0, len(c.workers))
	add := func(w *worker) {
		out = append(out, workerProbe{info: c.infoLocked(w), base: w.base, cl: w.cl})
	}
	for _, id := range c.ring.Members() {
		if w, ok := c.workers[id]; ok {
			add(w)
		}
	}
	for _, w := range c.workers {
		if w.dead {
			add(w)
		}
	}
	return out
}

// Status builds the cluster status snapshot, probing each live worker's
// /status (bounded by statusProbeTimeout each) for queue occupancy.
func (c *Coordinator) Status(ctx context.Context) ClusterStatus {
	c.cmu.Lock()
	completed, inFlight := len(c.completed), len(c.flight)
	c.cmu.Unlock()
	st := ClusterStatus{
		RingGeneration: c.RingGeneration(),
		WorkersLive:    c.LiveWorkers(),
		InFlightCells:  inFlight,
		CompletedCells: completed,
		TookOver:       c.tookOver,

		CellsExecuted:    c.m.cellsExecuted.Load(),
		CellsFederated:   c.m.cellsFederated.Load(),
		Requeues:         c.m.requeues.Load(),
		FederationProbes: c.m.fedProbes.Load(),
		WorkersDead:      c.m.workersDead.Load(),
	}
	for _, p := range c.probeTargets() {
		row := WorkerStatus{WorkerInfo: p.info}
		if !p.info.Dead {
			pctx, cancel := context.WithTimeout(ctx, statusProbeTimeout)
			snap, err := p.cl.Status(pctx)
			cancel()
			if err != nil {
				row.ProbeError = err.Error()
			} else {
				row.QueueDepth = snap.QueueDepth
				row.ActiveJobs = len(snap.Jobs)
			}
		}
		st.Workers = append(st.Workers, row)
	}
	return st
}

// FederatedMetrics scrapes every live worker's /metrics over HTTP and
// writes the merged Prometheus exposition (telemetry.FederateMetrics):
// summed counters and gauges, element-wise-merged histograms, plus
// per-worker labeled series. Workers that fail to answer within the
// probe timeout are skipped and noted as comment lines at the top, so
// a flaky worker degrades the exposition instead of failing it.
func (c *Coordinator) FederatedMetrics(ctx context.Context, w io.Writer) error {
	var targets []workerProbe
	for _, p := range c.probeTargets() {
		if !p.info.Dead {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].info.ID < targets[j].info.ID })

	var sources []telemetry.ScrapedExposition
	for _, t := range targets {
		body, err := scrapeMetrics(ctx, t.base)
		if err != nil {
			if _, werr := fmt.Fprintf(w, "# federation: worker %s scrape failed: %v\n", t.info.ID, err); werr != nil {
				return werr
			}
			c.cfg.Logf("metrics federation: worker %s: %v", t.info.ID, err)
			continue
		}
		sources = append(sources, telemetry.ScrapedExposition{Worker: t.info.ID, Text: body})
	}
	return telemetry.FederateMetrics(w, sources)
}

// scrapeMetrics fetches one worker's /metrics exposition.
func scrapeMetrics(ctx context.Context, base string) ([]byte, error) {
	sctx, cancel := context.WithTimeout(ctx, statusProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
