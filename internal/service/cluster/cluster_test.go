package cluster

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
)

// testOptions is the reduced-scale fig2 configuration every cluster
// test runs: 24 cells (8 TLB-intensive workloads × 3 configs), small
// enough to finish in seconds.
func testOptions() exper.Options {
	return exper.Options{Instrs: 200_000, Scale: 0.1, Seed: 7}
}

func fig2(t *testing.T) exper.Experiment {
	t.Helper()
	e, ok := exper.ByID("fig2")
	if !ok {
		t.Fatal("no fig2 experiment")
	}
	return e
}

// singleProcessReport renders the reference report the cluster runs
// must match byte for byte.
func singleProcessReport(t *testing.T) string {
	t.Helper()
	s := harness.New(harness.Config{Workers: 4, Options: testOptions()})
	results, err := s.Run(context.Background(), []exper.Experiment{fig2(t)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed in the reference run", n)
	}
	return buf.String()
}

func fastRetry() client.Backoff {
	return client.Backoff{Attempts: 3, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, Seed: 7}
}

func metric(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	// Registering an existing name returns the existing handle.
	return reg.Counter(name, "").Load()
}

func TestDevClusterByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	want := singleProcessReport(t)

	reg := telemetry.NewRegistry()
	dev, err := StartDev(context.Background(), DevConfig{
		Workers:  3,
		Options:  testOptions(),
		Retry:    fastRetry(),
		Registry: reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := dev.Run(ctx, []exper.Experiment{fig2(t)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed in the cluster run", n)
	}
	if buf.String() != want {
		t.Errorf("cluster report differs from the single-process report:\n--- cluster\n%s\n--- single\n%s", buf.String(), want)
	}

	if got := metric(t, reg, "xlate_cluster_cells_executed_total"); got != 24 {
		t.Errorf("cells executed = %d, want 24", got)
	}
	if got := metric(t, reg, "xlate_cluster_cells_local_total"); got != 0 {
		t.Errorf("%d cells fell back to local execution with 3 healthy workers", got)
	}
	if got := metric(t, reg, "xlate_cluster_workers_dead_total"); got != 0 {
		t.Errorf("%d workers died in a chaos-free run", got)
	}
}

// The satellite-3 requeue test: kill a worker mid-experiment and
// require (a) the merged report byte-identical to a single-process run,
// (b) the death and requeues visible in metrics, and (c) no completed
// cell executed twice — the cells-executed counter equals the planned
// cell count exactly.
func TestDevClusterRequeueOnWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	want := singleProcessReport(t)

	reg := telemetry.NewRegistry()
	dev, err := StartDev(context.Background(), DevConfig{
		Workers: 3,
		Options: testOptions(),
		Retry:   fastRetry(),
		// The ring assigns w0 13 of fig2's 24 cells (2–3 RPCs each), so
		// its 10th RPC lands mid-run: some of its cells are already
		// merged, the rest are in flight or queued when it dies.
		Chaos:            []Directive{{Kind: "kill", Worker: 0, AtRPC: 10}},
		HeartbeatTimeout: 500 * time.Millisecond,
		Registry:         reg,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := dev.Run(ctx, []exper.Experiment{fig2(t)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed after the worker kill", n)
	}
	if buf.String() != want {
		t.Errorf("post-kill merged report differs from the single-process report:\n--- cluster\n%s\n--- single\n%s", buf.String(), want)
	}

	if got := metric(t, reg, "xlate_cluster_workers_dead_total"); got != 1 {
		t.Errorf("workers dead = %d, want exactly the killed one", got)
	}
	if got := metric(t, reg, "xlate_cluster_requeues_total"); got == 0 {
		t.Error("no requeues recorded although a worker died mid-run")
	}
	if got := metric(t, reg, "xlate_cluster_cells_executed_total"); got != 24 {
		t.Errorf("cells executed = %d, want 24 — a completed cell was recomputed (or lost)", got)
	}
	if dev.Coordinator().LiveWorkers() != 2 {
		t.Errorf("live workers = %d, want 2", dev.Coordinator().LiveWorkers())
	}
}

// Zero live workers must degrade to local execution, not hang.
func TestCoordinatorLocalFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second run")
	}
	want := singleProcessReport(t)

	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(Config{
		Options:  testOptions(),
		Retry:    fastRetry(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.End()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := coord.RunSuite(ctx, []exper.Experiment{fig2(t)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed in the workerless run", n)
	}
	if buf.String() != want {
		t.Error("workerless local-fallback report differs from the single-process report")
	}
	if got := metric(t, reg, "xlate_cluster_cells_local_total"); got != 24 {
		t.Errorf("cells local = %d, want all 24", got)
	}
}

// A worker that stops heartbeating is declared dead by the watchdog
// and leaves the ring.
func TestHeartbeatTimeoutDeclaresDead(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(Config{
		HeartbeatTimeout: 80 * time.Millisecond,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.End()

	coord.AddWorker("w0", "http://127.0.0.1:1")
	if coord.LiveWorkers() != 1 {
		t.Fatal("worker did not join")
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never declared the silent worker dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metric(t, reg, "xlate_cluster_workers_dead_total"); got != 1 {
		t.Errorf("workers dead = %d, want 1", got)
	}
	// A heartbeat from the dead worker is refused — it must rejoin.
	if coord.Heartbeat("w0") {
		t.Error("heartbeat from a dead worker accepted")
	}
	coord.AddWorker("w0", "http://127.0.0.1:1")
	if coord.LiveWorkers() != 1 {
		t.Error("dead worker could not rejoin")
	}
}

// Dev-cluster control plane over real HTTP: join, heartbeat, leave.
func TestControlPlaneJoinLeave(t *testing.T) {
	dev, err := StartDev(context.Background(), DevConfig{
		Workers:          2,
		Options:          testOptions(),
		HeartbeatTimeout: time.Second,
		HeartbeatEvery:   50 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	if n := dev.Coordinator().LiveWorkers(); n != 2 {
		t.Fatalf("live workers after StartDev = %d, want 2", n)
	}
	infos := dev.Coordinator().Workers()
	if len(infos) != 2 {
		t.Fatalf("worker infos: %+v", infos)
	}
	for _, wi := range infos {
		if !strings.HasPrefix(wi.ID, "w") || wi.Dead {
			t.Errorf("unexpected worker info %+v", wi)
		}
	}

	// Killing a worker stops its heartbeats; the leave it sends on the
	// way out (or the watchdog) prunes it from the ring.
	dev.KillWorker(0)
	deadline := time.Now().Add(5 * time.Second)
	for dev.Coordinator().LiveWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("killed worker never left the ring")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
