package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// ErrCoordinatorDown is the cause a suite's context is cancelled with
// when the chaos injector kills the coordinator mid-run. Soak suites
// classify on it: wait for the takeover coordinator, then re-run — the
// journal guarantees the re-run resumes instead of restarting.
var ErrCoordinatorDown = errors.New("cluster: coordinator down")

// DevConfig parameterizes StartDev.
type DevConfig struct {
	// Workers is the number of in-process worker daemons (default 3).
	Workers int
	// WorkerExecutors is each worker daemon's job-executor count
	// (default 2).
	WorkerExecutors int
	// CellWorkers is the coordinator's dispatch fan-out (default 8).
	CellWorkers int
	// HeartbeatTimeout / HeartbeatEvery tune the health protocol
	// (defaults 2s / timeout÷4 — fast enough that a killed worker is
	// declared dead within a dev run).
	HeartbeatTimeout time.Duration
	HeartbeatEvery   time.Duration
	// Retry is the coordinator→worker transient backoff.
	Retry client.Backoff
	// Options is the base experiment configuration.
	Options exper.Options
	// Checkpoint / Resume are the coordinator-side harness journal.
	Checkpoint string
	Resume     bool
	// Journal is the coordinator's crash journal, reopened by every
	// coordinator generation ("" disables, which also disables
	// RestartCoordinator's resume guarantee).
	Journal string
	// OnJournalAppend is forwarded to every coordinator generation.
	OnJournalAppend func(cells int)
	// TraceDir, when set, enables the trace subsystem (DESIGN.md §15):
	// the coordinator serves a segment store rooted at TraceDir/coord —
	// ingestion plus content-hash fetch on the control plane — and each
	// worker daemon holds its own store at TraceDir/w<i> with the
	// coordinator as its fetch upstream, so a dispatched trace-backed
	// cell pulls its segment on first touch and replays locally after.
	TraceDir string
	// Chaos is the deterministic fault plan (see ParseChaos).
	Chaos []Directive
	// Registry receives coordinator+harness metrics (nil = private).
	// Every coordinator generation shares it, so counters accumulate
	// across takeovers — the property the no-double-execution
	// assertions rely on.
	Registry *telemetry.Registry
	// Tracer, when set, is handed to every coordinator generation: the
	// distributed cell trace (Config.Tracer) survives takeovers on the
	// same output. Workers deliberately get no tracer of their own —
	// their spans reach the trace through the coordinator's
	// reconstruction, which keeps the merged trace on one clock.
	Tracer *telemetry.Tracer
	// Logf receives cluster log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DevCluster is the single-binary loopback cluster behind
// `eeatd -cluster N`: one coordinator plus N in-process worker daemons,
// each a real service.Server behind a real TCP listener, joined over
// the real control-plane HTTP — so CI exercises dispatch, heartbeats,
// death, requeue, and coordinator takeover through the same code paths
// a multi-host deployment uses, without any infrastructure.
type DevCluster struct {
	cfg             DevConfig
	baseCtx         context.Context // StartDev's ctx; every generation and worker context derives from it
	coordAddr       string          // pinned TCP address, reused across coordinator generations
	coordBase       string
	workers         []*devWorker
	newWorkerClient func(id, base string) *client.Client
	coordTraces     *tracec.Executor // shared by every coordinator generation

	mu        sync.Mutex
	coord     *Coordinator
	coordSrv  *http.Server
	coordDown bool
	genCtx    context.Context
	genCancel context.CancelCauseFunc

	coordKilled atomic.Bool // killcoord fired (exactly once per run)
	restarts    *telemetry.Counter
}

type devWorker struct {
	id   string
	addr string
	svc  *service.Server
	srv  *http.Server

	hbCancel context.CancelCauseFunc
	killed   atomic.Bool
}

// StartDev boots the dev cluster and blocks until every worker has
// joined the ring. Callers must Close it. ctx is the cluster's root:
// every coordinator-generation context and worker heartbeat loop
// derives from it, so cancelling it (Ctrl-C in eeatd) reaches every
// goroutine the cluster spawns.
func StartDev(ctx context.Context, cfg DevConfig) (*DevCluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.WorkerExecutors <= 0 {
		cfg.WorkerExecutors = 2
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.HeartbeatTimeout / 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	for _, d := range cfg.Chaos {
		if d.Kind != kindKillCoord && d.Worker >= cfg.Workers {
			return nil, fmt.Errorf("%w: worker index %d with only %d workers", errBadChaos, d.Worker, cfg.Workers)
		}
	}

	dev := &DevCluster{
		cfg:     cfg,
		baseCtx: ctx,
		restarts: cfg.Registry.Counter("xlate_cluster_coordinator_restarts_total",
			"coordinator generations started after a kill (takeover-resumes)"),
	}

	// One chaos transport per worker index, created up front and reused
	// across rejoins AND coordinator generations, so the RPC ordinals
	// directives fire on are counted over the whole run, not per client.
	transports := make([]*chaosTransport, cfg.Workers)
	for i := range transports {
		transports[i] = newChaosTransport(i, nil, cfg.Chaos, dev.killByIndex)
	}

	// killcoord rides the journal's cell count — the one clock that
	// survives the kill. The trigger fires exactly once per run: after
	// the restart the replayed count is already past the threshold, and
	// re-firing would kill every takeover generation forever.
	var killCoordAt uint64
	for _, d := range cfg.Chaos {
		if d.Kind == kindKillCoord {
			killCoordAt = d.AtRPC
		}
	}
	if userHook := cfg.OnJournalAppend; killCoordAt > 0 {
		dev.cfg.OnJournalAppend = func(cells int) {
			if userHook != nil {
				userHook(cells)
			}
			if uint64(cells) >= killCoordAt && dev.coordKilled.CompareAndSwap(false, true) {
				dev.cfg.Logf("chaos: journal reached %d cells; killing coordinator", cells)
				go dev.KillCoordinator()
			}
		}
	}

	if cfg.TraceDir != "" {
		// One store (and one in-memory LRU) shared across coordinator
		// generations: segments are cache entries on disk, so a takeover
		// coordinator serves everything its predecessor ingested.
		st, err := tracec.OpenStore(filepath.Join(cfg.TraceDir, "coord"), 0, 0)
		if err != nil {
			return nil, err
		}
		dev.coordTraces = &tracec.Executor{Store: st, Logf: cfg.Logf}
	}

	coordLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listener: %w", err)
	}
	dev.coordAddr = coordLn.Addr().String()
	dev.coordBase = "http://" + dev.coordAddr
	dev.newWorkerClient = func(id, base string) *client.Client {
		cl := client.New(base)
		cl.Retry = cfg.Retry
		if i, err := workerIndex(id); err == nil && i < len(transports) {
			cl.HTTP = &http.Client{Transport: transports[i]}
		}
		return cl
	}

	if err := dev.startCoordinator(coordLn); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Workers; i++ {
		w, err := dev.startWorker(i)
		if err != nil {
			dev.Close()
			return nil, err
		}
		dev.workers = append(dev.workers, w)
	}
	return dev, nil
}

func workerIndex(id string) (int, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "w"))
	if err != nil {
		return 0, fmt.Errorf("cluster: worker id %q is not w<index>: %w", id, err)
	}
	return n, nil
}

// startCoordinator builds a coordinator generation and serves its
// control plane on ln. Called at StartDev and by RestartCoordinator.
func (d *DevCluster) startCoordinator(ln net.Listener) error {
	coord, err := NewCoordinator(Config{
		CellWorkers:      d.cfg.CellWorkers,
		HeartbeatTimeout: d.cfg.HeartbeatTimeout,
		Retry:            d.cfg.Retry,
		Options:          d.cfg.Options,
		Checkpoint:       d.cfg.Checkpoint,
		Resume:           d.cfg.Resume,
		Journal:          d.cfg.Journal,
		OnJournalAppend:  d.cfg.OnJournalAppend,
		Registry:         d.cfg.Registry,
		Tracer:           d.cfg.Tracer,
		Traces:           d.coordTraces,
		Logf:             d.cfg.Logf,
		NewWorkerClient:  d.newWorkerClient,
	})
	if err != nil {
		ln.Close()
		return err
	}
	srv := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	// The generation context hangs off the cluster root: a killed
	// coordinator cancels it with ErrCoordinatorDown, and a cancelled
	// root (operator shutdown) reaches every suite the same way.
	genCtx, genCancel := context.WithCancelCause(d.baseCtx)
	d.mu.Lock()
	d.coord, d.coordSrv = coord, srv
	d.genCtx, d.genCancel = genCtx, genCancel
	d.coordDown = false
	d.mu.Unlock()
	return nil
}

func (d *DevCluster) startWorker(i int) (*devWorker, error) {
	id := "w" + strconv.Itoa(i)
	logf := func(f string, args ...any) { d.cfg.Logf(id+": "+f, args...) }
	scfg := service.Config{
		Workers:  d.cfg.WorkerExecutors,
		Registry: telemetry.NewRegistry(),
		Logf:     logf,
	}
	if d.cfg.TraceDir != "" {
		ws, err := tracec.OpenStore(filepath.Join(d.cfg.TraceDir, id), 0, 0)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s: %w", id, err)
		}
		scfg.TraceStore = ws
		scfg.TraceUpstream = d.coordBase
	}
	svc, err := service.New(scfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", id, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, fmt.Errorf("cluster: worker %s listener: %w", id, err)
	}
	w := &devWorker{
		id:   id,
		addr: "http://" + ln.Addr().String(),
		svc:  svc,
		srv: &http.Server{
			Handler:           svc.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
	}
	go w.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown

	// Join synchronously so the suite never starts against a ring that
	// is still filling, then keep the heartbeat loop running.
	joinCtx, cancel := context.WithTimeout(d.baseCtx, 5*time.Second)
	err = postControl(joinCtx, nil, d.coordBase, "join", joinRequest{ID: id, Addr: w.addr})
	cancel()
	if err != nil {
		w.srv.Close()
		svc.Close()
		return nil, fmt.Errorf("cluster: worker %s join: %w", id, err)
	}
	hbCtx, hbCancel := context.WithCancelCause(d.baseCtx)
	w.hbCancel = hbCancel
	hb := HeartbeatSender{
		Coord: d.coordBase, ID: id, Addr: w.addr,
		Every: d.cfg.HeartbeatEvery, Retry: d.cfg.Retry, Logf: logf,
	}
	go hb.Run(hbCtx)
	return w, nil
}

// KillWorker simulates a worker crash: heartbeats stop, the listener
// closes (in-flight connections are severed, like a dead process), and
// the worker's service shuts down. Idempotent.
func (d *DevCluster) KillWorker(i int) {
	if i < 0 || i >= len(d.workers) {
		return
	}
	w := d.workers[i]
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	d.cfg.Logf("chaos: killing worker %s", w.id)
	w.hbCancel(ErrCrashed)
	w.srv.Close() //nolint:errcheck // severing connections is the point
	w.svc.Close()
}

// StopWorker shuts a worker down gracefully, the way a SIGTERM'd
// worker process exits: a synchronous leave (so the coordinator
// requeues its cells now, not at the heartbeat timeout), then a drain
// of in-flight cells, then the listener closes. Idempotent with
// KillWorker.
func (d *DevCluster) StopWorker(ctx context.Context, i int) error {
	if i < 0 || i >= len(d.workers) {
		return nil
	}
	w := d.workers[i]
	if !w.killed.CompareAndSwap(false, true) {
		return nil
	}
	d.cfg.Logf("stopping worker %s gracefully", w.id)
	w.hbCancel(ErrCrashed) // the sender's goodbye is redundant with ours
	err := Leave(ctx, d.coordBase, w.id)
	if derr := w.svc.Drain(ctx); derr != nil && err == nil {
		err = fmt.Errorf("cluster: worker %s drain: %w", w.id, derr)
	}
	w.srv.Close() //nolint:errcheck // shutting down
	w.svc.Close()
	return err
}

func (d *DevCluster) killByIndex(i int) {
	if i == coordinatorIndex {
		d.KillCoordinator()
		return
	}
	d.KillWorker(i)
}

// KillCoordinator simulates a coordinator crash: its listener closes
// severing every control and dispatch connection, the journal handle
// closes, and every suite running through it is cancelled with
// ErrCoordinatorDown. Workers keep executing cells already admitted —
// their daemon contexts outlive the coordinator, which is what the
// cache federation harvests after the restart. Idempotent.
func (d *DevCluster) KillCoordinator() {
	d.mu.Lock()
	if d.coordDown {
		d.mu.Unlock()
		return
	}
	d.coordDown = true
	coord, srv, cancel := d.coord, d.coordSrv, d.genCancel
	d.mu.Unlock()
	d.cfg.Logf("chaos: killing coordinator")
	srv.Close() //nolint:errcheck // severing connections is the point
	cancel(ErrCoordinatorDown)
	coord.End()
}

// RestartCoordinator starts the takeover coordinator generation on the
// same address: it replays the journal, re-adds the last known live
// workers, and serves the control plane again — the workers' heartbeat
// loops rejoin on their own within a beat (404 → join). No-op while
// the coordinator is up. The rebind retry loop waits on ctx, so a
// supervisor that gives up (operator shutdown mid-takeover) is not
// held hostage by a lingering port.
func (d *DevCluster) RestartCoordinator(ctx context.Context) error {
	d.mu.Lock()
	down := d.coordDown
	d.mu.Unlock()
	if !down {
		return nil
	}
	var ln net.Listener
	var err error
	// The old listener's port lingers briefly on some platforms; the
	// address must be stable so workers and clients need no rediscovery.
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", d.coordAddr)
		if err == nil {
			break
		}
		if serr := sleepCtx(ctx, 20*time.Millisecond); serr != nil {
			return fmt.Errorf("cluster: rebinding coordinator address %s: %w", d.coordAddr, serr)
		}
	}
	if err != nil {
		return fmt.Errorf("cluster: rebinding coordinator address %s: %w", d.coordAddr, err)
	}
	if err := d.startCoordinator(ln); err != nil {
		return err
	}
	d.restarts.Inc()
	d.cfg.Logf("coordinator restarted on %s", d.coordAddr)
	return nil
}

// CoordinatorBase returns the coordinator's base URL, stable across
// generations — tests and the load harness hit its /status and
// /v1/cluster/metrics endpoints through it.
func (d *DevCluster) CoordinatorBase() string { return d.coordBase }

// Coordinator returns the current coordinator generation.
func (d *DevCluster) Coordinator() *Coordinator {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.coord
}

// CoordinatorDown reports whether the coordinator is currently killed.
func (d *DevCluster) CoordinatorDown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.coordDown
}

// WaitCoordinator blocks until a coordinator generation is serving or
// ctx ends.
func (d *DevCluster) WaitCoordinator(ctx context.Context) error {
	for {
		if !d.CoordinatorDown() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for coordinator: %w", context.Cause(ctx))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Run executes experiments across the cluster through the current
// coordinator generation. If that generation is killed mid-run the
// suite is cancelled and Run reports ErrCoordinatorDown; the caller
// re-runs after RestartCoordinator and the journal resumes it.
func (d *DevCluster) Run(ctx context.Context, exps []exper.Experiment) ([]harness.ExperimentResult, error) {
	d.mu.Lock()
	coord, gen := d.coord, d.genCtx
	d.mu.Unlock()
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stop := context.AfterFunc(gen, func() { cancel(ErrCoordinatorDown) })
	defer stop()
	results, err := coord.RunSuite(rctx, exps)
	if err != nil && errors.Is(context.Cause(rctx), ErrCoordinatorDown) {
		return results, fmt.Errorf("cluster: suite interrupted: %w", ErrCoordinatorDown)
	}
	return results, err
}

// Registry returns the cluster's metrics registry, shared by every
// coordinator generation.
func (d *DevCluster) Registry() *telemetry.Registry { return d.cfg.Registry }

// Close tears the cluster down: workers die (or are already dead), the
// current coordinator generation stops, the journal closes.
func (d *DevCluster) Close() {
	for i := range d.workers {
		d.KillWorker(i)
	}
	d.mu.Lock()
	coord, srv, down := d.coord, d.coordSrv, d.coordDown
	cancel := d.genCancel
	d.mu.Unlock()
	if down {
		return
	}
	if srv != nil {
		srv.Close() //nolint:errcheck // shutting down
	}
	if cancel != nil {
		cancel(ErrCoordinatorDown)
	}
	if coord != nil {
		coord.End()
	}
}
