package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
)

// DevConfig parameterizes StartDev.
type DevConfig struct {
	// Workers is the number of in-process worker daemons (default 3).
	Workers int
	// WorkerExecutors is each worker daemon's job-executor count
	// (default 2).
	WorkerExecutors int
	// CellWorkers is the coordinator's dispatch fan-out (default 8).
	CellWorkers int
	// HeartbeatTimeout / HeartbeatEvery tune the health protocol
	// (defaults 2s / timeout÷4 — fast enough that a killed worker is
	// declared dead within a dev run).
	HeartbeatTimeout time.Duration
	HeartbeatEvery   time.Duration
	// Retry is the coordinator→worker transient backoff.
	Retry client.Backoff
	// Options is the base experiment configuration.
	Options exper.Options
	// Checkpoint / Resume are the coordinator-side harness journal.
	Checkpoint string
	Resume     bool
	// Chaos is the deterministic fault plan (see ParseChaos).
	Chaos []Directive
	// Registry receives coordinator+harness metrics (nil = private).
	Registry *telemetry.Registry
	// Logf receives cluster log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DevCluster is the single-binary loopback cluster behind
// `eeatd -cluster N`: one coordinator plus N in-process worker daemons,
// each a real service.Server behind a real TCP listener, joined over
// the real control-plane HTTP — so CI exercises dispatch, heartbeats,
// death, and requeue through the same code paths a multi-host
// deployment uses, without any infrastructure.
type DevCluster struct {
	Coord *Coordinator

	cfg       DevConfig
	coordSrv  *http.Server
	coordBase string
	workers   []*devWorker
}

type devWorker struct {
	id   string
	addr string
	svc  *service.Server
	srv  *http.Server

	hbCancel context.CancelCauseFunc
	killed   atomic.Bool
}

// StartDev boots the dev cluster and blocks until every worker has
// joined the ring. Callers must Close it.
func StartDev(cfg DevConfig) (*DevCluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.WorkerExecutors <= 0 {
		cfg.WorkerExecutors = 2
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.HeartbeatTimeout / 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for _, d := range cfg.Chaos {
		if d.Worker >= cfg.Workers {
			return nil, fmt.Errorf("%w: worker index %d with only %d workers", errBadChaos, d.Worker, cfg.Workers)
		}
	}

	dev := &DevCluster{cfg: cfg}

	// One chaos transport per worker index, created up front and reused
	// across rejoins so the RPC ordinals directives fire on are counted
	// over the whole run, not per client.
	transports := make([]*chaosTransport, cfg.Workers)
	for i := range transports {
		transports[i] = newChaosTransport(i, nil, cfg.Chaos, dev.killByIndex)
	}

	dev.Coord = NewCoordinator(Config{
		CellWorkers:      cfg.CellWorkers,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Retry:            cfg.Retry,
		Options:          cfg.Options,
		Checkpoint:       cfg.Checkpoint,
		Resume:           cfg.Resume,
		Registry:         cfg.Registry,
		Logf:             cfg.Logf,
		NewWorkerClient: func(id, base string) *client.Client {
			cl := client.New(base)
			cl.Retry = cfg.Retry
			if i, err := workerIndex(id); err == nil && i < len(transports) {
				cl.HTTP = &http.Client{Transport: transports[i]}
			}
			return cl
		},
	})

	coordLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		dev.Coord.End()
		return nil, fmt.Errorf("cluster: coordinator listener: %w", err)
	}
	dev.coordSrv = &http.Server{
		Handler:           dev.Coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go dev.coordSrv.Serve(coordLn) //nolint:errcheck // ErrServerClosed on shutdown
	dev.coordBase = "http://" + coordLn.Addr().String()

	for i := 0; i < cfg.Workers; i++ {
		w, err := dev.startWorker(i)
		if err != nil {
			dev.Close()
			return nil, err
		}
		dev.workers = append(dev.workers, w)
	}
	return dev, nil
}

func workerIndex(id string) (int, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "w"))
	if err != nil {
		return 0, fmt.Errorf("cluster: worker id %q is not w<index>: %w", id, err)
	}
	return n, nil
}

func (d *DevCluster) startWorker(i int) (*devWorker, error) {
	id := "w" + strconv.Itoa(i)
	logf := func(f string, args ...any) { d.cfg.Logf(id+": "+f, args...) }
	svc, err := service.New(service.Config{
		Workers:  d.cfg.WorkerExecutors,
		Registry: telemetry.NewRegistry(),
		Logf:     logf,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", id, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, fmt.Errorf("cluster: worker %s listener: %w", id, err)
	}
	w := &devWorker{
		id:   id,
		addr: "http://" + ln.Addr().String(),
		svc:  svc,
		srv: &http.Server{
			Handler:           svc.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
	}
	go w.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown

	// Join synchronously so the suite never starts against a ring that
	// is still filling, then keep the heartbeat loop running.
	joinCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = postControl(joinCtx, d.coordBase, "join", joinRequest{ID: id, Addr: w.addr})
	cancel()
	if err != nil {
		w.srv.Close()
		svc.Close()
		return nil, fmt.Errorf("cluster: worker %s join: %w", id, err)
	}
	hbCtx, hbCancel := context.WithCancelCause(context.Background())
	w.hbCancel = hbCancel
	go HeartbeatLoop(hbCtx, d.coordBase, id, w.addr, d.cfg.HeartbeatEvery, logf)
	return w, nil
}

// KillWorker simulates a worker crash: heartbeats stop, the listener
// closes (in-flight connections are severed, like a dead process), and
// the worker's service shuts down. Idempotent.
func (d *DevCluster) KillWorker(i int) {
	if i < 0 || i >= len(d.workers) {
		return
	}
	w := d.workers[i]
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	d.cfg.Logf("chaos: killing worker %s", w.id)
	w.hbCancel(ErrCrashed)
	w.srv.Close() //nolint:errcheck // severing connections is the point
	w.svc.Close()
}

func (d *DevCluster) killByIndex(i int) { d.KillWorker(i) }

// Run executes experiments across the cluster.
func (d *DevCluster) Run(ctx context.Context, exps []exper.Experiment) ([]harness.ExperimentResult, error) {
	return d.Coord.RunSuite(ctx, exps)
}

// Registry returns the coordinator-side metrics registry.
func (d *DevCluster) Registry() *telemetry.Registry { return d.Coord.cfg.Registry }

// Close tears the cluster down: workers leave (or are already dead),
// the coordinator server stops, the watchdog ends.
func (d *DevCluster) Close() {
	for i := range d.workers {
		d.KillWorker(i)
	}
	if d.coordSrv != nil {
		d.coordSrv.Close() //nolint:errcheck // shutting down
	}
	d.Coord.End()
}
