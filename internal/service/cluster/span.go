package cluster

import (
	"time"

	"xlate/internal/service"
	"xlate/internal/telemetry"
)

// cellTrace carries one traced cell's identity through dispatch: the
// tracer, the cell's own track (so its spans render as one row), the
// root span id, and the trace id every span of the cell shares — the
// short form of the canonical cell key, which is what lets a reader
// (or a test) match coordinator-side and worker-side spans of the same
// cell. The zero value is inert: every emit method no-ops, so the
// untraced hot path pays one nil check and nothing else.
type cellTrace struct {
	tr    *telemetry.Tracer
	track uint64
	span  uint64
	id    string
}

// traceCell starts the coordinator-side trace of one cell (inert when
// no tracer is configured).
func (c *Coordinator) traceCell(key string) cellTrace {
	tr := c.cfg.Tracer
	if tr == nil {
		return cellTrace{}
	}
	return cellTrace{tr: tr, track: tr.NextTrack(), span: tr.NextSpan(), id: shortKey(key)}
}

func (ct cellTrace) active() bool { return ct.tr != nil }

// usSince converts a wall-clock instant to the trace's timestamp axis:
// microseconds since the coordinator started.
func (c *Coordinator) usSince(at time.Time) uint64 {
	return uint64(max(0, at.Sub(c.start).Microseconds()))
}

// spanRange emits one coordinator-side span covering [start, end].
func (c *Coordinator) spanRange(ct cellTrace, start, end time.Time, name string, args ...telemetry.KV) {
	if !ct.active() {
		return
	}
	ts := c.usSince(start)
	base := []telemetry.KV{{K: "trace_id", V: ct.id}, {K: "span", V: ct.span}}
	ct.tr.EmitSpan(ct.track, ts, c.usSince(end)-ts, "cluster", name, append(base, args...)...)
}

// event emits one coordinator-side instant event (enqueue, requeue) on
// the cell's track.
func (c *Coordinator) event(ct cellTrace, name string, args ...telemetry.KV) {
	if !ct.active() {
		return
	}
	base := []telemetry.KV{{K: "trace_id", V: ct.id}, {K: "span", V: ct.span}}
	ct.tr.Emit(ct.track, c.usSince(time.Now()), "cluster", name, append(base, args...)...)
}

// workerSpans stitches the worker-side half of a traced cell into the
// coordinator's trace. The worker cannot share our clock, but its
// terminal JobStatus reports how long the job queued and executed; the
// dispatch RPC ended at end, so the execution span ends there and the
// queue-wait span precedes it. The reconstruction ignores network
// transit (it lands inside the dispatch span's slack), which is exactly
// the error a cross-process trace merge must tolerate.
func (c *Coordinator) workerSpans(ct cellTrace, workerID string, end time.Time, st service.JobStatus) {
	if !ct.active() || st.TraceID != ct.id {
		return
	}
	if st.QueueSeconds <= 0 && st.ExecSeconds <= 0 {
		return // cache-served: nothing executed, nothing to draw
	}
	execStart := end.Add(-time.Duration(st.ExecSeconds * float64(time.Second)))
	queueStart := execStart.Add(-time.Duration(st.QueueSeconds * float64(time.Second)))
	args := []telemetry.KV{{K: "worker", V: workerID}}
	c.spanRange(ct, queueStart, execStart, "worker_queue", args...)
	c.spanRange(ct, execStart, end, "worker_exec", args...)
}
