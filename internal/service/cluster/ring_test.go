package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnership(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 5; i++ {
		if moves := r.Add(fmt.Sprintf("w%d", i)); moves != 64 {
			t.Fatalf("Add moved %d arcs, want 64", moves)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}

	keys := make([]string, 200)
	before := make(map[string]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%d", i)
		owner := r.Owner(keys[i])
		if owner == "" {
			t.Fatal("empty owner on a populated ring")
		}
		before[keys[i]] = owner
	}

	// Consistent hashing's whole point: removing one member moves only
	// the keys that member owned.
	r.Remove("w2")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "w2" {
			if after == "w2" || after == "" {
				t.Fatalf("key %s still owned by removed member", k)
			}
		} else if after != before[k] {
			t.Fatalf("key %s moved from %s to %s although its owner survived", k, before[k], after)
		}
	}

	// Load should spread: with 64 vnodes over 4 members, no member owns
	// everything and none owns nothing.
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != 4 {
		t.Fatalf("expected 4 owners, got %v", counts)
	}
}

func TestRingPreferenceList(t *testing.T) {
	r := NewRing(16)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	owners := r.Owners("some-cell")
	if len(owners) != 3 {
		t.Fatalf("preference list %v, want all 3 members", owners)
	}
	seen := map[string]bool{}
	for _, id := range owners {
		if seen[id] {
			t.Fatalf("duplicate %s in preference list %v", id, owners)
		}
		seen[id] = true
	}
	if owners[0] != r.Owner("some-cell") {
		t.Error("preference list head is not the owner")
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if r.Owner("k") != "" {
		t.Error("empty ring has an owner")
	}
	r.Add("a")
	if moves := r.Add("a"); moves != 0 {
		t.Errorf("re-adding moved %d arcs", moves)
	}
	if moves := r.Remove("absent"); moves != 0 {
		t.Errorf("removing an absent member moved %d arcs", moves)
	}
}

func TestParseChaos(t *testing.T) {
	dirs, err := ParseChaos("kill:1@4, drop:0@2, delay:2@1:50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("parsed %d directives", len(dirs))
	}
	if dirs[0] != (Directive{Kind: "kill", Worker: 1, AtRPC: 4}) {
		t.Errorf("kill parsed as %+v", dirs[0])
	}
	if dirs[2].Kind != "delay" || dirs[2].Delay.Milliseconds() != 50 {
		t.Errorf("delay parsed as %+v", dirs[2])
	}
	if got, err := ParseChaos(""); err != nil || got != nil {
		t.Errorf("empty plan: %v, %v", got, err)
	}
	for _, bad := range []string{"kill:1", "boom:0@1", "kill:x@1", "kill:0@0", "delay:0@1:xs"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}
