package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"xlate/internal/telemetry"
)

// ErrCrashed, passed as a cancellation cause to HeartbeatLoop's
// context, suppresses the graceful leave: the worker vanishes without
// a goodbye, like a crashed process. The chaos injector uses it.
var ErrCrashed = errors.New("cluster: worker crashed")

// joinRequest is the body of POST /v1/cluster/join and
// /v1/cluster/leave; heartbeat sends only the id.
type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// Handler returns the coordinator's control-plane API:
//
//	POST /v1/cluster/join       {"id","addr"} — register / rejoin
//	POST /v1/cluster/heartbeat  {"id"}        — 404 asks the worker to rejoin
//	POST /v1/cluster/leave      {"id"}        — graceful deregistration
//	GET  /v1/cluster/workers                  — registry snapshot
//	GET  /metrics, /healthz
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		if req.Addr == "" {
			http.Error(w, "cluster: join needs an addr", http.StatusBadRequest)
			return
		}
		c.AddWorker(req.ID, req.Addr)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		if !c.Heartbeat(req.ID) {
			http.Error(w, "cluster: unknown or dead worker; rejoin", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/leave", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		c.RemoveWorker(req.ID)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Workers()) //nolint:errcheck // best-effort status surface
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", telemetry.MetricsHandler(c.cfg.Registry))
	return mux
}

// decodeJoin parses a bounded control-plane body; every cluster RPC
// body is a few dozen bytes, so the 64 KiB cap is pure abuse defense.
func (c *Coordinator) decodeJoin(w http.ResponseWriter, r *http.Request) (joinRequest, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return joinRequest{}, false
	}
	var req joinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.ID == "" {
		http.Error(w, "cluster: bad control request", http.StatusBadRequest)
		return joinRequest{}, false
	}
	return req, true
}

// HeartbeatLoop is the worker side of the health protocol: join the
// coordinator, then heartbeat every `every` until ctx ends, rejoining
// whenever the coordinator answers 404 (it declared us dead, or it
// restarted — either way the cure is a fresh join, which also puts the
// worker back on the ring). Transient failures are logged and retried
// on the next tick; the loop never gives up while ctx lives.
func HeartbeatLoop(ctx context.Context, coordBase, id, addr string, every time.Duration, logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if every <= 0 {
		every = time.Second
	}
	if err := postControl(ctx, coordBase, "join", joinRequest{ID: id, Addr: addr}); err != nil {
		logf("cluster join: %v (will retry)", err)
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if errors.Is(context.Cause(ctx), ErrCrashed) {
				// A simulated crash dies silently: the coordinator must
				// find out the hard way (failed RPC or missed
				// heartbeats), exactly like a real dead process.
				return
			}
			// Graceful shutdown: best-effort goodbye so the coordinator
			// rebalances now instead of at the heartbeat timeout.
			leaveCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			postControl(leaveCtx, coordBase, "leave", joinRequest{ID: id}) //nolint:errcheck // shutting down
			cancel()
			return
		case <-t.C:
			err := postControl(ctx, coordBase, "heartbeat", joinRequest{ID: id})
			if err == nil {
				continue
			}
			if errNotFound(err) {
				logf("coordinator forgot us; rejoining")
				if err := postControl(ctx, coordBase, "join", joinRequest{ID: id, Addr: addr}); err != nil {
					logf("cluster rejoin: %v (will retry)", err)
				}
				continue
			}
			if ctx.Err() == nil {
				logf("heartbeat: %v (will retry)", err)
			}
		}
	}
}

// controlError carries the HTTP status of a failed control call.
type controlError struct {
	op   string
	code int
}

func (e *controlError) Error() string {
	return fmt.Sprintf("cluster: %s: HTTP %d", e.op, e.code)
}

func errNotFound(err error) bool {
	var ce *controlError
	return errors.As(err, &ce) && ce.code == http.StatusNotFound
}

func postControl(ctx context.Context, base, op string, req joinRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s: %w", op, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/"+op, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", op, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: control call failed: %w", &controlError{op: op, code: resp.StatusCode})
	}
	return nil
}
