package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"xlate/internal/service/client"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// ErrCrashed, passed as a cancellation cause to HeartbeatLoop's
// context, suppresses the graceful leave: the worker vanishes without
// a goodbye, like a crashed process. The chaos injector uses it.
var ErrCrashed = errors.New("cluster: worker crashed")

// joinRequest is the body of POST /v1/cluster/join and
// /v1/cluster/leave; heartbeat sends only the id.
type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// Handler returns the coordinator's control-plane API:
//
//	POST /v1/cluster/join       {"id","addr"} — register / rejoin
//	POST /v1/cluster/heartbeat  {"id"}        — 404 asks the worker to rejoin
//	POST /v1/cluster/leave      {"id"}        — graceful deregistration
//	GET  /v1/cluster/workers                  — registry snapshot
//	GET  /v1/cluster/metrics                  — federated worker metrics
//	GET  /status                              — cluster status + registry
//	GET  /metrics, /healthz
//
// /metrics is the coordinator's own registry; /v1/cluster/metrics
// scrapes every live worker and merges their registries into one
// exposition (summed counters, merged histograms, per-worker series).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		if req.Addr == "" {
			http.Error(w, "cluster: join needs an addr", http.StatusBadRequest)
			return
		}
		c.AddWorker(req.ID, req.Addr)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		if !c.Heartbeat(req.ID) {
			http.Error(w, "cluster: unknown or dead worker; rejoin", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/leave", func(w http.ResponseWriter, r *http.Request) {
		req, ok := c.decodeJoin(w, r)
		if !ok {
			return
		}
		c.RemoveWorker(req.ID)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Workers()) //nolint:errcheck // best-effort status surface
	})
	mux.HandleFunc("/v1/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.FederatedMetrics(r.Context(), w); err != nil {
			c.cfg.Logf("federated metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if c.cfg.Traces != nil && c.cfg.Traces.Store != nil {
		// Trace ingestion on the control plane (DESIGN.md §15): streams
		// ingested here become "trace:<key>" workloads, and workers fetch
		// dispatched trace-backed cells' segments from this store by
		// content hash.
		api := tracec.NewAPI(c.cfg.Traces.Store, tracec.APIConfig{Logf: c.cfg.Logf})
		mux.Handle("/v1/traces", api)
		mux.Handle("/v1/traces/", api)
	}
	mux.Handle("/metrics", telemetry.MetricsHandler(c.cfg.Registry))
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		telemetry.StatusHandler(c.cfg.Registry, func() any {
			return c.Status(r.Context())
		}).ServeHTTP(w, r)
	})
	return mux
}

// decodeJoin parses a bounded control-plane body; every cluster RPC
// body is a few dozen bytes, so the 64 KiB cap is pure abuse defense.
func (c *Coordinator) decodeJoin(w http.ResponseWriter, r *http.Request) (joinRequest, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return joinRequest{}, false
	}
	var req joinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.ID == "" {
		http.Error(w, "cluster: bad control request", http.StatusBadRequest)
		return joinRequest{}, false
	}
	return req, true
}

// HeartbeatSender is the worker side of the health protocol: join the
// coordinator, then heartbeat every Every until ctx ends, rejoining
// whenever the coordinator answers 404 (it declared us dead, or it
// restarted with takeover state — either way the cure is a fresh join,
// which also puts the worker back on the ring).
//
// A transient failure does not wait for the next tick: the beat is
// retried within the beat window on the Retry schedule, so one dropped
// packet cannot cost a whole heartbeat period and push a healthy
// worker over the coordinator's timeout. The loop never gives up while
// ctx lives.
type HeartbeatSender struct {
	// Coord is the coordinator base URL; ID and Addr identify this
	// worker (Addr is what the coordinator dispatches to).
	Coord, ID, Addr string
	// Every is the beat period (default 1s).
	Every time.Duration
	// Retry paces in-beat retries of a failed heartbeat (zero value: 4
	// attempts, 100ms doubling).
	Retry client.Backoff
	// HTTP is the control-plane client (default http.DefaultClient).
	// The dev cluster injects its chaos transport here.
	HTTP *http.Client
	// Logf receives protocol noise (nil = silent).
	Logf func(format string, args ...any)
}

// Run drives the protocol until ctx ends. When the cancellation cause
// is ErrCrashed the worker vanishes silently, like a dead process;
// otherwise it posts a best-effort leave so the coordinator rebalances
// now instead of at the heartbeat timeout.
func (h *HeartbeatSender) Run(ctx context.Context) {
	logf := h.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	every := h.Every
	if every <= 0 {
		every = time.Second
	}
	attempts := h.Retry.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	if err := h.post(ctx, "join", joinRequest{ID: h.ID, Addr: h.Addr}); err != nil {
		logf("cluster join: %v (will retry)", err)
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if errors.Is(context.Cause(ctx), ErrCrashed) {
				// A simulated crash dies silently: the coordinator must
				// find out the hard way (failed RPC or missed
				// heartbeats), exactly like a real dead process.
				return
			}
			// The leave runs because ctx just ended, so it cannot hang off
			// ctx's own deadline; WithoutCancel detaches deliberately while
			// keeping the context's values, with a fresh 1s cap.
			leaveCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), time.Second)
			h.post(leaveCtx, "leave", joinRequest{ID: h.ID}) //nolint:errcheck // shutting down
			cancel()
			return
		case <-t.C:
			h.beat(ctx, attempts, logf)
		}
	}
}

// beat delivers one heartbeat, absorbing transient failures with
// capped in-beat retries and answering a 404 with a rejoin.
func (h *HeartbeatSender) beat(ctx context.Context, attempts int, logf func(string, ...any)) {
	for attempt := 1; ; attempt++ {
		err := h.post(ctx, "heartbeat", joinRequest{ID: h.ID})
		if err == nil {
			return
		}
		if errNotFound(err) {
			logf("coordinator forgot us; rejoining")
			if err := h.post(ctx, "join", joinRequest{ID: h.ID, Addr: h.Addr}); err != nil {
				logf("cluster rejoin: %v (will retry)", err)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		if attempt >= attempts {
			logf("heartbeat gave up after %d attempts: %v (next beat will retry)", attempt, err)
			return
		}
		logf("heartbeat attempt %d: %v (retrying in-beat)", attempt, err)
		if sleepCtx(ctx, h.Retry.Delay("heartbeat|"+h.ID, attempt)) != nil {
			return
		}
	}
}

func (h *HeartbeatSender) post(ctx context.Context, op string, req joinRequest) error {
	return postControl(ctx, h.HTTP, h.Coord, op, req)
}

// Leave deregisters a worker gracefully — the SIGTERM path: the
// coordinator requeues the worker's keyspace immediately instead of
// waiting out the heartbeat timeout.
func Leave(ctx context.Context, coordBase, id string) error {
	if err := postControl(ctx, nil, coordBase, "leave", joinRequest{ID: id}); err != nil {
		return fmt.Errorf("cluster: graceful leave of worker %s: %w", id, err)
	}
	return nil
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// controlError carries the HTTP status of a failed control call.
type controlError struct {
	op   string
	code int
}

func (e *controlError) Error() string {
	return fmt.Sprintf("cluster: %s: HTTP %d", e.op, e.code)
}

func errNotFound(err error) bool {
	var ce *controlError
	return errors.As(err, &ce) && ce.code == http.StatusNotFound
}

func postControl(ctx context.Context, hc *http.Client, base, op string, req joinRequest) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s: %w", op, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/"+op, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", op, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: control call failed: %w", &controlError{op: op, code: resp.StatusCode})
	}
	return nil
}
