package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xlate/internal/service/client"
)

// Chaos directives, in the spirit of internal/audit/inject: a fault is
// armed on a deterministic trigger — the Nth coordinator RPC sent to a
// given worker — so a chaos run is exactly reproducible without any
// randomness, the same discipline the simulator's fault injector uses
// (counts, not clocks).
//
// Directive grammar (comma-separated list):
//
//	kill:W@N        kill worker W's process when RPC N reaches it
//	drop:W@N        fail RPC N to worker W with a connection error
//	delay:W@N:DUR   delay RPC N to worker W by DUR (e.g. 50ms)
//	killcoord:N     kill the coordinator when its journal holds N cells
//
// W is the dev-cluster worker index, N the 1-based RPC ordinal — except
// for killcoord, whose N counts fsync'd cell records in the coordinator
// journal, the one clock that survives the kill. Both triggers are
// counts, never wall time.
type Directive struct {
	Kind   string // "kill", "drop", "delay", "killcoord"
	Worker int    // dev-cluster worker index (coordinatorIndex for killcoord)
	AtRPC  uint64 // fires on this RPC ordinal, or journal cell count (1-based)
	Delay  time.Duration
}

// coordinatorIndex is the Directive.Worker value for directives aimed
// at the coordinator rather than a worker.
const coordinatorIndex = -1

const kindKillCoord = "killcoord"

// ParseChaos parses a directive list like "kill:1@4,drop:0@2".
func ParseChaos(s string) ([]Directive, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Directive
	for _, part := range strings.Split(s, ",") {
		d, err := parseDirective(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ErrBadChaos marks a malformed chaos directive.
var errBadChaos = fmt.Errorf("cluster: bad chaos directive")

func parseDirective(s string) (Directive, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Directive{}, fmt.Errorf("%w: %q (want kind:worker@rpc)", errBadChaos, s)
	}
	if kind == kindKillCoord {
		n, err := strconv.ParseUint(rest, 10, 64)
		if err != nil || n == 0 {
			return Directive{}, fmt.Errorf("%w: killcoord cell count %q (1-based)", errBadChaos, rest)
		}
		return Directive{Kind: kindKillCoord, Worker: coordinatorIndex, AtRPC: n}, nil
	}
	var delayStr string
	if kind == "delay" {
		rest, delayStr, ok = cutLast(rest, ":")
		if !ok {
			return Directive{}, fmt.Errorf("%w: %q (delay wants worker@rpc:duration)", errBadChaos, s)
		}
	}
	wStr, nStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Directive{}, fmt.Errorf("%w: %q (want kind:worker@rpc)", errBadChaos, s)
	}
	w, err := strconv.Atoi(wStr)
	if err != nil || w < 0 {
		return Directive{}, fmt.Errorf("%w: worker index %q", errBadChaos, wStr)
	}
	n, err := strconv.ParseUint(nStr, 10, 64)
	if err != nil || n == 0 {
		return Directive{}, fmt.Errorf("%w: RPC ordinal %q (1-based)", errBadChaos, nStr)
	}
	d := Directive{Kind: kind, Worker: w, AtRPC: n}
	switch kind {
	case "kill", "drop":
	case "delay":
		dur, err := time.ParseDuration(delayStr)
		if err != nil || dur < 0 {
			return Directive{}, fmt.Errorf("%w: delay %q", errBadChaos, delayStr)
		}
		d.Delay = dur
	default:
		return Directive{}, fmt.Errorf("%w: unknown kind %q (kill, drop, delay)", errBadChaos, kind)
	}
	return d, nil
}

// cutLast splits around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// chaosTransport wraps the coordinator→worker round-tripper for one
// worker, counting RPCs and firing the directives aimed at it.
type chaosTransport struct {
	idx  int
	rt   http.RoundTripper
	dirs []Directive
	kill func(idx int) // bound by the dev cluster

	n        atomic.Uint64
	killOnce sync.Once
}

func newChaosTransport(idx int, rt http.RoundTripper, dirs []Directive, kill func(int)) *chaosTransport {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &chaosTransport{idx: idx, rt: rt, dirs: dirs, kill: kill}
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n.Add(1)
	for _, d := range t.dirs {
		if d.Worker != t.idx || d.AtRPC != n {
			continue
		}
		switch d.Kind {
		case "drop":
			// A dropped RPC is a transient transport failure; wrapping
			// the client's sentinel keeps it on the requeue path.
			return nil, fmt.Errorf("chaos: %w: dropped RPC %d to worker %d", client.ErrUnavailable, n, t.idx)
		case "delay":
			timer := time.NewTimer(d.Delay)
			select {
			case <-req.Context().Done():
				timer.Stop()
				return nil, req.Context().Err()
			case <-timer.C:
			}
		case "kill":
			// Kill exactly once, synchronously: the worker's listener is
			// closed before this RPC goes out, so this and every later
			// RPC to the worker fails like a crashed process.
			if t.kill != nil {
				t.killOnce.Do(func() { t.kill(t.idx) })
			}
		}
	}
	return t.rt.RoundTrip(req)
}
