// Package cluster is eeatd's scale-out layer (DESIGN.md §11): a
// coordinator that shards experiment cells across N worker daemons by
// the canonical harness cell key and merges their results into reports
// byte-identical to a single-process run.
//
// The design leans entirely on identities the repo already has. Cells
// are content-addressed by harness.JobKey, so the consistent-hash ring
// (ring.go) partitions not just the work but every worker's result
// cache and checkpoint spool: the same cell always lands on the same
// worker while the membership holds, and a resubmitted suite is
// answered from worker caches without recomputation. Execution plugs
// into the harness through Config.Execute — the plan/memo/checkpoint/
// render pipeline is untouched, which is what makes the merged report
// byte-identical by construction rather than by reconciliation.
//
// Robustness model:
//
//   - Workers heartbeat the coordinator; a silent worker is declared
//     dead after HeartbeatTimeout and removed from the ring.
//   - A dispatch that fails with a transient error (connection
//     refused/reset, 5xx — client.ErrUnavailable after its own capped
//     exponential backoff) declares the worker dead and requeues the
//     cell on the next owner in the key's preference list. Requeued
//     cells keep their original seed, so the failover result is the
//     result the dead worker would have produced.
//   - A dispatch that fails deterministically (the job itself failed,
//     or a protocol violation) fails the cell — retrying a
//     deterministic failure elsewhere produces the same failure.
//   - With zero live workers the coordinator executes cells locally:
//     the run degrades to the single-process path instead of hanging.
//   - Completed cells live in the harness memo and the coordinator's
//     checkpoint journal; a worker death never recomputes them.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// Config parameterizes a Coordinator.
type Config struct {
	// CellWorkers is the number of concurrent cell dispatches
	// (default 8): the fan-out width across the worker fleet.
	CellWorkers int
	// VNodes is the virtual-node count per worker on the ring
	// (default 64).
	VNodes int
	// HeartbeatTimeout declares a worker dead after this long without a
	// heartbeat (default 5s; 0 disables the watchdog — dispatch
	// failures still declare workers dead).
	HeartbeatTimeout time.Duration
	// Retry is the per-RPC transient backoff handed to worker clients
	// built by the default NewWorkerClient.
	Retry client.Backoff
	// NewWorkerClient builds the client for a joining worker (default
	// client.New(base) with Retry). The dev cluster injects
	// chaos-wrapped transports here.
	NewWorkerClient func(id, base string) *client.Client
	// Options is the base experiment configuration for RunSuite.
	Options exper.Options
	// Checkpoint / Resume are the coordinator-side harness journal, so
	// an interrupted cluster run resumes without recomputing cells.
	Checkpoint string
	Resume     bool
	// Journal is the coordinator's durable crash journal ("" disables):
	// every completed cell and membership event is fsync'd there as it
	// commits, and a restarted coordinator replays it to resume the
	// suite automatically (DESIGN.md §12). Unlike Checkpoint/Resume,
	// replay needs no flag — the journal's presence is the signal.
	Journal string
	// FederationTimeout bounds each federated cache probe — the
	// read-through GET /v1/results/{key} against a cell's ring owners
	// (default 2s). Probes are an optimization; a slow one must not
	// stall dispatch.
	FederationTimeout time.Duration
	// OnJournalAppend, when set, is called after every journaled cell
	// with the journal's total cell count, outside all coordinator
	// locks. The chaos soak uses it as a deterministic count trigger
	// for killing the coordinator mid-suite.
	OnJournalAppend func(cells int)
	// Registry receives cluster metrics (required for /metrics; nil
	// creates a private registry).
	Registry *telemetry.Registry
	// Traces, when set, is the coordinator's trace executor: its segment
	// store backs the /v1/traces ingestion+fetch endpoints on the
	// control plane (workers fetch dispatched trace-backed cells' segments
	// from here by content hash), and the local-fallback path replays
	// through it. Required to run trace-backed cells; model suites run
	// without it.
	Traces *tracec.Executor
	// Tracer, when set, records the distributed cell trace: one track
	// per cell with coordinator-side spans (cell, dispatch, federation
	// probe, local fallback) plus worker-side spans (queue wait,
	// execution) reconstructed from the timing every terminal JobStatus
	// reports — one merged Chrome/JSONL trace per suite, all spans of a
	// cell sharing its trace id. Nil disables tracing; the per-stage
	// histograms are recorded either way.
	Tracer *telemetry.Tracer
	// Logf receives coordinator log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CellWorkers <= 0 {
		c.CellWorkers = 8
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.FederationTimeout <= 0 {
		c.FederationTimeout = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.NewWorkerClient == nil {
		retry := c.Retry
		c.NewWorkerClient = func(id, base string) *client.Client {
			cl := client.New(base)
			cl.Retry = retry
			return cl
		}
	}
	return c
}

// worker is one registered worker daemon.
type worker struct {
	id   string
	base string
	cl   *client.Client

	// deadCh closes when the worker is declared dead; dispatches
	// in flight against it select on this to unblock long polls.
	deadCh chan struct{}

	cells *telemetry.Counter // dispatches to this worker

	// Guarded by the coordinator lock.
	lastBeat time.Time
	dead     bool
}

// Coordinator owns the ring, the worker registry, and cell dispatch.
type Coordinator struct {
	cfg   Config
	m     *clusterMetrics
	start time.Time // span timestamp base (Config.Tracer)

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*worker
	epoch   int // bumps on every join, for rejoin ids

	// Crash-survivability state (DESIGN.md §12). completed and flight
	// are guarded by cmu; lock order is mu before cmu, never the
	// reverse. tookOver is set once at construction.
	jrnl      *clusterJournal
	tookOver  bool
	cmu       sync.Mutex
	completed map[string]core.Result
	flight    map[string]*cellFlight

	watchStop chan struct{}
	watchDone chan struct{}
}

// NewCoordinator builds a coordinator and starts its heartbeat
// watchdog. Callers must End it. With Config.Journal set, an existing
// journal is replayed first: completed cells are memoized, the last
// known live workers rejoin the ring (the watchdog or a failed
// dispatch prunes any that died with the previous coordinator), and
// the next RunSuite resumes instead of restarting.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		start:     time.Now(),
		m:         newClusterMetrics(cfg.Registry),
		ring:      NewRing(cfg.VNodes),
		workers:   make(map[string]*worker),
		completed: make(map[string]core.Result),
		flight:    make(map[string]*cellFlight),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
	}
	if cfg.Journal != "" {
		opt := cfg.Options
		opt.Runner = nil
		opt = opt.WithDefaults()
		jrnl, state, err := openClusterJournal(cfg.Journal, opt, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("cluster: coordinator journal: %w", err)
		}
		c.jrnl = jrnl
		for k, v := range state.cells {
			c.completed[k] = v
		}
		rejoined := 0
		for id, ms := range state.members {
			if ms.alive {
				c.addWorker(id, ms.addr, false)
				rejoined++
			}
		}
		if state.events > 0 {
			c.tookOver = true
			c.m.takeovers.Inc()
			cfg.Logf("takeover: journal %s replayed %d completed cells, %d live workers rejoined",
				cfg.Journal, len(state.cells), rejoined)
		}
	}
	go c.watchdog()
	return c, nil
}

// End stops the watchdog and closes the journal, so a successor
// coordinator can reopen it without two handles interleaving appends.
// It does not touch the workers — they are separate processes (or the
// dev cluster's, which owns their shutdown).
func (c *Coordinator) End() {
	c.mu.Lock()
	select {
	case <-c.watchStop:
	default:
		close(c.watchStop)
	}
	c.mu.Unlock()
	<-c.watchDone
	if c.jrnl != nil {
		c.jrnl.close()
	}
}

// RemoveJournal deletes the crash journal after a fully successful
// run, mirroring the harness checkpoint's clean-run cleanup. The
// coordinator must be Ended first; callers that crash before this
// point leave the journal behind on purpose.
func (c *Coordinator) RemoveJournal() error {
	if c.jrnl == nil {
		return nil
	}
	if err := c.jrnl.remove(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// CompletedCells snapshots the coordinator's completed-cell set — the
// journal replay plus everything recorded since. RunSuite preloads the
// harness memo with it; the soak harness sizes its no-double-execution
// assertion by it.
func (c *Coordinator) CompletedCells() map[string]core.Result {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	out := make(map[string]core.Result, len(c.completed))
	for k, v := range c.completed {
		out[k] = v
	}
	return out
}

// TookOver reports whether this coordinator resumed state from a
// predecessor's journal.
func (c *Coordinator) TookOver() bool { return c.tookOver }

// watchdog periodically declares workers dead after HeartbeatTimeout
// without a heartbeat.
func (c *Coordinator) watchdog() {
	defer close(c.watchDone)
	if c.cfg.HeartbeatTimeout <= 0 {
		<-c.watchStop
		return
	}
	every := c.cfg.HeartbeatTimeout / 4
	if every < time.Millisecond {
		every = time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.watchStop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for _, w := range c.workers {
				if !w.dead && now.Sub(w.lastBeat) > c.cfg.HeartbeatTimeout {
					//eeatlint:allow locksafe the death verdict and its journal record must be atomic under mu; membership appends are rare and small
					c.markDeadLocked(w, fmt.Errorf("no heartbeat for %s", now.Sub(w.lastBeat).Round(time.Millisecond)))
				}
			}
			c.mu.Unlock()
		}
	}
}

// AddWorker registers (or re-registers) a worker by id and base URL
// and rebalances the ring. A dead worker rejoining under its old id is
// resurrected with a fresh death channel.
func (c *Coordinator) AddWorker(id, base string) {
	c.addWorker(id, base, true)
}

// addWorker is AddWorker with the membership journaling controllable:
// journal replay re-adds workers without re-journaling their joins.
func (c *Coordinator) addWorker(id, base string, journal bool) {
	cl := c.cfg.NewWorkerClient(id, base)
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok && !w.dead {
		w.lastBeat = time.Now()
		return
	}
	w := &worker{
		id: id, base: base, cl: cl,
		deadCh:   make(chan struct{}),
		cells:    c.m.workerCells(id),
		lastBeat: time.Now(),
	}
	c.workers[id] = w
	c.epoch++
	moves := c.ring.Add(id)
	c.m.ringMoves.Add(uint64(moves))
	c.m.workersLive.Set(int64(c.liveLocked()))
	if journal {
		//eeatlint:allow locksafe the join and its journal record must be atomic under mu; membership appends are rare and small
		c.journalMember(evJoin, id, base)
	}
	c.cfg.Logf("worker %s joined at %s (%d live, %d arcs moved)", id, base, c.liveLocked(), moves)
}

// RemoveWorker gracefully deregisters a worker (its leave path). The
// ring rebalances; in-flight dispatches to it are cancelled.
func (c *Coordinator) RemoveWorker(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return
	}
	if !w.dead {
		w.dead = true
		close(w.deadCh)
	}
	delete(c.workers, id)
	moves := c.ring.Remove(id)
	c.m.ringMoves.Add(uint64(moves))
	c.m.workersLive.Set(int64(c.liveLocked()))
	//eeatlint:allow locksafe the leave and its journal record must be atomic under mu; membership appends are rare and small
	c.journalMember(evLeave, id, "")
	c.cfg.Logf("worker %s left (%d live, %d arcs moved)", id, c.liveLocked(), moves)
}

// journalMember records a membership event in the crash journal. A
// failed append is logged, not fatal: membership is rebuilt by rejoin
// heartbeats anyway; only cell records carry correctness weight.
func (c *Coordinator) journalMember(event, id, addr string) {
	if c.jrnl == nil {
		return
	}
	if err := c.jrnl.appendMember(event, id, addr); err != nil {
		c.cfg.Logf("journal: %v", err)
	}
}

// Heartbeat records a worker's liveness signal. It returns false for
// an unknown or already-dead worker — the worker should rejoin, which
// puts it back on the ring.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || w.dead {
		return false
	}
	w.lastBeat = time.Now()
	c.m.heartbeats.Inc()
	return true
}

// markDeadLocked declares a worker dead: off the ring, death channel
// closed so in-flight RPCs against it abort, metrics updated. The
// worker record stays in the map (dead) so a late heartbeat gets a
// rejoin signal instead of silently reviving a deregistered id.
func (c *Coordinator) markDeadLocked(w *worker, cause error) {
	if w.dead {
		return
	}
	w.dead = true
	close(w.deadCh)
	moves := c.ring.Remove(w.id)
	c.m.ringMoves.Add(uint64(moves))
	c.m.workersDead.Inc()
	c.m.workersLive.Set(int64(c.liveLocked()))
	c.journalMember(evDead, w.id, "")
	c.cfg.Logf("worker %s declared dead: %v (%d live, %d arcs moved)", w.id, cause, c.liveLocked(), moves)
}

func (c *Coordinator) liveLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// LiveWorkers returns the number of workers currently considered live.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

// RingGeneration returns the membership epoch: it bumps on every join,
// so two status snapshots with equal generations saw the same ring.
func (c *Coordinator) RingGeneration() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// InFlightCells returns the number of cells currently being led by
// this coordinator (dispatched, probing, or executing locally).
func (c *Coordinator) InFlightCells() int {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return len(c.flight)
}

// pick returns the first live worker on key's preference list not in
// tried, or nil when none remains.
func (c *Coordinator) pick(key string, tried map[string]bool) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ring.Owners(key) {
		if tried[id] {
			continue
		}
		if w, ok := c.workers[id]; ok && !w.dead {
			return w
		}
	}
	return nil
}

// WorkerInfo is one row of the cluster status surface.
type WorkerInfo struct {
	ID      string  `json:"id"`
	Base    string  `json:"base"`
	Dead    bool    `json:"dead"`
	BeatAgo float64 `json:"last_heartbeat_seconds_ago"`
	Cells   uint64  `json:"cells_dispatched"`
}

// Workers snapshots the registry for the status endpoint and tests.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, id := range c.ring.Members() {
		if w, ok := c.workers[id]; ok {
			out = append(out, c.infoLocked(w))
		}
	}
	// Dead workers are off the ring but still known; list them after.
	for _, w := range c.workers {
		if w.dead {
			out = append(out, c.infoLocked(w))
		}
	}
	return out
}

func (c *Coordinator) infoLocked(w *worker) WorkerInfo {
	return WorkerInfo{
		ID: w.id, Base: w.base, Dead: w.dead,
		BeatAgo: time.Since(w.lastBeat).Seconds(),
		Cells:   w.cells.Load(),
	}
}

// RunSuite executes experiments through the harness with cells
// dispatched across the cluster. The harness does the planning,
// deduplication, checkpointing, and rendering; the cluster only
// replaces the per-cell executor, so the output is byte-identical to a
// single-process run over the same options.
// The completed-cell set from the journal replay (and any earlier
// suite through this coordinator) preloads the harness memo, so a
// takeover-resume plans the full suite but executes only the gap.
func (c *Coordinator) RunSuite(ctx context.Context, exps []exper.Experiment) ([]harness.ExperimentResult, error) {
	hcfg := harness.Config{
		Workers:    c.cfg.CellWorkers,
		Options:    c.cfg.Options,
		Checkpoint: c.cfg.Checkpoint,
		Resume:     c.cfg.Resume,
		Preload:    c.CompletedCells(),
		Registry:   c.cfg.Registry,
		Logf:       c.cfg.Logf,
		Execute:    c.executeCell,
	}
	return harness.New(hcfg).Run(ctx, exps)
}
