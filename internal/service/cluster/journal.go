package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
)

// The coordinator journal (DESIGN.md §12) is what makes the
// coordinator itself expendable: an append-only JSONL stream
// (harness.StreamJournal — one fsync'd write per record) holding a
// header line that binds the file to the run options, then one record
// per completed cell and per worker-membership event, in the order
// they were committed. A restarted coordinator replays the journal to
// rebuild the completed-cell set and the last known ring membership,
// requeues only what is missing, and finishes the suite — no manual
// -resume, no re-executed cell.
//
// Corruption discipline, the same shape as the PR 5 checkpoint but
// with a sharper split: a torn or garbage *tail* is healed (those
// records were never durably acknowledged — losing them only costs
// re-execution, never correctness), while garbage *followed by a
// parseable record* refuses to load with ErrJournalCorrupt. Healing
// that case would silently skip a completed cell that demonstrably
// made it to disk, which is exactly the lie this journal exists to
// make impossible.

const journalVersion = 1

// ErrJournalCorrupt marks a coordinator journal whose middle is
// damaged: an unreadable line with valid records after it. Replay
// refuses to proceed — continuing would silently drop completed cells.
var ErrJournalCorrupt = errors.New("cluster: coordinator journal corrupt")

// ErrJournalMismatch marks a journal written under a different version
// or different run options; its cell results would be silently wrong
// for this run.
var ErrJournalMismatch = errors.New("cluster: coordinator journal mismatch")

// errJournalClosed marks an append against a journal already closed by
// End — a benign race during shutdown, logged and dropped.
var errJournalClosed = errors.New("cluster: coordinator journal closed")

// journalHeader binds the journal to the options every cell key was
// computed under, mirroring the harness checkpoint header.
type journalHeader struct {
	Version int     `json:"version"`
	Instrs  uint64  `json:"instrs"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
}

// journal record events.
const (
	evCell  = "cell"
	evJoin  = "join"
	evLeave = "leave"
	evDead  = "dead"
)

// journalRecord is one journal line after the header.
type journalRecord struct {
	Event  string       `json:"event"`
	Key    string       `json:"key,omitempty"`
	Result *core.Result `json:"result,omitempty"`
	Worker string       `json:"worker,omitempty"`
	Addr   string       `json:"addr,omitempty"`
}

// memberState is a worker's last journaled membership state.
type memberState struct {
	addr  string
	alive bool
}

// replayState is everything a restarted coordinator rebuilds from the
// journal: the completed cells and the final membership view.
type replayState struct {
	cells   map[string]core.Result
	members map[string]memberState
	events  int
}

// clusterJournal is the coordinator's durable event log. Appends are
// serialized by its own mutex; the coordinator may call it while
// holding its registry lock (lock order: Coordinator.mu, then jmu).
type clusterJournal struct {
	jmu    sync.Mutex
	path   string
	stream *harness.StreamJournal
	closed bool
	cells  int // cell records on disk, replayed + appended
}

// openClusterJournal reads, validates, and replays the journal at
// path, then opens it for appends with any torn tail truncated away.
// A missing or empty file starts a fresh journal (header written
// immediately); a header under different options fails with
// ErrJournalMismatch; damage in the middle fails with
// ErrJournalCorrupt.
func openClusterJournal(path string, opt exper.Options, logf func(string, ...any)) (*clusterJournal, *replayState, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("cluster: reading journal %s: %w", path, err)
	}
	state, keep, err := replayJournal(data, path, opt)
	if err != nil {
		return nil, nil, err
	}
	stream, err := harness.OpenStream(path, keep)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: journal %s: %w", path, err)
	}
	j := &clusterJournal{path: path, stream: stream, cells: len(state.cells)}
	if keep == 0 {
		hdr, err := json.Marshal(journalHeader{
			Version: journalVersion, Instrs: opt.Instrs, Scale: opt.Scale, Seed: opt.Seed,
		})
		if err != nil {
			stream.Close() //nolint:errcheck // failing open anyway
			return nil, nil, fmt.Errorf("cluster: journal %s: encoding header: %w", path, err)
		}
		if err := j.stream.Append(hdr); err != nil {
			stream.Close() //nolint:errcheck // failing open anyway
			return nil, nil, fmt.Errorf("cluster: journal %s: %w", path, err)
		}
	}
	if healed := int64(len(data)) - keep; healed > 0 {
		logf("journal %s: healed %d torn trailing bytes", path, healed)
	}
	return j, state, nil
}

// replayJournal parses the journal bytes, returning the rebuilt state
// and the byte length of the validated prefix to keep on disk.
func replayJournal(data []byte, path string, opt exper.Options) (*replayState, int64, error) {
	state := &replayState{
		cells:   make(map[string]core.Result),
		members: make(map[string]memberState),
	}
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		// Empty file, or a header torn mid-write before anything was
		// acknowledged: a fresh journal either way.
		return state, 0, nil
	}
	var hdr journalHeader
	if err := strictUnmarshal(data[:i], &hdr); err != nil {
		if rec, ok := nextValidRecord(data[i+1:]); ok {
			return nil, 0, fmt.Errorf("cluster: journal %s: unreadable header above a valid %q record: %w",
				path, rec.Event, ErrJournalCorrupt)
		}
		return state, 0, nil // garbage with nothing durable after it: start fresh
	}
	if hdr.Version != journalVersion {
		return nil, 0, fmt.Errorf("cluster: journal %s: version %d, want %d: %w",
			path, hdr.Version, journalVersion, ErrJournalMismatch)
	}
	if hdr.Instrs != opt.Instrs || hdr.Scale != opt.Scale || hdr.Seed != opt.Seed {
		return nil, 0, fmt.Errorf("cluster: journal %s was written with -instrs %d -scale %g -seed %d; rerun with those options or delete it: %w",
			path, hdr.Instrs, hdr.Scale, hdr.Seed, ErrJournalMismatch)
	}

	off := int64(i) + 1
	lineNo := 1
	for int(off) < len(data) {
		rest := data[off:]
		n := bytes.IndexByte(rest, '\n')
		if n < 0 {
			break // torn final line: heal
		}
		lineNo++
		rec, err := parseRecord(rest[:n])
		if err != nil {
			if later, ok := nextValidRecord(rest[n+1:]); ok {
				return nil, 0, fmt.Errorf("cluster: journal %s: unreadable line %d (%v) above a valid %q record: %w",
					path, lineNo, err, later.Event, ErrJournalCorrupt)
			}
			break // garbage tail with nothing durable after it: heal
		}
		state.apply(rec)
		off += int64(n) + 1
	}
	return state, off, nil
}

// apply folds one record into the replay state.
func (s *replayState) apply(rec journalRecord) {
	s.events++
	switch rec.Event {
	case evCell:
		s.cells[rec.Key] = *rec.Result
	case evJoin:
		s.members[rec.Worker] = memberState{addr: rec.Addr, alive: true}
	case evLeave:
		delete(s.members, rec.Worker)
	case evDead:
		if m, ok := s.members[rec.Worker]; ok {
			m.alive = false
			s.members[rec.Worker] = m
		}
	}
}

// parseRecord decodes and validates one journal line.
func parseRecord(line []byte) (journalRecord, error) {
	var rec journalRecord
	if err := strictUnmarshal(line, &rec); err != nil {
		return rec, err
	}
	switch rec.Event {
	case evCell:
		if rec.Key == "" || rec.Result == nil {
			return rec, fmt.Errorf("cell record missing key or result: %w", ErrJournalCorrupt)
		}
	case evJoin:
		if rec.Worker == "" || rec.Addr == "" {
			return rec, fmt.Errorf("join record missing worker or addr: %w", ErrJournalCorrupt)
		}
	case evLeave, evDead:
		if rec.Worker == "" {
			return rec, fmt.Errorf("%s record missing worker: %w", rec.Event, ErrJournalCorrupt)
		}
	default:
		return rec, fmt.Errorf("unknown event %q: %w", rec.Event, ErrJournalCorrupt)
	}
	return rec, nil
}

// nextValidRecord scans the remaining complete lines for one that
// parses as a journal record — the witness that damage sits in the
// middle of the journal, not at its torn tail.
func nextValidRecord(rest []byte) (journalRecord, bool) {
	for len(rest) > 0 {
		n := bytes.IndexByte(rest, '\n')
		if n < 0 {
			break
		}
		if rec, err := parseRecord(rest[:n]); err == nil {
			return rec, true
		}
		rest = rest[n+1:]
	}
	return journalRecord{}, false
}

// strictUnmarshal decodes one JSON document, rejecting unknown fields
// and trailing data — a header line must not pass as a record.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: journal line: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("cluster: journal line has trailing data: %w", ErrJournalCorrupt)
	}
	return nil
}

// appendCell journals one completed cell and returns the new cell
// count — the soak harness's deterministic kill trigger counts these.
func (j *clusterJournal) appendCell(key string, res core.Result) (int, error) {
	rec := journalRecord{Event: evCell, Key: key, Result: &res}
	b, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("cluster: journal: encoding cell %s: %w", shortKey(key), err)
	}
	j.jmu.Lock()
	defer j.jmu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("cluster: journal: cell %s: %w", shortKey(key), errJournalClosed)
	}
	//eeatlint:allow locksafe jmu exists to serialize the journal file; the durable append is the critical section
	if err := j.stream.Append(b); err != nil {
		return 0, fmt.Errorf("cluster: journal: cell %s: %w", shortKey(key), err)
	}
	j.cells++
	return j.cells, nil
}

// appendMember journals a worker-membership event (join/leave/dead).
func (j *clusterJournal) appendMember(event, worker, addr string) error {
	b, err := json.Marshal(journalRecord{Event: event, Worker: worker, Addr: addr})
	if err != nil {
		return fmt.Errorf("cluster: journal: encoding %s of worker %s: %w", event, worker, err)
	}
	j.jmu.Lock()
	defer j.jmu.Unlock()
	if j.closed {
		return fmt.Errorf("cluster: journal: %s of worker %s: %w", event, worker, errJournalClosed)
	}
	//eeatlint:allow locksafe jmu exists to serialize the journal file; the durable append is the critical section
	if err := j.stream.Append(b); err != nil {
		return fmt.Errorf("cluster: journal: %s of worker %s: %w", event, worker, err)
	}
	return nil
}

// close releases the journal handle; later appends fail with
// errJournalClosed instead of racing a successor coordinator's handle.
func (j *clusterJournal) close() {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.stream.Close() //nolint:errcheck // contents already durable
}

// remove deletes the journal file after a fully successful run.
func (j *clusterJournal) remove() error {
	j.close()
	if err := os.Remove(j.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("cluster: removing journal %s: %w", j.path, err)
	}
	return nil
}
