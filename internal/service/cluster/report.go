package cluster

import (
	"fmt"
	"io"
	"strings"

	"xlate/internal/harness"
)

// WriteReport renders merged experiment results in the exact format of
// cmd/experiments with per-artifact timings stripped — the form the
// cluster smoke diffs against both the committed golden file and a
// single-process run, because timings are the only line that may
// legitimately differ between runs. It returns the number of
// experiments that failed to render.
func WriteReport(w io.Writer, results []harness.ExperimentResult) int {
	failures := 0
	for _, r := range results {
		fmt.Fprintf(w, "## %s\n\n", r.ID)
		if r.Err != nil {
			failures++
			fmt.Fprintf(w, "_not reproduced: %s_\n\n", firstLine(r.Err.Error()))
			continue
		}
		for _, t := range r.Tables {
			fmt.Fprintln(w, t.Markdown())
		}
	}
	return failures
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
