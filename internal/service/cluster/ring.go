package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// VNodes points on a 64-bit circle; a cell key is owned by the member
// whose point follows the key's hash clockwise. Virtual nodes spread
// each member's arcs around the circle so (a) load splits evenly and
// (b) removing one member redistributes only its own arcs, so the
// content-addressed result caches on the surviving workers keep
// answering for the keys they already own.
//
// The ring is not safe for concurrent use; the Coordinator serializes
// access under its lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (minimum 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member and returns the number of keyspace arcs that
// changed owner — each inserted virtual node takes over exactly one arc
// from its clockwise successor. Adding an existing member is a no-op
// returning 0.
func (r *Ring) Add(id string) int {
	if r.members[id] {
		return 0
	}
	r.members[id] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(id, i), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r.vnodes
}

// Remove deletes a member and returns the number of keyspace arcs that
// changed owner (its virtual-node count). Removing an absent member is
// a no-op returning 0.
func (r *Ring) Remove(id string) int {
	if !r.members[id] {
		return 0
	}
	delete(r.members, id)
	kept := r.points[:0]
	removed := 0
	for _, p := range r.points {
		if p.id == id {
			removed++
			continue
		}
		kept = append(kept, p)
	}
	r.points = kept
	return removed
}

func vnodeHash(id string, i int) uint64 {
	return hashPoint(id + "#" + strconv.Itoa(i))
}

// Members returns the member ids in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.walk(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the key's preference list: every member, ordered by
// the clockwise walk from the key's hash. The first entry is the owner;
// the rest are the failover order the coordinator requeues along when
// workers die.
func (r *Ring) Owners(key string) []string {
	return r.walk(key, len(r.members))
}

func (r *Ring) walk(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, max)
	out := make([]string, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
