package cluster

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xlate/internal/core"
	"xlate/internal/exper"
)

func journalHeaderLine(t *testing.T, opt exper.Options) string {
	t.Helper()
	b, err := json.Marshal(journalHeader{Version: journalVersion, Instrs: opt.Instrs, Scale: opt.Scale, Seed: opt.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func cellLine(t *testing.T, key string, instrs uint64) string {
	t.Helper()
	b, err := json.Marshal(journalRecord{Event: evCell, Key: key, Result: &core.Result{Config: "Direct", Instructions: instrs}})
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func memberLine(t *testing.T, event, worker, addr string) string {
	t.Helper()
	b, err := json.Marshal(journalRecord{Event: event, Worker: worker, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func TestJournalRoundTrip(t *testing.T) {
	opt := testOptions()
	path := filepath.Join(t.TempDir(), "coord.journal")

	j, state, err := openClusterJournal(path, opt, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if state.events != 0 {
		t.Fatalf("fresh journal replayed %d events", state.events)
	}
	if n, err := j.appendCell("k1", core.Result{Config: "Direct", Instructions: 1}); err != nil || n != 1 {
		t.Fatalf("appendCell #1 = (%d, %v)", n, err)
	}
	if n, err := j.appendCell("k2", core.Result{Config: "RMM", Instructions: 2}); err != nil || n != 2 {
		t.Fatalf("appendCell #2 = (%d, %v)", n, err)
	}
	for _, m := range [][3]string{
		{evJoin, "w0", "http://a"}, {evJoin, "w1", "http://b"},
		{evDead, "w0", ""}, {evJoin, "w2", "http://c"}, {evLeave, "w2", ""},
	} {
		if err := j.appendMember(m[0], m[1], m[2]); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	j2, state, err := openClusterJournal(path, opt, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(state.cells) != 2 || state.cells["k2"].Instructions != 2 {
		t.Errorf("replayed cells = %+v, want k1 and k2", state.cells)
	}
	if j2.cells != 2 {
		t.Errorf("replayed cell count = %d, want 2", j2.cells)
	}
	want := map[string]memberState{
		"w0": {addr: "http://a", alive: false},
		"w1": {addr: "http://b", alive: true},
	}
	if len(state.members) != len(want) {
		t.Fatalf("replayed members = %+v, want %+v", state.members, want)
	}
	for id, ms := range want {
		if state.members[id] != ms {
			t.Errorf("member %s = %+v, want %+v", id, state.members[id], ms)
		}
	}
}

// The corruption table (satellite 3): torn or garbage tails heal —
// those bytes were never durably acknowledged — while damage above a
// valid record fails loudly with a typed error. Healing mid-journal
// damage would silently skip completed cells; that must be impossible.
func TestJournalCorruption(t *testing.T) {
	opt := testOptions()
	hdr := journalHeaderLine(t, opt)
	c1 := cellLine(t, "k1", 1)
	c2 := cellLine(t, "k2", 2)
	join := memberLine(t, evJoin, "w0", "http://a")

	otherOpt := opt
	otherOpt.Seed = 99

	cases := []struct {
		name    string
		content string
		wantErr error
		cells   int
		healed  bool
	}{
		{name: "clean", content: hdr + c1 + c2 + join, cells: 2},
		{name: "empty file", content: "", cells: 0},
		{name: "torn header", content: hdr[:len(hdr)/2], cells: 0, healed: true},
		{name: "torn cell tail", content: hdr + c1 + c2[:len(c2)-9], cells: 1, healed: true},
		{name: "garbage single-line tail", content: hdr + c1 + "%%not json%%\n", cells: 1, healed: true},
		{name: "garbage multi-line tail", content: hdr + c1 + "%%garbage%%\n{\"event\":\n", cells: 1, healed: true},
		{name: "unknown-field tail", content: hdr + c1 + `{"event":"cell","key":"x","result":{},"bogus":1}` + "\n", cells: 1, healed: true},
		{name: "garbage above a cell record", content: hdr + c1 + "%%garbage%%\n" + c2, wantErr: ErrJournalCorrupt},
		{name: "truncated record above a join", content: hdr + c2[:len(c2)-9] + "\n" + join, wantErr: ErrJournalCorrupt},
		{name: "unreadable header above a record", content: "%%not a header%%\n" + c1, wantErr: ErrJournalCorrupt},
		{name: "options mismatch", content: journalHeaderLine(t, otherOpt) + c1, wantErr: ErrJournalMismatch},
		{name: "version mismatch", content: `{"version":99,"instrs":200000,"scale":0.1,"seed":7}` + "\n" + c1, wantErr: ErrJournalMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "coord.journal")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			j, state, err := openClusterJournal(path, opt, t.Logf)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("open = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer j.close()
			if len(state.cells) != tc.cells {
				t.Errorf("replayed %d cells, want %d", len(state.cells), tc.cells)
			}
			// A healed journal must have its torn tail truncated away and
			// keep accepting appends that a third open replays cleanly.
			if _, err := j.appendCell("k9", core.Result{Config: "Direct"}); err != nil {
				t.Fatal(err)
			}
			j.close()
			j3, state3, err := openClusterJournal(path, opt, t.Logf)
			if err != nil {
				t.Fatalf("reopen after heal+append: %v", err)
			}
			defer j3.close()
			if len(state3.cells) != tc.cells+1 {
				t.Errorf("after heal+append replayed %d cells, want %d", len(state3.cells), tc.cells+1)
			}
		})
	}
}

// A closed journal refuses appends instead of racing its successor's
// file handle.
func TestJournalClosedAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, _, err := openClusterJournal(path, testOptions(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	if _, err := j.appendCell("k", core.Result{}); !errors.Is(err, errJournalClosed) {
		t.Errorf("append after close = %v, want errJournalClosed", err)
	}
	if err := j.appendMember(evJoin, "w0", "http://a"); !errors.Is(err, errJournalClosed) {
		t.Errorf("member append after close = %v, want errJournalClosed", err)
	}
}

// FuzzJournalReplay hammers the replay path with mangled journals: it
// must never panic, never accept damage silently (either the journal
// heals to a strictly valid prefix or it fails with a typed error),
// and a healed prefix must replay identically on a second pass.
func FuzzJournalReplay(f *testing.F) {
	opt := testOptions()
	hdr := `{"version":1,"instrs":200000,"scale":0.1,"seed":7}` + "\n"
	cell := `{"event":"cell","key":"k1","result":{"Config":"Direct"}}` + "\n"
	join := `{"event":"join","worker":"w0","addr":"http://a"}` + "\n"
	f.Add([]byte(hdr + cell + join))
	f.Add([]byte(hdr + cell[:20]))
	f.Add([]byte(hdr + "garbage\n" + cell))
	f.Add([]byte("x" + hdr + cell))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		state, keep, err := replayJournal(data, "fuzz", opt)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) && !errors.Is(err, ErrJournalMismatch) {
				t.Fatalf("replay error is not typed: %v", err)
			}
			return
		}
		if keep < 0 || keep > int64(len(data)) {
			t.Fatalf("keep = %d outside [0, %d]", keep, len(data))
		}
		state2, keep2, err := replayJournal(data[:keep], "fuzz", opt)
		if err != nil {
			t.Fatalf("healed prefix does not replay: %v", err)
		}
		if keep2 != keep || len(state2.cells) != len(state.cells) || state2.events != state.events {
			t.Fatalf("healed prefix replays differently: keep %d vs %d, %d vs %d cells, %d vs %d events",
				keep2, keep, len(state2.cells), len(state.cells), state2.events, state.events)
		}
		for k := range state.cells {
			if _, ok := state2.cells[k]; !ok {
				t.Fatalf("healed prefix lost cell %s", k)
			}
		}
	})
}
