package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"xlate/internal/exper"
	"xlate/internal/service/client"
	"xlate/internal/telemetry"
)

// ErrSoakInvariant marks a soak run that completed but violated a
// verified invariant: a suite report diverged from the golden, or the
// global cells-executed count shows a cell executed twice (or lost).
var ErrSoakInvariant = errors.New("cluster: soak invariant violated")

// SoakConfig parameterizes RunSoak, the chaos soak harness behind
// `eeatd -cluster N -soak S` (DESIGN.md §12): S concurrent suites
// through one coordinator while the chaos plan kills workers and the
// coordinator itself.
type SoakConfig struct {
	// Workers is the dev-cluster worker count (default 3).
	Workers int
	// Suites is the number of concurrent suites (default 2).
	Suites int
	// CellWorkers is the coordinator dispatch fan-out.
	CellWorkers int
	// Experiments is the suite every goroutine runs.
	Experiments []exper.Experiment
	// Options is the experiment configuration (shared — the suites are
	// intentionally identical, so the coordinator's cross-suite dedup
	// and the no-double-execution invariant are both exercised).
	Options exper.Options
	// Chaos is the fault plan; killcoord:N directives require Journal.
	Chaos []Directive
	// Golden, when non-nil, is the report every suite must match byte
	// for byte. Nil compares every suite against suite 0 instead.
	Golden []byte
	// Journal is the coordinator crash journal path (required when the
	// chaos plan kills the coordinator).
	Journal string
	// HeartbeatTimeout / HeartbeatEvery / Retry tune the cluster.
	HeartbeatTimeout time.Duration
	HeartbeatEvery   time.Duration
	Retry            client.Backoff
	// RestartDelay is how long the supervisor leaves the coordinator
	// dead before restarting it (default 300ms) — long enough for
	// workers to finish admitted cells, so the takeover has federated
	// cache hits to harvest.
	RestartDelay time.Duration
	// Registry receives the metrics (nil = private).
	Registry *telemetry.Registry
	// Tracer, when set, records the distributed cell trace across every
	// coordinator generation of the soak.
	Tracer *telemetry.Tracer
	// Logf receives soak progress (nil = silent).
	Logf func(format string, args ...any)
}

// SoakResult is the outcome of one soak run.
type SoakResult struct {
	Suites      int // suites that ran to completion
	Mismatches  int // suites whose report differed from the golden
	Restarts    int // coordinator takeover generations
	UniqueCells int // distinct cells completed (journal + final generation)

	// Counter snapshot across all coordinator generations.
	CellsExecuted  uint64
	CellsFederated uint64
	CellsDeduped   uint64
	Requeues       uint64
	WorkersDead    uint64

	// Report is suite 0's rendered report.
	Report string

	// Load is the measured side of the run: throughput and per-stage
	// latency quantiles read back from the cluster's stage histograms,
	// with the wall clock covering the suite phase only (cluster
	// startup and teardown excluded).
	Load LoadReport
}

// RunSoak drives the chaos soak: start the dev cluster, run
// cfg.Suites identical suites concurrently, let the chaos plan kill
// processes (a killed coordinator is restarted after RestartDelay and
// the suites re-run against the takeover, which resumes from the
// journal), and verify at the end that every suite's report matched
// the golden and that no cell was executed twice — the global
// cells-executed counter equals the number of distinct cells.
func RunSoak(ctx context.Context, cfg SoakConfig) (SoakResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Suites <= 0 {
		cfg.Suites = 2
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 300 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for _, d := range cfg.Chaos {
		if d.Kind == kindKillCoord && cfg.Journal == "" {
			return SoakResult{}, fmt.Errorf("%w: killcoord needs -journal (the takeover has nothing to resume from)", errBadChaos)
		}
	}

	dev, err := StartDev(ctx, DevConfig{
		Workers:          cfg.Workers,
		CellWorkers:      cfg.CellWorkers,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		HeartbeatEvery:   cfg.HeartbeatEvery,
		Retry:            cfg.Retry,
		Options:          cfg.Options,
		Journal:          cfg.Journal,
		Chaos:            cfg.Chaos,
		Registry:         cfg.Registry,
		Tracer:           cfg.Tracer,
		Logf:             cfg.Logf,
	})
	if err != nil {
		return SoakResult{}, err
	}
	defer dev.Close()

	// The supervisor: a killed coordinator stays down for RestartDelay
	// (workers finish their admitted cells into their caches), then the
	// takeover generation starts and the suites resume against it.
	supCtx, supCancel := context.WithCancel(ctx)
	var supDone sync.WaitGroup
	supDone.Add(1)
	go func() {
		defer supDone.Done()
		for {
			select {
			case <-supCtx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			if !dev.CoordinatorDown() {
				continue
			}
			cfg.Logf("soak: coordinator down; restarting in %s", cfg.RestartDelay)
			if sleepCtx(supCtx, cfg.RestartDelay) != nil {
				return
			}
			if err := dev.RestartCoordinator(supCtx); err != nil {
				cfg.Logf("soak: coordinator restart: %v", err)
			}
		}
	}()

	reports := make([]string, cfg.Suites)
	errs := make([]error, cfg.Suites)
	var suites sync.WaitGroup
	suiteStart := time.Now()
	for i := 0; i < cfg.Suites; i++ {
		suites.Add(1)
		go func(i int) {
			defer suites.Done()
			reports[i], errs[i] = runSoakSuite(ctx, dev, cfg, i)
		}(i)
	}
	suites.Wait()
	suiteWall := time.Since(suiteStart)
	supCancel()
	supDone.Wait()

	res := SoakResult{
		Suites:   cfg.Suites,
		Restarts: int(soakMetric(cfg.Registry, "xlate_cluster_coordinator_restarts_total")),
		Load:     MeasureLoad(cfg.Registry, suiteWall),
	}
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("cluster: soak suite %d: %w", i, err)
		}
	}
	golden := cfg.Golden
	if golden == nil {
		golden = []byte(reports[0])
	}
	for i, rep := range reports {
		if !bytes.Equal([]byte(rep), golden) {
			res.Mismatches++
			cfg.Logf("soak: suite %d report differs from the golden", i)
		}
	}
	res.Report = reports[0]
	res.UniqueCells = len(dev.Coordinator().CompletedCells())
	res.CellsExecuted = soakMetric(cfg.Registry, "xlate_cluster_cells_executed_total")
	res.CellsFederated = soakMetric(cfg.Registry, "xlate_cluster_cells_federated_total")
	res.CellsDeduped = soakMetric(cfg.Registry, "xlate_cluster_cells_deduped_total")
	res.Requeues = soakMetric(cfg.Registry, "xlate_cluster_requeues_total")
	res.WorkersDead = soakMetric(cfg.Registry, "xlate_cluster_workers_dead_total")

	if res.CellsExecuted != uint64(res.UniqueCells) {
		return res, fmt.Errorf("cluster: soak executed %d cells for %d distinct cells — a cell was re-executed or lost: %w",
			res.CellsExecuted, res.UniqueCells, ErrSoakInvariant)
	}
	if res.Mismatches > 0 {
		return res, fmt.Errorf("cluster: soak: %d of %d suite reports differ from the golden: %w",
			res.Mismatches, cfg.Suites, ErrSoakInvariant)
	}
	cfg.Logf("soak: %d suites byte-identical; %d cells executed once each (%d federated, %d deduped, %d restarts)",
		res.Suites, res.CellsExecuted, res.CellsFederated, res.CellsDeduped, res.Restarts)
	// A fully clean soak retires the crash journal, mirroring the dev
	// runner's clean-run cleanup; any failure above keeps it so the
	// next start resumes.
	if err := dev.Coordinator().RemoveJournal(); err != nil {
		cfg.Logf("soak: %v", err)
	}
	return res, nil
}

// runSoakSuite runs one suite to completion, re-running it against the
// takeover coordinator whenever a run dies with the coordinator. Each
// re-run resumes: journaled cells preload the harness memo, so only
// the gap executes.
func runSoakSuite(ctx context.Context, dev *DevCluster, cfg SoakConfig, i int) (string, error) {
	for attempt := 1; ; attempt++ {
		results, err := dev.Run(ctx, cfg.Experiments)
		if err != nil {
			if errors.Is(err, ErrCoordinatorDown) && ctx.Err() == nil {
				cfg.Logf("soak: suite %d lost the coordinator (attempt %d); waiting for takeover", i, attempt)
				if werr := dev.WaitCoordinator(ctx); werr != nil {
					return "", werr
				}
				continue
			}
			return "", err
		}
		var buf bytes.Buffer
		if n := WriteReport(&buf, results); n != 0 {
			return "", fmt.Errorf("%d experiments failed", n)
		}
		return buf.String(), nil
	}
}

// soakMetric reads a counter by name; registering an existing name
// returns the existing handle.
func soakMetric(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter(name, "").Load()
}
