package cluster

import (
	"time"

	"xlate/internal/telemetry"
)

// Quantiles summarizes one stage histogram for the load report: sample
// count, mean, and the interpolated p50/p95/p99 the acceptance targets
// are written against.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// LoadReport is the machine-readable outcome of a measured run (`make
// loadtest`, `eeatd -cluster N -soak S -load-out F`): throughput plus
// the per-stage latency distributions read back from the cluster's own
// stage histograms — the report measures exactly what /metrics exports,
// not a parallel bookkeeping path.
type LoadReport struct {
	WallSeconds float64 `json:"wall_seconds"`
	// Cells is the number of cells the coordinator led to completion
	// (the cell-stage sample count: dispatched, federated, or local —
	// but not memo or in-flight-dedup answers, which did no cluster
	// work); CellsPerSec divides it by the suite phase's wall clock.
	Cells       uint64  `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`

	CellLatency Quantiles `json:"cell_latency"`
	QueueWait   Quantiles `json:"queue_wait"`
	WorkerExec  Quantiles `json:"worker_exec"`
	Dispatch    Quantiles `json:"dispatch"`
}

// quantilesOf reads one stage's histogram back out of the registry.
// Registering with nil buckets returns the existing handle, so this is
// a pure read — no new series appear.
func quantilesOf(reg *telemetry.Registry, stage string) Quantiles {
	h := reg.Histogram("xlate_cluster_stage_seconds", "", nil, telemetry.L("stage", stage))
	q := Quantiles{Count: h.Count()}
	if q.Count > 0 {
		q.Mean = h.Sum() / float64(q.Count)
		q.P50 = h.Quantile(0.50)
		q.P95 = h.Quantile(0.95)
		q.P99 = h.Quantile(0.99)
	}
	return q
}

// MeasureLoad assembles the LoadReport from the registry's stage
// histograms and the measured wall clock of the suite phase.
func MeasureLoad(reg *telemetry.Registry, wall time.Duration) LoadReport {
	r := LoadReport{
		WallSeconds: wall.Seconds(),
		CellLatency: quantilesOf(reg, "cell"),
		QueueWait:   quantilesOf(reg, "worker_queue"),
		WorkerExec:  quantilesOf(reg, "worker_exec"),
		Dispatch:    quantilesOf(reg, "dispatch"),
	}
	r.Cells = r.CellLatency.Count
	if r.WallSeconds > 0 {
		r.CellsPerSec = float64(r.Cells) / r.WallSeconds
	}
	return r
}
