package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"xlate/internal/exper"
	"xlate/internal/telemetry"
)

// traceEvent is the JSONL shape of one emitted trace event, just enough
// of it to check the cross-process merge.
type traceEvent struct {
	Ev      string  `json:"ev"`
	Cat     string  `json:"cat"`
	Dur     *uint64 `json:"dur"`
	TraceID string  `json:"trace_id"`
	Worker  string  `json:"worker"`
}

func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// The tentpole integration test: one traced dev-cluster run must (a)
// stay byte-identical to the single-process report, (b) produce ONE
// merged trace where coordinator-side and worker-side spans of the same
// cell share a trace id, (c) serve a federated /v1/cluster/metrics
// whose aggregated worker-side completion count equals the planned cell
// count, (d) serve the enriched cluster /status, and (e) yield a load
// report with positive throughput and ordered quantiles.
func TestClusterObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster run")
	}
	want := singleProcessReport(t)

	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf, telemetry.TraceJSONL, 1)
	reg := telemetry.NewRegistry()
	dev, err := StartDev(context.Background(), DevConfig{
		Workers:  3,
		Options:  testOptions(),
		Retry:    fastRetry(),
		Registry: reg,
		Tracer:   tracer,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	suiteStart := time.Now()
	results, err := dev.Run(ctx, []exper.Experiment{fig2(t)})
	suiteWall := time.Since(suiteStart)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n := WriteReport(&buf, results); n != 0 {
		t.Fatalf("%d experiments failed in the traced run", n)
	}
	if buf.String() != want {
		t.Error("tracing changed the report: the traced cluster run is not byte-identical to the single-process run")
	}

	base := dev.CoordinatorBase()

	// (d) Enriched cluster /status over real HTTP.
	var statusWrap struct {
		Run ClusterStatus `json:"run"`
	}
	if err := json.Unmarshal(httpGetBody(t, base+"/status"), &statusWrap); err != nil {
		t.Fatalf("cluster /status is not valid JSON: %v", err)
	}
	st := statusWrap.Run
	if st.CellsExecuted != 24 {
		t.Errorf("/status cells_executed = %d, want 24", st.CellsExecuted)
	}
	if st.WorkersLive != 3 || len(st.Workers) != 3 {
		t.Errorf("/status workers: live=%d rows=%d, want 3/3", st.WorkersLive, len(st.Workers))
	}
	if st.RingGeneration < 1 {
		t.Errorf("/status ring_generation = %d, want >= 1 after three joins", st.RingGeneration)
	}
	if st.CompletedCells != 24 {
		t.Errorf("/status completed_cells = %d, want 24", st.CompletedCells)
	}
	for _, row := range st.Workers {
		if row.Dead {
			t.Errorf("worker %s reported dead in a chaos-free run", row.ID)
		}
		if row.ProbeError != "" {
			t.Errorf("worker %s status probe failed: %s", row.ID, row.ProbeError)
		}
		if row.QueueDepth != 0 {
			t.Errorf("worker %s queue_depth = %d after the suite drained", row.ID, row.QueueDepth)
		}
	}

	// (c) Federated metrics: the aggregate (unlabeled) completion count
	// across all worker daemons must equal the planned cell count, and
	// every worker must contribute a labeled per-worker series.
	fed := string(httpGetBody(t, base+"/v1/cluster/metrics"))
	agg, perWorker := readFedCounter(t, fed, "xlate_service_jobs_completed_total")
	if agg != 24 {
		t.Errorf("federated jobs_completed aggregate = %v, want 24", agg)
	}
	if len(perWorker) != 3 {
		t.Errorf("federated jobs_completed per-worker series = %v, want one per worker", perWorker)
	}
	var sum float64
	for _, v := range perWorker {
		sum += v
	}
	if sum != agg {
		t.Errorf("per-worker series sum to %v, aggregate says %v", sum, agg)
	}

	// (b) One merged trace: coordinator spans and reconstructed worker
	// spans of the same cell share a trace id.
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	byTrace := make(map[string]map[string]int) // trace id -> event name -> count
	sc := bufio.NewScanner(bytes.NewReader(traceBuf.Bytes()))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if ev.TraceID == "" {
			continue
		}
		m := byTrace[ev.TraceID]
		if m == nil {
			m = make(map[string]int)
			byTrace[ev.TraceID] = m
		}
		m[ev.Ev]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(byTrace) != 24 {
		t.Errorf("trace ids = %d, want one per cell (24)", len(byTrace))
	}
	for id, evs := range byTrace {
		for _, name := range []string{"enqueue", "cell", "dispatch", "worker_queue", "worker_exec"} {
			if evs[name] == 0 {
				t.Errorf("trace %s has no %q event — coordinator and worker halves did not merge: %v", id, name, evs)
			}
		}
	}

	// (e) Stage histograms and the load report read back from them.
	for _, stage := range []string{"cell", "dispatch", "worker_queue", "worker_exec"} {
		h := reg.Histogram("xlate_cluster_stage_seconds", "", nil, telemetry.L("stage", stage))
		if h.Count() < 24 {
			t.Errorf("stage %q histogram count = %d, want >= 24", stage, h.Count())
		}
	}
	load := MeasureLoad(reg, suiteWall)
	if load.Cells != 24 {
		t.Errorf("load report cells = %d, want 24", load.Cells)
	}
	if load.CellsPerSec <= 0 {
		t.Errorf("load report cells_per_sec = %v, want > 0", load.CellsPerSec)
	}
	if load.CellLatency.P50 <= 0 || load.CellLatency.P95 < load.CellLatency.P50 || load.CellLatency.P99 < load.CellLatency.P95 {
		t.Errorf("cell latency quantiles not ordered: %+v", load.CellLatency)
	}
}

// readFedCounter pulls one counter family out of a federated exposition:
// the unlabeled aggregate value plus every worker-labeled series.
func readFedCounter(t *testing.T, text, name string) (agg float64, perWorker map[string]float64) {
	t.Helper()
	perWorker = make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		switch {
		case strings.HasPrefix(rest, " "):
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("aggregate line %q: %v", line, err)
			}
			agg = v
		case strings.HasPrefix(rest, `{worker="`):
			id, after, ok := strings.Cut(rest[len(`{worker="`):], `"}`)
			if !ok {
				t.Fatalf("malformed per-worker line %q", line)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(after), 64)
			if err != nil {
				t.Fatalf("per-worker line %q: %v", line, err)
			}
			perWorker[id] = v
		}
	}
	return agg, perWorker
}

// Scraping a coordinator with zero live workers must still yield a
// well-formed (empty) exposition, and /status must not hang.
func TestFederatedMetricsNoWorkers(t *testing.T) {
	coord, err := NewCoordinator(Config{Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.End()

	var out bytes.Buffer
	if err := coord.FederatedMetrics(context.Background(), &out); err != nil {
		t.Fatalf("federating zero workers: %v", err)
	}
	if s := out.String(); s != "" {
		t.Errorf("zero-worker federation produced output: %q", s)
	}
	st := coord.Status(context.Background())
	if st.WorkersLive != 0 || len(st.Workers) != 0 {
		t.Errorf("workerless status = %+v", st)
	}
}
