package service

import (
	"encoding/json"
	"testing"

	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/workloads"
)

func wireTestJob(t *testing.T) exper.Job {
	t.Helper()
	spec, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("no mcf workload")
	}
	return exper.Job{
		Spec:   spec,
		Params: core.DefaultParams(core.CfgRMM),
		Policy: core.PolicyFor(core.CfgRMM, 0.5),
		Instrs: 1_000_000,
		Scale:  0.25,
		Seed:   7,
	}
}

// The cluster's correctness rests on the wire form preserving the cell
// key: a worker must compute (and cache) exactly the cell the
// coordinator hashed onto the ring.
func TestWireJobPreservesKey(t *testing.T) {
	j := wireTestJob(t)
	want := harness.JobKey(j)

	b, err := json.Marshal(EncodeJob(j))
	if err != nil {
		t.Fatal(err)
	}
	var w WireJob
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Job()
	if err != nil {
		t.Fatal(err)
	}
	if got := harness.JobKey(back); got != want {
		t.Errorf("cell key changed across the wire: %s != %s", got, want)
	}
}

// Sweep experiments ship custom energy databases (internal/exper/sens);
// the wire form must carry the full database, not assume Table 2.
func TestWireJobCustomEnergyDB(t *testing.T) {
	j := wireTestJob(t)
	db := energy.Table2()
	db.Register(energy.L2Page, 0, energy.Cost{ReadPJ: 99.5, WritePJ: 1.25, LeakMW: 3})
	j.Params.EnergyDB = db
	want := harness.JobKey(j)

	b, err := json.Marshal(EncodeJob(j))
	if err != nil {
		t.Fatal(err)
	}
	var w WireJob
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Job()
	if err != nil {
		t.Fatal(err)
	}
	if back.Params.EnergyDB.Fingerprint() != db.Fingerprint() {
		t.Error("energy database fingerprint changed across the wire")
	}
	if got := harness.JobKey(back); got != want {
		t.Errorf("custom-DB cell key changed across the wire: %s != %s", got, want)
	}
}

func TestWireJobRejectsGarbage(t *testing.T) {
	cases := map[string]WireJob{
		"empty":     {},
		"no-energy": func() WireJob { w := EncodeJob(wireTestJob(t)); w.EnergyDB = nil; return w }(),
		"bad-scale": func() WireJob { w := EncodeJob(wireTestJob(t)); w.Scale = -1; return w }(),
		"bad-geom": func() WireJob {
			w := EncodeJob(wireTestJob(t))
			w.Params.L14KEntries = -4
			return w
		}(),
	}
	for name, w := range cases {
		if _, err := w.Job(); err == nil {
			t.Errorf("%s: Job() accepted a malformed wire cell", name)
		}
	}
}

// A wire-cell submission resolves to the same job and key the
// coordinator computed, and rejects parameter smuggling alongside it.
func TestResolveCell(t *testing.T) {
	j := wireTestJob(t)
	wire := EncodeJob(j)
	r, err := resolve(SubmitRequest{Cell: &wire}, cellDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != kindCell {
		t.Fatalf("kind = %q, want cell", r.kind)
	}
	if r.key != harness.JobKey(j) {
		t.Error("resolved key differs from the coordinator-side key")
	}

	if _, err := resolve(SubmitRequest{Cell: &wire, Workload: "mcf"}, cellDefaults{}); err == nil {
		t.Error("cell+workload submission accepted")
	}
	if _, err := resolve(SubmitRequest{Cell: &wire, Instrs: 5}, cellDefaults{}); err == nil {
		t.Error("cell+instrs submission accepted")
	}
	if _, err := resolve(SubmitRequest{Cell: &wire}, cellDefaults{maxInstrs: 10}); err == nil {
		t.Error("cell over the admission cap accepted")
	}
}
