package service

import (
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0, 0, nil)
	c.put("a", []byte("aa"))
	c.put("b", []byte("bb"))
	// Touch a so b becomes the least recently used.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.put("c", []byte("cc"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was recently used and should survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c was just inserted and should survive")
	}
	if n, _ := c.stats(); n != 2 {
		t.Errorf("entries = %d, want 2", n)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newResultCache(100, 10, 0, nil)
	c.put("a", []byte("12345678"))
	c.put("b", []byte("12345678"))
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted to satisfy the byte bound")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("b should survive")
	}
	if _, bytes := c.stats(); bytes != 8 {
		t.Errorf("bytes = %d, want 8", bytes)
	}

	// An oversized payload still caches: the just-inserted entry is
	// never evicted, even when it alone exceeds the bound.
	c.put("big", make([]byte, 64))
	if !c.peek("big") {
		t.Error("oversized entry should remain cached")
	}
	if n, _ := c.stats(); n != 1 {
		t.Errorf("entries = %d, want 1 (everything else evicted)", n)
	}
}

func TestCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newResultCache(10, 0, time.Minute, nil)
	c.now = func() time.Time { return now }

	c.put("a", []byte("aa"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.get("a"); ok {
		t.Error("expired entry should miss")
	}
	if c.peek("a") {
		t.Error("peek should drop the expired entry too")
	}
	if n, _ := c.stats(); n != 0 {
		t.Errorf("entries = %d, want 0 after expiry", n)
	}
}

func TestCachePutRefresh(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newResultCache(10, 0, time.Minute, nil)
	c.now = func() time.Time { return now }

	payload := []byte("payload")
	c.put("k", payload)
	now = now.Add(45 * time.Second)
	c.put("k", payload) // same key, same bytes: refresh, not duplicate
	if n, bytes := c.stats(); n != 1 || bytes != int64(len(payload)) {
		t.Errorf("entries=%d bytes=%d, want 1 entry not double-counted", n, bytes)
	}
	now = now.Add(45 * time.Second) // 90s after first put, 45s after refresh
	if _, ok := c.get("k"); !ok {
		t.Error("refreshed entry should still be live")
	}
}
