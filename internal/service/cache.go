package service

import (
	"container/list"
	"sync"
	"time"
)

// resultCache is the content-addressed result store: key → the exact
// payload bytes the job rendered. Because keys are canonical cell (or
// experiment) identities, a hit returns bytes that are identical to
// what re-running the job would produce — the cache is exact, not
// approximate. Eviction is LRU bounded by entry count and byte size,
// with an optional TTL; expired entries are dropped lazily on access
// and proactively when scanning for space.
type resultCache struct {
	mu       sync.Mutex
	maxN     int
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // test hook

	entries map[string]*list.Element
	lru     *list.List // front = most recent
	bytes   int64

	m *metrics // nil in unit tests
}

type cacheEntry struct {
	key     string
	payload []byte
	stored  time.Time
}

func newResultCache(maxN int, maxBytes int64, ttl time.Duration, m *metrics) *resultCache {
	if maxN <= 0 {
		maxN = 256
	}
	return &resultCache{
		maxN:     maxN,
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		m:        m,
	}
}

// get returns the cached payload and records a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if !c.expired(e) {
			c.lru.MoveToFront(el)
			if c.m != nil {
				c.m.cacheHits.Inc()
			}
			return e.payload, true
		}
		c.removeLocked(el, true)
	}
	if c.m != nil {
		c.m.cacheMisses.Inc()
	}
	return nil, false
}

// peek is get without hit/miss accounting — for presence checks that
// should not skew the hit ratio (e.g. the status snapshot).
func (c *resultCache) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	if c.expired(el.Value.(*cacheEntry)) {
		c.removeLocked(el, true)
		return false
	}
	return true
}

// put stores a payload, evicting LRU entries until the count and byte
// bounds hold again.
func (c *resultCache) put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key means same bytes by construction; just refresh.
		e := el.Value.(*cacheEntry)
		e.stored = c.now()
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, payload: payload, stored: c.now()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(len(payload))
	for c.lru.Len() > c.maxN || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.lru.Back()
		if back == nil || back == c.lru.Front() {
			break // never evict the entry just inserted
		}
		c.removeLocked(back, true)
	}
	c.updateGauges()
}

func (c *resultCache) expired(e *cacheEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.stored) > c.ttl
}

func (c *resultCache) removeLocked(el *list.Element, evicted bool) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.payload))
	if evicted && c.m != nil {
		c.m.cacheEvictions.Inc()
	}
	c.updateGauges()
}

func (c *resultCache) updateGauges() {
	if c.m == nil {
		return
	}
	c.m.cacheEntries.Set(int64(c.lru.Len()))
	c.m.cacheBytes.Set(c.bytes)
}

// stats snapshots the cache occupancy for /status.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.bytes
}
