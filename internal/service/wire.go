package service

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/exper"
	"xlate/internal/vm"
	"xlate/internal/workloads"
)

// WireJob is the serializable form of an exper.Job, complete enough to
// ship any cell — including sweep cells with non-default parameters or
// custom energy databases — to a remote worker and re-execute it there
// under the same content-addressed key.
//
// Params cannot marshal directly: its EnergyDB holds an unexported map,
// and Metrics/Trace are process-local attachments. EncodeJob strips all
// three and carries the energy database as canonical energy.Entry rows
// instead; Job rebuilds it. Because the harness cell key already
// identifies the database by fingerprint (not pointer) and excludes
// Metrics/Trace, a round trip through WireJob preserves the key — which
// the cluster tests assert.
//
//eeat:wire
type WireJob struct {
	Spec workloads.Spec `json:"spec"`
	// Params knowingly violates round-trip purity: EnergyDB's map is
	// unexported and Metrics/Trace are process-local pointers. EncodeJob
	// nils all three and ships the database as canonical EnergyDB rows;
	// Job() rebuilds it — the sanctioned side channel wireparity's
	// pragma below records.
	//eeatlint:allow wireparity EncodeJob strips EnergyDB/Metrics/Trace and ships canonical entries instead
	Params   core.Params    `json:"params"`
	EnergyDB []energy.Entry `json:"energy_db,omitempty"`
	Policy   vm.Policy      `json:"policy"`
	Instrs   uint64         `json:"instrs"`
	Scale    float64        `json:"scale"`
	Seed     int64          `json:"seed"`

	// TraceID and ParentSpan propagate the coordinator's trace context
	// to the worker (telemetry.TraceContext in wire form). Like
	// Params.Metrics/Trace they are observability attachments, not part
	// of what the cell *is*: Job() ignores them, so the round-tripped
	// content-addressed key — and with it the cache identity — is
	// unchanged whether or not a cell is traced.
	//eeat:keyexcluded
	TraceID string `json:"trace_id,omitempty"`
	//eeat:keyexcluded
	ParentSpan uint64 `json:"parent_span,omitempty"`
}

// EncodeJob converts an executable cell to its wire form.
func EncodeJob(j exper.Job) WireJob {
	p := j.Params
	entries := p.EnergyDB.Entries()
	p.EnergyDB = nil
	p.Metrics = nil
	p.Trace = nil
	return WireJob{
		Spec:     j.Spec,
		Params:   p,
		EnergyDB: entries,
		Policy:   j.Policy,
		Instrs:   j.Instrs,
		Scale:    j.Scale,
		Seed:     j.Seed,
	}
}

// Job rebuilds the executable cell and validates it, so a malformed or
// hostile payload is rejected at the worker boundary instead of
// panicking inside the simulator.
func (w WireJob) Job() (exper.Job, error) {
	p := w.Params
	if len(w.EnergyDB) == 0 {
		return exper.Job{}, fmt.Errorf("%w: cell carries no energy database", ErrBadRequest)
	}
	p.EnergyDB = energy.FromEntries(w.EnergyDB)
	if err := p.Validate(); err != nil {
		return exper.Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if w.Spec.Name == "" {
		return exper.Job{}, fmt.Errorf("%w: cell spec has no workload name", ErrBadRequest)
	}
	if w.Instrs == 0 || w.Scale <= 0 || w.Scale > 64 {
		return exper.Job{}, fmt.Errorf("%w: cell instrs=%d scale=%g out of range", ErrBadRequest, w.Instrs, w.Scale)
	}
	return exper.Job{
		Spec:   w.Spec,
		Params: p,
		Policy: w.Policy,
		Instrs: w.Instrs,
		Scale:  w.Scale,
		Seed:   w.Seed,
	}, nil
}
