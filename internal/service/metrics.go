package service

import "xlate/internal/telemetry"

// metrics is the daemon's own instrumentation, registered into the
// run-wide telemetry registry so one /metrics scrape covers the
// service layer, the harness, and the simulators it drives.
type metrics struct {
	submitted   *telemetry.Counter
	admitted    *telemetry.Counter
	rejected    *telemetry.Counter
	deduped     *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	jobSeconds  *telemetry.Histogram
	queueWait   *telemetry.Histogram
	execSeconds *telemetry.Histogram
	queueDepth  *telemetry.Gauge
	inFlight    *telemetry.Gauge

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	cacheEntries   *telemetry.Gauge
	cacheBytes     *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		submitted: reg.Counter("xlate_service_jobs_submitted_total",
			"job submissions received (including deduped and cache-served)"),
		admitted: reg.Counter("xlate_service_jobs_admitted_total",
			"submissions that entered the queue as new jobs"),
		rejected: reg.Counter("xlate_service_jobs_rejected_total",
			"submissions refused by admission control (queue full or draining)"),
		deduped: reg.Counter("xlate_service_jobs_deduped_total",
			"submissions attached to an identical in-flight job (singleflight)"),
		completed: reg.Counter("xlate_service_jobs_completed_total",
			"jobs that produced a result"),
		failed: reg.Counter("xlate_service_jobs_failed_total",
			"jobs that ended in error"),
		jobSeconds: reg.Histogram("xlate_service_job_seconds",
			"wall-clock from admission to terminal state", telemetry.DurationBuckets()),
		queueWait: reg.Histogram("xlate_service_queue_wait_seconds",
			"wall-clock from admission to worker pickup", telemetry.DurationBuckets()),
		execSeconds: reg.Histogram("xlate_service_exec_seconds",
			"wall-clock a job spent executing on a worker slot", telemetry.DurationBuckets()),
		queueDepth: reg.Gauge("xlate_service_queue_depth",
			"jobs admitted but not yet running"),
		inFlight: reg.Gauge("xlate_service_jobs_in_flight",
			"jobs currently executing on workers"),

		cacheHits: reg.Counter("xlate_service_cache_hits_total",
			"submissions and result fetches served from the result cache"),
		cacheMisses: reg.Counter("xlate_service_cache_misses_total",
			"cache lookups that found no fresh entry"),
		cacheEvictions: reg.Counter("xlate_service_cache_evictions_total",
			"entries dropped by LRU bounds or TTL expiry"),
		cacheEntries: reg.Gauge("xlate_service_cache_entries",
			"entries currently cached"),
		cacheBytes: reg.Gauge("xlate_service_cache_bytes",
			"payload bytes currently cached"),
	}
}
