package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"xlate/internal/exper"
	"xlate/internal/telemetry"
)

// cellBody is the canonical small cell job the tests submit: the
// smallest catalog workload at a reduced footprint, so a run costs
// milliseconds while exercising the full simulation path.
const cellBody = `{"workload":"swaptions","config":"4KB","instrs":200000,"scale":0.25,"seed":7}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding HTTP %d response: %v", resp.StatusCode, err)
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, path string) JobStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding %s (HTTP %d): %v", path, resp.StatusCode, err)
	}
	return st
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// checkNoLeaks polls until the goroutine count returns to (near) the
// recorded baseline — the drain contract: no worker, waiter, or handler
// goroutine outlives Drain plus server close.
func checkNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after drain: %d live, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSingleflightDedupAndCache is the acceptance path: two identical
// submissions while the first is in flight fold into one execution,
// the payload is byte-identical to a local run of the same cell, a
// resubmission is a cache hit, and the drain leaks nothing.
func TestSingleflightDedupAndCache(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, Config{Workers: 1, SpoolDir: filepath.Join(t.TempDir(), "spool")})
	gate := make(chan struct{})
	s.testHookRunning = func(*job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st1, resp1 := postJob(t, ts, cellBody)
	if resp1.StatusCode != http.StatusAccepted || st1.ID == "" {
		t.Fatalf("first submit: HTTP %d, %+v", resp1.StatusCode, st1)
	}
	// The worker is parked in the test hook, so the job is provably in
	// flight when the identical submission arrives.
	st2, resp2 := postJob(t, ts, cellBody)
	if resp2.StatusCode != http.StatusAccepted || !st2.Deduped {
		t.Fatalf("identical submit should dedup: HTTP %d, %+v", resp2.StatusCode, st2)
	}
	if st2.ID != st1.ID {
		t.Fatalf("dedup changed the job id: %s vs %s", st2.ID, st1.ID)
	}
	close(gate)

	st := getStatus(t, ts, "/v1/jobs/"+st1.ID+"?wait=30s")
	if st.State != StateDone {
		t.Fatalf("job did not complete: %+v", st)
	}

	code, p1 := getBody(t, ts, st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result fetch: HTTP %d", code)
	}
	_, p2 := getBody(t, ts, st.ResultURL)
	if !bytes.Equal(p1, p2) {
		t.Error("two fetches of the same key returned different bytes")
	}

	// The daemon's payload must be byte-identical to running the same
	// cell locally — the exactness the content-addressed cache promises.
	var req SubmitRequest
	if err := json.Unmarshal([]byte(cellBody), &req); err != nil {
		t.Fatal(err)
	}
	r, err := resolve(req, cellDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exper.ExecuteJob(r.cell)
	if err != nil {
		t.Fatal(err)
	}
	want, err := marshalPayload(CellResult{
		Key: r.key, Kind: kindCell, Workload: "swaptions", Config: "4KB", Result: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, want) {
		t.Errorf("daemon payload differs from a local run of the same cell:\n--- daemon ---\n%s\n--- local ---\n%s", p1, want)
	}

	st3, resp3 := postJob(t, ts, cellBody)
	if resp3.StatusCode != http.StatusOK || !st3.Cached {
		t.Fatalf("resubmission should be a cache hit: HTTP %d, %+v", resp3.StatusCode, st3)
	}

	if got := s.m.admitted.Load(); got != 1 {
		t.Errorf("admitted = %d, want 1 (singleflight)", got)
	}
	if got := s.m.deduped.Load(); got != 1 {
		t.Errorf("deduped = %d, want 1", got)
	}
	if s.m.cacheHits.Load() == 0 {
		t.Error("cache hits not recorded")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	checkNoLeaks(t, base)
}

// TestConditionalResultFetch covers the content-addressed HTTP caching:
// the key is the entity tag, so a matching If-None-Match skips the body.
func TestConditionalResultFetch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, cellBody)
	st = getStatus(t, ts, "/v1/jobs/"+st.ID+"?wait=30s")
	if st.State != StateDone {
		t.Fatalf("job did not complete: %+v", st)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+st.ResultURL, nil)
	req.Header.Set("If-None-Match", `"`+st.ID+`"`)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("matching If-None-Match: HTTP %d, want 304", resp.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	started := make(chan string, 4)
	gate := make(chan struct{})
	s.testHookRunning = func(j *job) { started <- j.id; <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed int) (JobStatus, *http.Response) {
		body := strings.Replace(cellBody, `"seed":7`, `"seed":`+string(rune('0'+seed)), 1)
		return postJob(t, ts, body)
	}
	if st, resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, %+v", resp.StatusCode, st)
	}
	<-started // the only worker is now occupied
	if _, resp := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit should queue: HTTP %d", resp.StatusCode)
	}
	st, resp := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit should hit the queue bound: HTTP %d, %+v", resp.StatusCode, st)
	}
	if st.RetryAfter < 1 {
		t.Errorf("429 should estimate a retry delay, got %g", st.RetryAfter)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry a Retry-After header")
	}
	if got := s.m.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDrainStopsAdmissionAndFinishesWork(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	started := make(chan string, 1)
	gate := make(chan struct{})
	s.testHookRunning = func(j *job) { started <- j.id; <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, cellBody)
	id := <-started

	drainErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { drainErr <- s.Drain(ctx) }()
	for !s.Status().Draining {
		time.Sleep(5 * time.Millisecond)
	}

	if code, _ := getBody(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: HTTP %d, want 503", code)
	}
	other := strings.Replace(cellBody, `"seed":7`, `"seed":8`, 1)
	if st, resp := postJob(t, ts, other); resp.StatusCode != http.StatusServiceUnavailable || st.RetryAfter < 1 {
		t.Errorf("submit while draining: HTTP %d, %+v, want 503 with a retry estimate", resp.StatusCode, st)
	}

	close(gate) // let the in-flight job finish
	if err := <-drainErr; err != nil {
		t.Fatalf("drain should complete cleanly once work finishes: %v", err)
	}
	// The drained job completed and its result is servable.
	got, ok := s.lookup(id)
	if !ok || got.State != StateDone {
		t.Errorf("drained job state = %+v, want done", got)
	}
	if code, _ := getBody(t, ts, "/v1/results/"+st.ID); code != http.StatusOK {
		t.Errorf("result after drain: HTTP %d", code)
	}
}

// TestDrainDeadlineCancelsInflight covers the forced half of the drain
// contract: past the deadline the run context is cancelled, the job
// fails with context.Canceled, and the daemon still winds down.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, SpoolDir: filepath.Join(t.TempDir(), "spool")})
	started := make(chan string, 1)
	s.testHookRunning = func(j *job) {
		started <- j.id
		<-s.runCtx.Done() // hold the job until the drain forces cancellation
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts, cellBody)
	id := <-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain error = %v, want DeadlineExceeded", err)
	}
	st, ok := s.lookup(id)
	if !ok || st.State != StateFailed {
		t.Fatalf("cancelled job state = %+v, want failed", st)
	}
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job error = %q, want context.Canceled in it", st.Error)
	}
	if got := s.m.failed.Load(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
}

func TestExperimentJobWithLogStream(t *testing.T) {
	spool := filepath.Join(t.TempDir(), "spool")
	s := newTestServer(t, Config{Workers: 1, SpoolDir: spool})
	gate := make(chan struct{})
	s.testHookRunning = func(*job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := postJob(t, ts, `{"experiment":"table2"}`)
	if resp.StatusCode != http.StatusAccepted || st.Kind != kindExperiment {
		t.Fatalf("experiment submit: HTTP %d, %+v", resp.StatusCode, st)
	}

	// Attach the log stream while the job is held in flight, then
	// release it; the stream replays the history and tails to the end.
	lines := make(chan []string, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + st.LogURL)
		if err != nil {
			lines <- nil
			return
		}
		defer resp.Body.Close()
		var got []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			got = append(got, sc.Text())
		}
		lines <- got
	}()
	time.Sleep(20 * time.Millisecond) // let the stream attach before releasing
	close(gate)

	final := getStatus(t, ts, "/v1/jobs/"+st.ID+"?wait=30s")
	if final.State != StateDone {
		t.Fatalf("experiment job did not complete: %+v", final)
	}
	got := <-lines
	joined := strings.Join(got, "\n")
	for _, want := range []string{"admitted experiment job", "done in"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log stream missing %q:\n%s", want, joined)
		}
	}

	_, payload := getBody(t, ts, final.ResultURL)
	var er ExperimentResult
	if err := json.Unmarshal(payload, &er); err != nil {
		t.Fatal(err)
	}
	if er.Experiment != "table2" || len(er.Tables) == 0 {
		t.Fatalf("experiment payload incomplete: %+v", er)
	}
	if !strings.Contains(er.Tables[0].Markdown, "|") || er.Tables[0].CSV == "" {
		t.Error("experiment tables should render markdown and CSV")
	}

	// A clean experiment run leaves no checkpoint behind in the spool.
	leftover, err := filepath.Glob(filepath.Join(spool, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Errorf("spool should be empty after a clean run, found %v", leftover)
	}
}

func TestMetricsAndStatusOnSameMux(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts, cellBody)
	getStatus(t, ts, "/v1/jobs/"+mustKey(t, cellBody)+"?wait=30s")

	code, metrics := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"xlate_service_jobs_admitted_total",
		"xlate_service_jobs_completed_total",
		"xlate_service_cache_entries",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	code, status := getBody(t, ts, "/status")
	if code != http.StatusOK {
		t.Fatalf("/status: HTTP %d", code)
	}
	var snap struct {
		Run struct {
			Workers      int `json:"workers"`
			CacheEntries int `json:"cache_entries"`
		} `json:"run"`
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(status, &snap); err != nil {
		t.Fatalf("/status is not the expected JSON: %v\n%s", err, status)
	}
	if snap.Run.Workers != 1 || snap.Run.CacheEntries != 1 || len(snap.Metrics) == 0 {
		t.Errorf("/status snapshot incomplete: %+v", snap)
	}

	if code, _ := getBody(t, ts, "/v1/experiments"); code != http.StatusOK {
		t.Errorf("/v1/experiments: HTTP %d", code)
	}
}

// mustKey resolves a submit body to its content-addressed job id.
func mustKey(t *testing.T, body string) string {
	t.Helper()
	var req SubmitRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	r, err := resolve(req, cellDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	return r.key
}

func TestHTTPValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := postJob(t, ts, `{"workload":`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}
	if _, resp := postJob(t, ts, `{"werkload":"mcf"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
	if st, resp := postJob(t, ts, `{}`); resp.StatusCode != http.StatusBadRequest || st.Error == "" {
		t.Errorf("empty submission: HTTP %d, want 400 with an error", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: HTTP %d, want 405", resp.StatusCode)
	}
	if code, _ := getBody(t, ts, "/v1/jobs/no-such-job"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	if code, _ := getBody(t, ts, "/v1/results/no-such-key"); code != http.StatusNotFound {
		t.Errorf("unknown result: HTTP %d, want 404", code)
	}
}

func TestResolveValidation(t *testing.T) {
	cases := []struct {
		name    string
		req     SubmitRequest
		cap     uint64
		wantErr string
	}{
		{"neither", SubmitRequest{}, 0, "exactly one"},
		{"both", SubmitRequest{Workload: "mcf", Experiment: "fig2"}, 0, "exactly one"},
		{"unknown workload", SubmitRequest{Workload: "nope", Config: "4KB"}, 0, "unknown workload"},
		{"missing config", SubmitRequest{Workload: "mcf"}, 0, "need a config"},
		{"unknown config", SubmitRequest{Workload: "mcf", Config: "zap"}, 0, "unknown config"},
		{"unknown experiment", SubmitRequest{Experiment: "nope"}, 0, "unknown experiment"},
		{"experiment with config", SubmitRequest{Experiment: "fig2", Config: "4KB"}, 0, "cell jobs only"},
		{"scale too large", SubmitRequest{Workload: "mcf", Config: "4KB", Scale: 65}, 0, "out of range"},
		{"negative scale", SubmitRequest{Workload: "mcf", Config: "4KB", Scale: -1}, 0, "out of range"},
		{"over the cap", SubmitRequest{Workload: "mcf", Config: "4KB", Instrs: 2_000_000}, 1_000_000, "admission cap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := resolve(c.req, cellDefaults{maxInstrs: c.cap})
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("error = %v, want ErrBadRequest", err)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want %q in it", err, c.wantErr)
			}
		})
	}
}

func TestResolveIdentity(t *testing.T) {
	base := SubmitRequest{Workload: "swaptions", Config: "RMM_Lite", Instrs: 1000, Scale: 0.5, Seed: 3}
	a, err := resolve(base, cellDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := resolve(base, cellDefaults{})
	if a.key != b.key {
		t.Error("identical requests must share a key")
	}
	lower := base
	lower.Config = "rmm_lite"
	if c, _ := resolve(lower, cellDefaults{}); c.key != a.key {
		t.Error("config lookup should be case-insensitive")
	}
	seeded := base
	seeded.Seed = 4
	if d, _ := resolve(seeded, cellDefaults{}); d.key == a.key {
		t.Error("seed must be part of the identity")
	}

	e1, err := resolve(SubmitRequest{Experiment: "fig2", Instrs: 1000, Scale: 0.5, Seed: 3}, cellDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := resolve(SubmitRequest{Experiment: "fig2", Instrs: 1000, Scale: 0.5, Seed: 4}, cellDefaults{})
	if e1.key == e2.key {
		t.Error("experiment options must be part of the identity")
	}
}

func TestLogBuffer(t *testing.T) {
	b := newLogBuffer()
	b.append("one")
	b.append("two")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []string
	done := make(chan error, 1)
	go func() {
		done <- b.tail(ctx, func(line string) error { got = append(got, line); return nil })
	}()
	time.Sleep(10 * time.Millisecond)
	b.append("three")
	b.finish()
	if err := <-done; err != nil {
		t.Fatalf("tail: %v", err)
	}
	if strings.Join(got, ",") != "one,two,three" {
		t.Errorf("tail saw %v", got)
	}
	// Appending after finish is a no-op, not a panic.
	b.append("late")
	if lines, done, _ := b.next(0); !done || len(lines) != 3 {
		t.Errorf("post-finish state: done=%v lines=%v", done, lines)
	}

	// A cancelled tailer returns promptly with the context error.
	b2 := newLogBuffer()
	ctx2, cancel2 := context.WithCancel(context.Background())
	tailErr := make(chan error, 1)
	go func() { tailErr <- b2.tail(ctx2, func(string) error { return nil }) }()
	cancel2()
	select {
	case err := <-tailErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled tail error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled tail did not return")
	}
}
