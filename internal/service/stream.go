package service

import (
	"context"
	"sync"
)

// logBuffer accumulates a job's progress lines and lets any number of
// HTTP streams tail them: each append (and the final close) signals
// waiters by closing a generation channel, so a tailer wakes exactly
// when there is something new to read. Experiment jobs feed it their
// harness Logf lines; cell jobs the admission/start/finish milestones.
type logBuffer struct {
	mu      sync.Mutex
	lines   []string
	closed  bool
	changed chan struct{}
}

func newLogBuffer() *logBuffer {
	return &logBuffer{changed: make(chan struct{})}
}

// append adds a line and wakes tailers. Safe from any goroutine; the
// harness calls it from Logf on worker goroutines.
func (b *logBuffer) append(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.lines = append(b.lines, line)
	close(b.changed)
	b.changed = make(chan struct{})
}

// finish marks the stream complete and wakes tailers one last time.
func (b *logBuffer) finish() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	close(b.changed)
	b.changed = make(chan struct{})
}

// next returns the lines at and after offset, whether the stream is
// complete, and the channel that signals the next change. A tailer
// loops: consume, and when done is false, select on the channel and
// the request context.
func (b *logBuffer) next(offset int) (lines []string, done bool, changed <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if offset < len(b.lines) {
		lines = b.lines[offset:len(b.lines):len(b.lines)]
	}
	return lines, b.closed, b.changed
}

// tail invokes emit for every line from offset 0 until the buffer
// finishes or ctx is cancelled. Returns ctx.Err() on cancellation.
func (b *logBuffer) tail(ctx context.Context, emit func(line string) error) error {
	off := 0
	for {
		lines, done, changed := b.next(off)
		for _, l := range lines {
			if err := emit(l); err != nil {
				return err
			}
		}
		off += len(lines)
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-changed:
		}
	}
}
