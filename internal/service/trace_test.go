package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xlate/internal/addr"
	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/trace"
	"xlate/internal/tracec"
	"xlate/internal/workloads"
)

// recordedTrace renders a deterministic XLTRACE1 upload — the format
// `eeatsim -record` writes and external tools are documented to POST.
func recordedTrace(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	va := uint64(1 << 32)
	for i := 0; i < n; i++ {
		va += uint64(rng.Int63n(1 << 18))
		if err := tw.Write(trace.Ref{VA: addr.VA(va), Instrs: uint64(rng.Int63n(6)) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTraceServer(t *testing.T) (*Server, *httptest.Server, *tracec.Store) {
	t.Helper()
	store, err := tracec.OpenStore(filepath.Join(t.TempDir(), "segments"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 2, TraceStore: store})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, store
}

// TestTraceIngestToCompletedJob is the ingestion acceptance path: an
// external reference stream POSTed to /v1/traces (gzip, chunked)
// becomes a first-class workload — runnable as a cell job and as a
// whole experiment — with deterministic, cacheable results.
func TestTraceIngestToCompletedJob(t *testing.T) {
	_, ts, _ := newTraceServer(t)

	// Upload gzipped with a chunked body (no Content-Length), the shape
	// a streaming client produces.
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	if _, err := gz.Write(recordedTrace(t, 4000, 42)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/traces",
		io.MultiReader(bytes.NewReader(gzBuf.Bytes()))) // hides the length → chunked
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var info tracec.TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !tracec.IsKey(info.Key) || info.Workload != "trace:"+info.Key {
		t.Fatalf("ingest response %+v", info)
	}

	// The ingested stream runs as a cell job under its trace: name.
	cell := fmt.Sprintf(`{"workload":%q,"config":"4KB","instrs":150000,"seed":7}`, info.Workload)
	st, resp2 := postJob(t, ts, cell)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("trace cell submit: HTTP %d, %+v", resp2.StatusCode, st)
	}
	st = getStatus(t, ts, "/v1/jobs/"+st.ID+"?wait=30s")
	if st.State != StateDone {
		t.Fatalf("trace cell did not complete: %+v", st)
	}
	code, payload := getBody(t, ts, st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result fetch: HTTP %d", code)
	}
	var cr CellResult
	if err := json.Unmarshal(payload, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Workload != info.Workload || cr.Result.Instructions < 150_000 || cr.Result.MemRefs == 0 {
		t.Fatalf("implausible trace cell payload: %+v", cr)
	}

	// Byte-identity of the daemon path: the payload matches replaying
	// the same segment locally through the same executor.
	local, err := tracec.OpenStore(filepath.Join(t.TempDir(), "local"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := &tracec.Executor{Store: local, Fetch: tracec.HTTPFetcher(ts.URL, ts.Client())}
	res, err := ex.ExecuteJob(t.Context(), exper.Job{
		Spec:   workloads.TraceSpec(info.Key),
		Params: core.DefaultParams(core.Cfg4KB),
		Policy: core.PolicyFor(core.Cfg4KB, 0.5),
		Instrs: 150_000,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Result, res) {
		t.Fatal("daemon trace cell differs from a local replay of the same segment")
	}

	// The whole per-configuration experiment runs from the trace too.
	expBody := fmt.Sprintf(`{"experiment":%q,"instrs":100000,"seed":7}`, info.Workload)
	st, resp3 := postJob(t, ts, expBody)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("trace experiment submit: HTTP %d, %+v", resp3.StatusCode, st)
	}
	st = getStatus(t, ts, "/v1/jobs/"+st.ID+"?wait=60s")
	if st.State != StateDone {
		t.Fatalf("trace experiment did not complete: %+v", st)
	}
	code, payload = getBody(t, ts, st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("experiment result fetch: HTTP %d", code)
	}
	var er ExperimentResult
	if err := json.Unmarshal(payload, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Tables) != 1 || !strings.Contains(er.Tables[0].Markdown, "4KB") {
		t.Fatalf("trace experiment payload: %+v", er)
	}
}

// TestTraceSubmissionValidation pins the typed rejections: malformed
// keys, missing segments, and daemons without a trace store all refuse
// the job at submission or execution with a useful error.
func TestTraceSubmissionValidation(t *testing.T) {
	_, ts, _ := newTraceServer(t)

	st, resp := postJob(t, ts, `{"workload":"trace:nothex","config":"4KB","instrs":1000}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(st.Error, "malformed trace key") {
		t.Fatalf("malformed key: HTTP %d, %+v", resp.StatusCode, st)
	}

	// Well-formed key, but no such segment: admitted (the segment could
	// arrive via federation), then failed by the executor.
	ghost := strings.Repeat("a", 64)
	st, resp = postJob(t, ts, fmt.Sprintf(`{"workload":"trace:%s","config":"4KB","instrs":1000}`, ghost))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ghost key submit: HTTP %d, %+v", resp.StatusCode, st)
	}
	st = getStatus(t, ts, "/v1/jobs/"+st.ID+"?wait=30s")
	if st.State != StateFailed || !strings.Contains(st.Error, "not found") {
		t.Fatalf("ghost key job: %+v, want failed/not found", st)
	}

	// A daemon started without -trace-store refuses trace workloads and
	// does not mount the ingestion endpoint at all.
	bare := newTestServer(t, Config{Workers: 1})
	bts := httptest.NewServer(bare.Handler())
	defer bts.Close()
	st, resp = postJob(t, bts, fmt.Sprintf(`{"workload":"trace:%s","config":"4KB","instrs":1000}`, ghost))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(st.Error, "no trace store") {
		t.Fatalf("storeless daemon: HTTP %d, %+v", resp.StatusCode, st)
	}
	r, err := bts.Client().Post(bts.URL+"/v1/traces", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless daemon mounted /v1/traces: HTTP %d", r.StatusCode)
	}
}
