package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xlate/internal/exper"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// maxWait bounds the ?wait long-poll so a stuck client cannot pin a
// handler goroutine forever.
const maxWait = 10 * time.Minute

// routes builds the daemon mux. The telemetry endpoints (/metrics,
// /status) are mounted on the same mux — one listener serves the job
// API and the observability surface, and both drain together.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/results/", s.handleResult)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	if s.traces != nil {
		// Trace ingestion + content-hash fetch (DESIGN.md §15). Mounted
		// only when a segment store exists — without one the endpoints
		// would accept streams they cannot replay.
		api := tracec.NewAPI(s.cfg.TraceStore, tracec.APIConfig{
			MaxBytes: s.cfg.MaxTraceBytes,
			Logf:     s.cfg.Logf,
		})
		mux.Handle("/v1/traces", api)
		mux.Handle("/v1/traces/", api)
	}
	mux.Handle("/metrics", telemetry.MetricsHandler(s.cfg.Registry))
	mux.Handle("/status", telemetry.StatusHandler(s.cfg.Registry, func() any { return s.Status() }))
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "eeatd — xlate simulation service")
	fmt.Fprintln(w, "  POST /v1/jobs            submit a job (?wait=30s long-polls for completion)")
	fmt.Fprintln(w, "  GET  /v1/jobs/{id}       job status (?wait=30s long-polls)")
	fmt.Fprintln(w, "  GET  /v1/jobs/{id}/log   stream the job's progress log")
	fmt.Fprintln(w, "  GET  /v1/results/{key}   cached result payload (content-addressed)")
	fmt.Fprintln(w, "  GET  /v1/experiments     the experiment catalogue")
	if s.traces != nil {
		fmt.Fprintln(w, "  POST /v1/traces          ingest a reference stream (gzip ok) → trace:<key> workload")
		fmt.Fprintln(w, "  GET  /v1/traces/{key}    fetch a compiled segment by content hash")
	}
	fmt.Fprintln(w, "  GET  /metrics            Prometheus text format")
	fmt.Fprintln(w, "  GET  /status             JSON daemon snapshot")
	fmt.Fprintln(w, "  GET  /healthz            liveness (503 while draining)")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, JobStatus{State: StateFailed, Error: "bad request body: " + err.Error()})
		return
	}
	st, code := s.submit(req)
	if wait := parseWait(r); wait > 0 && code == http.StatusAccepted {
		st = s.waitJob(r, st.ID, wait)
		if st.State == StateDone || st.State == StateFailed {
			code = http.StatusOK
		}
	}
	writeStatus(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id, ok := strings.CutSuffix(rest, "/log"); ok {
		s.handleJobLog(w, r, id)
		return
	}
	id := rest
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	if wait := parseWait(r); wait > 0 {
		st := s.waitJob(r, id, wait)
		if st.ID == "" {
			http.NotFound(w, r)
			return
		}
		writeStatus(w, http.StatusOK, st)
		return
	}
	st, ok := s.lookup(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeStatus(w, http.StatusOK, st)
}

// waitJob long-polls: if the job is active it waits for completion (or
// the wait budget / client disconnect) and then reports whatever state
// the daemon knows. Returns a zero JobStatus for an unknown id.
func (s *Server) waitJob(r *http.Request, id string, wait time.Duration) JobStatus {
	j := s.activeJob(id)
	if j != nil {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
		}
		return s.status(j)
	}
	st, ok := s.lookup(id)
	if !ok {
		return JobStatus{}
	}
	return st
}

// handleJobLog streams a queued or running job's progress lines,
// flushing per line: the accumulated log replays first, then the
// stream tails live until the job completes or the client disconnects.
// Ids no longer in the active map 404 — the log dies with the job
// record; results are what the cache retains.
func (s *Server) handleJobLog(w http.ResponseWriter, r *http.Request, id string) {
	j := s.activeJob(id)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_ = j.log.tail(r.Context(), func(line string) error { // ctx error just ends the stream
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	if key == "" || strings.Contains(key, "/") {
		http.NotFound(w, r)
		return
	}
	// Content-addressed: the key IS the entity tag, and a match can
	// skip the body entirely.
	if r.Header.Get("If-None-Match") == `"`+key+`"` && s.cache.peek(key) {
		w.Header().Set("ETag", `"`+key+`"`)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	payload, ok := s.cache.get(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("ETag", `"`+key+`"`)
	w.Header().Set("Cache-Control", "max-age=31536000, immutable")
	w.Write(payload) //nolint:errcheck // client hangup
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []entry
	for _, e := range exper.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// parseWait reads the ?wait query parameter (a Go duration or bare
// seconds), clamped to maxWait. 0 means no waiting.
func parseWait(r *http.Request) time.Duration {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		if secs, serr := strconv.Atoi(raw); serr == nil {
			d = time.Duration(secs) * time.Second
		} else {
			return 0
		}
	}
	if d < 0 {
		return 0
	}
	if d > maxWait {
		d = maxWait
	}
	return d
}

// writeStatus renders a JobStatus, adding the Retry-After header on
// backpressure rejections so well-behaved clients pace themselves.
func writeStatus(w http.ResponseWriter, code int, st JobStatus) {
	if st.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(st.RetryAfter)))
	}
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup
}
