// Package service is the long-running simulation daemon behind
// cmd/eeatd: an HTTP/JSON job service layered on the experiment
// substrate (internal/exper, internal/harness).
//
// The design (DESIGN.md §10) in one paragraph: submissions resolve to
// a content-addressed identity — the canonical harness cell key for
// single-cell jobs, a digest of artifact id + options for experiment
// jobs — and that identity drives everything. The result cache is
// keyed by it (a hit is exact: equal keys mean byte-identical
// payloads, because simulation is deterministic in the key's inputs);
// singleflight deduplication folds concurrent identical submissions
// into one execution of it; checkpoints spool under it so a drained
// experiment job resumes instead of restarting. Admission control
// bounds the queue: a full queue answers 429 with a Retry-After
// estimated from the recent job rate, and a draining daemon answers
// 503. Workers execute jobs under one run-scoped context; Drain stops
// admission, lets in-flight work finish, and past the deadline cancels
// it — experiment cells completed so far stay journaled via the
// harness checkpoint machinery.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/harness"
	"xlate/internal/telemetry"
	"xlate/internal/tracec"
)

// ErrBadRequest marks submissions rejected by validation; the HTTP
// layer maps it to 400.
var ErrBadRequest = errors.New("service: invalid job")

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of concurrent job executors (default 2).
	// Each experiment job additionally parallelizes its own cells via
	// CellWorkers.
	Workers int
	// CellWorkers is the per-experiment-job harness pool size
	// (default 1: the daemon's concurrency budget lives in Workers).
	CellWorkers int
	// MaxQueue bounds jobs admitted but not yet running (default 64);
	// beyond it submissions are rejected with 429.
	MaxQueue int
	// MaxInstrs, when positive, rejects jobs asking for a larger
	// instruction budget — admission control against a single
	// submission monopolizing the daemon.
	MaxInstrs uint64
	// CacheEntries / CacheBytes / CacheTTL bound the result cache
	// (defaults 256 entries, unlimited bytes, no TTL).
	CacheEntries int
	CacheBytes   int64
	CacheTTL     time.Duration
	// SpoolDir, when set, holds per-job experiment checkpoints so a
	// drained or crashed job resumes its completed cells.
	SpoolDir string
	// Registry receives the daemon's metrics; required so /metrics
	// covers service, harness, and simulator layers in one scrape.
	Registry *telemetry.Registry
	// Tracer, when set, records worker-side spans (queue wait,
	// execution) for cell jobs carrying a propagated trace context. The
	// timestamp axis is microseconds since the server started.
	Tracer *telemetry.Tracer
	// TraceStore, when set, enables the trace subsystem (DESIGN.md §15):
	// the /v1/traces ingestion+fetch endpoints are mounted, "trace:<key>"
	// workloads become submittable, and trace-backed cells replay
	// segments from this store.
	TraceStore *tracec.Store
	// TraceUpstream, when set with TraceStore, is the base URL (the
	// cluster coordinator) missing segments are fetched from by content
	// hash, verified before use.
	TraceUpstream string
	// MaxTraceBytes bounds one ingested segment (default 64 MiB → 413).
	MaxTraceBytes int64
	// CompileTraces additionally routes model cells through the workload
	// compiler: compile-once into TraceStore, replay-many (the
	// -compile-traces flag).
	CompileTraces bool
	// Logf receives daemon-level log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the daemon: a bounded job queue, a worker pool, the result
// cache, and the HTTP API over them.
type Server struct {
	cfg    Config
	m      *metrics
	cache  *resultCache
	mux    *http.ServeMux
	start  time.Time        // span timestamp base (Config.Tracer)
	traces *tracec.Executor // nil unless Config.TraceStore was set

	runCtx    context.Context
	runCancel context.CancelFunc

	mu        sync.Mutex
	draining  bool
	jobs      map[string]*job // queued or running, by key
	failures  map[string]failRecord
	failOrder []string
	execStats map[string]execRecord
	execOrder []string
	avgJobSec float64 // EWMA of completed-job wall-clock

	queue chan *job
	wg    sync.WaitGroup

	// testHookRunning, when set, runs on the worker goroutine after the
	// job enters StateRunning and before it executes — tests block here
	// to hold a job in flight deterministically.
	testHookRunning func(*job)
}

// failRecord remembers a recently failed job so GET /v1/jobs/{id}
// stays answerable after the job record leaves the active map. The
// set is bounded (maxFailures, FIFO) — failures are not cached as
// results precisely so a resubmission retries.
type failRecord struct {
	kind     string
	errMsg   string
	finished time.Time
	started  time.Time
}

const maxFailures = 128

// execRecord retains a completed job's timing and trace identity after
// its record leaves the active map. A fast job can finish before the
// client's wait GET even arrives; without this record that GET would
// fall through to the bare cache answer and the execution's queue-wait
// and run time (which the cluster coordinator stitches into its merged
// trace) would be lost. Bounded like failures (maxFailures, FIFO).
type execRecord struct {
	kind     string
	traceID  string
	queueSec float64
	execSec  float64
}

// New builds a Server and starts its workers. Callers serve
// s.Handler() on a listener of their choosing and must end with Drain
// (or Close).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CellWorkers <= 0 {
		cfg.CellWorkers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: spool dir: %w", err)
		}
	}
	m := newMetrics(cfg.Registry)
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		m:         m,
		cache:     newResultCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheTTL, m),
		jobs:      make(map[string]*job),
		failures:  make(map[string]failRecord),
		execStats: make(map[string]execRecord),
		queue:     make(chan *job, cfg.MaxQueue),
	}
	if cfg.TraceStore != nil {
		s.traces = &tracec.Executor{
			Store:         cfg.TraceStore,
			CompileModels: cfg.CompileTraces,
			Logf:          cfg.Logf,
		}
		if cfg.TraceUpstream != "" {
			s.traces.Fetch = tracec.HTTPFetcher(cfg.TraceUpstream, nil)
		}
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s, nil
}

// Handler returns the daemon's HTTP API (the /v1 job surface plus the
// telemetry /metrics and /status endpoints on the same mux — one
// listener serves both).
func (s *Server) Handler() http.Handler { return s.mux }

// submit is the admission path: resolve, cache, singleflight, queue —
// in that order, so work is never enqueued that a cheaper layer could
// answer. It returns the job status and the HTTP code to render it
// with.
func (s *Server) submit(req SubmitRequest) (JobStatus, int) {
	s.m.submitted.Inc()
	r, err := resolve(req, cellDefaults{maxInstrs: s.cfg.MaxInstrs, traces: s.traces != nil})
	if err != nil {
		s.m.rejected.Inc()
		return JobStatus{State: StateFailed, Error: err.Error()}, http.StatusBadRequest
	}
	if _, ok := s.cache.get(r.key); ok {
		return JobStatus{
			ID: r.key, Kind: r.kind, State: StateDone, Cached: true,
			ResultURL: "/v1/results/" + r.key,
		}, http.StatusOK
	}

	s.mu.Lock()
	if existing, ok := s.jobs[r.key]; ok {
		st := s.statusLocked(existing)
		st.Deduped = true
		s.mu.Unlock()
		s.m.deduped.Inc()
		return st, http.StatusAccepted
	}
	if s.draining {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.m.rejected.Inc()
		return JobStatus{State: StateFailed, Error: "service: draining, not admitting jobs",
			RetryAfter: retry}, http.StatusServiceUnavailable
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.m.rejected.Inc()
		return JobStatus{State: StateFailed,
			Error:      fmt.Sprintf("service: queue full (%d jobs)", s.cfg.MaxQueue),
			RetryAfter: retry}, http.StatusTooManyRequests
	}
	j := &job{
		id: r.key, kind: r.kind, req: req, res: r,
		created: time.Now(), state: StateQueued,
		done: make(chan struct{}), log: newLogBuffer(),
	}
	s.jobs[r.key] = j
	//eeatlint:allow locksafe cannot block: depth is checked above under the same lock that gates every send
	s.queue <- j
	s.m.queueDepth.Set(int64(len(s.queue)))
	s.mu.Unlock()
	s.m.admitted.Inc()
	j.log.append(fmt.Sprintf("admitted %s job %s", j.kind, shortKey(j.id)))
	return s.status(j), http.StatusAccepted
}

// retryAfterLocked estimates seconds until the queue likely has room:
// the EWMA job duration times the queue depth, spread over the
// workers, clamped to [1s, 10min].
func (s *Server) retryAfterLocked() float64 {
	avg := s.avgJobSec
	if avg <= 0 {
		avg = 1
	}
	est := avg * float64(len(s.queue)+1) / float64(s.cfg.Workers)
	return math.Min(600, math.Max(1, math.Ceil(est)))
}

// runJob executes one job on a worker goroutine.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.m.queueDepth.Set(int64(len(s.queue)))
	s.mu.Unlock()
	s.m.inFlight.Add(1)
	s.m.queueWait.Observe(j.started.Sub(j.created).Seconds())
	j.log.append(fmt.Sprintf("running (queued %.1fs)", j.started.Sub(j.created).Seconds()))
	if h := s.testHookRunning; h != nil {
		h(j)
	}

	payload, err := s.execute(j)

	s.m.inFlight.Add(-1)
	now := time.Now()
	elapsed := now.Sub(j.created).Seconds()
	s.m.jobSeconds.Observe(elapsed)
	s.m.execSeconds.Observe(now.Sub(j.started).Seconds())
	s.emitJobSpans(j, now)

	if err == nil {
		// Publish to the cache before the job record leaves the active
		// map, so a concurrent GET always finds one of the two.
		s.cache.put(j.id, payload)
	}
	s.mu.Lock()
	j.finished = now
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		s.recordFailureLocked(j)
	} else {
		j.state = StateDone
		j.payload = payload
		s.recordExecLocked(j)
	}
	delete(s.jobs, j.id)
	const alpha = 0.3
	if s.avgJobSec == 0 {
		s.avgJobSec = elapsed
	} else {
		s.avgJobSec = alpha*elapsed + (1-alpha)*s.avgJobSec
	}
	s.mu.Unlock()

	if err != nil {
		s.m.failed.Inc()
		j.log.append("failed: " + err.Error())
		s.cfg.Logf("job %s failed: %v", shortKey(j.id), err)
	} else {
		s.m.completed.Inc()
		j.log.append(fmt.Sprintf("done in %.1fs (%d payload bytes)", elapsed, len(payload)))
	}
	j.log.finish()
	close(j.done)
}

// emitJobSpans records the worker-side half of a traced cell's
// journey — one queue-wait span and one execution span on a fresh
// track, tagged with the propagated trace id — so a coordinator's
// merged trace can stitch both sides of the same cell together.
// Untraced jobs (no tracer, or no propagated context) emit nothing.
func (s *Server) emitJobSpans(j *job, finished time.Time) {
	tr := s.cfg.Tracer
	if tr == nil || !j.res.trace.Valid() {
		return
	}
	usSince := func(at time.Time) uint64 { return uint64(max(0, at.Sub(s.start).Microseconds())) }
	queued, started, end := usSince(j.created), usSince(j.started), usSince(finished)
	track := tr.NextTrack()
	args := []telemetry.KV{
		{K: "trace_id", V: j.res.trace.TraceID},
		{K: "parent_span", V: j.res.trace.ParentSpan},
		{K: "state", V: j.state},
	}
	tr.EmitSpan(track, queued, started-queued, "worker", "worker_queue", args...)
	tr.EmitSpan(track, started, end-started, "worker", "worker_exec", args...)
}

func (s *Server) recordFailureLocked(j *job) {
	if _, ok := s.failures[j.id]; !ok {
		s.failOrder = append(s.failOrder, j.id)
		if len(s.failOrder) > maxFailures {
			delete(s.failures, s.failOrder[0])
			s.failOrder = s.failOrder[1:]
		}
	}
	s.failures[j.id] = failRecord{kind: j.kind, errMsg: j.errMsg, started: j.started, finished: j.finished}
}

func (s *Server) recordExecLocked(j *job) {
	if _, ok := s.execStats[j.id]; !ok {
		s.execOrder = append(s.execOrder, j.id)
		if len(s.execOrder) > maxFailures {
			delete(s.execStats, s.execOrder[0])
			s.execOrder = s.execOrder[1:]
		}
	}
	s.execStats[j.id] = execRecord{
		kind:     j.kind,
		traceID:  j.res.trace.TraceID,
		queueSec: j.started.Sub(j.created).Seconds(),
		execSec:  j.finished.Sub(j.started).Seconds(),
	}
}

// execute runs the job's simulation work and renders its payload. A
// panic escaping the simulator fails the job, never the daemon.
func (s *Server) execute(j *job) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	switch j.kind {
	case kindCell:
		var res core.Result
		if s.traces != nil {
			// The trace executor handles all three cell shapes: ingested
			// replays (required), compiled model replays (CompileTraces),
			// and live synthesis passthrough.
			res, err = s.traces.ExecuteJob(s.runCtx, j.res.cell)
		} else {
			res, err = exper.ExecuteJobContext(s.runCtx, j.res.cell)
		}
		if err != nil {
			return nil, err
		}
		return marshalPayload(CellResult{
			Key: j.id, Kind: kindCell,
			Workload: j.res.cell.Spec.Name,
			Config:   j.res.cell.Params.Kind.String(),
			Result:   res,
		})
	case kindExperiment:
		return s.executeExperiment(j)
	}
	return nil, fmt.Errorf("service: unknown job kind %q", j.kind)
}

// executeExperiment runs one artifact through the harness suite. The
// job's checkpoint lives in the spool under its key, and Resume is
// always on: a job cancelled by a drain (or a daemon crash) left its
// completed cells journaled, so the resubmission that follows a
// restart picks up where it stopped. The journal of a clean run is
// removed by the harness itself.
func (s *Server) executeExperiment(j *job) ([]byte, error) {
	hcfg := harness.Config{
		Workers:  s.cfg.CellWorkers,
		Options:  j.res.opt,
		Traces:   s.traces,
		Registry: s.cfg.Registry,
		Logf: func(format string, args ...any) {
			j.log.append(fmt.Sprintf(format, args...))
		},
	}
	hcfg.Options.Metrics = core.NewMetrics(s.cfg.Registry)
	if s.cfg.SpoolDir != "" {
		hcfg.Checkpoint = filepath.Join(s.cfg.SpoolDir, j.id+".ckpt")
		hcfg.Resume = true
	}
	results, err := harness.New(hcfg).Run(s.runCtx, []exper.Experiment{j.res.expr})
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, fmt.Errorf("service: experiment %s rendered %d results", j.res.expr.ID, len(results))
	}
	r := results[0]
	if r.Err != nil {
		return nil, r.Err
	}
	out := ExperimentResult{
		Key: j.id, Kind: kindExperiment,
		Experiment: r.ID, Title: r.Title,
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, ExperimentTable{
			Title: t.Title, Markdown: t.Markdown(), CSV: t.CSV(),
		})
	}
	return marshalPayload(out)
}

// marshalPayload renders a payload deterministically: encoding/json
// emits struct fields in declaration order and shortest-round-trip
// floats, so identical results serialize to identical bytes — the
// property the content-addressed cache's exactness rests on.
func marshalPayload(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("service: encoding payload: %w", err)
	}
	return append(b, '\n'), nil
}

// status snapshots a job's lifecycle state under the server lock.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: j.state,
		LogURL: "/v1/jobs/" + j.id + "/log",
	}
	switch j.state {
	case StateQueued:
		st.Seconds = time.Since(j.created).Seconds()
	case StateRunning:
		st.Seconds = time.Since(j.started).Seconds()
	case StateDone:
		st.Seconds = j.finished.Sub(j.created).Seconds()
		st.ResultURL = "/v1/results/" + j.id
	case StateFailed:
		st.Seconds = j.finished.Sub(j.created).Seconds()
		st.Error = j.errMsg
	}
	// Terminal states echo the propagated trace context and the stage
	// timing this execution actually saw, so a tracing coordinator can
	// reconstruct worker-side spans without a second RPC. A cache-served
	// reply never reaches here and reports neither.
	if j.state == StateDone || j.state == StateFailed {
		st.TraceID = j.res.trace.TraceID
		st.QueueSeconds = j.started.Sub(j.created).Seconds()
		st.ExecSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// lookup answers GET /v1/jobs/{id} for any job the daemon still knows:
// active jobs from the map, finished ones from the result cache (the
// key is the id), failures from the bounded failure record.
func (s *Server) lookup(id string) (JobStatus, bool) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		st := s.statusLocked(j)
		s.mu.Unlock()
		return st, true
	}
	fr, failed := s.failures[id]
	er, executed := s.execStats[id]
	s.mu.Unlock()
	if failed {
		return JobStatus{
			ID: id, Kind: fr.kind, State: StateFailed, Error: fr.errMsg,
			Seconds: fr.finished.Sub(fr.started).Seconds(),
		}, true
	}
	if s.cache.peek(id) {
		st := JobStatus{
			ID: id, State: StateDone, Cached: true,
			ResultURL: "/v1/results/" + id,
		}
		// A job this daemon executed recently reports the execution's
		// timing and trace identity even after its record left the
		// active map — the wait GET of a fast job lands here, and the
		// cluster coordinator needs the timing to stitch worker-side
		// spans. Genuinely cache-served ids (executed long ago, or by
		// a different submission's trace) report zeros as before.
		if executed {
			st.Kind = er.kind
			st.TraceID = er.traceID
			st.QueueSeconds = er.queueSec
			st.ExecSeconds = er.execSec
		}
		return st, true
	}
	return JobStatus{}, false
}

// activeJob returns the in-flight job record for id, if any.
func (s *Server) activeJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// StatusSnapshot is the service half of /status (the registry half
// comes from telemetry.StatusHandler).
type StatusSnapshot struct {
	Draining     bool        `json:"draining"`
	QueueDepth   int         `json:"queue_depth"`
	Workers      int         `json:"workers"`
	Jobs         []JobStatus `json:"jobs"`
	CacheEntries int         `json:"cache_entries"`
	CacheBytes   int64       `json:"cache_bytes"`
}

// Status snapshots the daemon for the /status endpoint and tests.
func (s *Server) Status() StatusSnapshot {
	s.mu.Lock()
	snap := StatusSnapshot{
		Draining:   s.draining,
		QueueDepth: len(s.queue),
		Workers:    s.cfg.Workers,
	}
	// Map order does not matter: the rows are sorted below.
	for _, j := range s.jobs {
		snap.Jobs = append(snap.Jobs, s.statusLocked(j))
	}
	s.mu.Unlock()
	sortJobs(snap.Jobs)
	snap.CacheEntries, snap.CacheBytes = s.cache.stats()
	return snap
}

func sortJobs(js []JobStatus) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].ID < js[k-1].ID; k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// Drain is the graceful-shutdown path: stop admitting (503), let
// queued and running jobs finish, and past ctx's deadline cancel the
// run context — in-flight experiment cells stop at the next
// cancellation poll with completed cells already journaled in the
// spool. Drain returns nil when every job finished cleanly, or
// ctx.Err() when the deadline forced cancellation. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue) // safe: every send is gated on !draining under this lock
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cfg.Logf("drain deadline reached, cancelling in-flight jobs (checkpoints kept)")
		s.runCancel()
		<-done
	}
	s.runCancel() // release the context either way
	return err
}

// Close cancels everything immediately: Drain with an already-expired
// deadline.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // the error is the cancelled deadline itself
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
