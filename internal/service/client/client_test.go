package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"xlate/internal/service"
)

func newDaemon(t *testing.T) (*service.Server, *Client) {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL + "/") // the trailing slash must not double up in URLs
	c.HTTP = ts.Client()
	c.Poll = 2 * time.Second
	return svc, c
}

func TestRunCellRoundTrip(t *testing.T) {
	_, c := newDaemon(t)
	req := service.SubmitRequest{
		Workload: "swaptions", Config: "4KB", Instrs: 200_000, Scale: 0.25, Seed: 7,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, st, err := c.RunCell(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Workload != "swaptions" || first.Config != "4KB" || first.Result.Instructions == 0 {
		t.Fatalf("unexpected cell result: %+v", first)
	}
	if st.ExecSeconds <= 0 {
		t.Errorf("terminal status reports exec_seconds=%v, want > 0 for an executed cell", st.ExecSeconds)
	}

	// The second run is answered from the daemon's cache and must be
	// exactly the first result — and report no execution timing, since
	// nothing executed.
	second, st2, err := c.RunCell(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from the original run")
	}
	if !st2.Cached || st2.ExecSeconds != 0 {
		t.Errorf("cached reply status = %+v, want Cached with zero exec timing", st2)
	}
}

func TestSubmitRejectsBadRequestFast(t *testing.T) {
	_, c := newDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Submit(ctx, service.SubmitRequest{Workload: "no-such-workload", Config: "4KB"})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bad submission error = %v, want the daemon's validation message", err)
	}
}

func TestWaitUnknownJob(t *testing.T) {
	_, c := newDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, "no-such-job"); err == nil {
		t.Fatal("waiting on an unknown job should fail")
	}
}

func TestSubmitRetriesWhileDraining(t *testing.T) {
	svc, c := newDaemon(t)
	// Drain the daemon with everything idle, then submit: the client
	// retries the 503 until its context gives up.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel2()
	_, err := c.Submit(shortCtx, service.SubmitRequest{
		Workload: "swaptions", Config: "4KB", Instrs: 200_000, Scale: 0.25,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit against a draining daemon = %v, want the context deadline after retries", err)
	}
}
