package client

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// ErrUnavailable marks an operation that exhausted its transient-error
// budget: every attempt failed with a connection error or a 5xx. The
// cluster coordinator classifies on it — an unavailable worker is
// marked dead and its cells requeue; a job failure (ErrJobFailed) is
// deterministic and does not.
var ErrUnavailable = errors.New("client: daemon unavailable")

// ErrProtocol marks a response the client cannot interpret: an HTTP
// status outside the daemon's documented surface. Protocol errors are
// not retried — repeating a request the server answered wrongly once
// gives the same wrong answer again.
var ErrProtocol = errors.New("client: protocol error")

// Backoff is capped exponential backoff with deterministic jitter for
// transient failures (connection refused/reset, 5xx). The zero value
// retries 4 attempts from 100ms doubling to a 5s cap.
//
// Jitter is derived by hashing (Seed, token, attempt) rather than drawn
// from a shared random source: concurrent retry loops need no locking,
// and a seeded test reproduces the exact delay schedule.
type Backoff struct {
	// Attempts is the total number of tries, including the first
	// (default 4; 1 disables retries).
	Attempts int
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 5s).
	Cap time.Duration
	// Seed parameterizes the jitter hash (any value is valid,
	// including 0).
	Seed int64
}

func (b Backoff) attempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 4
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 100 * time.Millisecond
}

func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 5 * time.Second
}

// Delay returns the pause before retry number attempt (1-based: the
// delay after the first failure is Delay(token, 1)) of the operation
// identified by token. The schedule is capped exponential — Base·2^(a-1)
// clamped to Cap — scaled by a jitter factor in [0.5, 1.0) so a fleet
// of clients hammering one restarting worker desynchronizes.
func (b Backoff) Delay(token string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.base()
	for a := 1; a < attempt && d < b.cap(); a++ {
		d *= 2
	}
	if d > b.cap() {
		d = b.cap()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", b.Seed, token, attempt)
	frac := 0.5 + 0.5*float64(h.Sum64()&1023)/1024
	return time.Duration(float64(d) * frac)
}

// sleep pauses for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientCode reports whether an HTTP status signals a condition
// worth retrying blind: any 5xx. (429 and a draining daemon's 503 are
// additionally steered by Retry-After in Submit; here they fall under
// the same transient umbrella for GET paths.)
func transientCode(code int) bool { return code >= 500 && code <= 599 }
