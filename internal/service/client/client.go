// Package client is the thin HTTP client for the eeatd daemon
// (internal/service): submit a job, wait for it, fetch the
// content-addressed result. It speaks the same wire types the service
// defines and cooperates with the daemon's backpressure — a 429/503
// rejection is retried after the daemon's own Retry-After estimate,
// bounded by the caller's context — and retries transient transport
// failures (connection refused/reset, 5xx) with capped exponential
// backoff and deterministic jitter (see Backoff).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xlate/internal/service"
)

// ErrJobFailed wraps the daemon-reported failure of a submitted job.
var ErrJobFailed = errors.New("client: job failed")

// ErrNotFound marks a result the daemon does not hold: a federated
// cache probe that missed, or a payload evicted before the fetch. A
// miss is a normal answer on the read-through path — the cluster
// coordinator classifies on it to fall back to execution — so it gets
// its own sentinel instead of riding on ErrProtocol.
var ErrNotFound = errors.New("client: result not found")

// Client talks to one eeatd daemon.
type Client struct {
	// Base is the daemon address, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport (default http.DefaultClient). Long-poll
	// waits need a client without an aggressive Timeout.
	HTTP *http.Client
	// Poll is the long-poll window per Wait round trip (default 30s).
	Poll time.Duration
	// Retry governs transient-error retries (the zero value retries 4
	// attempts, 100ms doubling to a 5s cap, deterministic jitter).
	Retry Backoff
}

// New returns a client for the daemon at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 30 * time.Second
}

// Submit posts a job. Backpressure rejections (429, or 503 while the
// daemon drains) are retried after the daemon's Retry-After estimate
// until ctx expires; transport failures and bare 5xx responses are
// retried on the Backoff schedule until its attempts run out
// (ErrUnavailable); validation rejections (400) fail immediately.
func (c *Client) Submit(ctx context.Context, req service.SubmitRequest) (service.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("client: encoding request: %w", err)
	}
	transient := 0
	var lastErr error
	for {
		st, code, err := c.postJob(ctx, body)
		switch {
		case err != nil && ctx.Err() != nil:
			return service.JobStatus{}, fmt.Errorf("client: submit: %w", ctx.Err())
		case err != nil:
			lastErr = err
		case code == http.StatusOK || code == http.StatusAccepted:
			return st, nil
		case code == http.StatusTooManyRequests,
			code == http.StatusServiceUnavailable && st.RetryAfter > 0:
			// The daemon told us when to come back; its estimate beats
			// our blind schedule and these retries are bounded only by
			// ctx — saturation is expected to clear.
			delay := time.Duration(st.RetryAfter * float64(time.Second))
			if delay <= 0 {
				delay = time.Second
			}
			if err := sleep(ctx, delay); err != nil {
				return service.JobStatus{}, fmt.Errorf("client: daemon saturated (%s): %w", st.Error, err)
			}
			continue
		case transientCode(code):
			lastErr = fmt.Errorf("client: submit: %w: HTTP %d: %s", ErrUnavailable, code, st.Error)
		default:
			return service.JobStatus{}, fmt.Errorf("client: submit: %w: HTTP %d: %s", ErrProtocol, code, st.Error)
		}
		transient++
		if transient >= c.Retry.attempts() {
			return service.JobStatus{}, fmt.Errorf("client: submit gave up after %d attempts: %w: %v",
				transient, ErrUnavailable, lastErr)
		}
		if err := sleep(ctx, c.Retry.Delay("submit", transient)); err != nil {
			return service.JobStatus{}, fmt.Errorf("client: submit: %w (last: %v)", err, lastErr)
		}
	}
}

func (c *Client) postJob(ctx context.Context, body []byte) (service.JobStatus, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, 0, fmt.Errorf("client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return service.JobStatus{}, 0, fmt.Errorf("client: submit: %w", err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		if transientCode(resp.StatusCode) {
			// A dying or proxied worker may answer 5xx with a non-JSON
			// body; the status code alone classifies it.
			return service.JobStatus{}, resp.StatusCode, nil
		}
		return service.JobStatus{}, 0, fmt.Errorf("client: submit: decoding HTTP %d response: %w", resp.StatusCode, err)
	}
	return st, resp.StatusCode, nil
}

// Wait long-polls the job until it reaches a terminal state or ctx
// expires. Transport failures and 5xx responses are retried on the
// Backoff schedule; a completed long-poll round resets the budget.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	transient := 0
	var lastErr error
	for {
		url := fmt.Sprintf("%s/v1/jobs/%s?wait=%s", c.Base, id, c.poll())
		var st service.JobStatus
		code, err := c.getJSON(ctx, url, &st)
		switch {
		case err != nil && ctx.Err() != nil:
			return service.JobStatus{}, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		case err != nil:
			lastErr = err
		case code == http.StatusOK:
			switch st.State {
			case service.StateDone, service.StateFailed:
				return st, nil
			}
			transient = 0
			if err := ctx.Err(); err != nil {
				return service.JobStatus{}, fmt.Errorf("client: waiting for job %s: %w", id, err)
			}
			continue
		case transientCode(code):
			lastErr = fmt.Errorf("client: wait: %w: HTTP %d for job %s", ErrUnavailable, code, id)
		default:
			return service.JobStatus{}, fmt.Errorf("client: wait: %w: HTTP %d for job %s", ErrProtocol, code, id)
		}
		transient++
		if transient >= c.Retry.attempts() {
			return service.JobStatus{}, fmt.Errorf("client: wait for job %s gave up after %d attempts: %w: %v",
				id, transient, ErrUnavailable, lastErr)
		}
		if err := sleep(ctx, c.Retry.Delay("wait|"+id, transient)); err != nil {
			return service.JobStatus{}, fmt.Errorf("client: waiting for job %s: %w (last: %v)", id, err, lastErr)
		}
	}
}

// Result fetches the content-addressed payload for a key, retrying
// transport failures and 5xx responses on the Backoff schedule.
func (c *Client) Result(ctx context.Context, key string) ([]byte, error) {
	transient := 0
	var lastErr error
	for {
		body, code, err := c.getResult(ctx, key)
		switch {
		case err != nil && ctx.Err() != nil:
			return nil, fmt.Errorf("client: result %s: %w", key, ctx.Err())
		case err != nil:
			lastErr = err
		case code == http.StatusOK:
			return body, nil
		case code == http.StatusNotFound:
			return nil, fmt.Errorf("client: result %s: %w: HTTP 404", key, ErrNotFound)
		case transientCode(code):
			lastErr = fmt.Errorf("client: result %s: %w: HTTP %d", key, ErrUnavailable, code)
		default:
			return nil, fmt.Errorf("client: result %s: %w: HTTP %d", key, ErrProtocol, code)
		}
		transient++
		if transient >= c.Retry.attempts() {
			return nil, fmt.Errorf("client: result %s gave up after %d attempts: %w: %v",
				key, transient, ErrUnavailable, lastErr)
		}
		if err := sleep(ctx, c.Retry.Delay("result|"+key, transient)); err != nil {
			return nil, fmt.Errorf("client: result %s: %w (last: %v)", key, err, lastErr)
		}
	}
}

func (c *Client) getResult(ctx context.Context, key string) ([]byte, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/results/"+key, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, 0, fmt.Errorf("client: result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
		return nil, resp.StatusCode, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("client: result: reading body: %w", err)
	}
	return body, resp.StatusCode, nil
}

// RunCell submits a cell job, waits for it, and decodes the payload —
// the remote equivalent of xlate.RunParams, used by eeatsim -remote and
// the cluster coordinator's per-cell dispatch. The returned JobStatus
// is the terminal status the daemon reported: a tracing caller reads
// TraceID/QueueSeconds/ExecSeconds from it to reconstruct the worker-
// side spans without a second RPC (Cached replies report zero timing).
func (c *Client) RunCell(ctx context.Context, req service.SubmitRequest) (service.CellResult, service.JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return service.CellResult{}, st, err
	}
	if st.State != service.StateDone && st.State != service.StateFailed {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return service.CellResult{}, st, err
		}
	}
	if st.State == service.StateFailed {
		return service.CellResult{}, st, fmt.Errorf("%w: %s", ErrJobFailed, st.Error)
	}
	payload, err := c.Result(ctx, st.ID)
	if errors.Is(err, ErrNotFound) {
		// The daemon reported the job done but no longer holds the
		// payload (evicted between completion and fetch). That is a
		// server-side contract break, not a miss the caller can act on.
		return service.CellResult{}, st, fmt.Errorf("client: job %s done but its result is gone: %w", st.ID, ErrProtocol)
	}
	if err != nil {
		return service.CellResult{}, st, err
	}
	var out service.CellResult
	if err := json.Unmarshal(payload, &out); err != nil {
		return service.CellResult{}, st, fmt.Errorf("client: decoding result payload: %w", err)
	}
	return out, st, nil
}

// Status fetches the daemon's /status snapshot and returns its service
// half (queue depth, in-flight jobs, cache occupancy). The cluster
// coordinator uses it to report per-worker queue depth in the
// cluster-wide status; one attempt, no retries — a status probe that
// can't answer promptly is itself the signal.
func (c *Client) Status(ctx context.Context) (service.StatusSnapshot, error) {
	var doc struct {
		Run service.StatusSnapshot `json:"run"`
	}
	code, err := c.getJSON(ctx, c.Base+"/status", &doc)
	if err != nil {
		return service.StatusSnapshot{}, fmt.Errorf("client: status: %w", err)
	}
	if code != http.StatusOK {
		return service.StatusSnapshot{}, fmt.Errorf("client: status: %w: HTTP %d", ErrUnavailable, code)
	}
	return doc.Run, nil
}

func (c *Client) getJSON(ctx context.Context, url string, v any) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, fmt.Errorf("client: decoding %s: %w", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	}
	return resp.StatusCode, nil
}
