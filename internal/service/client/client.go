// Package client is the thin HTTP client for the eeatd daemon
// (internal/service): submit a job, wait for it, fetch the
// content-addressed result. It speaks the same wire types the service
// defines and cooperates with the daemon's backpressure — a 429/503
// rejection is retried after the daemon's own Retry-After estimate,
// bounded by the caller's context.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xlate/internal/service"
)

// ErrJobFailed wraps the daemon-reported failure of a submitted job.
var ErrJobFailed = errors.New("client: job failed")

// Client talks to one eeatd daemon.
type Client struct {
	// Base is the daemon address, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport (default http.DefaultClient). Long-poll
	// waits need a client without an aggressive Timeout.
	HTTP *http.Client
	// Poll is the long-poll window per Wait round trip (default 30s).
	Poll time.Duration
}

// New returns a client for the daemon at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 30 * time.Second
}

// Submit posts a job. Backpressure rejections (429, or 503 while the
// daemon drains) are retried after the daemon's Retry-After estimate
// until ctx expires; validation rejections (400) fail immediately.
func (c *Client) Submit(ctx context.Context, req service.SubmitRequest) (service.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("client: encoding request: %w", err)
	}
	for {
		st, code, err := c.postJob(ctx, body)
		if err != nil {
			return service.JobStatus{}, err
		}
		switch code {
		case http.StatusOK, http.StatusAccepted:
			return st, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			delay := time.Duration(st.RetryAfter * float64(time.Second))
			if delay <= 0 {
				delay = time.Second
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return service.JobStatus{}, fmt.Errorf("client: daemon saturated (%s): %w", st.Error, ctx.Err())
			case <-t.C:
			}
		default:
			return service.JobStatus{}, fmt.Errorf("client: submit: HTTP %d: %s", code, st.Error)
		}
	}
}

func (c *Client) postJob(ctx context.Context, body []byte) (service.JobStatus, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, 0, fmt.Errorf("client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return service.JobStatus{}, 0, fmt.Errorf("client: submit: %w", err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, 0, fmt.Errorf("client: submit: decoding HTTP %d response: %w", resp.StatusCode, err)
	}
	return st, resp.StatusCode, nil
}

// Wait long-polls the job until it reaches a terminal state or ctx
// expires.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	for {
		url := fmt.Sprintf("%s/v1/jobs/%s?wait=%s", c.Base, id, c.poll())
		var st service.JobStatus
		code, err := c.getJSON(ctx, url, &st)
		if err != nil {
			return service.JobStatus{}, err
		}
		if code != http.StatusOK {
			return service.JobStatus{}, fmt.Errorf("client: wait: HTTP %d for job %s", code, id)
		}
		switch st.State {
		case service.StateDone, service.StateFailed:
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return service.JobStatus{}, fmt.Errorf("client: waiting for job %s: %w", id, err)
		}
	}
}

// Result fetches the content-addressed payload for a key.
func (c *Client) Result(ctx context.Context, key string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/results/"+key, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: result %s: HTTP %d", key, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// RunCell submits a cell job, waits for it, and decodes the payload —
// the remote equivalent of xlate.RunParams, used by eeatsim -remote.
func (c *Client) RunCell(ctx context.Context, req service.SubmitRequest) (service.CellResult, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return service.CellResult{}, err
	}
	if st.State != service.StateDone && st.State != service.StateFailed {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return service.CellResult{}, err
		}
	}
	if st.State == service.StateFailed {
		return service.CellResult{}, fmt.Errorf("%w: %s", ErrJobFailed, st.Error)
	}
	payload, err := c.Result(ctx, st.ID)
	if err != nil {
		return service.CellResult{}, err
	}
	var out service.CellResult
	if err := json.Unmarshal(payload, &out); err != nil {
		return service.CellResult{}, fmt.Errorf("client: decoding result payload: %w", err)
	}
	return out, nil
}

func (c *Client) getJSON(ctx context.Context, url string, v any) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, fmt.Errorf("client: decoding %s: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}
