package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"xlate/internal/service"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Attempts: 5, Base: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Seed: 7}
	caps := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
	}
	for i, max := range caps {
		d := b.Delay("tok", i+1)
		if d < max/2 || d >= max {
			t.Errorf("Delay(tok, %d) = %s, want in [%s, %s)", i+1, d, max/2, max)
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Seed: 42}
	b := Backoff{Seed: 42}
	for attempt := 1; attempt <= 4; attempt++ {
		if a.Delay("x", attempt) != b.Delay("x", attempt) {
			t.Fatalf("same seed, attempt %d: delays differ", attempt)
		}
	}
	// Different seeds (and different tokens) must desynchronize at
	// least somewhere in the schedule, or the jitter does nothing.
	c := Backoff{Seed: 43}
	same := 0
	for attempt := 1; attempt <= 4; attempt++ {
		if a.Delay("x", attempt) == c.Delay("x", attempt) {
			same++
		}
	}
	if same == 4 {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// A daemon that 500s twice and then recovers must be survived by the
// backoff without the caller noticing.
func TestSubmitRetriesTransient5xx(t *testing.T) {
	_, real := newDaemon(t)
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		proxyTo(t, real.Base, w, r)
	}))
	t.Cleanup(flaky.Close)

	c := New(flaky.URL)
	c.Retry = Backoff{Attempts: 4, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, service.SubmitRequest{
		Workload: "swaptions", Config: "4KB", Instrs: 200_000, Scale: 0.25, Seed: 7,
	})
	if err != nil {
		t.Fatalf("submit through a twice-failing proxy: %v", err)
	}
	if st.ID == "" {
		t.Fatal("no job id")
	}
	if got := n.Load(); got != 3 {
		t.Errorf("expected 3 attempts (2 failures + 1 success), saw %d", got)
	}
}

// A daemon that never recovers must fail with ErrUnavailable after the
// attempt budget, not spin forever.
func TestSubmitGivesUpUnavailable(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still dead", http.StatusInternalServerError)
	}))
	t.Cleanup(down.Close)

	c := New(down.URL)
	c.Retry = Backoff{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Submit(ctx, service.SubmitRequest{Workload: "swaptions", Config: "4KB"})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit against a dead daemon = %v, want ErrUnavailable", err)
	}
}

// Connection-refused (a stopped listener) is transient too.
func TestSubmitRetriesConnectionRefused(t *testing.T) {
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	base := gone.URL
	gone.Close()

	c := New(base)
	c.Retry = Backoff{Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Submit(ctx, service.SubmitRequest{Workload: "swaptions", Config: "4KB"})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit against a closed listener = %v, want ErrUnavailable", err)
	}
}

// proxyTo forwards one request to the real daemon (a minimal reverse
// proxy so the flaky-front test exercises the actual service).
func proxyTo(t *testing.T, base string, w http.ResponseWriter, r *http.Request) {
	t.Helper()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
	if err != nil {
		t.Error(err)
		return
	}
	req.Header = r.Header
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Error(err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n]) //nolint:errcheck // test proxy
		}
		if err != nil {
			return
		}
	}
}
