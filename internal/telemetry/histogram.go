package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets chosen at
// registration time. Observe is lock-free and allocation-free: one
// linear scan over a handful of bounds, two atomic adds. Fixed buckets
// (rather than adaptive ones) keep the hot path branch-predictable and
// make renders from concurrent scrapes trivially consistent.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    FloatCounter
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
//
//eeat:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank — the same estimate Prometheus's histogram_quantile
// computes server-side. Samples in the +Inf bucket clamp to the last
// finite bound (a known underestimate; widen the buckets if the tail
// matters). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.Count()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum+n) < target {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if n == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(cum))/float64(n)
	}
	return h.bounds[len(h.bounds)-1]
}

// cumulative returns the cumulative per-bucket counts (including the
// +Inf bucket as the last element).
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// spanning sub-millisecond queue waits to multi-minute simulation cells.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}
}
