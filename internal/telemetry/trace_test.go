package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerJSONL(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, TraceJSONL, 1)
	track := tr.NextTrack()
	tr.Emit(track, 100, "tlb", "l1_miss", KV{"va", uint64(0x1000)})
	tr.Emit(track, 200, "os", "shootdown", KV{"start", uint64(0)}, KV{"pages", 4}, KV{"flush", true})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if ev["ev"] == "" || ev["ref"] == nil {
			t.Errorf("line %d missing ev/ref: %s", lines, sc.Text())
		}
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
	if tr.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", tr.Events())
	}
}

// TestTracerChromeLoadable pins the acceptance criterion: the Chrome
// format output must parse as a JSON object with a traceEvents array
// whose entries carry the fields chrome://tracing requires.
func TestTracerChromeLoadable(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, TraceChrome, 1)
	for i := uint64(0); i < 3; i++ {
		tr.Emit(1, i*10, "tlb", "l1_miss", KV{"va", uint64(4096 * i)}, KV{"cfg", "RMM_Lite"})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev.Name != "l1_miss" || ev.Ph != "i" || ev.TS != 10 || ev.Args["cfg"] != "RMM_Lite" {
		t.Errorf("event fields wrong: %+v", ev)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(&strings.Builder{}, TraceJSONL, 64)
	if !tr.ShouldSample(0) || !tr.ShouldSample(64) || !tr.ShouldSample(128) {
		t.Error("multiples of the cadence must sample")
	}
	if tr.ShouldSample(1) || tr.ShouldSample(63) {
		t.Error("non-multiples must not sample")
	}
	if tr.SampleEvery() != 64 {
		t.Errorf("SampleEvery = %d", tr.SampleEvery())
	}
}

func TestFormatForPath(t *testing.T) {
	for path, want := range map[string]TraceFormat{
		"out.json":  TraceChrome,
		"out.trace": TraceChrome,
		"out.jsonl": TraceJSONL,
		"out.log":   TraceJSONL,
		"out":       TraceJSONL,
	} {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestTracerEmitAfterCloseDropped(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, TraceChrome, 1)
	tr.Close()
	tr.Emit(1, 0, "tlb", "late")
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("emit after close corrupted the trace: %s", b.String())
	}
}
