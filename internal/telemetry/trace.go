package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TraceFormat selects the event encoding.
type TraceFormat int

const (
	// TraceJSONL writes one self-describing JSON object per line —
	// greppable, streamable, loadable with jq or pandas.
	TraceJSONL TraceFormat = iota
	// TraceChrome writes the Chrome trace_event format (a JSON object
	// with a traceEvents array of instant events), loadable in
	// chrome://tracing and Perfetto. The timestamp axis is the access
	// index, not wall clock: simulated logical time is what aligns with
	// the paper's interval series.
	TraceChrome
)

// FormatForPath picks the trace format from a file extension: .json and
// .trace get the Chrome format, everything else JSONL.
func FormatForPath(path string) TraceFormat {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json", ".trace":
		return TraceChrome
	}
	return TraceJSONL
}

// KV is one event argument. Values may be uint64, int, int64, float64,
// bool or string.
type KV struct {
	K string
	V any
}

// TraceContext is the trace identity a cell carries across process
// boundaries: the suite-level trace id plus the coordinator span its
// downstream spans nest under. It rides inside the wire job and the
// job API but is excluded from the content-addressed cell key, so
// tracing changes what is *recorded* about a cell, never what the
// cell is. Its methods sit on the per-cell dispatch path; the
// type-level marker puts every one of them under the hotpath
// analyzer's allocation check.
//
//eeat:hotpath
type TraceContext struct {
	// TraceID names the trace all spans of one cell share (the short
	// form of the canonical cell key).
	TraceID string
	// ParentSpan is the span id the emitting side should parent new
	// spans under (0 = root).
	ParentSpan uint64
}

// Valid reports whether the context carries a trace identity.
func (c TraceContext) Valid() bool { return c.TraceID != "" }

// Tracer writes sampled structured events. It is safe for concurrent
// use by many simulators (each claims a distinct track with NextTrack);
// emission serializes on an internal lock into a buffered writer.
// Sampling policy belongs to the producer: rare events (shootdowns,
// Lite decisions) are emitted unconditionally, per-access events every
// SampleEvery-th occurrence via ShouldSample.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	format  TraceFormat
	sample  uint64
	first   bool // Chrome: no comma before the first event
	closed  bool
	tracks  atomic.Uint64
	spans   atomic.Uint64
	emitted atomic.Uint64
}

// NewTracer wraps w. sampleEvery is the cadence ShouldSample grants (0
// or 1 = every occurrence).
func NewTracer(w io.Writer, format TraceFormat, sampleEvery uint64) *Tracer {
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), format: format, sample: sampleEvery, first: true}
	if format == TraceChrome {
		t.w.WriteString(`{"traceEvents":[`)
	}
	return t
}

// SampleEvery returns the configured sampling cadence.
func (t *Tracer) SampleEvery() uint64 { return t.sample }

// ShouldSample reports whether the n-th occurrence of a sampled event
// class should be emitted. Producers pass their own monotonically
// increasing per-class counter, keeping sampling deterministic per
// simulator regardless of interleaving.
func (t *Tracer) ShouldSample(n uint64) bool { return n%t.sample == 0 }

// NextTrack claims a fresh track id (Chrome "tid"): one per simulator,
// so concurrent cells render as separate rows in the trace viewer.
func (t *Tracer) NextTrack() uint64 { return t.tracks.Add(1) }

// NextSpan claims a fresh span id, unique within this tracer. Span ids
// thread parent/child structure through EmitSpan args and travel to
// workers inside a TraceContext.
func (t *Tracer) NextSpan() uint64 { return t.spans.Add(1) }

// Events returns how many events have been emitted.
func (t *Tracer) Events() uint64 { return t.emitted.Load() }

// Emit writes one instant event. ts is the producer's logical
// timestamp (the access index); cat groups related event names
// ("tlb", "walk", "os", "lite", "harness").
//
//eeat:coldpath sampled opt-in tracing; serialization cost is accepted when a tracer is attached
func (t *Tracer) Emit(track, ts uint64, cat, name string, args ...KV) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.emitted.Add(1)
	switch t.format {
	case TraceChrome:
		if !t.first {
			t.w.WriteByte(',')
		}
		t.first = false
		fmt.Fprintf(t.w, `{"name":%s,"cat":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%d`,
			strconv.Quote(name), strconv.Quote(cat), track, ts)
		if len(args) > 0 {
			t.w.WriteString(`,"args":{`)
			writeArgs(t.w, args)
			t.w.WriteByte('}')
		}
		t.w.WriteString("}\n")
	default:
		fmt.Fprintf(t.w, `{"ev":%s,"cat":%s,"track":%d,"ref":%d`,
			strconv.Quote(name), strconv.Quote(cat), track, ts)
		if len(args) > 0 {
			t.w.WriteByte(',')
			writeArgs(t.w, args)
		}
		t.w.WriteString("}\n")
	}
}

// EmitSpan writes one complete span: a named interval starting at ts
// and lasting dur timestamp units on the given track. In the Chrome
// format it renders as a "ph":"X" complete event — a bar in the
// timeline, nesting under any enclosing span on the same track; in
// JSONL the event carries an explicit dur field. Cluster spans use
// wall-clock microseconds since the coordinator's base time as the
// timestamp axis (unlike per-access instant events, which use the
// access index).
//
//eeat:coldpath sampled opt-in tracing; serialization cost is accepted when a tracer is attached
func (t *Tracer) EmitSpan(track, ts, dur uint64, cat, name string, args ...KV) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.emitted.Add(1)
	switch t.format {
	case TraceChrome:
		if !t.first {
			t.w.WriteByte(',')
		}
		t.first = false
		fmt.Fprintf(t.w, `{"name":%s,"cat":%s,"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d`,
			strconv.Quote(name), strconv.Quote(cat), track, ts, dur)
		if len(args) > 0 {
			t.w.WriteString(`,"args":{`)
			writeArgs(t.w, args)
			t.w.WriteByte('}')
		}
		t.w.WriteString("}\n")
	default:
		fmt.Fprintf(t.w, `{"ev":%s,"cat":%s,"track":%d,"ref":%d,"dur":%d`,
			strconv.Quote(name), strconv.Quote(cat), track, ts, dur)
		if len(args) > 0 {
			t.w.WriteByte(',')
			writeArgs(t.w, args)
		}
		t.w.WriteString("}\n")
	}
}

func writeArgs(w *bufio.Writer, args []KV) {
	for i, a := range args {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(strconv.Quote(a.K))
		w.WriteByte(':')
		switch v := a.V.(type) {
		case uint64:
			w.WriteString(strconv.FormatUint(v, 10))
		case int:
			w.WriteString(strconv.Itoa(v))
		case int64:
			w.WriteString(strconv.FormatInt(v, 10))
		case float64:
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			w.WriteString(strconv.FormatBool(v))
		case string:
			w.WriteString(strconv.Quote(v))
		default:
			w.WriteString(strconv.Quote(fmt.Sprint(v)))
		}
	}
}

// Close terminates the encoding (the Chrome format needs its closing
// bracket) and flushes. The tracer drops events after Close.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.format == TraceChrome {
		t.w.WriteString("]}\n")
	}
	return t.w.Flush()
}
