package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// populatedRegistry builds a registry exercising every metric type with
// several label sets, in a deliberately scrambled registration order.
func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Gauge("xlate_det_inflight", "in-flight cells").Set(3)
	r.Counter("xlate_det_hits_total", "hits by kind", L("kind", "range")).Add(2)
	h := r.Histogram("xlate_det_cell_seconds", "cell latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	r.Counter("xlate_det_hits_total", "hits by kind", L("kind", "4k")).Add(7)
	r.FloatCounter("xlate_det_energy_pj_total", "energy").Add(1.5)
	return r
}

// TestWritePrometheusDeterministic renders the same registry state
// twice and asserts identical bytes: family and series ordering must
// come from sorting, never from map iteration order.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := populatedRegistry()
	var first, second bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("two renders of identical state differ:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	if first.Len() == 0 {
		t.Fatal("render produced no output")
	}
}

// TestSnapshotDeterministic does the same for the JSON snapshot feeding
// the /status endpoint.
func TestSnapshotDeterministic(t *testing.T) {
	r := populatedRegistry()
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("two snapshots of identical state differ:\n%s\n%s", first, second)
	}
}

// TestIndependentRegistriesRenderIdentically goes one step further:
// two registries populated by the same call sequence must render
// byte-identically, so a re-run of a deterministic simulation produces
// a byte-identical metrics dump.
func TestIndependentRegistriesRenderIdentically(t *testing.T) {
	var first, second bytes.Buffer
	if err := populatedRegistry().WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := populatedRegistry().WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("independent registries with identical state render differently:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
}
