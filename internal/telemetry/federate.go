package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ScrapedExposition is one worker's /metrics payload, tagged with the
// worker id the federated output attributes its series to.
type ScrapedExposition struct {
	Worker string
	Text   []byte
}

// fedSample is one parsed sample line. Name is the literal sample name
// (histogram components keep their _bucket/_sum/_count suffix; the
// family header is reconstructed from the TYPE declarations).
type fedSample struct {
	name   string
	labels string // raw label body without braces, "" when unlabeled
	value  float64
}

// fedFamily accumulates one metric family across every scraped source.
type fedFamily struct {
	name string
	help string
	typ  string
	// agg sums each sample across sources; perWorker keeps the
	// per-source values re-labeled with worker="<id>".
	agg       map[string]float64 // "name{labels" composite key -> sum
	perWorker map[string]float64
	order     []string // agg keys in first-seen order (source order is deterministic)
	workOrder []string
}

// FederateMetrics merges the Prometheus text expositions scraped from a
// set of workers into a single exposition: counters and gauges are
// summed across workers (a summed gauge like queue depth reads as the
// cluster-wide total), histogram buckets, sums and counts are added
// element-wise (every worker shares the same registration-time bounds,
// so cumulative bucket counts add exactly), and each source series is
// additionally re-emitted with a worker="<id>" label so per-worker
// values stay visible next to the aggregate. Families render sorted by
// name with aggregate series before per-worker series; within a family
// samples keep first-seen order, which is the sources' own
// deterministic sorted render (histogram buckets stay in ascending le
// order — a lexicographic sort would put "+Inf" first and "10" before
// "5"). Two federations of identical scrapes are byte-identical.
func FederateMetrics(w io.Writer, sources []ScrapedExposition) error {
	fams := make(map[string]*fedFamily)
	var famOrder []string
	// typeOf maps declared family names to their type so histogram
	// component samples can be folded under the right family header.
	typeOf := make(map[string]string)

	for _, src := range sources {
		if err := parseExposition(src, fams, &famOrder, typeOf); err != nil {
			return fmt.Errorf("telemetry: federate worker %q: %w", src.Worker, err)
		}
	}

	sort.Strings(famOrder)
	for _, name := range famOrder {
		f := fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, k := range f.order {
			if err := writeFedSample(w, k, f.agg[k]); err != nil {
				return err
			}
		}
		for _, k := range f.workOrder {
			if err := writeFedSample(w, k, f.perWorker[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseExposition folds one scraped payload into the family map.
func parseExposition(src ScrapedExposition, fams map[string]*fedFamily, famOrder *[]string, typeOf map[string]string) error {
	sc := bufio.NewScanner(strings.NewReader(string(src.Text)))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	help := make(map[string]string)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, _ := strings.Cut(rest, " ")
			help[name] = text
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("malformed TYPE line %q", line)
			}
			typeOf[name] = typ
			if _, seen := fams[name]; !seen {
				fams[name] = &fedFamily{
					name: name, typ: typ, help: help[name],
					agg: make(map[string]float64), perWorker: make(map[string]float64),
				}
				*famOrder = append(*famOrder, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return err
		}
		fam := fams[familyOf(s.name, typeOf)]
		if fam == nil {
			return fmt.Errorf("sample %q has no TYPE declaration", s.name)
		}
		aggKey := s.name + "{" + s.labels
		if _, seen := fam.agg[aggKey]; !seen {
			fam.order = append(fam.order, aggKey)
		}
		fam.agg[aggKey] += s.value
		wl := `worker="` + escapeLabel(src.Worker) + `"`
		if s.labels != "" {
			wl = s.labels + "," + wl
		}
		wKey := s.name + "{" + wl
		if _, seen := fam.perWorker[wKey]; !seen {
			fam.workOrder = append(fam.workOrder, wKey)
		}
		fam.perWorker[wKey] += s.value
	}
	return sc.Err()
}

// parseSample splits `name{labels} value` / `name value` into parts.
func parseSample(line string) (fedSample, error) {
	var s fedSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.labels = line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("malformed sample value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// familyOf maps a sample name to its declaring family: histogram
// component samples (name_bucket/_sum/_count) fold under the declared
// histogram base name, everything else declares itself.
func familyOf(sample string, typeOf map[string]string) string {
	if _, ok := typeOf[sample]; ok {
		return sample
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok && typeOf[base] == typeHistogram {
			return base
		}
	}
	return sample
}

// writeFedSample renders one merged sample from its composite key.
func writeFedSample(w io.Writer, key string, value float64) error {
	name, labels, _ := strings.Cut(key, "{")
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(value))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(value))
	return err
}
