package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server exposes a registry over HTTP while a run executes:
//
//	/metrics  — the registry in Prometheus text format
//	/status   — a JSON snapshot: the caller-provided status value
//	            (e.g. the harness's in-flight cells) plus the registry
//	/         — a plain-text index
//
// It binds at construction (so a bad address fails fast) and serves on
// a background goroutine until Close.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	reg    *Registry
	status func() any
}

// NewServer listens on addr and starts serving. status may be nil; when
// set, its return value is rendered under "run" in /status.
func NewServer(addr string, reg *Registry, status func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, reg: reg, status: status}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "xlate telemetry")
	fmt.Fprintln(w, "  /metrics  Prometheus text format")
	fmt.Fprintln(w, "  /status   JSON run snapshot")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client hangup mid-scrape
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	out := struct {
		Run     any              `json:"run,omitempty"`
		Metrics []SnapshotMetric `json:"metrics"`
	}{Metrics: s.reg.Snapshot()}
	if s.status != nil {
		out.Run = s.status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client hangup
}
