package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server exposes a registry over HTTP while a run executes:
//
//	/metrics  — the registry in Prometheus text format
//	/status   — a JSON snapshot: the caller-provided status value
//	            (e.g. the harness's in-flight cells) plus the registry
//	/         — a plain-text index
//
// It binds at construction (so a bad address fails fast) and serves on
// a background goroutine until Close or Shutdown.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewMux returns the handler tree a Server serves — /, /metrics and
// /status — so a process that already owns an HTTP listener (the eeatd
// daemon) can mount the same endpoints on its own mux instead of
// opening a second port. status may be nil; when set, its return value
// is rendered under "run" in /status.
func NewMux(reg *Registry, status func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/status", StatusHandler(reg, status))
	return mux
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client hangup mid-scrape
	})
}

// StatusHandler serves the JSON snapshot: the status value (when the
// callback is non-nil) plus every registry metric.
func StatusHandler(reg *Registry, status func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		out := struct {
			Run     any              `json:"run,omitempty"`
			Metrics []SnapshotMetric `json:"metrics"`
		}{Metrics: reg.Snapshot()}
		if status != nil {
			out.Run = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // client hangup
	})
}

// NewServer listens on addr and starts serving. status may be nil; when
// set, its return value is rendered under "run" in /status.
func NewServer(addr string, reg *Registry, status func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	s.srv = &http.Server{Handler: NewMux(reg, status), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown closes the listener and waits for in-flight scrapes to
// finish (bounded by ctx) — the graceful-drain counterpart of Close.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "xlate telemetry")
	fmt.Fprintln(w, "  /metrics  Prometheus text format")
	fmt.Fprintln(w, "  /status   JSON run snapshot")
}
