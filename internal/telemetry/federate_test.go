package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// scrape renders a registry the way a worker's /metrics endpoint does.
func scrape(t *testing.T, id string, r *Registry) ScrapedExposition {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return ScrapedExposition{Worker: id, Text: b.Bytes()}
}

func TestFederateMetricsSumsAndLabels(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("xlate_cells_total", "cells executed").Add(10)
	r1.Gauge("xlate_queue_depth", "queued jobs").Set(3)
	r2 := NewRegistry()
	r2.Counter("xlate_cells_total", "cells executed").Add(14)
	r2.Gauge("xlate_queue_depth", "queued jobs").Set(2)

	var out bytes.Buffer
	err := FederateMetrics(&out, []ScrapedExposition{scrape(t, "w0", r1), scrape(t, "w1", r2)})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE xlate_cells_total counter\n",
		"xlate_cells_total 24\n",
		`xlate_cells_total{worker="w0"} 10` + "\n",
		`xlate_cells_total{worker="w1"} 14` + "\n",
		"xlate_queue_depth 5\n",
		`xlate_queue_depth{worker="w0"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated output missing %q:\n%s", want, text)
		}
	}
}

// Histogram buckets must merge element-wise and keep ascending le order
// (a naive lexicographic sort would put +Inf first and "10" before "5").
func TestFederateMetricsMergesHistograms(t *testing.T) {
	r1 := NewRegistry()
	h1 := r1.Histogram("xlate_latency_seconds", "cell latency", DurationBuckets())
	h1.Observe(0.002)
	h1.Observe(7)
	r2 := NewRegistry()
	h2 := r2.Histogram("xlate_latency_seconds", "cell latency", DurationBuckets())
	h2.Observe(0.002)

	var out bytes.Buffer
	err := FederateMetrics(&out, []ScrapedExposition{scrape(t, "w0", r1), scrape(t, "w1", r2)})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`xlate_latency_seconds_bucket{le="0.005"} 2` + "\n",
		`xlate_latency_seconds_bucket{le="10"} 3` + "\n",
		`xlate_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"xlate_latency_seconds_count 3\n",
		`xlate_latency_seconds_count{worker="w1"} 1` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated output missing %q:\n%s", want, text)
		}
	}
	// Ascending le order within the aggregate series.
	if i5, i10 := strings.Index(text, `le="5"`), strings.Index(text, `le="10"`); i5 < 0 || i10 < 0 || i5 > i10 {
		t.Errorf("bucket order wrong: le=5 at %d, le=10 at %d", i5, i10)
	}
	if iInf, i300 := strings.Index(text, `le="+Inf"`), strings.Index(text, `le="300"`); iInf < i300 {
		t.Errorf("+Inf bucket renders before le=300")
	}
}

func TestFederateMetricsDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("xlate_a_total", "a", L("k", "v")).Add(1)
	reg.Histogram("xlate_h_seconds", "h", DurationBuckets()).Observe(0.1)
	srcs := []ScrapedExposition{scrape(t, "w0", reg), scrape(t, "w1", reg)}

	var a, b bytes.Buffer
	if err := FederateMetrics(&a, srcs); err != nil {
		t.Fatal(err)
	}
	if err := FederateMetrics(&b, srcs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two federations of identical scrapes differ:\n--- a\n%s\n--- b\n%s", a.String(), b.String())
	}
}

func TestFederateMetricsMalformed(t *testing.T) {
	for _, text := range []string{
		"xlate_orphan_total 3\n",                                 // sample without TYPE
		"# TYPE xlate_x_total counter\nxlate_x_total notanum\n",  // bad value
		"# TYPE xlate_x_total counter\nxlate_x_total{oops 3 4\n", // unclosed label set
	} {
		var out bytes.Buffer
		if err := FederateMetrics(&out, []ScrapedExposition{{Worker: "w0", Text: []byte(text)}}); err == nil {
			t.Errorf("malformed exposition %q federated without error", text)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 samples uniformly in (1,2]: the whole distribution sits in
	// bucket (1,2], so quantiles interpolate linearly across it.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("p100 = %v, want 2 (bucket upper bound)", got)
	}
	// A sample beyond the last finite bound clamps there.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 with +Inf sample = %v, want clamp to 8", got)
	}
}

func TestTracerEmitSpan(t *testing.T) {
	var chrome strings.Builder
	tr := NewTracer(&chrome, TraceChrome, 1)
	span := tr.NextSpan()
	tr.EmitSpan(3, 1000, 250, "cluster", "dispatch", KV{"span", span}, KV{"cell", "abc"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph":"X"`, `"ts":1000`, `"dur":250`, `"tid":3`, `"span":1`} {
		if !strings.Contains(chrome.String(), want) {
			t.Errorf("Chrome span missing %s:\n%s", want, chrome.String())
		}
	}

	var jsonl strings.Builder
	tr2 := NewTracer(&jsonl, TraceJSONL, 1)
	tr2.EmitSpan(1, 5, 9, "cluster", "worker_exec")
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"dur":9`) {
		t.Errorf("JSONL span missing dur:\n%s", jsonl.String())
	}
}

// TraceContext rides the per-cell dispatch path; its methods must stay
// allocation-free (the hotpath analyzer checks the same statically).
func TestTraceContextValidAllocFree(t *testing.T) {
	ctx := TraceContext{TraceID: "abc", ParentSpan: 7}
	if n := testing.AllocsPerRun(1000, func() { _ = ctx.Valid() }); n != 0 {
		t.Fatalf("TraceContext.Valid allocates %v per op, want 0", n)
	}
}
