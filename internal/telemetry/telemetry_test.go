package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryHandlesAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("xlate_test_total", "a test counter", L("kind", "x"))
	b := r.Counter("xlate_test_total", "a test counter", L("kind", "x"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("xlate_test_total", "a test counter", L("kind", "y"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatalf("shared handle sees %d, want 3", b.Load())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("xlate_conflict", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("xlate_conflict", "g")
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("xlate_hits_total", "hits by kind", L("kind", "4k")).Add(7)
	r.Counter("xlate_hits_total", "hits by kind", L("kind", "range")).Add(2)
	r.FloatCounter("xlate_energy_pj_total", "energy").Add(1.5)
	r.Gauge("xlate_inflight", "in-flight cells").Set(3)
	h := r.Histogram("xlate_cell_seconds", "cell latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE xlate_hits_total counter",
		`xlate_hits_total{kind="4k"} 7`,
		`xlate_hits_total{kind="range"} 2`,
		"xlate_energy_pj_total 1.5",
		"# TYPE xlate_inflight gauge",
		"xlate_inflight 3",
		"# TYPE xlate_cell_seconds histogram",
		`xlate_cell_seconds_bucket{le="0.1"} 1`,
		`xlate_cell_seconds_bucket{le="1"} 2`,
		`xlate_cell_seconds_bucket{le="10"} 2`,
		`xlate_cell_seconds_bucket{le="+Inf"} 3`,
		"xlate_cell_seconds_sum 100.55",
		"xlate_cell_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}

	// Two scrapes of identical state must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("repeated scrapes of unchanged state differ")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("xlate_a_total", "a", L("k", "v")).Add(4)
	h := r.Histogram("xlate_h", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(snap))
	}
	if snap[0].Name != "xlate_a_total" || snap[0].Value != 4 || snap[0].Labels["k"] != "v" {
		t.Errorf("counter snapshot wrong: %+v", snap[0])
	}
	if snap[1].Count != 2 || snap[1].Sum != 2.5 {
		t.Errorf("histogram snapshot wrong: %+v", snap[1])
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	var c FloatCounter
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := c.Load(); got != 2000 {
		t.Fatalf("concurrent float adds lost updates: %v, want 2000", got)
	}
}

func TestServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("xlate_served_total", "served").Add(9)
	srv, err := NewServer("127.0.0.1:0", r, func() any {
		return map[string]int{"cells": 5}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if m := get("/metrics"); !strings.Contains(m, "xlate_served_total 9") {
		t.Errorf("/metrics missing counter:\n%s", m)
	}
	st := get("/status")
	if !strings.Contains(st, `"cells": 5`) || !strings.Contains(st, "xlate_served_total") {
		t.Errorf("/status missing run info or metrics:\n%s", st)
	}
}
