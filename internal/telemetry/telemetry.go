// Package telemetry is the run-wide observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms
// (optionally labeled), a sampled structured event tracer, and a small
// HTTP server exposing the registry as Prometheus text format plus a
// JSON status snapshot.
//
// The design contract is that observation never perturbs simulation:
//
//   - Metric handles are resolved once at registration time; the hot
//     path (Counter.Add, Gauge.Set, Histogram.Observe) is lock-free,
//     allocation-free atomic arithmetic, pinned by AllocsPerRun tests.
//   - Producers that own single-threaded counters (the simulator's
//     runStats) flush *deltas* into shared registry metrics on a coarse
//     cadence instead of updating atomics per event, so an instrumented
//     run renders byte-identical experiment tables to an uninstrumented
//     one (asserted by test, the same discipline as the audit layer).
//   - The tracer samples: rare events (shootdowns, Lite decisions) are
//     always emitted, per-access events every Nth occurrence.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing atomic float64 (for
// accumulated quantities like picojoules that are not integral).
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v via a compare-and-swap loop; allocation-free.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Load returns the current value.
func (c *FloatCounter) Load() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an atomic int64 that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (possibly negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 gauge.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name/value pair qualifying a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric type discriminators.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family; exactly one of the metric
// pointers is non-nil, matching the family type.
type series struct {
	labels []Label
	c      *Counter
	fc     *FloatCounter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     string
	isFloat bool      // counter families: float-valued
	buckets []float64 // histogram families: upper bounds
	series  map[string]*series
}

// Registry holds metric families. Registration takes the registry lock;
// the handles it returns are used lock-free afterwards. Registering the
// same name and labels twice returns the same handle, so independent
// components can share a metric without coordination.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// getFamily returns the family, creating it on first registration and
// panicking on a type conflict — two components disagreeing on what a
// metric name means is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) getSeries(labels []Label) (*series, bool) {
	k := labelKey(labels)
	s, ok := f.series[k]
	if ok {
		return s, true
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	s = &series{labels: ls}
	f.series[k] = s
	return s, false
}

// Counter registers (or finds) an integer counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeCounter)
	s, existed := f.getSeries(labels)
	if !existed {
		s.c = &Counter{}
	}
	if s.c == nil {
		panic(fmt.Sprintf("telemetry: metric %q registered as float and integer counter", name))
	}
	return s.c
}

// FloatCounter registers (or finds) a float-valued counter series.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeCounter)
	f.isFloat = true
	s, existed := f.getSeries(labels)
	if !existed {
		s.fc = &FloatCounter{}
	}
	if s.fc == nil {
		panic(fmt.Sprintf("telemetry: metric %q registered as integer and float counter", name))
	}
	return s.fc
}

// Gauge registers (or finds) an integer gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	s, existed := f.getSeries(labels)
	if !existed {
		s.g = &Gauge{}
	}
	if s.g == nil {
		panic(fmt.Sprintf("telemetry: metric %q registered as float and integer gauge", name))
	}
	return s.g
}

// FloatGauge registers (or finds) a float gauge series.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	f.isFloat = true
	s, existed := f.getSeries(labels)
	if !existed {
		s.fg = &FloatGauge{}
	}
	if s.fg == nil {
		panic(fmt.Sprintf("telemetry: metric %q registered as integer and float gauge", name))
	}
	return s.fg
}

// Histogram registers (or finds) a histogram series with the given
// bucket upper bounds (ascending; an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeHistogram)
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	s, existed := f.getSeries(labels)
	if !existed {
		s.h = newHistogram(f.buckets)
	}
	return s.h
}

// sortedFamilies returns the families sorted by name, each with its
// series sorted by label key, under the registry lock.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

// value returns the series' scalar value (counters and gauges).
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Load())
	case s.fc != nil:
		return s.fc.Load()
	case s.g != nil:
		return float64(s.g.Load())
	case s.fg != nil:
		return s.fg.Load()
	}
	return 0
}
