package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers, one line
// per labeled series, histograms as cumulative _bucket/_sum/_count.
// Families render sorted by name and series by label set, so two
// scrapes of identical state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			if f.typ == typeHistogram {
				err = writeHistogram(w, f.name, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels, "", ""), formatValue(s.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	cum := s.h.cumulative()
	for i, c := range cum {
		le := "+Inf"
		if i < len(s.h.bounds) {
			le = formatValue(s.h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, "le", le), c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.labels, "", ""), formatValue(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.labels, "", ""), cum[len(cum)-1])
	return err
}

// promLabels renders a label set as {k="v",...}, appending an extra
// label (the histogram "le") when extraKey is non-empty. Values are
// escaped per the exposition format: backslash, double quote, newline.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SnapshotMetric is one series in a JSON-friendly registry snapshot.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Sum    float64           `json:"sum,omitempty"`   // histograms
	Count  uint64            `json:"count,omitempty"` // histograms
}

// Snapshot returns the registry contents as a flat, sorted slice for
// JSON rendering (the /status endpoint). Histograms report count and
// sum; Value carries the count for uniform consumption.
func (r *Registry) Snapshot() []SnapshotMetric {
	var out []SnapshotMetric
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			m := SnapshotMetric{Name: f.name, Type: f.typ}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			if f.typ == typeHistogram {
				m.Count = s.h.Count()
				m.Sum = s.h.Sum()
				m.Value = float64(m.Count)
			} else {
				m.Value = s.value()
			}
			out = append(out, m)
		}
	}
	return out
}
