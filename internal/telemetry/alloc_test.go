package telemetry

import "testing"

// The telemetry hot path — counter add, gauge set, histogram observe —
// must be allocation-free: these run on the simulator flush cadence and
// inside harness workers, and an allocating metrics layer would show up
// in every profile it exists to produce. Same discipline as the
// CheckInvariants AllocsPerRun pins in internal/tlb and internal/rmm.

func TestCounterAddAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xlate_alloc_c_total", "t", L("k", "v"))
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
}

func TestFloatCounterAddAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.FloatCounter("xlate_alloc_fc_total", "t")
	if n := testing.AllocsPerRun(1000, func() { c.Add(0.25) }); n != 0 {
		t.Fatalf("FloatCounter.Add allocates %v per op, want 0", n)
	}
}

func TestGaugeSetAllocFree(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("xlate_alloc_g", "t")
	fg := r.FloatGauge("xlate_alloc_fg", "t")
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-1) }); n != 0 {
		t.Fatalf("Gauge.Set/Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { fg.Set(1.5) }); n != 0 {
		t.Fatalf("FloatGauge.Set allocates %v per op, want 0", n)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xlate_alloc_h", "t", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("xlate_bench_c_total", "t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("xlate_bench_h", "t", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) / 100)
	}
}
