package lite

import (
	"math"
	"testing"

	"xlate/internal/tlb"
)

func TestThreshold(t *testing.T) {
	rel := RelativeThreshold(0.125)
	if got := rel.Limit(8); got != 9 {
		t.Errorf("relative Limit(8) = %v, want 9", got)
	}
	abs := AbsoluteThreshold(0.1)
	if got := abs.Limit(0.05); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("absolute Limit(0.05) = %v, want 0.15", got)
	}
	if rel.String() == "" || abs.String() == "" {
		t.Error("thresholds should describe themselves")
	}
}

func TestBucketMapping(t *testing.T) {
	// Figure 6, 8-way TLB: position from MRU → counter index.
	want := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 3, 7: 3}
	for pos, b := range want {
		if got := bucket(pos); got != b {
			t.Errorf("bucket(%d) = %d, want %d", pos, got, b)
		}
	}
}

func TestExtraMisses(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 8, 8)
	m := newMonitor(tl)
	// 8-way: counters [0..3]. Seed them.
	m.lruDist = []uint64{10, 20, 30, 40}
	if got := m.extraMisses(4); got != 40 {
		t.Errorf("extraMisses(4) = %d, want 40", got)
	}
	if got := m.extraMisses(2); got != 70 {
		t.Errorf("extraMisses(2) = %d, want 70", got)
	}
	if got := m.extraMisses(1); got != 90 {
		t.Errorf("extraMisses(1) = %d, want 90", got)
	}
}

func TestCounterWidth(t *testing.T) {
	// n-way TLB needs log2(n)+1 counters (Figure 6).
	for _, c := range []struct{ ways, counters int }{{1, 1}, {2, 2}, {4, 3}, {8, 4}} {
		tl := tlb.NewSetAssoc("t", c.ways*4, c.ways)
		m := newMonitor(tl)
		if len(m.lruDist) != c.counters {
			t.Errorf("%d-way monitor has %d counters, want %d", c.ways, len(m.lruDist), c.counters)
		}
	}
}

func TestNonPowerOfTwoWaysPanics(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 12, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("3-way TLB should be rejected")
		}
	}()
	NewController(DefaultConfig(), tl)
}

// runInterval drives one full interval with the given per-interval hit
// profile and miss count.
func runInterval(c *Controller, cfg Config, hits map[int]uint64, misses uint64) {
	for pos, n := range hits {
		for i := uint64(0); i < n; i++ {
			c.RecordHit(0, pos)
		}
	}
	for i := uint64(0); i < misses; i++ {
		c.RecordMiss()
	}
	c.AddInstructions(cfg.IntervalInstrs)
}

func TestDownsizeWhenUpperWaysUseless(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	// All hits at MRU position, a few misses: ways 2..4 contribute
	// nothing, so Lite should drop straight to 1 way.
	runInterval(c, cfg, map[int]uint64{0: 500}, 8)
	if tl.ActiveWays() != 1 {
		t.Fatalf("ActiveWays = %d, want 1", tl.ActiveWays())
	}
	if c.Resizes() != 1 {
		t.Fatalf("Resizes = %d", c.Resizes())
	}
}

func TestKeepWaysWhenAllUseful(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	// Hits spread across all stack positions: disabling any ways would
	// blow far past ε (misses = 8 → limit = 9 misses; bucket[2] alone
	// holds 200 would-be misses).
	runInterval(c, cfg, map[int]uint64{0: 200, 1: 200, 2: 100, 3: 100}, 8)
	if tl.ActiveWays() != 4 {
		t.Fatalf("ActiveWays = %d, want 4", tl.ActiveWays())
	}
}

func TestIntermediateDownsize(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: AbsoluteThreshold(50),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	// Dropping to 2 ways adds 40 misses (≤ 50); dropping to 1 way adds
	// 140 (> 50). Lite should settle at 2 ways.
	runInterval(c, cfg, map[int]uint64{0: 300, 1: 100, 2: 40, 3: 0}, 10)
	if tl.ActiveWays() != 2 {
		t.Fatalf("ActiveWays = %d, want 2", tl.ActiveWays())
	}
}

func TestDegradationReactivates(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	// Interval 1: quiet → downsize to 1 way.
	runInterval(c, cfg, map[int]uint64{0: 500}, 8)
	if tl.ActiveWays() != 1 {
		t.Fatalf("setup: ActiveWays = %d, want 1", tl.ActiveWays())
	}
	// Interval 2: misses explode (phase change) → reactivate all ways.
	runInterval(c, cfg, nil, 100)
	if tl.ActiveWays() != 4 {
		t.Fatalf("after degradation: ActiveWays = %d, want 4", tl.ActiveWays())
	}
	if c.Reactivations() != 1 {
		t.Fatalf("Reactivations = %d", c.Reactivations())
	}
	d := c.LastDecision()
	if !d.Reactivated || !d.DegradedTrig || d.RandomTrig {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDegradationAblation(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1, DisableDegradationReactivation: true}
	c := NewController(cfg, tl)
	runInterval(c, cfg, map[int]uint64{0: 500}, 8)
	runInterval(c, cfg, nil, 100)
	if tl.ActiveWays() != 1 {
		t.Fatalf("ablated controller should not reactivate; ways = %d", tl.ActiveWays())
	}
}

func TestRandomReactivation(t *testing.T) {
	tl := tlb.NewSetAssoc("L1-4KB", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 1.0, Seed: 1} // always fire
	c := NewController(cfg, tl)
	tl.SetActiveWays(1)
	runInterval(c, cfg, nil, 0)
	if tl.ActiveWays() != 4 {
		t.Fatalf("random trigger should re-enable all ways; got %d", tl.ActiveWays())
	}
	if d := c.LastDecision(); !d.RandomTrig {
		t.Fatalf("decision = %+v", d)
	}
}

func TestMultipleTLBsResizedIndependently(t *testing.T) {
	t4k := tlb.NewSetAssoc("L1-4KB", 64, 4)
	t2m := tlb.NewSetAssoc("L1-2MB", 32, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: AbsoluteThreshold(50),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, t4k, t2m)
	// 4KB TLB: concentrated at MRU → shrink. 2MB TLB: spread → keep.
	for i := 0; i < 400; i++ {
		c.RecordHit(0, 0)
	}
	for i := 0; i < 100; i++ {
		c.RecordHit(1, 0)
		c.RecordHit(1, 1)
		c.RecordHit(1, 2)
		c.RecordHit(1, 3)
	}
	for i := 0; i < 10; i++ {
		c.RecordMiss()
	}
	c.AddInstructions(cfg.IntervalInstrs)
	if t4k.ActiveWays() != 1 {
		t.Errorf("4KB TLB ways = %d, want 1", t4k.ActiveWays())
	}
	if t2m.ActiveWays() != 4 {
		t.Errorf("2MB TLB ways = %d, want 4", t2m.ActiveWays())
	}
}

func TestIntervalBoundaryAccounting(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	if c.AddInstructions(999) {
		t.Fatal("no boundary before interval end")
	}
	if !c.AddInstructions(1) {
		t.Fatal("boundary at exactly one interval")
	}
	if c.Intervals() != 1 {
		t.Fatalf("Intervals = %d", c.Intervals())
	}
	// A large step crosses several boundaries.
	c.AddInstructions(3500)
	if c.Intervals() != 4 {
		t.Fatalf("Intervals = %d, want 4", c.Intervals())
	}
}

func TestLookupShare(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, tl)
	for i := 0; i < 60; i++ {
		c.RecordLookup() // at 4 ways
	}
	tl.SetActiveWays(1)
	for i := 0; i < 40; i++ {
		c.RecordLookup() // at 1 way
	}
	share := c.LookupShareAtWays(0)
	// Index k = share at 2^k ways: [0]=1-way, [1]=2-way, [2]=4-way.
	if math.Abs(share[0]-0.4) > 1e-12 || share[1] != 0 || math.Abs(share[2]-0.6) > 1e-12 {
		t.Fatalf("share = %v", share)
	}
	// Empty controller returns zeros.
	c2 := NewController(cfg, tlb.NewSetAssoc("t2", 64, 4))
	for _, v := range c2.LookupShareAtWays(0) {
		if v != 0 {
			t.Fatal("share of unprobed TLB should be zero")
		}
	}
}

func TestDownsizingAblation(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 64, 4)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1, DisableDownsizing: true}
	c := NewController(cfg, tl)
	runInterval(c, cfg, map[int]uint64{0: 500}, 8)
	if tl.ActiveWays() != 4 {
		t.Fatalf("downsizing disabled but ways = %d", tl.ActiveWays())
	}
}

func TestConfigValidation(t *testing.T) {
	tl := tlb.NewSetAssoc("t", 64, 4)
	for _, cfg := range []Config{
		{IntervalInstrs: 0, ReactivateProb: 0.1},
		{IntervalInstrs: 1000, ReactivateProb: -0.1},
		{IntervalInstrs: 1000, ReactivateProb: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should be rejected", cfg)
				}
			}()
			NewController(cfg, tl)
		}()
	}
}

// The fully-associative variant of §4.4: Lite clusters LRU distances of
// a fully associative TLB as if there were ways, and resizes in powers
// of two. The same controller must work unchanged.
func TestFullyAssociativeVariant(t *testing.T) {
	fa := tlb.NewFullyAssoc("L1-FA", 64)
	cfg := Config{IntervalInstrs: 1000, Epsilon: RelativeThreshold(0.125),
		ReactivateProb: 0, Seed: 1}
	c := NewController(cfg, fa)
	// Hits only in the 8 most recent stack positions → downsize to 8.
	for pos := 0; pos < 8; pos++ {
		for i := 0; i < 50; i++ {
			c.RecordHit(0, pos)
		}
	}
	for i := 0; i < 5; i++ {
		c.RecordMiss()
	}
	c.AddInstructions(cfg.IntervalInstrs)
	if got := fa.ActiveWays(); got != 8 {
		t.Fatalf("FA active size = %d, want 8", got)
	}
}
