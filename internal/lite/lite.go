// Package lite implements the paper's primary contribution: the Lite
// mechanism (§4.2) that monitors the utility of ways in the L1 TLBs and
// adaptively resizes them by way-disabling.
//
// Lite divides execution into fixed instruction-count intervals. During
// an interval it tracks:
//
//   - the actual-misses counter: lookups that missed in *all* L1 TLBs of
//     the core and went to the L2 TLB;
//   - per-TLB lru-distance counters (Figure 6): on every L1 hit, the
//     counter for the hit entry's LRU-stack bucket is incremented, so at
//     interval end counter[b] holds the misses that *would have*
//     occurred had the ways in bucket b been disabled — the accounting
//     idea of Dropsho et al. [20] and Qureshi & Patt's UMON [46];
//   - the previous interval's actual MPKI, to detect degradation.
//
// At interval end the decision algorithm (Figure 7) runs: if performance
// degraded beyond the threshold ε, or a low-probability random trigger
// fires (escaping local minima the monitor cannot see past, §4.2.2), all
// ways of all L1 TLBs are re-enabled; otherwise each TLB is independently
// downsized to the fewest ways whose predicted MPKI stays within ε of
// the actual MPKI. Disabled ways are invalidated, never written back
// (TLBs are read-only structures).
package lite

import (
	"fmt"
	"math/bits"
	"math/rand"

	"xlate/internal/tlb"
)

// Threshold is the ε of the decision algorithm: the acceptable MPKI
// increase over the reference (all-ways) MPKI. The paper uses a relative
// threshold for TLB_Lite (12.5 %) and an absolute one for RMM_Lite
// (0.1 MPKI), because a relative bound on a near-zero reference would
// forbid even negligible increases (§4.2.2 "Threshold").
type Threshold struct {
	Relative float64 // fractional increase; used when > 0
	Absolute float64 // MPKI increase; used when Relative == 0
}

// RelativeThreshold returns a relative ε.
func RelativeThreshold(frac float64) Threshold { return Threshold{Relative: frac} }

// AbsoluteThreshold returns an absolute ε in MPKI.
func AbsoluteThreshold(mpki float64) Threshold { return Threshold{Absolute: mpki} }

// Limit returns the highest acceptable MPKI given the reference MPKI.
func (t Threshold) Limit(refMPKI float64) float64 {
	if t.Relative > 0 {
		return refMPKI * (1 + t.Relative)
	}
	return refMPKI + t.Absolute
}

// String describes the threshold.
func (t Threshold) String() string {
	if t.Relative > 0 {
		return fmt.Sprintf("%.4g%% relative", t.Relative*100)
	}
	return fmt.Sprintf("%.4g MPKI absolute", t.Absolute)
}

// Config parameterizes the controller.
type Config struct {
	// IntervalInstrs is the monitoring interval length in instructions
	// (paper default 1 M; sensitivity analysis sweeps 1 M–10 M).
	IntervalInstrs uint64
	// Epsilon is the acceptable MPKI increase for way-disabling.
	Epsilon Threshold
	// ReactivateProb is the per-interval probability of re-enabling all
	// ways (paper sweeps 1/8–1/128; lower is slightly better).
	ReactivateProb float64
	// Seed drives the random reactivation draw deterministically.
	Seed int64

	// Ablation switches (not part of the paper's default mechanism).
	DisableRandomReactivation      bool
	DisableDegradationReactivation bool
	DisableDownsizing              bool
}

// DefaultConfig returns the paper's TLB_Lite parameters.
func DefaultConfig() Config {
	return Config{
		IntervalInstrs: 1_000_000,
		Epsilon:        RelativeThreshold(0.125),
		ReactivateProb: 1.0 / 32,
	}
}

// Validate checks the controller configuration, returning an error
// describing the first inconsistency. NewController panics on the same
// conditions; validating first keeps user-supplied configurations on
// the error path.
func (cfg Config) Validate() error {
	if cfg.IntervalInstrs == 0 {
		return fmt.Errorf("lite: zero interval")
	}
	if cfg.ReactivateProb < 0 || cfg.ReactivateProb > 1 {
		return fmt.Errorf("lite: reactivation probability %v outside [0,1]", cfg.ReactivateProb)
	}
	if cfg.Epsilon.Relative < 0 || cfg.Epsilon.Absolute < 0 {
		return fmt.Errorf("lite: negative threshold %v", cfg.Epsilon)
	}
	return nil
}

// monitor holds the per-TLB Lite state.
type monitor struct {
	t *tlb.SetAssoc
	// lruDist[b] counts hits in LRU-stack bucket b: bucket 0 is the MRU
	// position, bucket b≥1 covers positions [2^(b-1), 2^b). A TLB with n
	// physical ways needs log2(n)+1 counters (Figure 6).
	lruDist []uint64
	// lookupsAtWays[k] counts lookups performed while 2^k ways were
	// active — the Table 5 occupancy histogram.
	lookupsAtWays []uint64
}

func newMonitor(t *tlb.SetAssoc) *monitor {
	n := bits.Len(uint(t.Ways())) // log2(ways)+1 for power-of-two ways
	return &monitor{t: t, lruDist: make([]uint64, n), lookupsAtWays: make([]uint64, n)}
}

func (m *monitor) reset() {
	for i := range m.lruDist {
		m.lruDist[i] = 0
	}
}

// bucket maps an LRU-stack position to its counter index.
func bucket(pos int) int {
	if pos == 0 {
		return 0
	}
	return bits.Len(uint(pos)) // floor(log2(pos))+1
}

// extraMisses returns the additional misses this interval's hits would
// have become with only w (a power of two) active ways: the sum of the
// buckets whose positions lie at or beyond w.
func (m *monitor) extraMisses(w int) uint64 {
	var extra uint64
	for b := bits.Len(uint(w)); b < len(m.lruDist); b++ {
		extra += m.lruDist[b]
	}
	return extra
}

// Decision records one interval-end action, for tracing and tests.
type Decision struct {
	Interval     uint64
	ActualMPKI   float64
	Reactivated  bool  // all ways re-enabled
	RandomTrig   bool  // ... because of the random trigger
	DegradedTrig bool  // ... because MPKI degraded past ε
	Ways         []int // resulting active ways per monitored TLB
}

// Controller is one core's Lite mechanism, monitoring that core's
// L1-page TLBs.
type Controller struct {
	cfg  Config
	mons []*monitor
	rng  *rand.Rand

	instrs        uint64 // instructions in the current interval
	actualMisses  uint64 // L1 misses (any structure) this interval
	prevMPKI      float64
	hasPrev       bool
	intervalCount uint64

	resizes       uint64
	reactivations uint64
	lastDecision  Decision
	onDecision    func(Decision)
}

// NewController builds a controller for the given L1 TLBs. Each TLB must
// have power-of-two associativity (the mechanism disables ways in powers
// of two).
func NewController(cfg Config, tlbs ...*tlb.SetAssoc) *Controller {
	if cfg.IntervalInstrs == 0 {
		panic("lite: zero interval")
	}
	if cfg.ReactivateProb < 0 || cfg.ReactivateProb > 1 {
		panic(fmt.Sprintf("lite: reactivation probability %v outside [0,1]", cfg.ReactivateProb))
	}
	c := &Controller{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, t := range tlbs {
		if t.Ways()&(t.Ways()-1) != 0 {
			panic(fmt.Sprintf("lite: TLB %s has non-power-of-two associativity %d", t.Name(), t.Ways()))
		}
		c.mons = append(c.mons, newMonitor(t))
	}
	return c
}

// RecordLookup notes that all monitored L1 TLBs were probed for one
// memory operation, attributing the lookup to each TLB's current
// active-way configuration (Table 5's occupancy data).
func (c *Controller) RecordLookup() {
	for _, m := range c.mons {
		m.lookupsAtWays[bits.Len(uint(m.t.ActiveWays()))-1]++
	}
}

// RecordHit notes an L1 hit in monitored TLB idx at the given LRU-stack
// position (as returned by tlb.SetAssoc.Lookup).
func (c *Controller) RecordHit(idx, pos int) {
	m := c.mons[idx]
	b := bucket(pos)
	if b >= len(m.lruDist) {
		panic(fmt.Sprintf("lite: hit position %d beyond %d ways", pos, m.t.Ways()))
	}
	m.lruDist[b]++
}

// RecordMiss notes a lookup that missed in every L1 TLB and accessed the
// L2 TLB (the actual-misses counter).
func (c *Controller) RecordMiss() { c.actualMisses++ }

// AddInstructions advances execution by n instructions, running the
// decision algorithm at each interval boundary. It returns true if at
// least one boundary was crossed.
func (c *Controller) AddInstructions(n uint64) bool {
	c.instrs += n
	crossed := false
	for c.instrs >= c.cfg.IntervalInstrs {
		c.instrs -= c.cfg.IntervalInstrs
		c.endInterval()
		crossed = true
	}
	return crossed
}

// endInterval runs the decision algorithm of Figure 7.
//
//eeat:coldpath interval-end decision; runs once per IntervalInstrs instructions
func (c *Controller) endInterval() {
	c.intervalCount++
	actualMPKI := float64(c.actualMisses) * 1000 / float64(c.cfg.IntervalInstrs)
	d := Decision{Interval: c.intervalCount, ActualMPKI: actualMPKI}

	degraded := c.hasPrev && actualMPKI > c.cfg.Epsilon.Limit(c.prevMPKI) &&
		!c.cfg.DisableDegradationReactivation
	random := !c.cfg.DisableRandomReactivation && c.rng.Float64() < c.cfg.ReactivateProb

	switch {
	case degraded || random:
		d.Reactivated = true
		d.DegradedTrig = degraded
		d.RandomTrig = random && !degraded
		for _, m := range c.mons {
			if m.t.ActiveWays() != m.t.Ways() {
				m.t.SetActiveWays(m.t.Ways())
			}
		}
		c.reactivations++
	case !c.cfg.DisableDownsizing:
		limit := c.cfg.Epsilon.Limit(actualMPKI)
		for _, m := range c.mons {
			target := m.t.ActiveWays()
			// Find the smallest power-of-two way count whose predicted
			// MPKI stays within ε.
			for w := 1; w < m.t.ActiveWays(); w *= 2 {
				potential := float64(c.actualMisses+m.extraMisses(w)) * 1000 /
					float64(c.cfg.IntervalInstrs)
				if potential <= limit {
					target = w
					break
				}
			}
			if target != m.t.ActiveWays() {
				m.t.SetActiveWays(target)
				c.resizes++
			}
		}
	}

	for _, m := range c.mons {
		d.Ways = append(d.Ways, m.t.ActiveWays())
		m.reset()
	}
	c.prevMPKI = actualMPKI
	c.hasPrev = true
	c.actualMisses = 0
	c.lastDecision = d
	if c.onDecision != nil {
		c.onDecision(d)
	}
}

// OnDecision registers fn to be called after every interval-end
// decision, with the Decision just taken. The telemetry layer uses it
// to trace resize/reactivation events; fn observes, it must not mutate
// the monitored TLBs.
func (c *Controller) OnDecision(fn func(Decision)) { c.onDecision = fn }

// CheckInvariants verifies the controller's view of its monitored TLBs:
// every active-way count must be a power of two within the physical
// associativity (the decision algorithm only ever selects such counts),
// and the monitor's counter geometry must match the TLB. It is
// allocation-free production API for the runtime auditor.
func (c *Controller) CheckInvariants() error {
	for i, m := range c.mons {
		w := m.t.ActiveWays()
		if w < 1 || w > m.t.Ways() || w&(w-1) != 0 {
			return fmt.Errorf("lite: monitored TLB %s has %d active ways (physical %d; must be a power of two)",
				m.t.Name(), w, m.t.Ways())
		}
		if want := bits.Len(uint(m.t.Ways())); len(m.lruDist) != want {
			return fmt.Errorf("lite: monitor %d has %d lru-distance counters, geometry needs %d",
				i, len(m.lruDist), want)
		}
	}
	return nil
}

// LastDecision returns the most recent interval-end decision.
func (c *Controller) LastDecision() Decision { return c.lastDecision }

// Intervals returns the number of completed intervals.
func (c *Controller) Intervals() uint64 { return c.intervalCount }

// Resizes returns the number of individual TLB downsizing actions taken.
func (c *Controller) Resizes() uint64 { return c.resizes }

// Reactivations returns the number of full-reactivation events.
func (c *Controller) Reactivations() uint64 { return c.reactivations }

// LookupShareAtWays returns, for monitored TLB idx, the fraction of
// lookups performed at each active-way count; index k of the result is
// the share at 2^k ways. This is Table 5's left half.
func (c *Controller) LookupShareAtWays(idx int) []float64 {
	m := c.mons[idx]
	var total uint64
	for _, v := range m.lookupsAtWays {
		total += v
	}
	out := make([]float64, len(m.lookupsAtWays))
	if total == 0 {
		return out
	}
	for k, v := range m.lookupsAtWays {
		out[k] = float64(v) / float64(total)
	}
	return out
}
