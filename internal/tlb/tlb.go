// Package tlb implements the hardware lookup structures on the address
// translation path: set-associative page TLBs with true LRU replacement
// and way-disabling, fully-associative TLBs, and the range TLB used by
// Redundant Memory Mappings.
//
// The structures are deliberately behavioural, not cycle-level: a lookup
// either hits (returning the entry and its LRU stack position, which the
// Lite mechanism's lru-distance counters consume) or misses. Energy is
// accounted by the caller per lookup/fill using the structure's current
// active-way count, matching the paper's model E = A·E_read + M·E_write.
package tlb

import "fmt"

// Stats counts the events on one lookup structure.
type Stats struct {
	Lookups uint64 // probe operations (hit or miss)
	Hits    uint64
	Misses  uint64
	Fills   uint64 // entries written after a miss
	Evicts  uint64 // valid entries displaced by fills
	Invals  uint64 // entries dropped by way-disabling or flushes
}

// HitRatio returns hits/lookups, or 0 when the structure was never
// probed.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Entry is one page-TLB entry: a tag (virtual page number, or any
// caller-defined key) and its payload frame. The payload is opaque to
// the TLB.
type Entry struct {
	Key   uint64
	Frame uint64
}

// slotList is one set's contents ordered most-recently-used first, so
// index in the slice IS the LRU stack position (0 = MRU).
type slotList []Entry

// SetAssoc is a set-associative TLB with true LRU replacement per set
// and support for way-disabling (Albonesi, MICRO 1999): only the first
// ActiveWays LRU stack positions of each set are usable. Disabling ways
// invalidates the entries beyond the new way count — TLBs hold no dirty
// state, so no write-back is needed (paper §4.2.3).
//
// The geometry is fixed at construction: entries/ways sets. Way-disabling
// shrinks associativity while the set count stays constant, exactly as
// the paper's Lite mechanism assumes (§4.1).
type SetAssoc struct {
	name string
	sets int
	ways int

	active int // currently active ways, 1..ways

	data  []slotList
	stats Stats
}

// NewSetAssoc constructs a TLB with the given total entry count and
// associativity. entries must be a positive multiple of ways.
func NewSetAssoc(name string, entries, ways int) *SetAssoc {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("tlb: invalid geometry %d entries / %d ways", entries, ways))
	}
	sets := entries / ways
	t := &SetAssoc{name: name, sets: sets, ways: ways, active: ways,
		data: make([]slotList, sets)}
	for i := range t.data {
		t.data[i] = make(slotList, 0, ways)
	}
	return t
}

// NewFullyAssoc constructs a fully-associative TLB (a single set).
func NewFullyAssoc(name string, entries int) *SetAssoc {
	return NewSetAssoc(name, entries, entries)
}

// Name returns the identifier given at construction.
func (t *SetAssoc) Name() string { return t.name }

// Sets returns the set count.
func (t *SetAssoc) Sets() int { return t.sets }

// Ways returns the physical associativity.
func (t *SetAssoc) Ways() int { return t.ways }

// ActiveWays returns the number of currently enabled ways.
func (t *SetAssoc) ActiveWays() int { return t.active }

// Entries returns the physical capacity (sets × ways).
func (t *SetAssoc) Entries() int { return t.sets * t.ways }

// ActiveEntries returns the capacity at the current way configuration.
func (t *SetAssoc) ActiveEntries() int { return t.sets * t.active }

// Stats returns a copy of the event counters.
func (t *SetAssoc) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *SetAssoc) ResetStats() { t.stats = Stats{} }

func (t *SetAssoc) set(key uint64) *slotList {
	return &t.data[int(key%uint64(t.sets))]
}

// Lookup probes the TLB. On a hit it returns the entry, the entry's LRU
// stack position before the probe (0 = most recently used), and true;
// the entry is promoted to MRU. On a miss it returns position -1.
//
//eeat:hotpath
func (t *SetAssoc) Lookup(key uint64) (Entry, int, bool) {
	t.stats.Lookups++
	s := t.set(key)
	for i, e := range *s {
		if e.Key == key {
			t.stats.Hits++
			copy((*s)[1:i+1], (*s)[:i])
			(*s)[0] = e
			return e, i, true
		}
	}
	t.stats.Misses++
	return Entry{}, -1, false
}

// Peek reports whether key is present without updating recency or stats.
func (t *SetAssoc) Peek(key uint64) bool {
	for _, e := range *t.set(key) {
		if e.Key == key {
			return true
		}
	}
	return false
}

// Insert fills the TLB with an entry at the MRU position of its set,
// evicting the LRU entry if the set is full at the current active-way
// count. Inserting a key that is already present refreshes its payload
// and promotes it without a fill.
//
//eeat:hotpath
func (t *SetAssoc) Insert(e Entry) {
	s := t.set(e.Key)
	for i, old := range *s {
		if old.Key == e.Key {
			copy((*s)[1:i+1], (*s)[:i])
			(*s)[0] = e
			return
		}
	}
	t.stats.Fills++
	if len(*s) >= t.active {
		t.stats.Evicts++
		*s = (*s)[:t.active-1] // drop LRU tail
	}
	*s = append(*s, Entry{}) //eeatlint:allow hotpath slot list is preallocated to full way capacity; the eviction above keeps len below it
	copy((*s)[1:], (*s)[:len(*s)-1])
	(*s)[0] = e
}

// Invalidate removes the entry for key if present, returning whether it
// was.
func (t *SetAssoc) Invalidate(key uint64) bool {
	s := t.set(key)
	for i, e := range *s {
		if e.Key == key {
			*s = append((*s)[:i], (*s)[i+1:]...)
			t.stats.Invals++
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *SetAssoc) Flush() {
	for i := range t.data {
		t.stats.Invals += uint64(len(t.data[i]))
		t.data[i] = t.data[i][:0]
	}
}

// SetActiveWays reconfigures the TLB to w active ways (1..Ways). When
// shrinking, entries beyond the new way count — the least recently used
// of each set — are invalidated so re-enabled ways never expose stale
// translations (paper §4.2.3). Growing leaves existing contents alone;
// the newly enabled ways start empty.
func (t *SetAssoc) SetActiveWays(w int) {
	if w < 1 || w > t.ways {
		panic(fmt.Sprintf("tlb %s: SetActiveWays(%d) outside 1..%d", t.name, w, t.ways))
	}
	if w < t.active {
		for i := range t.data {
			if len(t.data[i]) > w {
				t.stats.Invals += uint64(len(t.data[i]) - w)
				t.data[i] = t.data[i][:w]
			}
		}
	}
	t.active = w
}

// Len returns the number of valid entries currently held.
func (t *SetAssoc) Len() int {
	n := 0
	for i := range t.data {
		n += len(t.data[i])
	}
	return n
}

// CheckInvariants validates structural consistency: no set exceeds the
// active way count, every key indexes to its set, and no key appears
// twice in a set. It is production API — the runtime auditor in
// internal/audit calls it on a fixed cadence during simulation — so it
// is allocation-free (the duplicate scan is pairwise over at most
// Ways entries, which is cheaper than a map for TLB associativities).
func (t *SetAssoc) CheckInvariants() error {
	for i, s := range t.data {
		if len(s) > t.active {
			return fmt.Errorf("tlb %s: set %d holds %d entries with %d active ways",
				t.name, i, len(s), t.active)
		}
		for j, e := range s {
			if int(e.Key%uint64(t.sets)) != i {
				return fmt.Errorf("tlb %s: key %#x in wrong set %d", t.name, e.Key, i)
			}
			for _, prev := range s[:j] {
				if prev.Key == e.Key {
					return fmt.Errorf("tlb %s: duplicate key %#x in set %d", t.name, e.Key, i)
				}
			}
		}
	}
	return nil
}

// ForEach calls fn for every valid entry without touching recency or
// statistics. It is allocation-free; the runtime auditor uses it for
// coherence scans against the page table. fn must not mutate the TLB.
func (t *SetAssoc) ForEach(fn func(Entry)) {
	for i := range t.data {
		for _, e := range t.data[i] {
			fn(e)
		}
	}
}

// MutateEntry calls fn on each resident entry in turn until fn returns
// true, meaning it mutated that entry; the walk then stops and
// MutateEntry reports whether any entry was mutated. It exists solely
// for the audit fault injector (internal/audit/inject), which corrupts
// one cached entry in place to prove the auditor detects it — no
// simulation path mutates entries this way.
func (t *SetAssoc) MutateEntry(fn func(*Entry) bool) bool {
	for i := range t.data {
		for j := range t.data[i] {
			if fn(&t.data[i][j]) {
				return true
			}
		}
	}
	return false
}

// InvalidateIf removes every entry the predicate matches, returning the
// count removed. This is the building block for OS-initiated shootdowns
// of address ranges.
func (t *SetAssoc) InvalidateIf(pred func(Entry) bool) int {
	n := 0
	for i := range t.data {
		dst := t.data[i][:0]
		for _, e := range t.data[i] {
			if pred(e) {
				n++
				continue
			}
			dst = append(dst, e)
		}
		t.data[i] = dst
	}
	t.stats.Invals += uint64(n)
	return n
}
