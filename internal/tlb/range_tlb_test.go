package tlb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"xlate/internal/addr"
)

func mkRange(startMB, sizeMB, paMB uint64) RangeEntry {
	return RangeEntry{
		Start:  addr.VA(startMB << 20),
		End:    addr.VA((startMB + sizeMB) << 20),
		PABase: addr.PA(paMB << 20),
	}
}

func TestRangeEntryTranslate(t *testing.T) {
	e := mkRange(100, 16, 4)
	va := addr.VA(105<<20 + 0x123)
	if !e.Contains(va) {
		t.Fatal("va should be inside range")
	}
	want := addr.PA(9<<20 + 0x123)
	if got := e.Translate(va); got != want {
		t.Fatalf("Translate = %#x, want %#x", uint64(got), uint64(want))
	}
	if e.Contains(e.End) {
		t.Fatal("End is exclusive")
	}
	if !e.Contains(e.Start) {
		t.Fatal("Start is inclusive")
	}
	if e.Bytes() != 16<<20 {
		t.Fatalf("Bytes = %d", e.Bytes())
	}
}

func TestRangeTLBHitMiss(t *testing.T) {
	rt := NewRangeTLB("L1-range", 4)
	if _, hit := rt.Lookup(addr.VA(0x1000)); hit {
		t.Fatal("empty range TLB should miss")
	}
	rt.Insert(mkRange(0, 64, 0))
	if _, hit := rt.Lookup(addr.VA(63 << 20)); !hit {
		t.Fatal("address inside range should hit")
	}
	if _, hit := rt.Lookup(addr.VA(64 << 20)); hit {
		t.Fatal("address past range end should miss")
	}
	s := rt.Stats()
	if s.Lookups != 3 || s.Hits != 1 || s.Misses != 2 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRangeTLBLRUEviction(t *testing.T) {
	rt := NewRangeTLB("t", 2)
	a, b, c := mkRange(0, 1, 0), mkRange(10, 1, 1), mkRange(20, 1, 2)
	rt.Insert(a)
	rt.Insert(b)
	rt.Lookup(a.Start) // promote a; b is LRU
	rt.Insert(c)       // evicts b
	if _, hit := rt.Lookup(b.Start); hit {
		t.Fatal("b should have been evicted")
	}
	if _, hit := rt.Lookup(a.Start); !hit {
		t.Fatal("a should be resident")
	}
	if _, hit := rt.Lookup(c.Start); !hit {
		t.Fatal("c should be resident")
	}
}

func TestRangeTLBReinsertPromotes(t *testing.T) {
	rt := NewRangeTLB("t", 2)
	a, b := mkRange(0, 1, 0), mkRange(10, 1, 1)
	rt.Insert(a)
	rt.Insert(b)
	rt.Insert(a) // promote, not duplicate
	if rt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rt.Len())
	}
	if got := rt.Stats().Fills; got != 2 {
		t.Fatalf("Fills = %d, want 2", got)
	}
}

func TestRangeTLBRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		prepare []RangeEntry
		insert  RangeEntry
	}{
		{"overlapping", []RangeEntry{mkRange(0, 10, 0)}, mkRange(5, 10, 100)},
		{"contained", []RangeEntry{mkRange(0, 10, 0)}, mkRange(2, 2, 100)},
		{"inverted", nil, RangeEntry{Start: addr.VA(200 << 20), End: addr.VA(100 << 20)}},
		{"empty", nil, RangeEntry{Start: 100, End: 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRangeTLB("t", 4)
			for _, e := range tc.prepare {
				if err := rt.Insert(e); err != nil {
					t.Fatalf("setup insert: %v", err)
				}
			}
			err := rt.Insert(tc.insert)
			if !errors.Is(err, ErrBadRange) {
				t.Fatalf("Insert(%+v) = %v, want ErrBadRange", tc.insert, err)
			}
		})
	}
}

func TestRangeTLBInvalidateOverlapping(t *testing.T) {
	rt := NewRangeTLB("t", 4)
	rt.Insert(mkRange(0, 10, 0))
	rt.Insert(mkRange(20, 10, 1))
	rt.Insert(mkRange(40, 10, 2))
	n := rt.InvalidateOverlapping(addr.VA(5<<20), addr.VA(25<<20))
	if n != 2 || rt.Len() != 1 {
		t.Fatalf("invalidated %d, len %d; want 2, 1", n, rt.Len())
	}
	if _, hit := rt.Lookup(addr.VA(45 << 20)); !hit {
		t.Fatal("non-overlapping range should survive")
	}
	rt.Flush()
	if rt.Len() != 0 {
		t.Fatal("Flush should empty the TLB")
	}
}

// Property: with non-overlapping ranges, a lookup hits iff some inserted
// and not-yet-evicted range contains the address, and translation
// preserves the offset from range start.
func TestQuickRangeTranslation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := NewRangeTLB("t", 8)
		// Non-overlapping ranges on a 1 MB grid: slot i covers [i*4MB, i*4MB+sz).
		for i := 0; i < 20; i++ {
			slot := uint64(rng.Intn(32))
			sz := uint64(1 + rng.Intn(4)) // 1..4 MB inside a 4 MB slot
			e := RangeEntry{
				Start:  addr.VA(slot * 4 << 20),
				End:    addr.VA(slot*4<<20 + sz<<20),
				PABase: addr.PA(uint64(i) * 8 << 20),
			}
			// Insert may find the identical entry or an overlapping
			// variant from an earlier iteration with a different size;
			// skip slots already used with a different size.
			overlap := false
			for _, va := range []addr.VA{e.Start, e.End - 1} {
				if got, hit := rt.Lookup(va); hit && got != e {
					overlap = true
				}
			}
			if overlap {
				continue
			}
			rt.Insert(e)
			va := e.Start + addr.VA(rng.Int63n(int64(e.Bytes())))
			got, hit := rt.Lookup(va)
			if !hit {
				return false
			}
			if got.Translate(va)-got.PABase != addr.PA(va-got.Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
