package tlb

import (
	"strings"
	"testing"

	"xlate/internal/addr"
)

func filledRangeTLB(t *testing.T) *RangeTLB {
	t.Helper()
	rt := NewRangeTLB("L2-range", 4)
	for i, r := range []RangeEntry{
		{Start: 0x10000, End: 0x20000, PABase: 0x100000},
		{Start: 0x30000, End: 0x38000, PABase: 0x200000},
		{Start: 0x50000, End: 0x51000, PABase: 0x300000},
	} {
		if err := rt.Insert(r); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	return rt
}

// TestRangeTLBCheckInvariantsClean asserts a well-formed TLB passes.
func TestRangeTLBCheckInvariantsClean(t *testing.T) {
	if err := filledRangeTLB(t).CheckInvariants(); err != nil {
		t.Fatalf("clean TLB failed audit: %v", err)
	}
}

// TestRangeTLBCheckInvariantsDetectsCorruption corrupts resident
// entries through the fault-injection hook and asserts each class of
// damage is caught — the coverage the structural audit relies on.
func TestRangeTLBCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*RangeEntry) bool
		wantSub string
	}{
		{
			name: "inverted range",
			corrupt: func(e *RangeEntry) bool {
				if e.Start == 0x30000 {
					e.End = e.Start - addr.VA(0x1000)
					return true
				}
				return false
			},
			wantSub: "inverted range",
		},
		{
			name: "empty range",
			corrupt: func(e *RangeEntry) bool {
				if e.Start == 0x30000 {
					e.End = e.Start
					return true
				}
				return false
			},
			wantSub: "inverted range",
		},
		{
			name: "overlapping ranges",
			corrupt: func(e *RangeEntry) bool {
				if e.Start == 0x30000 {
					e.Start, e.End = 0x10800, 0x11000
					return true
				}
				return false
			},
			wantSub: "overlap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := filledRangeTLB(t)
			if !rt.MutateEntry(tc.corrupt) {
				t.Fatal("corruption hook found no entry to damage")
			}
			err := rt.CheckInvariants()
			if err == nil {
				t.Fatal("corrupted TLB passed audit")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("audit error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
