package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	tl := NewSetAssoc("L1-4KB", 64, 4)
	if tl.Sets() != 16 || tl.Ways() != 4 || tl.Entries() != 64 {
		t.Fatalf("geometry = %d sets / %d ways / %d entries", tl.Sets(), tl.Ways(), tl.Entries())
	}
	if tl.ActiveWays() != 4 || tl.ActiveEntries() != 64 {
		t.Fatal("new TLB should start fully enabled")
	}
	fa := NewFullyAssoc("L1-1GB", 4)
	if fa.Sets() != 1 || fa.Ways() != 4 {
		t.Fatal("fully associative TLB should have one set")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, c := range []struct{ entries, ways int }{{0, 4}, {64, 0}, {65, 4}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d,%d) should panic", c.entries, c.ways)
				}
			}()
			NewSetAssoc("bad", c.entries, c.ways)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	tl := NewSetAssoc("t", 8, 2)
	if _, _, hit := tl.Lookup(100); hit {
		t.Fatal("empty TLB should miss")
	}
	tl.Insert(Entry{Key: 100, Frame: 0xA})
	e, pos, hit := tl.Lookup(100)
	if !hit || e.Frame != 0xA || pos != 0 {
		t.Fatalf("hit=%v frame=%#x pos=%d", hit, e.Frame, pos)
	}
	s := tl.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUPositionsAndEviction(t *testing.T) {
	// 1 set, 4 ways: keys must map to the same set.
	tl := NewFullyAssoc("t", 4)
	for k := uint64(0); k < 4; k++ {
		tl.Insert(Entry{Key: k})
	}
	// Recency order is now MRU→LRU: 3,2,1,0.
	if _, pos, _ := tl.Lookup(0); pos != 3 {
		t.Fatalf("key 0 at position %d, want 3 (LRU)", pos)
	}
	// After that hit, order: 0,3,2,1. Insert evicts LRU = 1.
	tl.Insert(Entry{Key: 9})
	if _, _, hit := tl.Lookup(1); hit {
		t.Fatal("key 1 should have been evicted as LRU")
	}
	if _, _, hit := tl.Lookup(9); !hit {
		t.Fatal("key 9 should be resident")
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertExistingPromotes(t *testing.T) {
	tl := NewFullyAssoc("t", 2)
	tl.Insert(Entry{Key: 1, Frame: 10})
	tl.Insert(Entry{Key: 2, Frame: 20})
	tl.Insert(Entry{Key: 1, Frame: 11}) // refresh, no fill
	if got := tl.Stats().Fills; got != 2 {
		t.Fatalf("Fills = %d, want 2", got)
	}
	e, pos, hit := tl.Lookup(1)
	if !hit || e.Frame != 11 || pos != 0 {
		t.Fatalf("refresh not applied: hit=%v frame=%d pos=%d", hit, e.Frame, pos)
	}
}

func TestSetIndexing(t *testing.T) {
	tl := NewSetAssoc("t", 8, 2) // 4 sets
	// Keys 0,4,8,12 map to set 0; with 2 ways, only 2 survive.
	for _, k := range []uint64{0, 4, 8, 12} {
		tl.Insert(Entry{Key: k})
	}
	// Keys 1,2,3 map to other sets and must be unaffected.
	for _, k := range []uint64{1, 2, 3} {
		tl.Insert(Entry{Key: k})
	}
	if tl.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (2 in set 0 + 3 elsewhere)", tl.Len())
	}
	for _, k := range []uint64{8, 12, 1, 2, 3} {
		if !tl.Peek(k) {
			t.Errorf("key %d should be resident", k)
		}
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWayDisablingInvalidatesLRU(t *testing.T) {
	tl := NewFullyAssoc("t", 4)
	for k := uint64(0); k < 4; k++ {
		tl.Insert(Entry{Key: k})
	}
	tl.SetActiveWays(2) // keeps the 2 MRU entries: 3, 2
	if tl.Len() != 2 || !tl.Peek(3) || !tl.Peek(2) || tl.Peek(1) || tl.Peek(0) {
		t.Fatalf("after downsizing, residency wrong: len=%d", tl.Len())
	}
	if got := tl.Stats().Invals; got != 2 {
		t.Fatalf("Invals = %d, want 2", got)
	}
	// Inserting now respects the smaller capacity.
	tl.Insert(Entry{Key: 7})
	if tl.Len() != 2 {
		t.Fatalf("Len after insert = %d, want 2", tl.Len())
	}
	// Re-enabling ways exposes no stale entries.
	tl.SetActiveWays(4)
	if tl.Peek(2) {
		t.Fatal("entry evicted while downsized must not reappear")
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetActiveWaysBoundsPanic(t *testing.T) {
	tl := NewSetAssoc("t", 8, 4)
	for _, w := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetActiveWays(%d) should panic", w)
				}
			}()
			tl.SetActiveWays(w)
		}()
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tl := NewSetAssoc("t", 8, 2)
	tl.Insert(Entry{Key: 5})
	if !tl.Invalidate(5) || tl.Invalidate(5) {
		t.Fatal("Invalidate should succeed once then fail")
	}
	tl.Insert(Entry{Key: 1})
	tl.Insert(Entry{Key: 2})
	tl.Flush()
	if tl.Len() != 0 {
		t.Fatal("Flush should empty the TLB")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio should be 0")
	}
	s = Stats{Lookups: 4, Hits: 3}
	if s.HitRatio() != 0.75 {
		t.Fatalf("HitRatio = %v", s.HitRatio())
	}
}

// Property: the LRU stack property — a hit at stack position p in the
// full configuration would also hit in any configuration with more than
// p ways. We verify by running the same access stream through a 4-way
// and a 2-way TLB (same sets) and checking that every 2-way hit is a
// 4-way hit at position < 2.
func TestQuickLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		big := NewSetAssoc("big", 16, 4)
		small := NewSetAssoc("small", 16, 4)
		small.SetActiveWays(2)
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(40))
			_, posBig, hitBig := big.Lookup(key)
			_, _, hitSmall := small.Lookup(key)
			if hitSmall && (!hitBig || posBig >= 2) {
				return false
			}
			if !hitBig {
				big.Insert(Entry{Key: key})
			}
			if !hitSmall {
				small.Insert(Entry{Key: key})
			}
		}
		return big.CheckInvariants() == nil && small.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: stats are internally consistent under random operations.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewSetAssoc("t", 32, 4)
		for i := 0; i < 400; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				key := uint64(rng.Intn(100))
				if _, _, hit := tl.Lookup(key); !hit {
					tl.Insert(Entry{Key: key})
				}
			case 2:
				tl.Invalidate(uint64(rng.Intn(100)))
			case 3:
				tl.SetActiveWays(1 + rng.Intn(4))
			}
			if tl.CheckInvariants() != nil {
				return false
			}
		}
		s := tl.Stats()
		return s.Lookups == s.Hits+s.Misses && s.Fills >= s.Evicts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInvalidateIf(t *testing.T) {
	tl := NewSetAssoc("t", 16, 4)
	for k := uint64(0); k < 12; k++ {
		tl.Insert(Entry{Key: k})
	}
	n := tl.InvalidateIf(func(e Entry) bool { return e.Key >= 8 })
	if n != 4 {
		t.Fatalf("invalidated %d, want 4", n)
	}
	for k := uint64(0); k < 8; k++ {
		if !tl.Peek(k) {
			t.Errorf("key %d should survive", k)
		}
	}
	for k := uint64(8); k < 12; k++ {
		if tl.Peek(k) {
			t.Errorf("key %d should be gone", k)
		}
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
