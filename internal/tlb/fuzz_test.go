package tlb

import (
	"testing"
)

// FuzzSetAssoc drives a SetAssoc TLB with an arbitrary operation
// sequence — inserts, lookups, invalidations, region shootdowns,
// way-resizes, flushes — and asserts CheckInvariants plus a shadow-map
// cross-check after every operation. The shadow map is an upper bound
// on residency: the TLB may drop entries (evictions, way-disabling) but
// a hit must never return a frame other than the last one inserted.
func FuzzSetAssoc(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	// insert a..f, shrink to 1 way, grow back, re-probe
	f.Add([]byte{2, 0xa0, 2, 0xb0, 2, 0xc0, 2, 0xd0, 2, 0xe0, 2, 0xf0, 4, 0, 4, 2, 1, 0xa0, 1, 0xf0})
	// interleaved invalidations and a ranged shootdown
	f.Add([]byte{2, 0x10, 2, 0x11, 3, 0x10, 2, 0x12, 5, 0x10, 0x20, 0, 1, 0x11})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		geoms := []struct{ entries, ways int }{
			{64, 4}, {32, 4}, {16, 16}, {8, 2}, {4, 1},
		}
		g := geoms[int(ops[0])%len(geoms)]
		ops = ops[1:]
		tl := NewSetAssoc("fuzz", g.entries, g.ways)
		shadow := map[uint64]uint64{} // key -> last inserted frame

		arg := func(i int) uint64 {
			if i < len(ops) {
				return uint64(ops[i])
			}
			return 0
		}
		for i := 0; i < len(ops); i++ {
			switch ops[i] % 6 {
			case 0: // lookup
				key := arg(i + 1)
				i++
				if e, pos, ok := tl.Lookup(key); ok {
					if want, present := shadow[key]; !present || e.Frame != want {
						t.Fatalf("hit on %#x returned frame %#x, want %#x (present=%v)",
							key, e.Frame, want, present)
					}
					if pos < 0 || pos >= tl.ActiveWays() {
						t.Fatalf("hit position %d outside 0..%d", pos, tl.ActiveWays()-1)
					}
				}
			case 1: // peek (no state change)
				key := arg(i + 1)
				i++
				if tl.Peek(key) {
					if _, present := shadow[key]; !present {
						t.Fatalf("peek found never-inserted key %#x", key)
					}
				}
			case 2: // insert
				key := arg(i + 1)
				i++
				frame := key<<12 | uint64(i)
				tl.Insert(Entry{Key: key, Frame: frame})
				shadow[key] = frame
				if !tl.Peek(key) {
					t.Fatalf("key %#x absent immediately after insert", key)
				}
			case 3: // invalidate
				key := arg(i + 1)
				i++
				tl.Invalidate(key)
				delete(shadow, key)
				if tl.Peek(key) {
					t.Fatalf("key %#x present after invalidate", key)
				}
			case 4: // resize active ways
				w := 1 + int(arg(i+1))%tl.Ways()
				i++
				tl.SetActiveWays(w)
				if tl.Len() > tl.ActiveEntries() {
					t.Fatalf("%d entries resident with active capacity %d",
						tl.Len(), tl.ActiveEntries())
				}
			case 5: // ranged shootdown [lo, hi)
				lo, hi := arg(i+1), arg(i+2)
				i += 2
				if lo > hi {
					lo, hi = hi, lo
				}
				tl.InvalidateIf(func(e Entry) bool { return e.Key >= lo && e.Key < hi })
				for k := range shadow {
					if k >= lo && k < hi {
						delete(shadow, k)
					}
				}
			}
			if err := tl.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
			if tl.Len() > len(shadow) {
				t.Fatalf("TLB holds %d entries but only %d were ever live", tl.Len(), len(shadow))
			}
		}
		// Occasionally end with a flush to keep that path covered.
		if len(ops) > 0 && ops[len(ops)-1]%7 == 0 {
			tl.Flush()
			if tl.Len() != 0 {
				t.Fatalf("%d entries survive a flush", tl.Len())
			}
			if err := tl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestCheckInvariantsAllocFree pins the property the runtime auditor
// depends on: invariant checking on a full TLB allocates nothing, so
// in-run audits cannot perturb GC behaviour.
func TestCheckInvariantsAllocFree(t *testing.T) {
	tl := NewSetAssoc("alloc", 64, 4)
	for k := uint64(0); k < 256; k++ {
		tl.Insert(Entry{Key: k, Frame: k << 12})
	}
	var err error
	if n := testing.AllocsPerRun(100, func() {
		err = tl.CheckInvariants()
	}); n != 0 {
		t.Errorf("CheckInvariants allocates %.1f times per run", n)
	}
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		tl.ForEach(func(Entry) {})
	}); n != 0 {
		t.Errorf("ForEach allocates %.1f times per run", n)
	}
}
